package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ernestCurve evaluates a known Ernest-family ground truth.
func ernestCurve(theta [4]float64, x int) float64 {
	fx := float64(x)
	return theta[0] + theta[1]/fx + theta[2]*math.Log(fx) + theta[3]*fx
}

func curvePoints(theta [4]float64, xs []int) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{ScaleOut: x, Runtime: ernestCurve(theta, x)}
	}
	return pts
}

func TestErnestRecoversCurve(t *testing.T) {
	theta := [4]float64{30, 200, 8, 1.5}
	e := NewErnest()
	if err := e.Fit(curvePoints(theta, []int{2, 4, 6, 8, 10, 12})); err != nil {
		t.Fatal(err)
	}
	for _, x := range []int{3, 5, 7, 9, 11, 14, 20} {
		got, err := e.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want := ernestCurve(theta, x)
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("Predict(%d) = %v, want ~%v", x, got, want)
		}
	}
}

func TestErnestNonNegativeTheta(t *testing.T) {
	e := NewErnest()
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{ScaleOut: i + 1, Runtime: rng.Float64() * 100}
	}
	if err := e.Fit(pts); err != nil {
		t.Fatal(err)
	}
	for i, th := range e.Theta {
		if th < 0 {
			t.Fatalf("Theta[%d] = %v < 0", i, th)
		}
	}
}

func TestErnestErrors(t *testing.T) {
	e := NewErnest()
	if _, err := e.Predict(4); err != ErrNotFitted {
		t.Fatalf("Predict before Fit err = %v, want ErrNotFitted", err)
	}
	if err := e.Fit(nil); err != ErrNoData {
		t.Fatalf("Fit(nil) err = %v, want ErrNoData", err)
	}
	if err := e.Fit([]Point{{ScaleOut: 0, Runtime: 1}}); err == nil {
		t.Fatal("Fit with zero scale-out should fail")
	}
	if err := e.Fit([]Point{{ScaleOut: 2, Runtime: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(-1); err == nil {
		t.Fatal("Predict(-1) should fail")
	}
}

func TestErnestSinglePoint(t *testing.T) {
	// One point is degenerate but must not crash — the paper notes NNLS
	// with one point is "by design unreasonable", not broken.
	e := NewErnest()
	if err := e.Fit([]Point{{ScaleOut: 4, Runtime: 100}}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Predict(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1 {
		t.Fatalf("Predict(4) = %v, want ~100", got)
	}
}

func TestFeatures(t *testing.T) {
	f := Features(4)
	want := []float64{1, 0.25, math.Log(4), 4}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Fatalf("Features(4) = %v, want %v", f, want)
		}
	}
}

func TestInterpolatorExact(t *testing.T) {
	ip := NewInterpolator()
	pts := []Point{{2, 100}, {4, 60}, {8, 40}}
	if err := ip.Fit(pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		got, err := ip.Predict(p.ScaleOut)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p.Runtime) > 1e-12 {
			t.Fatalf("Predict(%d) = %v, want %v", p.ScaleOut, got, p.Runtime)
		}
	}
}

func TestInterpolatorMidpoint(t *testing.T) {
	ip := NewInterpolator()
	if err := ip.Fit([]Point{{2, 100}, {4, 60}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ip.Predict(3)
	if math.Abs(got-80) > 1e-12 {
		t.Fatalf("Predict(3) = %v, want 80", got)
	}
}

func TestInterpolatorAveragesRepeats(t *testing.T) {
	ip := NewInterpolator()
	if err := ip.Fit([]Point{{2, 90}, {2, 110}, {4, 60}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ip.Predict(2)
	if math.Abs(got-100) > 1e-12 {
		t.Fatalf("Predict(2) = %v, want 100", got)
	}
}

func TestInterpolatorExtrapolatesLinearly(t *testing.T) {
	ip := NewInterpolator()
	if err := ip.Fit([]Point{{2, 100}, {4, 80}, {6, 60}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ip.Predict(8)
	if math.Abs(got-40) > 1e-12 {
		t.Fatalf("Predict(8) = %v, want 40", got)
	}
	got, _ = ip.Predict(1)
	if math.Abs(got-110) > 1e-12 {
		t.Fatalf("Predict(1) = %v, want 110", got)
	}
}

func TestInterpolatorClampsNegative(t *testing.T) {
	ip := NewInterpolator()
	if err := ip.Fit([]Point{{2, 30}, {4, 10}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ip.Predict(10)
	if got < 0 {
		t.Fatalf("Predict(10) = %v, want clamped >= 0", got)
	}
}

func TestInterpolatorSingleKnot(t *testing.T) {
	ip := NewInterpolator()
	if err := ip.Fit([]Point{{4, 55}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ip.Predict(10)
	if got != 55 {
		t.Fatalf("Predict(10) = %v, want 55", got)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	ip := NewInterpolator()
	if _, err := ip.Predict(3); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	if err := ip.Fit(nil); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestBellFallsBackBelowThreePoints(t *testing.T) {
	b := NewBell()
	if err := b.Fit([]Point{{2, 100}, {4, 60}}); err != nil {
		t.Fatal(err)
	}
	if b.UseNonParametric {
		t.Fatal("Bell should use the parametric model with < 3 distinct scale-outs")
	}
}

func TestBellPrefersInterpolationOnDenseNonParametricData(t *testing.T) {
	// A curve with an interior minimum that Ernest's nonnegative basis
	// cannot represent well; with dense samples the interpolator's CV
	// error is lower.
	b := NewBell()
	var pts []Point
	for x := 2; x <= 24; x += 2 {
		fx := float64(x)
		runtime := 500/fx + 2*fx*fx // steep quadratic rise
		pts = append(pts, Point{ScaleOut: x, Runtime: runtime})
	}
	if err := b.Fit(pts); err != nil {
		t.Fatal(err)
	}
	if !b.UseNonParametric {
		t.Fatal("Bell should pick the non-parametric model on a quadratic curve")
	}
}

func TestBellPrefersParametricOnSparseErnestData(t *testing.T) {
	theta := [4]float64{30, 400, 5, 1}
	b := NewBell()
	if err := b.Fit(curvePoints(theta, []int{2, 6, 12})); err != nil {
		t.Fatal(err)
	}
	pred, err := b.Predict(4)
	if err != nil {
		t.Fatal(err)
	}
	want := ernestCurve(theta, 4)
	if math.Abs(pred-want)/want > 0.25 {
		t.Fatalf("Bell Predict(4) = %v, want ~%v", pred, want)
	}
}

func TestBellErrors(t *testing.T) {
	b := NewBell()
	if _, err := b.Predict(2); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	if err := b.Fit(nil); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

// Property: Ernest predictions are finite and nonnegative-basis bounded
// for arbitrary nonnegative training data.
func TestQuickErnestFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{ScaleOut: 1 + rng.Intn(20), Runtime: rng.Float64() * 1000}
		}
		e := NewErnest()
		if err := e.Fit(pts); err != nil {
			return true // convergence failure acceptable, crash not
		}
		p, err := e.Predict(1 + rng.Intn(30))
		if err != nil {
			return false
		}
		return !math.IsNaN(p) && !math.IsInf(p, 0) && p >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interpolator reproduces its knots exactly.
func TestQuickInterpolatorKnots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		seen := map[int]float64{}
		var pts []Point
		for i := 0; i < n; i++ {
			x := 1 + rng.Intn(30)
			y := rng.Float64() * 500
			if _, dup := seen[x]; dup {
				continue
			}
			seen[x] = y
			pts = append(pts, Point{ScaleOut: x, Runtime: y})
		}
		ip := NewInterpolator()
		if err := ip.Fit(pts); err != nil {
			return false
		}
		for x, y := range seen {
			got, err := ip.Predict(x)
			if err != nil || math.Abs(got-y) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitErnest(b *testing.B) {
	theta := [4]float64{30, 200, 8, 1.5}
	pts := curvePoints(theta, []int{2, 4, 6, 8, 10, 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := NewErnest().Fit(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitBell(b *testing.B) {
	theta := [4]float64{30, 200, 8, 1.5}
	pts := curvePoints(theta, []int{2, 4, 6, 8, 10, 12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := NewBell().Fit(pts); err != nil {
			b.Fatal(err)
		}
	}
}
