package baselines

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/nnls"
)

// Ernest is the parametric model of Venkataraman et al. (NSDI'16):
//
//	t(x) = θ1 + θ2·(1/x) + θ3·log(x) + θ4·x
//
// with θ >= 0 estimated by non-negative least squares (paper Eq. 1).
type Ernest struct {
	// Theta holds the fitted weights after Fit.
	Theta  []float64
	fitted bool
}

// NewErnest returns an unfitted Ernest model.
func NewErnest() *Ernest { return &Ernest{} }

// Features computes Ernest's feature vector [1, 1/x, log x, x].
func Features(scaleOut int) []float64 {
	x := float64(scaleOut)
	return []float64{1, 1 / x, math.Log(x), x}
}

// Fit implements Predictor.
func (e *Ernest) Fit(points []Point) error {
	if len(points) == 0 {
		return ErrNoData
	}
	for _, p := range points {
		if p.ScaleOut <= 0 {
			return fmt.Errorf("baselines: ernest: scale-out %d must be positive", p.ScaleOut)
		}
	}
	a := mat.NewDense(len(points), 4)
	b := make([]float64, len(points))
	for i, p := range points {
		copy(a.Row(i), Features(p.ScaleOut))
		b[i] = p.Runtime
	}
	theta, err := nnls.Solve(a, b)
	if err != nil {
		return fmt.Errorf("baselines: ernest fit: %w", err)
	}
	e.Theta = theta
	e.fitted = true
	return nil
}

// Predict implements Predictor.
func (e *Ernest) Predict(scaleOut int) (float64, error) {
	if !e.fitted {
		return 0, ErrNotFitted
	}
	if scaleOut <= 0 {
		return 0, fmt.Errorf("baselines: ernest: scale-out %d must be positive", scaleOut)
	}
	return mat.Dot(e.Theta, Features(scaleOut)), nil
}
