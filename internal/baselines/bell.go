package baselines

import (
	"fmt"
	"math"
)

// Bell is the hybrid model of Thamsen et al. (IPCCC'16): it trains both a
// parametric model (Ernest) and a non-parametric model (interpolation)
// and selects between them per job via internal leave-one-out
// cross-validation over the distinct scale-outs. The cross-validation
// needs at least three distinct scale-outs; below that it falls back to
// the parametric model, which is why the paper notes "Bell requires at
// least three data points".
type Bell struct {
	parametric    *Ernest
	nonParametric *Interpolator
	// UseNonParametric records which model won the cross-validation.
	UseNonParametric bool
	fitted           bool
}

// NewBell returns an unfitted Bell model.
func NewBell() *Bell {
	return &Bell{parametric: NewErnest(), nonParametric: NewInterpolator()}
}

// Fit implements Predictor.
func (b *Bell) Fit(points []Point) error {
	if len(points) == 0 {
		return ErrNoData
	}
	if err := b.parametric.Fit(points); err != nil {
		return fmt.Errorf("baselines: bell parametric: %w", err)
	}
	if err := b.nonParametric.Fit(points); err != nil {
		return fmt.Errorf("baselines: bell non-parametric: %w", err)
	}
	b.fitted = true

	distinct := distinctScaleOuts(points)
	if len(distinct) < 3 {
		b.UseNonParametric = false
		return nil
	}
	pErr := crossValidate(points, distinct, func() Predictor { return NewErnest() })
	npErr := crossValidate(points, distinct, func() Predictor { return NewInterpolator() })
	b.UseNonParametric = npErr < pErr
	return nil
}

// Predict implements Predictor.
func (b *Bell) Predict(scaleOut int) (float64, error) {
	if !b.fitted {
		return 0, ErrNotFitted
	}
	if b.UseNonParametric {
		return b.nonParametric.Predict(scaleOut)
	}
	return b.parametric.Predict(scaleOut)
}

// crossValidate computes the mean absolute leave-one-scale-out-out error
// of the model family produced by mk.
func crossValidate(points []Point, distinct []int, mk func() Predictor) float64 {
	var total float64
	var n int
	for _, hold := range distinct {
		var train, test []Point
		for _, p := range points {
			if p.ScaleOut == hold {
				test = append(test, p)
			} else {
				train = append(train, p)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		m := mk()
		if err := m.Fit(train); err != nil {
			total += math.Inf(1)
			continue
		}
		for _, p := range test {
			pred, err := m.Predict(p.ScaleOut)
			if err != nil {
				total += math.Inf(1)
				continue
			}
			total += math.Abs(pred - p.Runtime)
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

func distinctScaleOuts(points []Point) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range points {
		if !seen[p.ScaleOut] {
			seen[p.ScaleOut] = true
			out = append(out, p.ScaleOut)
		}
	}
	return out
}
