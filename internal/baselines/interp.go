package baselines

import (
	"fmt"
	"sort"
)

// Interpolator is a non-parametric model: it averages repeated
// observations per scale-out and interpolates linearly between the
// resulting knots, extrapolating with the slope of the outermost
// segment. It is the non-parametric half of the Bell hybrid.
type Interpolator struct {
	xs []float64 // sorted distinct scale-outs
	ys []float64 // mean runtime per scale-out
}

// NewInterpolator returns an unfitted interpolation model.
func NewInterpolator() *Interpolator { return &Interpolator{} }

// Fit implements Predictor.
func (ip *Interpolator) Fit(points []Point) error {
	if len(points) == 0 {
		return ErrNoData
	}
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, p := range points {
		if p.ScaleOut <= 0 {
			return fmt.Errorf("baselines: interpolator: scale-out %d must be positive", p.ScaleOut)
		}
		sums[p.ScaleOut] += p.Runtime
		counts[p.ScaleOut]++
	}
	var xs []int
	for x := range sums {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	ip.xs = ip.xs[:0]
	ip.ys = ip.ys[:0]
	for _, x := range xs {
		ip.xs = append(ip.xs, float64(x))
		ip.ys = append(ip.ys, sums[x]/float64(counts[x]))
	}
	return nil
}

// Predict implements Predictor.
func (ip *Interpolator) Predict(scaleOut int) (float64, error) {
	if len(ip.xs) == 0 {
		return 0, ErrNotFitted
	}
	x := float64(scaleOut)
	n := len(ip.xs)
	if n == 1 {
		return ip.ys[0], nil
	}
	// Locate the segment; clamp to the outermost segments for
	// extrapolation.
	i := sort.SearchFloat64s(ip.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := ip.xs[i-1], ip.xs[i]
	y0, y1 := ip.ys[i-1], ip.ys[i]
	t := (x - x0) / (x1 - x0)
	y := y0 + t*(y1-y0)
	if y < 0 {
		y = 0
	}
	return y, nil
}
