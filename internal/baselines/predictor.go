// Package baselines implements the two state-of-the-art comparison
// methods of the Bellamy evaluation: Ernest's NNLS-fit parametric
// scale-out model and Bell's hybrid parametric/non-parametric model with
// internal cross-validation.
package baselines

import "errors"

// Point is one training observation: a scale-out and the runtime seen
// there.
type Point struct {
	ScaleOut int
	Runtime  float64
}

// Predictor is the common interface of all runtime models in this
// repository (baselines and Bellamy alike).
type Predictor interface {
	// Fit trains the model on the given observations.
	Fit(points []Point) error
	// Predict estimates the runtime at a scale-out.
	Predict(scaleOut int) (float64, error)
}

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("baselines: model not fitted")

// ErrNoData is returned when Fit is called without any points.
var ErrNoData = errors.New("baselines: no training points")
