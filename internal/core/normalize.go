package core

import (
	"math"
)

// MinMaxNormalizer scales features into (0, 1) per dimension using bounds
// determined during training and reused at inference (paper §IV-A).
type MinMaxNormalizer struct {
	Min, Max []float64
	fitted   bool
}

// FitMinMax determines bounds from the rows of data.
func FitMinMax(data [][]float64) *MinMaxNormalizer {
	n := &MinMaxNormalizer{}
	if len(data) == 0 {
		return n
	}
	dim := len(data[0])
	n.Min = make([]float64, dim)
	n.Max = make([]float64, dim)
	for j := 0; j < dim; j++ {
		n.Min[j] = math.Inf(1)
		n.Max[j] = math.Inf(-1)
	}
	for _, row := range data {
		for j, v := range row {
			n.Min[j] = math.Min(n.Min[j], v)
			n.Max[j] = math.Max(n.Max[j], v)
		}
	}
	n.fitted = true
	return n
}

// Transform scales a feature vector in place-free fashion. Values outside
// the training bounds extrapolate linearly beyond (0, 1), which is what
// lets a pre-trained model be probed at unseen scale-outs.
func (n *MinMaxNormalizer) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	copy(out, row)
	n.TransformInPlace(out)
	return out
}

// TransformInPlace rescales row in place, the allocation-free variant
// used by batch construction. An unfitted normalizer leaves row as is.
func (n *MinMaxNormalizer) TransformInPlace(row []float64) {
	if !n.fitted {
		return
	}
	for j, v := range row {
		span := n.Max[j] - n.Min[j]
		if span <= 0 {
			row[j] = 0.5
			continue
		}
		row[j] = (v - n.Min[j]) / span
	}
}

// Fitted reports whether bounds have been determined.
func (n *MinMaxNormalizer) Fitted() bool { return n.fitted }

// TargetScaler normalizes runtimes to a unit scale for the Huber loss and
// maps predictions back to seconds. The scale is fixed at pre-training
// time (mean runtime of the corpus) so fine-tuning stays calibrated.
type TargetScaler struct {
	Scale float64
}

// FitTargetScaler derives the scale from runtimes (mean); a zero or empty
// input falls back to scale 1.
func FitTargetScaler(runtimes []float64) *TargetScaler {
	if len(runtimes) == 0 {
		return &TargetScaler{Scale: 1}
	}
	var sum float64
	for _, r := range runtimes {
		sum += r
	}
	mean := sum / float64(len(runtimes))
	if mean <= 0 || math.IsNaN(mean) {
		mean = 1
	}
	return &TargetScaler{Scale: mean}
}

// ToScaled maps seconds to the loss space.
func (t *TargetScaler) ToScaled(seconds float64) float64 { return seconds / t.Scale }

// ToSeconds maps a model output back to seconds.
func (t *TargetScaler) ToSeconds(scaled float64) float64 { return scaled * t.Scale }

// ScaleOutFeatures crafts the paper's scale-out feature vector
// [1/x, log x, x] (§III-B).
func ScaleOutFeatures(scaleOut int) []float64 {
	out := make([]float64, 3)
	ScaleOutFeaturesInto(out, scaleOut)
	return out
}

// ScaleOutFeaturesInto writes the scale-out feature vector into dst
// (length 3) without allocating.
func ScaleOutFeaturesInto(dst []float64, scaleOut int) {
	x := float64(scaleOut)
	dst[0] = 1 / x
	dst[1] = math.Log(x)
	dst[2] = x
}
