package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/encoding"
)

// Sample is one training observation for the Bellamy model: a scale-out,
// the descriptive properties of the execution context, and the observed
// runtime in seconds.
type Sample struct {
	ScaleOut   int
	Essential  []encoding.Property
	Optional   []encoding.Property
	RuntimeSec float64
}

// SamplesFromExecutions converts dataset executions into model samples
// using the paper's property selection (essential: dataset size, dataset
// characteristics, job parameters, node type; optional: memory, cores,
// job name).
func SamplesFromExecutions(execs []dataset.Execution) []Sample {
	out := make([]Sample, len(execs))
	for i, e := range execs {
		out[i] = Sample{
			ScaleOut:   e.ScaleOut,
			Essential:  e.Context.EssentialProps(),
			Optional:   e.Context.OptionalProps(),
			RuntimeSec: e.RuntimeSec,
		}
	}
	return out
}

// ValidateSample checks one observation against a model configuration:
// positive scale-out and runtime, and property counts the architecture
// can encode. Online ingestion uses it to filter live observations
// before they reach a fine-tune.
func ValidateSample(cfg Config, s Sample) error {
	if err := checkSample(cfg, s); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// checkSample is the prefix-free form shared by ValidateSample and
// validateSamples, so neither wrapper doubles the package prefix.
func checkSample(cfg Config, s Sample) error {
	if s.ScaleOut <= 0 {
		return fmt.Errorf("scale-out %d must be positive", s.ScaleOut)
	}
	if s.RuntimeSec <= 0 {
		return fmt.Errorf("runtime %v must be positive", s.RuntimeSec)
	}
	if len(s.Essential) != cfg.NumEssential {
		return fmt.Errorf("got %d essential properties, model expects %d",
			len(s.Essential), cfg.NumEssential)
	}
	if len(s.Optional) > cfg.NumOptional {
		return fmt.Errorf("got %d optional properties, model allows %d",
			len(s.Optional), cfg.NumOptional)
	}
	return nil
}

// validateSamples checks that every sample matches the model's expected
// property counts and has positive scale-out and runtime.
func validateSamples(cfg Config, samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: no samples")
	}
	for i, s := range samples {
		if err := checkSample(cfg, s); err != nil {
			return fmt.Errorf("core: sample %d: %w", i, err)
		}
	}
	return nil
}
