package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/encoding"
)

// Sample is one training observation for the Bellamy model: a scale-out,
// the descriptive properties of the execution context, and the observed
// runtime in seconds.
type Sample struct {
	ScaleOut   int
	Essential  []encoding.Property
	Optional   []encoding.Property
	RuntimeSec float64
}

// SamplesFromExecutions converts dataset executions into model samples
// using the paper's property selection (essential: dataset size, dataset
// characteristics, job parameters, node type; optional: memory, cores,
// job name).
func SamplesFromExecutions(execs []dataset.Execution) []Sample {
	out := make([]Sample, len(execs))
	for i, e := range execs {
		out[i] = Sample{
			ScaleOut:   e.ScaleOut,
			Essential:  e.Context.EssentialProps(),
			Optional:   e.Context.OptionalProps(),
			RuntimeSec: e.RuntimeSec,
		}
	}
	return out
}

// validateSamples checks that every sample matches the model's expected
// property counts and has positive scale-out and runtime.
func validateSamples(cfg Config, samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: no samples")
	}
	for i, s := range samples {
		if s.ScaleOut <= 0 {
			return fmt.Errorf("core: sample %d scale-out %d must be positive", i, s.ScaleOut)
		}
		if s.RuntimeSec <= 0 {
			return fmt.Errorf("core: sample %d runtime %v must be positive", i, s.RuntimeSec)
		}
		if len(s.Essential) != cfg.NumEssential {
			return fmt.Errorf("core: sample %d has %d essential properties, model expects %d",
				i, len(s.Essential), cfg.NumEssential)
		}
		if len(s.Optional) > cfg.NumOptional {
			return fmt.Errorf("core: sample %d has %d optional properties, model allows %d",
				i, len(s.Optional), cfg.NumOptional)
		}
	}
	return nil
}
