package core

import (
	"math"
	"testing"
)

// quantTestModel pre-trains a small model on the synthetic corpus and
// returns it with its quantized serving twin plus a query set covering
// seen and unseen scale-outs and partial optional properties.
func quantTestModel(t *testing.T) (*Model, *InferModel, []Query) {
	t.Helper()
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(3, []int{2, 4, 6, 8, 10, 12})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	im, err := m.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for _, s := range samples {
		queries = append(queries, Query{ScaleOut: s.ScaleOut, Essential: s.Essential, Optional: s.Optional})
	}
	// Unseen scale-out, and a query with fewer optional properties than
	// slots (exercises the zeroed-slot mean path).
	queries = append(queries,
		Query{ScaleOut: 16, Essential: samples[0].Essential, Optional: samples[0].Optional},
		Query{ScaleOut: 5, Essential: samples[0].Essential, Optional: samples[0].Optional[:1]},
		Query{ScaleOut: 7, Essential: samples[0].Essential},
	)
	return m, im, queries
}

// TestQuantizedPredictionAccuracy pins the float32 round-trip bound the
// serving layer documents: quantized predictions stay within 1e-3
// relative of the float64 model across the corpus (typical drift is
// ~1e-5; the bound leaves room for the prediction's sensitivity to
// float32 weight rounding through two nonlinear layers).
func TestQuantizedPredictionAccuracy(t *testing.T) {
	m, im, queries := quantTestModel(t)

	want := make([]float64, len(queries))
	if err := m.PredictBatchInto(want, queries); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(queries))
	if err := im.PredictBatchInto(got, queries); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		rel := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i]))
		if rel > 1e-3 {
			t.Fatalf("query %d: quantized %v vs float64 %v (rel err %.3g > 1e-3)", i, got[i], want[i], rel)
		}
		if got[i] < 0 {
			t.Fatalf("query %d: negative runtime %v", i, got[i])
		}
	}

	// Single-query Predict agrees with the batch path to float32 kernel
	// rounding: the strided asm kernels process rows in blocks of 4, so
	// a row's accumulation order depends on its position in the batch
	// (asm 4-block vs scalar tail) — a few f32 ulps, nowhere near the
	// 1e-3 quantization bound.
	q := queries[0]
	single, err := im.Predict(q.ScaleOut, q.Essential, q.Optional)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(single-got[0]) / (1 + math.Abs(got[0])); rel > 1e-4 {
		t.Fatalf("Predict = %v, batch row 0 = %v (rel err %.3g)", single, got[0], rel)
	}
}

// TestQuantizeCarriesMetadata checks the serving model keeps the
// provenance the allocation engine's fallback decision consults, and
// that validation matches the float64 model.
func TestQuantizeCarriesMetadata(t *testing.T) {
	m, im, _ := quantTestModel(t)
	if im.Pretrained() != m.Pretrained() {
		t.Fatalf("Pretrained = %v, want %v", im.Pretrained(), m.Pretrained())
	}
	if im.FinetuneSamples() != m.FinetuneSamples() {
		t.Fatalf("FinetuneSamples = %d, want %d", im.FinetuneSamples(), m.FinetuneSamples())
	}
	if err := im.ValidateQuery(Query{ScaleOut: 0}); err == nil {
		t.Fatal("zero scale-out not rejected")
	}
	if err := im.ValidateQuery(Query{ScaleOut: 2}); err == nil {
		t.Fatal("missing essential properties not rejected")
	}
}

// TestInferPredictBatchZeroAllocWarm pins the float32 serving path's
// steady state: after one warming call, PredictBatchInto of the same
// batch size allocates nothing.
func TestInferPredictBatchZeroAllocWarm(t *testing.T) {
	_, im, queries := quantTestModel(t)
	dst := make([]float64, len(queries))
	if err := im.PredictBatchInto(dst, queries); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := im.PredictBatchInto(dst, queries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm quantized PredictBatchInto allocates %.1f/op, want 0", allocs)
	}
}
