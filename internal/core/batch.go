package core

import (
	"fmt"

	"repro/internal/encoding"
)

// Query is one inference request: a scale-out and the descriptive
// properties of the execution context it runs in.
type Query struct {
	ScaleOut  int
	Essential []encoding.Property
	Optional  []encoding.Property
}

// ValidateQuery checks a query against the model's expected property
// counts without running inference.
func (m *Model) ValidateQuery(q Query) error {
	if q.ScaleOut <= 0 {
		return fmt.Errorf("core: scale-out %d must be positive", q.ScaleOut)
	}
	if len(q.Essential) != m.Cfg.NumEssential {
		return fmt.Errorf("core: got %d essential properties, model expects %d",
			len(q.Essential), m.Cfg.NumEssential)
	}
	if len(q.Optional) > m.Cfg.NumOptional {
		return fmt.Errorf("core: got %d optional properties, model allows %d",
			len(q.Optional), m.Cfg.NumOptional)
	}
	return nil
}

// PredictBatch estimates runtimes for many queries in a single forward
// pass, returning seconds in input order. One batched pass amortizes the
// per-call matrix setup and lets the matmul layer parallelize across
// rows, which is the fast path the serving layer builds on.
//
// A Model is not safe for concurrent use: forward passes cache
// per-layer state for backprop. Callers serving concurrent traffic must
// serialize access (see internal/serve).
func (m *Model) PredictBatch(queries []Query) ([]float64, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	samples := make([]Sample, len(queries))
	for i, q := range queries {
		if err := m.ValidateQuery(q); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
		samples[i] = Sample{
			ScaleOut:   q.ScaleOut,
			Essential:  q.Essential,
			Optional:   q.Optional,
			RuntimeSec: 1, // placeholder; targets are unused in inference
		}
	}
	b := m.buildBatch(samples)
	st := m.forward(b, false, false)
	out := make([]float64, len(queries))
	for i := range out {
		out[i] = m.target.ToSeconds(st.pred.At(i, 0))
	}
	return out, nil
}
