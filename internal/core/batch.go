package core

import (
	"fmt"

	"repro/internal/encoding"
)

// Query is one inference request: a scale-out and the descriptive
// properties of the execution context it runs in.
type Query struct {
	ScaleOut  int
	Essential []encoding.Property
	Optional  []encoding.Property
}

// ValidateQuery checks a query against the model's expected property
// counts without running inference.
func (m *Model) ValidateQuery(q Query) error { return validateQuery(m.Cfg, q) }

// validateQuery is the shared query check of Model and InferModel.
func validateQuery(cfg Config, q Query) error {
	if q.ScaleOut <= 0 {
		return fmt.Errorf("core: scale-out %d must be positive", q.ScaleOut)
	}
	if len(q.Essential) != cfg.NumEssential {
		return fmt.Errorf("core: got %d essential properties, model expects %d",
			len(q.Essential), cfg.NumEssential)
	}
	if len(q.Optional) > cfg.NumOptional {
		return fmt.Errorf("core: got %d optional properties, model allows %d",
			len(q.Optional), cfg.NumOptional)
	}
	return nil
}

// PredictBatch estimates runtimes for many queries in a single forward
// pass, returning seconds in input order. One batched pass amortizes the
// per-call matrix setup and lets the matmul layer parallelize across
// rows, which is the fast path the serving layer builds on.
//
// A Model is not safe for concurrent use: forward passes cache
// per-layer state for backprop and share the model workspace. Callers
// serving concurrent traffic must serialize access (see internal/serve).
func (m *Model) PredictBatch(queries []Query) ([]float64, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	out := make([]float64, len(queries))
	if err := m.PredictBatchInto(out, queries); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto is the allocation-free form of PredictBatch: it
// writes the predicted runtimes into dst (len(dst) == len(queries)).
// Batch buffers and every forward intermediate come from model-owned
// storage, so a warm call (shapes already seen) allocates nothing.
func (m *Model) PredictBatchInto(dst []float64, queries []Query) error {
	if len(queries) == 0 {
		return nil
	}
	if len(dst) != len(queries) {
		return fmt.Errorf("core: dst len %d != queries len %d", len(dst), len(queries))
	}
	if cap(m.scratchSamples) < len(queries) {
		m.scratchSamples = make([]Sample, len(queries))
	}
	samples := m.scratchSamples[:len(queries)]
	for i, q := range queries {
		if err := m.ValidateQuery(q); err != nil {
			clear(samples[:i]) // release the query slices copied so far
			return fmt.Errorf("core: query %d: %w", i, err)
		}
		samples[i] = Sample{
			ScaleOut:   q.ScaleOut,
			Essential:  q.Essential,
			Optional:   q.Optional,
			RuntimeSec: 1, // placeholder; targets are unused in inference
		}
	}
	m.fillBatch(&m.inferB, samples, nil)
	// The batch holds encoded copies only; drop the references to the
	// caller's query property slices so a large request batch is not
	// pinned for the model's lifetime.
	clear(samples)
	st := m.forward(&m.inferB, false, false)
	for i := range dst {
		v := m.target.ToSeconds(st.pred.At(i, 0))
		// The network is unconstrained and can denormalize to a negative
		// runtime at extreme scale-outs; a runtime below zero is
		// meaningless, so the prediction boundary floors it.
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return nil
}
