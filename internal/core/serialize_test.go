package core

import (
	"bytes"
	"math"
	"testing"
)

// goldenQueries spans the scale-out grid and both seen and unseen
// contexts, so the round-trip check covers interpolation and
// extrapolation inputs alike.
func goldenQueries() []Query {
	var out []Query
	for _, contexts := range []int{1, 2} {
		samples := syntheticSamples(contexts, []int{2, 4, 6, 8, 10, 12})
		for _, s := range samples[:6] {
			out = append(out, Query{ScaleOut: s.ScaleOut, Essential: s.Essential, Optional: s.Optional})
		}
	}
	// Unseen scale-outs (extrapolation) on the first context.
	s := syntheticSamples(1, []int{2})[0]
	for _, x := range []int{1, 3, 16, 24} {
		out = append(out, Query{ScaleOut: x, Essential: s.Essential, Optional: s.Optional})
	}
	return out
}

// TestGoldenRoundTripBitIdentical is the reference-output check of the
// serialization format: a model trained with a fixed seed must produce
// bit-identical predictions after save -> load, across the whole query
// grid. Any silent change to the wire format, the restore path, or the
// inference graph breaks this test.
func TestGoldenRoundTripBitIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainEpochs = 30
	cfg.Seed = 12345
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Pretrain(syntheticSamples(3, []int{2, 4, 6, 8, 10, 12})); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}

	queries := goldenQueries()
	want, err := m.PredictBatch(queries)
	if err != nil {
		t.Fatalf("PredictBatch before save: %v", err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got, err := loaded.PredictBatch(queries)
	if err != nil {
		t.Fatalf("PredictBatch after load: %v", err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d: loaded model predicts %.17g, original %.17g (bit patterns %x vs %x)",
				i, got[i], want[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestRoundTripSurvivesSecondGeneration chains save -> load -> save ->
// load and checks the grandchild still predicts bit-identically:
// nothing is lost or re-derived between generations.
func TestRoundTripSurvivesSecondGeneration(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainEpochs = 20
	cfg.Seed = 7
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Pretrain(syntheticSamples(2, []int{2, 4, 6, 8})); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	queries := goldenQueries()
	want, err := m.PredictBatch(queries)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}

	gen := m
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := gen.Save(&buf); err != nil {
			t.Fatalf("generation %d Save: %v", i, err)
		}
		gen, err = Load(&buf)
		if err != nil {
			t.Fatalf("generation %d Load: %v", i, err)
		}
	}
	got, err := gen.PredictBatch(queries)
	if err != nil {
		t.Fatalf("grandchild PredictBatch: %v", err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d drifted across generations: %.17g vs %.17g", i, got[i], want[i])
		}
	}
}

// TestPredictBatchMatchesPredict checks the batched inference path
// against the single-query path: one forward pass over B rows must give
// the same answers as B separate passes.
func TestPredictBatchMatchesPredict(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainEpochs = 20
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Pretrain(syntheticSamples(2, []int{2, 4, 6, 8, 10, 12})); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	queries := goldenQueries()
	batch, err := m.PredictBatch(queries)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	for i, q := range queries {
		single, err := m.Predict(q.ScaleOut, q.Essential, q.Optional)
		if err != nil {
			t.Fatalf("Predict %d: %v", i, err)
		}
		if diff := math.Abs(single - batch[i]); diff > 1e-9*math.Abs(single) {
			t.Fatalf("query %d: batch %v != single %v", i, batch[i], single)
		}
	}
}

// TestPredictBatchValidation mirrors Predict's input checking.
func TestPredictBatchValidation(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	good := goldenQueries()[0]
	bad := []Query{
		{ScaleOut: 0, Essential: good.Essential, Optional: good.Optional},
		{ScaleOut: 4, Essential: good.Essential[:2], Optional: good.Optional},
	}
	for i, q := range bad {
		if _, err := m.PredictBatch([]Query{good, q}); err == nil {
			t.Fatalf("PredictBatch accepted invalid query %d", i)
		}
	}
	if out, err := m.PredictBatch(nil); err != nil || out != nil {
		t.Fatalf("PredictBatch(nil) = %v, %v; want nil, nil", out, err)
	}
}
