// Package core implements the Bellamy runtime prediction model
// (Scheinert et al., CLUSTER 2021): a neural architecture combining a
// scale-out modeling network f, a property auto-encoder (encoder g,
// decoder h), and a runtime predictor z, trained jointly on a Huber
// runtime loss plus an MSE reconstruction loss. The model supports the
// paper's two-step workflow — pre-training on cross-context corpora and
// fine-tuning on the few samples of a concrete context — as well as the
// reuse strategies evaluated in the cross-environment experiment.
package core

import (
	"fmt"

	"repro/internal/nn"
)

// Config mirrors Table I of the paper plus the architectural dimensions
// fixed in §IV-A.
type Config struct {
	// PropertySize is the vectorized property size N (decoding dim).
	PropertySize int
	// EncodingDim is the code size M produced by the encoder.
	EncodingDim int
	// EncoderHidden is the hidden width of encoder and decoder.
	EncoderHidden int
	// ScaleOutHidden is the hidden width of the scale-out network f.
	ScaleOutHidden int
	// ScaleOutDim is F, the output dimensionality of f.
	ScaleOutDim int
	// PredictorHidden is the hidden width of the final network z.
	PredictorHidden int
	// NumEssential is m, the count of essential properties with
	// dedicated capacity in the combined vector.
	NumEssential int
	// NumOptional is n, the count of optional properties averaged into
	// the shared slot.
	NumOptional int

	// Dropout is the alpha-dropout probability used during pre-training.
	Dropout float64
	// LearningRate is the pre-training Adam learning rate.
	LearningRate float64
	// WeightDecay is the decoupled weight-decay coefficient.
	WeightDecay float64
	// BatchSize bounds the mini-batch size (Table I: 64).
	BatchSize int
	// PretrainEpochs is the pre-training epoch count (Table I: 2500).
	PretrainEpochs int
	// HuberDelta is the runtime-loss transition point (scaled space).
	HuberDelta float64
	// ReconWeight scales the auto-encoder reconstruction term of the
	// joint loss. Zero disables the term (ablation).
	ReconWeight float64
	// GradClipNorm bounds the global gradient norm per step (0 = off).
	GradClipNorm float64

	// FinetuneEpochs caps fine-tuning (Table I: max 2500).
	FinetuneEpochs int
	// FinetunePatience stops fine-tuning after this many epochs without
	// improvement (Table I: 1000).
	FinetunePatience int
	// FinetuneTargetMAE stops fine-tuning when the runtime MAE in
	// seconds drops to or below this value (Table I: 5).
	FinetuneTargetMAE float64
	// FinetuneLRLow/High bound the cyclical annealing schedule
	// (Table I: (1e-3, 1e-2)).
	FinetuneLRLow, FinetuneLRHigh float64
	// FinetuneWeightDecay is the fine-tuning weight decay (Table I: 1e-3).
	FinetuneWeightDecay float64
	// UnfreezeAfterPerSample delays unfreezing f by this many epochs per
	// available data sample ("after a number of epochs dependent on the
	// amount of data samples", §IV-A).
	UnfreezeAfterPerSample int

	// Activation names the hidden activation ("selu" per the paper;
	// "relu" for the ablation bench).
	Activation string
	// Init selects the weight initialization scheme.
	Init nn.InitScheme
	// Seed drives all weight initialization and batch shuffling.
	Seed int64
}

// DefaultConfig returns the paper's model configuration (Table I with the
// middle of each searched hyperparameter range; the hyperopt package
// searches the full space).
func DefaultConfig() Config {
	return Config{
		PropertySize:    40,
		EncodingDim:     4,
		EncoderHidden:   8,
		ScaleOutHidden:  16,
		ScaleOutDim:     8,
		PredictorHidden: 8,
		NumEssential:    4,
		NumOptional:     3,

		Dropout:        0.10,
		LearningRate:   1e-2,
		WeightDecay:    1e-3,
		BatchSize:      64,
		PretrainEpochs: 2500,
		HuberDelta:     1,
		ReconWeight:    1,
		GradClipNorm:   5,

		FinetuneEpochs:         2500,
		FinetunePatience:       1000,
		FinetuneTargetMAE:      5,
		FinetuneLRLow:          1e-3,
		FinetuneLRHigh:         1e-2,
		FinetuneWeightDecay:    1e-3,
		UnfreezeAfterPerSample: 50,

		Activation: "selu",
		Init:       nn.InitLeCun,
		Seed:       1,
	}
}

// Validate reports the first configuration error found.
func (c Config) Validate() error {
	switch {
	case c.PropertySize < 2:
		return fmt.Errorf("core: PropertySize %d < 2", c.PropertySize)
	case c.EncodingDim <= 0:
		return fmt.Errorf("core: EncodingDim %d <= 0", c.EncodingDim)
	case c.EncodingDim >= c.PropertySize:
		return fmt.Errorf("core: EncodingDim %d must be << PropertySize %d", c.EncodingDim, c.PropertySize)
	case c.ScaleOutDim <= 0:
		return fmt.Errorf("core: ScaleOutDim %d <= 0", c.ScaleOutDim)
	case c.NumEssential <= 0:
		return fmt.Errorf("core: NumEssential %d <= 0", c.NumEssential)
	case c.NumOptional < 0:
		return fmt.Errorf("core: NumOptional %d < 0", c.NumOptional)
	case c.BatchSize <= 0:
		return fmt.Errorf("core: BatchSize %d <= 0", c.BatchSize)
	case c.Dropout < 0 || c.Dropout >= 1:
		return fmt.Errorf("core: Dropout %v outside [0,1)", c.Dropout)
	case c.LearningRate <= 0:
		return fmt.Errorf("core: LearningRate %v <= 0", c.LearningRate)
	}
	return nil
}

// CombinedDim is the input width of z: F + (m+1)*M (paper Eq. 5).
func (c Config) CombinedDim() int {
	return c.ScaleOutDim + (c.NumEssential+1)*c.EncodingDim
}
