package core

import (
	"bytes"
	"testing"

	"repro/internal/nn"
)

// forceNegativeOutput rigs the model so every forward pass denormalizes
// to a negative runtime: all weights zeroed, the predictor's output bias
// set below zero. This is exactly what an extreme-scale-out query can do
// to a trained network, made deterministic.
func forceNegativeOutput(t *testing.T, m *Model) {
	t.Helper()
	var bias *nn.Param
	for _, p := range m.Params() {
		p.Value.Zero()
		if p.Name == "z.l2.b" {
			bias = p
		}
	}
	if bias == nil {
		t.Fatal("predictor output bias z.l2.b not found")
	}
	bias.Value.Set(0, 0, -2)
}

// TestPredictClampsNegativeRuntimes pins the denormalization floor: the
// network can emit negative scaled outputs, but Predict and
// PredictBatch must never report a negative runtime in seconds.
func TestPredictClampsNegativeRuntimes(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	forceNegativeOutput(t, m)

	s := syntheticSamples(1, []int{2})[0]
	got, err := m.Predict(64, s.Essential, s.Optional)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if got != 0 {
		t.Fatalf("Predict = %v for a forced-negative network, want clamped 0", got)
	}

	queries := make([]Query, 4)
	for i := range queries {
		queries[i] = Query{ScaleOut: 2 + 30*i, Essential: s.Essential, Optional: s.Optional}
	}
	preds, err := m.PredictBatch(queries)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	for i, v := range preds {
		if v != 0 {
			t.Fatalf("PredictBatch[%d] = %v, want clamped 0", i, v)
		}
	}
}

// TestTrainedPredictionsNonNegative sweeps a trained model far outside
// its training range: whatever the network extrapolates to, the
// prediction boundary must keep it non-negative.
func TestTrainedPredictionsNonNegative(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainEpochs = 25
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Pretrain(syntheticSamples(2, []int{2, 4, 6, 8})); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	s := syntheticSamples(1, []int{2})[0]
	for x := 1; x <= 512; x *= 2 {
		v, err := m.Predict(x, s.Essential, s.Optional)
		if err != nil {
			t.Fatalf("Predict(%d): %v", x, err)
		}
		if v < 0 {
			t.Fatalf("Predict(%d) = %v, want >= 0", x, v)
		}
	}
}

// TestFinetuneSamplesTracked pins the support provenance the allocation
// fallback relies on: fresh and loaded models report zero, Finetune
// records its sample count, Clone carries it over.
func TestFinetuneSamplesTracked(t *testing.T) {
	cfg := testConfig()
	cfg.PretrainEpochs = 15
	cfg.FinetuneEpochs = 10
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := m.FinetuneSamples(); got != 0 {
		t.Fatalf("fresh model FinetuneSamples = %d, want 0", got)
	}
	if _, err := m.Pretrain(syntheticSamples(2, []int{2, 4, 6, 8})); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	samples := syntheticSamples(1, []int{2, 4, 6})
	if _, err := m.Finetune(samples, FinetuneOptions{Strategy: StrategyPartialUnfreeze}); err != nil {
		t.Fatalf("Finetune: %v", err)
	}
	if got := m.FinetuneSamples(); got != len(samples) {
		t.Fatalf("FinetuneSamples = %d, want %d", got, len(samples))
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	if got := c.FinetuneSamples(); got != len(samples) {
		t.Fatalf("clone FinetuneSamples = %d, want %d", got, len(samples))
	}
	// The support survives serialization: a model fine-tuned offline
	// keeps its sample count when served from disk.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := loaded.FinetuneSamples(); got != len(samples) {
		t.Fatalf("loaded FinetuneSamples = %d, want %d", got, len(samples))
	}
}
