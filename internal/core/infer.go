package core

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/nn"
)

// InferModel is the float32 serving form of a trained Model: the same
// f/g/z forward pass (the decoder h is training-only) with weights
// quantized to float32 and inference running through the f32 kernels.
// Feature encoding and normalization stay float64 — they are exact
// table/affine operations — and only the network arithmetic drops to
// single precision, so quantized predictions track the float64 model to
// ~1e-4 relative (pinned by TestQuantizedPredictionAccuracy).
//
// Like Model, an InferModel owns its workspace and batch buffers: warm
// PredictBatchInto allocates nothing, and the model is not safe for
// concurrent use (internal/serve serializes access).
type InferModel struct {
	cfg Config

	f *nn.InferMLP32 // scale-out modeling
	g *nn.InferMLP32 // property encoder
	z *nn.InferMLP32 // runtime predictor

	norm   *MinMaxNormalizer
	target *TargetScaler
	// enc is the InferModel's own encoder (the memo map mutates on
	// lookup, so sharing the training model's encoder would couple
	// their thread-safety).
	enc *encoding.PropertyEncoder

	ws        *mat.WorkspaceF32
	scaleFeat *mat.DenseF32 // B x 3
	propVecs  *mat.DenseF32 // (B*P) x N
	numOpt    []int
	// soFeat memoizes the normalized float32 scale-out feature row per
	// scale-out value (they repeat heavily within a batch, and each
	// computation involves a log). Valid for the model's lifetime: the
	// normalizer is a quantization-time snapshot.
	soFeat [soMemoCap][3]float32
	soSet  [soMemoCap]bool
	// encRow stages float64 encoder/normalizer output before the f32
	// convert; len = max(3, PropertySize).
	encRow []float64

	scratchQuery [1]Query
	scratchPred  [1]float64

	pretrained      bool
	finetuneSamples int
}

// soMemoCap bounds the memoized scale-out feature rows (cluster sizes
// past it — unrealistic for the paper's setting — just recompute).
const soMemoCap = 1024

// Quantize snapshots the model into its float32 serving form. The
// returned InferModel is independent of m: later training on m does not
// affect it.
func (m *Model) Quantize() (*InferModel, error) {
	f, err := nn.QuantizeMLP(m.f)
	if err != nil {
		return nil, fmt.Errorf("core: quantize f: %w", err)
	}
	g, err := nn.QuantizeMLP(m.g)
	if err != nil {
		return nil, fmt.Errorf("core: quantize g: %w", err)
	}
	z, err := nn.QuantizeMLP(m.z)
	if err != nil {
		return nil, fmt.Errorf("core: quantize z: %w", err)
	}
	norm := *m.norm
	target := *m.target
	n := m.Cfg.PropertySize
	if n < 3 {
		n = 3
	}
	return &InferModel{
		cfg:             m.Cfg,
		f:               f,
		g:               g,
		z:               z,
		norm:            &norm,
		target:          &target,
		enc:             encoding.NewPropertyEncoder(m.Cfg.PropertySize),
		ws:              mat.NewWorkspaceF32(),
		encRow:          make([]float64, n),
		pretrained:      m.pretrained,
		finetuneSamples: m.finetuneSamples,
	}, nil
}

// ValidateQuery checks a query against the model's expected property
// counts without running inference.
func (im *InferModel) ValidateQuery(q Query) error { return validateQuery(im.cfg, q) }

// Pretrained reports whether the source model went through Pretrain.
func (im *InferModel) Pretrained() bool { return im.pretrained }

// FinetuneSamples reports the fine-tuning sample count of the source
// model at quantization time.
func (im *InferModel) FinetuneSamples() int { return im.finetuneSamples }

// Predict estimates the runtime in seconds for a single query.
func (im *InferModel) Predict(scaleOut int, essential, optional []encoding.Property) (float64, error) {
	im.scratchQuery[0] = Query{ScaleOut: scaleOut, Essential: essential, Optional: optional}
	err := im.PredictBatchInto(im.scratchPred[:], im.scratchQuery[:])
	im.scratchQuery[0] = Query{} // don't pin the caller's property slices
	if err != nil {
		return 0, err
	}
	return im.scratchPred[0], nil
}

// PredictBatchInto estimates runtimes for queries into dst, one float32
// forward pass for the whole batch. Warm calls of an already-seen batch
// size allocate nothing.
func (im *InferModel) PredictBatchInto(dst []float64, queries []Query) error {
	if len(queries) == 0 {
		return nil
	}
	if len(dst) != len(queries) {
		return fmt.Errorf("core: dst len %d != queries len %d", len(dst), len(queries))
	}
	cfg := im.cfg
	bSize := len(queries)
	propsPer := cfg.NumEssential + cfg.NumOptional
	im.scaleFeat = mat.Resized32(im.scaleFeat, bSize, 3)
	im.propVecs = mat.Resized32(im.propVecs, bSize*propsPer, cfg.PropertySize)
	if cap(im.numOpt) < bSize {
		im.numOpt = make([]int, bSize)
	}
	im.numOpt = im.numOpt[:bSize]

	// Encode in float64 (exact), convert rows to float32.
	for i := range queries {
		q := &queries[i]
		if err := validateQuery(cfg, *q); err != nil {
			return fmt.Errorf("core: query %d: %w", i, err)
		}
		if so := q.ScaleOut; so < soMemoCap {
			if !im.soSet[so] {
				feat := im.encRow[:3]
				ScaleOutFeaturesInto(feat, so)
				im.norm.TransformInPlace(feat)
				rowToF32(im.soFeat[so][:], feat)
				im.soSet[so] = true
			}
			copy(im.scaleFeat.Row(i), im.soFeat[so][:])
		} else {
			feat := im.encRow[:3]
			ScaleOutFeaturesInto(feat, q.ScaleOut)
			im.norm.TransformInPlace(feat)
			rowToF32(im.scaleFeat.Row(i), feat)
		}
		enc := im.encRow[:cfg.PropertySize]
		for k, p := range q.Essential {
			im.enc.EncodeTo(enc, p.Value)
			rowToF32(im.propVecs.Row(i*propsPer+k), enc)
		}
		im.numOpt[i] = len(q.Optional)
		for k, p := range q.Optional {
			im.enc.EncodeTo(enc, p.Value)
			rowToF32(im.propVecs.Row(i*propsPer+cfg.NumEssential+k), enc)
		}
		for k := len(q.Optional); k < cfg.NumOptional; k++ {
			clear(im.propVecs.Row(i*propsPer + cfg.NumEssential + k))
		}
	}

	// The f64 forward pass of Model.forward, minus training branches.
	im.ws.Reset()
	e := im.f.Forward(im.ws, im.scaleFeat)
	codes := im.g.Forward(im.ws, im.propVecs)
	r := im.ws.GetRaw(bSize, cfg.CombinedDim())
	for i := 0; i < bSize; i++ {
		row := r.Row(i)
		copy(row[:cfg.ScaleOutDim], e.Row(i))
		off := cfg.ScaleOutDim
		for k := 0; k < cfg.NumEssential; k++ {
			copy(row[off:off+cfg.EncodingDim], codes.Row(i*propsPer+k))
			off += cfg.EncodingDim
		}
		opt := row[off : off+cfg.EncodingDim]
		clear(opt) // GetRaw contents are unspecified
		if nOpt := im.numOpt[i]; nOpt > 0 {
			inv := 1 / float32(nOpt)
			for k := 0; k < nOpt; k++ {
				code := codes.Row(i*propsPer + cfg.NumEssential + k)
				for j := range opt {
					opt[j] += code[j] * inv
				}
			}
		}
	}
	pred := im.z.Forward(im.ws, r)
	for i := range dst {
		v := im.target.ToSeconds(float64(pred.Data[i]))
		// Same prediction boundary as the f64 path: negative runtimes
		// are meaningless, floor at zero.
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return nil
}

// rowToF32 narrows a staged float64 row into its float32 batch row.
func rowToF32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}
