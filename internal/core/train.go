package core

import (
	"fmt"
	"time"

	"repro/internal/mat"
	"repro/internal/nn"
)

// TrainReport summarizes a training run.
type TrainReport struct {
	// Epochs is the number of epochs actually executed.
	Epochs int
	// BestMAE is the best runtime MAE in seconds seen during training.
	BestMAE float64
	// BestEpoch is the epoch at which BestMAE occurred.
	BestEpoch int
	// FinalRuntimeLoss and FinalReconLoss are the last epoch's mean
	// losses (scaled space).
	FinalRuntimeLoss float64
	FinalReconLoss   float64
	// Duration is the wall-clock training time.
	Duration time.Duration
}

// Pretrain trains the full architecture jointly on a cross-context corpus
// (paper step 1): Huber runtime loss plus MSE reconstruction loss, Adam
// with weight decay, alpha-dropout active. Feature normalization bounds
// and the target scale are determined here and reused for all later
// fine-tuning and inference.
func (m *Model) Pretrain(samples []Sample) (*TrainReport, error) {
	if err := validateSamples(m.Cfg, samples); err != nil {
		return nil, err
	}
	start := time.Now()

	// Determine normalization bounds from the corpus (§IV-A).
	feats := make([][]float64, len(samples))
	runtimes := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = ScaleOutFeatures(s.ScaleOut)
		runtimes[i] = s.RuntimeSec
	}
	m.norm = FitMinMax(feats)
	m.target = FitTargetScaler(runtimes)

	params := m.Params()
	nn.Freeze(params, false)
	opt := nn.NewAdam(m.Cfg.LearningRate, m.Cfg.WeightDecay)
	huber := nn.HuberLoss{Delta: m.Cfg.HuberDelta}
	mse := nn.MSELoss{}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	best := nn.NewEarlyStopper(0, 0) // track best only; no early stop in pre-training
	var bestState nn.State
	report := &TrainReport{}

	for epoch := 0; epoch < m.Cfg.PretrainEpochs; epoch++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochRuntime, epochRecon float64
		var batches int
		for lo := 0; lo < len(idx); lo += m.Cfg.BatchSize {
			hi := lo + m.Cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			sub := make([]Sample, 0, hi-lo)
			for _, j := range idx[lo:hi] {
				sub = append(sub, samples[j])
			}
			b := m.buildBatch(sub)
			doRecon := m.Cfg.ReconWeight > 0
			st := m.forward(b, true, doRecon)

			nn.ZeroGrads(params)
			rLoss, rGrad := huber.Compute(st.pred, b.targets)
			var reconLoss float64
			var reconGrad *mat.Dense
			if doRecon {
				reconLoss, reconGrad = mse.Compute(st.recon, b.propVecs)
				if m.Cfg.ReconWeight != 1 {
					reconGrad = mat.Scale(m.Cfg.ReconWeight, reconGrad)
				}
			}
			m.backward(st, rGrad, reconGrad)
			nn.GradClip(params, m.Cfg.GradClipNorm)
			opt.Step(params)

			epochRuntime += rLoss
			epochRecon += reconLoss
			batches++
		}
		report.FinalRuntimeLoss = epochRuntime / float64(batches)
		report.FinalReconLoss = epochRecon / float64(batches)
		report.Epochs = epoch + 1

		// Track the best state by full-corpus MAE in seconds.
		mae := m.evalMAE(samples)
		if improved, _ := best.Observe(epoch, mae); improved {
			bestState = nn.CaptureState(params)
		}
	}
	if bestState != nil {
		if err := nn.RestoreState(params, bestState); err != nil {
			return nil, fmt.Errorf("core: restoring best pre-training state: %w", err)
		}
	}
	report.BestMAE, report.BestEpoch = best.Best()
	report.Duration = time.Since(start)
	m.pretrained = true
	return report, nil
}

// evalMAE computes the runtime MAE in seconds over samples with the model
// in eval mode.
func (m *Model) evalMAE(samples []Sample) float64 {
	b := m.buildBatch(samples)
	st := m.forward(b, false, false)
	var sum float64
	for i, r := range b.runtimes {
		pred := m.target.ToSeconds(st.pred.At(i, 0))
		if pred > r {
			sum += pred - r
		} else {
			sum += r - pred
		}
	}
	return sum / float64(len(samples))
}
