package core

import (
	"fmt"
	"time"

	"repro/internal/mat"
	"repro/internal/nn"
)

// TrainReport summarizes a training run.
type TrainReport struct {
	// Epochs is the number of epochs actually executed.
	Epochs int
	// BestMAE is the best runtime MAE in seconds seen during training.
	BestMAE float64
	// BestEpoch is the epoch at which BestMAE occurred.
	BestEpoch int
	// FinalRuntimeLoss and FinalReconLoss are the last epoch's mean
	// losses (scaled space).
	FinalRuntimeLoss float64
	FinalReconLoss   float64
	// Duration is the wall-clock training time.
	Duration time.Duration
}

// Pretrain trains the full architecture jointly on a cross-context corpus
// (paper step 1): Huber runtime loss plus MSE reconstruction loss, Adam
// with weight decay, alpha-dropout active. Feature normalization bounds
// and the target scale are determined here and reused for all later
// fine-tuning and inference.
//
// The epoch loop is allocation-free in steady state: mini-batches are
// sliced from the shuffled index without copying samples, the
// full-corpus evaluation batch is built once before the loop, and every
// forward/backward intermediate comes from the model workspace.
func (m *Model) Pretrain(samples []Sample) (*TrainReport, error) {
	if err := validateSamples(m.Cfg, samples); err != nil {
		return nil, err
	}
	start := time.Now()

	// Determine normalization bounds from the corpus (§IV-A).
	feats := make([][]float64, len(samples))
	runtimes := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = ScaleOutFeatures(s.ScaleOut)
		runtimes[i] = s.RuntimeSec
	}
	m.norm = FitMinMax(feats)
	m.target = FitTargetScaler(runtimes)

	params := m.Params()
	nn.Freeze(params, false)
	// Establish the fused-step invariant (gradients zero before the
	// first backward pass), whatever ran on this model before.
	nn.ZeroGrads(params)
	opt := nn.NewAdam(m.Cfg.LearningRate, m.Cfg.WeightDecay)
	huber := nn.HuberLoss{Delta: m.Cfg.HuberDelta}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	// The evaluation batch depends only on samples and the (now fixed)
	// scalers; build it once instead of per epoch.
	m.fillBatch(&m.evalB, samples, nil)

	best := nn.NewEarlyStopper(0, 0) // track best only; no early stop in pre-training
	var bestState nn.State
	report := &TrainReport{}
	doRecon := m.Cfg.ReconWeight > 0

	for epoch := 0; epoch < m.Cfg.PretrainEpochs; epoch++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochRuntime, epochRecon float64
		var batches int
		for lo := 0; lo < len(idx); lo += m.Cfg.BatchSize {
			hi := lo + m.Cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			m.fillBatch(&m.trainB, samples, idx[lo:hi])
			rLoss, reconLoss := m.trainStep(&m.trainB, params, opt, huber, doRecon)
			epochRuntime += rLoss
			epochRecon += reconLoss
			batches++
		}
		report.FinalRuntimeLoss = epochRuntime / float64(batches)
		report.FinalReconLoss = epochRecon / float64(batches)
		report.Epochs = epoch + 1

		// Track the best state by full-corpus MAE in seconds.
		mae := m.evalMAEBatch(&m.evalB)
		if improved, _ := best.Observe(epoch, mae); improved {
			bestState = nn.CaptureStateInto(bestState, params)
		}
	}
	if bestState != nil {
		if err := nn.RestoreState(params, bestState); err != nil {
			return nil, fmt.Errorf("core: restoring best pre-training state: %w", err)
		}
	}
	report.BestMAE, report.BestEpoch = best.Best()
	report.Duration = time.Since(start)
	m.pretrained = true
	return report, nil
}

// trainStep runs one optimization step on an already-filled batch:
// forward, joint loss, backward, gradient clip, optimizer step. It is
// the zero-allocation hot path of training (pinned by
// TestTrainStepZeroAlloc).
//
// With a fused optimizer (Adam), clipping, the update, and gradient
// zeroing collapse into StepClipZero's single sweep; gradients are
// then already zero when the next step's backward pass accumulates.
// Unfused optimizers take the classic ZeroGrads/GradClip/Step path.
func (m *Model) trainStep(b *batch, params []*nn.Param, opt nn.Optimizer, huber nn.HuberLoss, doRecon bool) (rLoss, reconLoss float64) {
	st := m.forward(b, true, doRecon)

	fused, isFused := opt.(nn.FusedStepper)
	if !isFused {
		nn.ZeroGrads(params)
	}
	rLoss, rGrad := huber.Compute(m.ws, st.pred, b.targets)
	var reconGrad *mat.Dense
	if doRecon {
		reconLoss, reconGrad = nn.MSELoss{}.Compute(m.ws, st.recon, b.propVecs)
		if m.Cfg.ReconWeight != 1 {
			mat.ScaleTo(reconGrad, m.Cfg.ReconWeight, reconGrad)
		}
	}
	m.backward(st, rGrad, reconGrad)
	if isFused {
		fused.StepClipZero(params, m.Cfg.GradClipNorm)
	} else {
		nn.GradClip(params, m.Cfg.GradClipNorm)
		opt.Step(params)
	}
	return rLoss, reconLoss
}

// evalMAE computes the runtime MAE in seconds over samples with the model
// in eval mode.
func (m *Model) evalMAE(samples []Sample) float64 {
	m.fillBatch(&m.evalB, samples, nil)
	return m.evalMAEBatch(&m.evalB)
}

// evalMAEBatch computes the runtime MAE in seconds over an
// already-filled batch.
func (m *Model) evalMAEBatch(b *batch) float64 {
	st := m.forward(b, false, false)
	var sum float64
	for i, r := range b.runtimes {
		pred := m.target.ToSeconds(st.pred.At(i, 0))
		if pred > r {
			sum += pred - r
		} else {
			sum += r - pred
		}
	}
	return sum / float64(len(b.runtimes))
}
