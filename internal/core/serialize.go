package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
)

// modelBlob is the gob wire format for a saved Bellamy model. Fields
// added over time decode as their zero value from older blobs (gob
// skips absent fields), so old model files stay loadable.
type modelBlob struct {
	Cfg             Config
	State           nn.State
	NormMin         []float64
	NormMax         []float64
	NormFitted      bool
	Scale           float64
	Pretrained      bool
	FinetuneSamples int
}

// Save writes the model to w (config, weights, normalization bounds,
// target scale). The paper's workflow depends on this: pre-trained models
// are preserved and later loaded for fine-tuning.
func (m *Model) Save(w io.Writer) error {
	blob := modelBlob{
		Cfg:             m.Cfg,
		State:           nn.CaptureState(m.Params()),
		NormMin:         m.norm.Min,
		NormMax:         m.norm.Max,
		NormFitted:      m.norm.Fitted(),
		Scale:           m.target.Scale,
		Pretrained:      m.pretrained,
		FinetuneSamples: m.finetuneSamples,
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var blob modelBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	m, err := New(blob.Cfg)
	if err != nil {
		return nil, err
	}
	if err := nn.RestoreState(m.Params(), blob.State); err != nil {
		return nil, err
	}
	m.norm = &MinMaxNormalizer{Min: blob.NormMin, Max: blob.NormMax}
	if blob.NormFitted {
		m.norm.fitted = true
	}
	m.target = &TargetScaler{Scale: blob.Scale}
	m.pretrained = blob.Pretrained
	m.finetuneSamples = blob.FinetuneSamples
	return m, nil
}

// SaveFile writes the model to a file path.
func (m *Model) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: writing model file: %w", err)
	}
	return nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading model file: %w", err)
	}
	return Load(bytes.NewReader(b))
}

// Clone deep-copies the model (weights, normalization, scaler) so that a
// pre-trained model can be fine-tuned repeatedly from the same starting
// point — the evaluation's sub-sampling cross-validation and the online
// fine-tuning of the serving lifecycle both depend on it. The copy is
// direct (no serialization round-trip) and deliberately shallow where
// state is transient: the clone gets a fresh, empty workspace and empty
// batch buffers, so cloning a model that has served large batches does
// not duplicate its scratch arena.
func (m *Model) Clone() (*Model, error) {
	c, err := New(m.Cfg)
	if err != nil {
		return nil, err
	}
	src, dst := m.Params(), c.Params()
	for i, p := range src {
		copy(dst[i].Value.Data, p.Value.Data)
	}
	c.norm = &MinMaxNormalizer{
		Min:    append([]float64(nil), m.norm.Min...),
		Max:    append([]float64(nil), m.norm.Max...),
		fitted: m.norm.fitted,
	}
	c.target = &TargetScaler{Scale: m.target.Scale}
	c.pretrained = m.pretrained
	c.finetuneSamples = m.finetuneSamples
	return c, nil
}
