package core

import (
	"testing"
)

// benchConfig is the fixed benchmark configuration: small enough to run
// quickly, large enough that the per-epoch batch/encode/matmul work
// dominates over setup.
func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 20
	cfg.BatchSize = 16
	return cfg
}

// BenchmarkPretrain measures a full (shortened) pre-training run through
// the public API: batch construction, forward/backward, Adam steps, and
// the per-epoch full-corpus evaluation. This is the training-side number
// tracked in BENCH_train.json.
func BenchmarkPretrain(b *testing.B) {
	cfg := benchConfig()
	samples := syntheticSamples(4, []int{2, 4, 6, 8, 10, 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Pretrain(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep measures one optimization step over one full-corpus
// batch (a single-epoch, single-batch pre-training run), isolating the
// per-step cost of the compute engine.
func BenchmarkTrainStep(b *testing.B) {
	cfg := benchConfig()
	samples := syntheticSamples(4, []int{2, 4, 6, 8, 10, 12})
	cfg.PretrainEpochs = 1
	cfg.BatchSize = len(samples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Pretrain(samples); err != nil {
			b.Fatal(err)
		}
	}
}
