package core

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/nn"
)

// testConfig returns a config with drastically reduced epoch counts so
// the suite stays fast while exercising the full code paths.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 60
	cfg.FinetuneEpochs = 250
	cfg.FinetunePatience = 100
	cfg.UnfreezeAfterPerSample = 10
	return cfg
}

// syntheticSamples builds samples from an Ernest-style ground truth with
// two distinct contexts that scale the curve differently.
func syntheticSamples(contexts int, scaleOuts []int) []Sample {
	var out []Sample
	for c := 0; c < contexts; c++ {
		factor := 1 + 0.5*float64(c)
		node := []string{"m4.xlarge", "r4.2xlarge", "c4.2xlarge"}[c%3]
		size := 10000 + c*4000
		for _, x := range scaleOuts {
			fx := float64(x)
			runtime := factor * (30 + 400/fx + 10*math.Log(fx) + 1.2*fx)
			out = append(out, Sample{
				ScaleOut: x,
				Essential: []encoding.Property{
					{Name: "dataset_size_mb", Value: strconv.Itoa(size)},
					{Name: "dataset_characteristics", Value: "uniform"},
					{Name: "job_parameters", Value: "--iterations 100"},
					{Name: "node_type", Value: node},
				},
				Optional: []encoding.Property{
					{Name: "memory_mb", Value: "16384", Optional: true},
					{Name: "cpu_cores", Value: "4", Optional: true},
					{Name: "job_name", Value: "sgd", Optional: true},
				},
				RuntimeSec: runtime,
			})
		}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.EncodingDim = 50
	if err := bad.Validate(); err == nil {
		t.Fatal("EncodingDim >= PropertySize not rejected")
	}
	bad = DefaultConfig()
	bad.NumEssential = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero essential properties not rejected")
	}
	bad = DefaultConfig()
	bad.Dropout = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("dropout out of range not rejected")
	}
}

func TestCombinedDim(t *testing.T) {
	cfg := DefaultConfig()
	// F + (m+1)*M = 8 + 5*4 = 28.
	if got := cfg.CombinedDim(); got != 28 {
		t.Fatalf("CombinedDim = %d, want 28", got)
	}
}

func TestNewModelParamCounts(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// f: 3x16+16 + 16x8+8, g: 40x8 + 8x4 (no bias), h: 4x8 + 8x40,
	// z: 28x8+8 + 8x1+1.
	want := (3*16 + 16 + 16*8 + 8) + (40*8 + 8*4) + (4*8 + 8*40) + (28*8 + 8 + 8 + 1)
	if got := nn.CountParams(m.Params()); got != want {
		t.Fatalf("param count = %d, want %d", got, want)
	}
}

func TestScaleOutFeatures(t *testing.T) {
	f := ScaleOutFeatures(4)
	if math.Abs(f[0]-0.25) > 1e-12 || math.Abs(f[1]-math.Log(4)) > 1e-12 || f[2] != 4 {
		t.Fatalf("ScaleOutFeatures(4) = %v", f)
	}
}

func TestMinMaxNormalizer(t *testing.T) {
	n := FitMinMax([][]float64{{1, 10}, {3, 20}, {2, 15}})
	got := n.Transform([]float64{2, 15})
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Fatalf("Transform = %v, want [0.5 0.5]", got)
	}
	// Out-of-range extrapolates beyond (0,1).
	got = n.Transform([]float64{5, 10})
	if got[0] <= 1 {
		t.Fatalf("extrapolation failed: %v", got)
	}
	// Constant feature maps to 0.5.
	n2 := FitMinMax([][]float64{{7}, {7}})
	if got := n2.Transform([]float64{7}); got[0] != 0.5 {
		t.Fatalf("constant feature -> %v, want 0.5", got[0])
	}
}

func TestTargetScaler(t *testing.T) {
	s := FitTargetScaler([]float64{100, 200, 300})
	if s.Scale != 200 {
		t.Fatalf("Scale = %v, want 200", s.Scale)
	}
	if got := s.ToSeconds(s.ToScaled(150)); math.Abs(got-150) > 1e-12 {
		t.Fatalf("round trip = %v, want 150", got)
	}
	if FitTargetScaler(nil).Scale != 1 {
		t.Fatal("empty scaler should default to 1")
	}
}

func TestPretrainReducesError(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(3, []int{2, 4, 6, 8, 10, 12})
	before := m.evalMAEForTest(samples)
	rep, err := m.Pretrain(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pretrained() {
		t.Fatal("Pretrained() false after Pretrain")
	}
	if rep.BestMAE >= before {
		t.Fatalf("pre-training did not improve MAE: before=%v best=%v", before, rep.BestMAE)
	}
	if rep.Epochs != cfg.PretrainEpochs {
		t.Fatalf("epochs = %d, want %d", rep.Epochs, cfg.PretrainEpochs)
	}
}

// evalMAEForTest exposes evalMAE after establishing normalization (which
// Pretrain normally does); used to compare before/after.
func (m *Model) evalMAEForTest(samples []Sample) float64 {
	feats := make([][]float64, len(samples))
	runtimes := make([]float64, len(samples))
	for i, s := range samples {
		feats[i] = ScaleOutFeatures(s.ScaleOut)
		runtimes[i] = s.RuntimeSec
	}
	m.norm = FitMinMax(feats)
	m.target = FitTargetScaler(runtimes)
	return m.evalMAE(samples)
}

func TestPretrainRejectsBadSamples(t *testing.T) {
	m, _ := New(testConfig())
	if _, err := m.Pretrain(nil); err == nil {
		t.Fatal("empty corpus not rejected")
	}
	bad := syntheticSamples(1, []int{2})
	bad[0].ScaleOut = -1
	if _, err := m.Pretrain(bad); err == nil {
		t.Fatal("negative scale-out not rejected")
	}
	bad = syntheticSamples(1, []int{2})
	bad[0].Essential = bad[0].Essential[:2]
	if _, err := m.Pretrain(bad); err == nil {
		t.Fatal("wrong essential count not rejected")
	}
	bad = syntheticSamples(1, []int{2})
	bad[0].RuntimeSec = 0
	if _, err := m.Pretrain(bad); err == nil {
		t.Fatal("zero runtime not rejected")
	}
}

func TestFinetuneLocalFitsContext(t *testing.T) {
	cfg := testConfig()
	cfg.FinetuneEpochs = 800
	cfg.FinetunePatience = 400
	samples := syntheticSamples(1, []int{2, 4, 6, 8, 10, 12})
	m, rep, err := FitLocal(cfg, samples, FinetuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs == 0 {
		t.Fatal("no epochs executed")
	}
	// The fitted model should track the training curve reasonably.
	mre := 0.0
	for _, s := range samples {
		pred, err := m.Predict(s.ScaleOut, s.Essential, s.Optional)
		if err != nil {
			t.Fatal(err)
		}
		mre += math.Abs(pred-s.RuntimeSec) / s.RuntimeSec
	}
	mre /= float64(len(samples))
	if mre > 0.2 {
		t.Fatalf("local fit MRE = %v, want < 0.2", mre)
	}
}

func TestFinetuneAutoEncoderFrozen(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	gBefore := nn.CaptureState(m.componentParams("g"))
	hBefore := nn.CaptureState(m.componentParams("h"))
	ctxSamples := syntheticSamples(1, []int{4, 8})
	if _, err := m.Finetune(ctxSamples, FinetuneOptions{Strategy: StrategyPartialUnfreeze, MaxEpochs: 50}); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.componentParams("g") {
		if !p.Value.Equalish(gBefore[p.Name], 0) {
			t.Fatalf("encoder param %s changed during fine-tuning", p.Name)
		}
	}
	for _, p := range m.componentParams("h") {
		if !p.Value.Equalish(hBefore[p.Name], 0) {
			t.Fatalf("decoder param %s changed during fine-tuning", p.Name)
		}
	}
}

func TestFinetunePartialUnfreezeDelaysF(t *testing.T) {
	cfg := testConfig()
	cfg.UnfreezeAfterPerSample = 1000 // never reached within MaxEpochs
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	fBefore := nn.CaptureState(m.componentParams("f"))
	if _, err := m.Finetune(samples[:4], FinetuneOptions{Strategy: StrategyPartialUnfreeze, MaxEpochs: 30}); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.componentParams("f") {
		if !p.Value.Equalish(fBefore[p.Name], 0) {
			t.Fatalf("f param %s changed before unfreeze epoch", p.Name)
		}
	}
}

func TestFinetuneFullUnfreezeMovesF(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	fBefore := nn.CaptureState(m.componentParams("f"))
	if _, err := m.Finetune(samples[:4], FinetuneOptions{Strategy: StrategyFullUnfreeze, MaxEpochs: 60, Patience: 60}); err != nil {
		t.Fatal(err)
	}
	moved := false
	for _, p := range m.componentParams("f") {
		if !p.Value.Equalish(fBefore[p.Name], 1e-12) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("full-unfreeze did not move f")
	}
}

func TestFinetuneResetStrategies(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	zBefore := nn.CaptureState(m.componentParams("z"))
	clone, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Partial reset must re-initialize z (weights differ immediately).
	clone.applyStrategy(StrategyPartialReset, 4)
	changed := false
	for _, p := range clone.componentParams("z") {
		if p.Value.Rows > 1 && !p.Value.Equalish(zBefore[p.Name], 1e-12) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("partial-reset did not re-initialize z")
	}
	// Full reset additionally re-initializes f.
	clone2, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	fBefore := nn.CaptureState(clone2.componentParams("f"))
	clone2.applyStrategy(StrategyFullReset, 4)
	changed = false
	for _, p := range clone2.componentParams("f") {
		if p.Value.Rows > 1 && !p.Value.Equalish(fBefore[p.Name], 1e-12) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("full-reset did not re-initialize f")
	}
}

func TestFinetuneEarlyStopOnTarget(t *testing.T) {
	cfg := testConfig()
	cfg.FinetuneTargetMAE = 1e9 // absurdly easy target: stop at epoch 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(1, []int{2, 4, 6})
	rep, err := m.Finetune(samples, FinetuneOptions{Strategy: StrategyLocal})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1 (immediate target hit)", rep.Epochs)
	}
}

func TestPredictValidation(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := syntheticSamples(1, []int{2})[0]
	if _, err := m.Predict(0, s.Essential, s.Optional); err == nil {
		t.Fatal("zero scale-out not rejected")
	}
	if _, err := m.Predict(4, s.Essential[:1], s.Optional); err == nil {
		t.Fatal("wrong essential count not rejected")
	}
	long := append(append([]encoding.Property{}, s.Optional...), s.Optional...)
	if _, err := m.Predict(4, s.Essential, long); err == nil {
		t.Fatal("too many optional properties not rejected")
	}
	if _, err := m.Predict(4, s.Essential, nil); err != nil {
		t.Fatalf("missing optional properties should be allowed: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Pretrained() {
		t.Fatal("pretrained flag lost")
	}
	s := samples[0]
	a, err := m.Predict(s.ScaleOut, s.Essential, s.Optional)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.Predict(s.ScaleOut, s.Essential, s.Optional)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("predictions diverge after round trip: %v vs %v", a, b)
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	for _, p := range c.Params() {
		p.Value.Fill(42)
	}
	for _, p := range m.Params() {
		if p.Value.At(0, 0) == 42 {
			t.Fatal("clone shares storage with original")
		}
	}
}

func TestPropertyCodesShape(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	props := []encoding.Property{
		{Name: "node_type", Value: "m4.2xlarge"},
		{Name: "job_parameters", Value: "--iterations 25"},
		{Name: "dataset_size_mb", Value: "19353"},
	}
	codes := m.PropertyCodes(props)
	if len(codes) != 3 {
		t.Fatalf("codes = %d rows, want 3", len(codes))
	}
	for i, c := range codes {
		if len(c) != m.Cfg.EncodingDim {
			t.Fatalf("code %d has dim %d, want %d", i, len(c), m.Cfg.EncodingDim)
		}
	}
	// Different contexts get different codes (Fig. 4's premise).
	other := m.PropertyCodes([]encoding.Property{
		{Name: "node_type", Value: "r4.2xlarge"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "dataset_size_mb", Value: "14540"},
	})
	identical := true
	for i := range codes {
		for j := range codes[i] {
			if codes[i][j] != other[i][j] {
				identical = false
			}
		}
	}
	if identical {
		t.Fatal("distinct contexts produced identical codes")
	}
}

func TestReconstructionErrorDropsWithPretraining(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(3, []int{2, 4, 6, 8, 10, 12})
	var props []encoding.Property
	for _, s := range samples[:6] {
		props = append(props, s.Essential...)
	}
	before := m.ReconstructionError(props)
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	after := m.ReconstructionError(props)
	if after >= before {
		t.Fatalf("reconstruction error did not improve: before=%v after=%v", before, after)
	}
}

func TestContextPredictorInterface(t *testing.T) {
	var _ baselines.Predictor = (*ContextPredictor)(nil)

	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8, 10, 12})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	cp := NewContextPredictor(m, s.Essential, s.Optional, FinetuneOptions{MaxEpochs: 50, Patience: 50})

	// Zero-shot: a pre-trained model is usable without any points.
	if err := cp.Fit(nil); err != nil {
		t.Fatalf("zero-shot Fit on pre-trained model: %v", err)
	}
	if _, err := cp.Predict(6); err != nil {
		t.Fatal(err)
	}

	// With points it fine-tunes.
	pts := []baselines.Point{{ScaleOut: 2, Runtime: s.RuntimeSec}, {ScaleOut: 8, Runtime: 200}}
	if err := cp.Fit(pts); err != nil {
		t.Fatal(err)
	}
	if cp.Report == nil || cp.Report.Epochs == 0 {
		t.Fatal("fit report missing")
	}
}

func TestContextPredictorUnpretrainedNeedsData(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := syntheticSamples(1, []int{2})[0]
	cp := NewContextPredictor(m, s.Essential, s.Optional, FinetuneOptions{Strategy: StrategyLocal})
	if err := cp.Fit(nil); err != baselines.ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := cp.Predict(4); err != baselines.ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}

func TestSamplesFromExecutions(t *testing.T) {
	ds := dataset.GenerateC3O(dataset.SimConfig{Seed: 1, Repeats: 1})
	execs := ds.ForJob("sgd")[:5]
	samples := SamplesFromExecutions(execs)
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for i, s := range samples {
		if s.ScaleOut != execs[i].ScaleOut || s.RuntimeSec != execs[i].RuntimeSec {
			t.Fatalf("sample %d mismatch", i)
		}
		if len(s.Essential) != 4 || len(s.Optional) != 3 {
			t.Fatalf("sample %d property counts = %d/%d", i, len(s.Essential), len(s.Optional))
		}
	}
}

func TestPretrainedBeatsLocalOnSparseContext(t *testing.T) {
	// The paper's central claim in miniature: with 2 training points in a
	// new context, a model pre-trained on sibling contexts interpolates
	// better than one trained from scratch.
	cfg := testConfig()
	cfg.PretrainEpochs = 150
	corpus := syntheticSamples(4, []int{2, 4, 6, 8, 10, 12})

	// Target context: factor differs from all pre-training contexts.
	target := func(x int) float64 {
		fx := float64(x)
		return 1.25 * (30 + 400/fx + 10*math.Log(fx) + 1.2*fx)
	}
	ess := []encoding.Property{
		{Name: "dataset_size_mb", Value: "15000"},
		{Name: "dataset_characteristics", Value: "skewed"},
		{Name: "job_parameters", Value: "--iterations 50"},
		{Name: "node_type", Value: "m4.2xlarge"},
	}
	var ctxSamples []Sample
	for _, x := range []int{2, 10} {
		ctxSamples = append(ctxSamples, Sample{ScaleOut: x, Essential: ess, RuntimeSec: target(x)})
	}

	pre, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Pretrain(corpus); err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Finetune(ctxSamples, FinetuneOptions{Strategy: StrategyPartialUnfreeze, MaxEpochs: 300, Patience: 150}); err != nil {
		t.Fatal(err)
	}

	local, _, err := FitLocal(cfg, ctxSamples, FinetuneOptions{MaxEpochs: 300, Patience: 150})
	if err != nil {
		t.Fatal(err)
	}

	// Interpolation test at x=6.
	preErr := predictionError(t, pre, ess, 6, target(6))
	localErr := predictionError(t, local, ess, 6, target(6))
	if preErr > localErr*1.5 {
		t.Fatalf("pre-trained interpolation error %v much worse than local %v", preErr, localErr)
	}
}

func predictionError(t *testing.T, m *Model, ess []encoding.Property, x int, want float64) float64 {
	t.Helper()
	got, err := m.Predict(x, ess, nil)
	if err != nil {
		t.Fatal(err)
	}
	return math.Abs(got-want) / want
}

func BenchmarkPretrainEpoch(b *testing.B) {
	cfg := testConfig()
	cfg.PretrainEpochs = 1
	samples := syntheticSamples(4, []int{2, 4, 6, 8, 10, 12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Pretrain(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFinetune6Points(b *testing.B) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8, 10, 12})
	if _, err := m.Pretrain(samples); err != nil {
		b.Fatal(err)
	}
	ctx := samples[:6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := m.Clone()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Finetune(ctx, FinetuneOptions{Strategy: StrategyPartialUnfreeze, MaxEpochs: 100, Patience: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
