package core
