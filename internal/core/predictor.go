package core

import (
	"repro/internal/baselines"
	"repro/internal/encoding"
)

// ContextPredictor binds a Bellamy model to one execution context's
// properties so it satisfies the same Predictor interface as the
// baselines: Fit fine-tunes on the provided scale-out/runtime points and
// Predict estimates runtimes at new scale-outs.
type ContextPredictor struct {
	Model     *Model
	Essential []encoding.Property
	Optional  []encoding.Property
	Opts      FinetuneOptions

	// Report holds the fit report of the last Fit call.
	Report *TrainReport
	fitted bool
}

// NewContextPredictor wraps model for a concrete context.
func NewContextPredictor(model *Model, essential, optional []encoding.Property, opts FinetuneOptions) *ContextPredictor {
	return &ContextPredictor{Model: model, Essential: essential, Optional: optional, Opts: opts}
}

// Fit implements baselines.Predictor by fine-tuning on the points. An
// empty point set is allowed for pre-trained models: the paper applies
// them in new contexts "without any seen data points" (zero-shot
// extrapolation), so Fit(nil) is a no-op.
func (cp *ContextPredictor) Fit(points []baselines.Point) error {
	if len(points) == 0 {
		if cp.Model.Pretrained() {
			cp.fitted = true
			return nil
		}
		return baselines.ErrNoData
	}
	samples := make([]Sample, len(points))
	for i, p := range points {
		samples[i] = Sample{
			ScaleOut:   p.ScaleOut,
			Essential:  cp.Essential,
			Optional:   cp.Optional,
			RuntimeSec: p.Runtime,
		}
	}
	rep, err := cp.Model.Finetune(samples, cp.Opts)
	if err != nil {
		return err
	}
	cp.Report = rep
	cp.fitted = true
	return nil
}

// Predict implements baselines.Predictor.
func (cp *ContextPredictor) Predict(scaleOut int) (float64, error) {
	if !cp.fitted {
		return 0, baselines.ErrNotFitted
	}
	return cp.Model.Predict(scaleOut, cp.Essential, cp.Optional)
}
