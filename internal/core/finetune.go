package core

import (
	"fmt"
	"time"

	"repro/internal/nn"
)

// Strategy selects how a (pre-trained) model is adapted to a concrete
// context, covering both the standard fine-tuning of §IV-C1 and the
// cross-environment reuse strategies of §IV-C2.
type Strategy int

const (
	// StrategyPartialUnfreeze adapts z first and unfreezes f after a
	// sample-count dependent number of epochs — the paper's default
	// fine-tuning procedure.
	StrategyPartialUnfreeze Strategy = iota
	// StrategyFullUnfreeze adapts f and z from the start.
	StrategyFullUnfreeze
	// StrategyPartialReset re-initializes z, then fine-tunes.
	StrategyPartialReset
	// StrategyFullReset re-initializes both f and z, deriving a fresh
	// understanding of the scale-out behaviour.
	StrategyFullReset
	// StrategyLocal trains f and z from scratch on the context data
	// without any pre-training; the auto-encoder stays untrained
	// (its random codes are constant within a single context).
	StrategyLocal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyPartialUnfreeze:
		return "partial-unfreeze"
	case StrategyFullUnfreeze:
		return "full-unfreeze"
	case StrategyPartialReset:
		return "partial-reset"
	case StrategyFullReset:
		return "full-reset"
	case StrategyLocal:
		return "local"
	default:
		return "unknown"
	}
}

// FinetuneOptions tunes the adaptation loop.
type FinetuneOptions struct {
	Strategy Strategy
	// MaxEpochs overrides Config.FinetuneEpochs when positive.
	MaxEpochs int
	// Patience overrides Config.FinetunePatience when positive.
	Patience int
}

// Finetune adapts the model to the samples of one concrete context
// (paper step 2). In every strategy the auto-encoder parameters are
// frozen; dropout is disabled; the learning rate follows cyclical
// annealing; training stops early once the runtime MAE in seconds
// reaches the target or stalls. The best model state (smallest MAE) is
// restored before returning.
func (m *Model) Finetune(samples []Sample, opts FinetuneOptions) (*TrainReport, error) {
	if err := validateSamples(m.Cfg, samples); err != nil {
		return nil, err
	}
	start := time.Now()
	cfg := m.Cfg

	maxEpochs := cfg.FinetuneEpochs
	if opts.MaxEpochs > 0 {
		maxEpochs = opts.MaxEpochs
	}
	patience := cfg.FinetunePatience
	if opts.Patience > 0 {
		patience = opts.Patience
	}

	// The local strategy has no pre-training to inherit normalization
	// bounds from; determine them from the context data. Reused models
	// keep their pre-trained bounds and target scale (§IV-A).
	if opts.Strategy == StrategyLocal || !m.norm.Fitted() {
		feats := make([][]float64, len(samples))
		runtimes := make([]float64, len(samples))
		for i, s := range samples {
			feats[i] = ScaleOutFeatures(s.ScaleOut)
			runtimes[i] = s.RuntimeSec
		}
		m.norm = FitMinMax(feats)
		m.target = FitTargetScaler(runtimes)
	}

	m.applyStrategy(opts.Strategy, len(samples))

	params := m.Params()
	// Establish the fused-step invariant (gradients zero before the
	// first backward pass), whatever ran on this model before.
	nn.ZeroGrads(params)
	opt := nn.NewAdam(cfg.FinetuneLRHigh, cfg.FinetuneWeightDecay)
	sched := nn.CyclicalLR{Low: cfg.FinetuneLRLow, High: cfg.FinetuneLRHigh}
	huber := nn.HuberLoss{Delta: cfg.HuberDelta}
	stopper := nn.NewEarlyStopper(cfg.FinetuneTargetMAE, patience)

	unfreezeEpoch := cfg.UnfreezeAfterPerSample * len(samples)
	report := &TrainReport{}
	var bestState nn.State

	// One context batch serves both the training steps and the per-epoch
	// MAE evaluation: fine-tuning is full-batch, so the encoded samples
	// never change across epochs.
	m.fillBatch(&m.trainB, samples, nil)
	b := &m.trainB
	for epoch := 0; epoch < maxEpochs; epoch++ {
		if opts.Strategy == StrategyPartialUnfreeze || opts.Strategy == StrategyPartialReset {
			if epoch == unfreezeEpoch {
				nn.Freeze(m.componentParams("f"), false)
			}
		}
		opt.SetLR(sched.Rate(epoch))

		rLoss, _ := m.trainStep(b, params, opt, huber, false)

		report.FinalRuntimeLoss = rLoss
		report.Epochs = epoch + 1

		mae := m.evalMAEBatch(b)
		improved, stop := stopper.Observe(epoch, mae)
		if improved {
			bestState = nn.CaptureStateInto(bestState, params)
		}
		if stop {
			break
		}
	}
	if bestState != nil {
		if err := nn.RestoreState(params, bestState); err != nil {
			return nil, fmt.Errorf("core: restoring best fine-tuning state: %w", err)
		}
	}
	report.BestMAE, report.BestEpoch = stopper.Best()
	report.Duration = time.Since(start)
	m.finetuneSamples = len(samples)
	return report, nil
}

// applyStrategy configures freezing and re-initialization per strategy.
// In all strategies the auto-encoder (g, h) is frozen (§IV-C2: "the
// parameters of our auto-encoder are not subject to changes").
func (m *Model) applyStrategy(s Strategy, numSamples int) {
	nn.Freeze(m.componentParams("g"), true)
	nn.Freeze(m.componentParams("h"), true)
	switch s {
	case StrategyPartialUnfreeze:
		nn.Freeze(m.componentParams("f"), true) // unfrozen later
		nn.Freeze(m.componentParams("z"), false)
	case StrategyFullUnfreeze, StrategyLocal:
		nn.Freeze(m.componentParams("f"), false)
		nn.Freeze(m.componentParams("z"), false)
	case StrategyPartialReset:
		m.reinit("z")
		nn.Freeze(m.componentParams("f"), true) // unfrozen later
		nn.Freeze(m.componentParams("z"), false)
	case StrategyFullReset:
		m.reinit("f")
		m.reinit("z")
		nn.Freeze(m.componentParams("f"), false)
		nn.Freeze(m.componentParams("z"), false)
	default:
		panic("core: unknown strategy")
	}
}

// reinit redraws the weights of one component from the init scheme.
func (m *Model) reinit(name string) {
	for _, p := range m.componentParams(name) {
		if p.Value.Rows == 1 { // bias row vector
			p.Value.Zero()
			continue
		}
		nn.InitDense(p.Value, m.Cfg.Init, m.rng)
	}
}

// FitLocal is a convenience wrapper: train a fresh model on context data
// only (the paper's "local" Bellamy variant).
func FitLocal(cfg Config, samples []Sample, opts FinetuneOptions) (*Model, *TrainReport, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	opts.Strategy = StrategyLocal
	rep, err := m.Finetune(samples, opts)
	if err != nil {
		return nil, nil, err
	}
	return m, rep, nil
}
