package core

import (
	"math/rand"

	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Model is the Bellamy architecture of Fig. 3: the scale-out network f,
// the property auto-encoder g/h, and the runtime predictor z, together
// with the feature normalizer and target scaler fixed at training time.
//
// A Model owns a single compute workspace plus reusable batch buffers,
// which makes steady-state training steps and warm batched inference
// allocation-free — and is also why a Model is not safe for concurrent
// use (see internal/serve for the serialization wrapper).
type Model struct {
	Cfg Config

	f *nn.MLP // scale-out modeling: 3 -> ScaleOutHidden -> F
	g *nn.MLP // encoder: N -> EncoderHidden -> M (no biases)
	h *nn.MLP // decoder: M -> EncoderHidden -> N (no biases, tanh out)
	z *nn.MLP // predictor: F+(m+1)M -> PredictorHidden -> 1

	norm   *MinMaxNormalizer
	target *TargetScaler
	enc    *encoding.PropertyEncoder
	rng    *rand.Rand

	// ws backs every forward/backward intermediate; it is Reset at the
	// start of each forward pass, so buffers live for exactly one
	// forward(+backward) round.
	ws  *mat.Workspace
	fst forwardState

	// Long-lived batch buffers (they must survive ws.Reset): trainB is
	// refilled per training step, evalB holds the full-corpus evaluation
	// batch, inferB serves Predict/PredictBatch.
	trainB, evalB, inferB batch

	scratchSamples []Sample
	scratchQuery   [1]Query
	scratchPred    [1]float64

	pretrained bool
	// finetuneSamples is the sample count of the last Finetune on this
	// model — the context support the allocation engine's fallback
	// decision consults. It survives Clone and Save/Load, so a model
	// fine-tuned offline keeps its support when served from disk.
	finetuneSamples int
}

// New builds an initialized (untrained) Bellamy model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	act := nn.ActivationByName(cfg.Activation)
	m := &Model{
		Cfg: cfg,
		f: nn.TwoLayerSpec{
			Name: "f", In: 3, Hidden: cfg.ScaleOutHidden, Out: cfg.ScaleOutDim,
			ActHidden: act, ActOut: act, WithBias: true, Init: cfg.Init,
		}.Build(rng),
		g: nn.TwoLayerSpec{
			Name: "g", In: cfg.PropertySize, Hidden: cfg.EncoderHidden, Out: cfg.EncodingDim,
			ActHidden: act, ActOut: act, WithBias: false,
			Dropout: cfg.Dropout, Init: cfg.Init,
		}.Build(rng),
		h: nn.TwoLayerSpec{
			Name: "h", In: cfg.EncodingDim, Hidden: cfg.EncoderHidden, Out: cfg.PropertySize,
			ActHidden: act, ActOut: nn.Tanh{}, WithBias: false,
			Dropout: cfg.Dropout, Init: cfg.Init,
		}.Build(rng),
		z: nn.TwoLayerSpec{
			Name: "z", In: cfg.CombinedDim(), Hidden: cfg.PredictorHidden, Out: 1,
			ActHidden: act, ActOut: nn.Identity{}, WithBias: true, Init: cfg.Init,
		}.Build(rng),
		norm:   &MinMaxNormalizer{},
		target: &TargetScaler{Scale: 1},
		enc:    encoding.NewPropertyEncoder(cfg.PropertySize),
		rng:    rng,
		ws:     mat.NewWorkspace(),
	}
	return m, nil
}

// Params returns all learnable parameters grouped by component.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.f.Params()...)
	ps = append(ps, m.g.Params()...)
	ps = append(ps, m.h.Params()...)
	ps = append(ps, m.z.Params()...)
	return ps
}

// componentParams exposes each network's parameters for the freeze
// schedules of fine-tuning and the reuse strategies.
func (m *Model) componentParams(name string) []*nn.Param {
	switch name {
	case "f":
		return m.f.Params()
	case "g":
		return m.g.Params()
	case "h":
		return m.h.Params()
	case "z":
		return m.z.Params()
	default:
		panic("core: unknown component " + name)
	}
}

// Pretrained reports whether the model went through Pretrain.
func (m *Model) Pretrained() bool { return m.pretrained }

// FinetuneSamples reports how many samples the last Finetune on this
// model used (0 when it was never fine-tuned).
func (m *Model) FinetuneSamples() int { return m.finetuneSamples }

// batch is the matrix representation of a set of samples. Its buffers
// are long-lived and refilled in place, so rebuilding a batch of an
// already-seen size allocates nothing.
type batch struct {
	scaleFeat *mat.Dense // B x 3, normalized
	propVecs  *mat.Dense // (B * P) x N, P = NumEssential + NumOptional slots used
	propsPer  int        // properties per sample actually encoded
	numOpt    []int      // count of optional properties per sample
	targets   *mat.Dense // B x 1, scaled runtimes
	runtimes  []float64  // raw seconds
}

// ensure shapes the batch buffers for bSize samples, reusing backing
// storage whenever capacity allows.
func (b *batch) ensure(bSize, propsPer, propSize int) {
	b.scaleFeat = mat.Resized(b.scaleFeat, bSize, 3)
	b.propVecs = mat.Resized(b.propVecs, bSize*propsPer, propSize)
	b.propsPer = propsPer
	b.targets = mat.Resized(b.targets, bSize, 1)
	if cap(b.numOpt) < bSize {
		b.numOpt = make([]int, bSize)
	}
	b.numOpt = b.numOpt[:bSize]
	if cap(b.runtimes) < bSize {
		b.runtimes = make([]float64, bSize)
	}
	b.runtimes = b.runtimes[:bSize]
}

// fillBatch encodes the selected samples into b. idx selects (and
// orders) samples; a nil idx encodes all of them in order, without
// copying any Sample. Optional properties may be fewer than
// cfg.NumOptional; missing slots are zeroed so they contribute nothing
// to the optional mean.
func (m *Model) fillBatch(b *batch, samples []Sample, idx []int) {
	cfg := m.Cfg
	bSize := len(samples)
	if idx != nil {
		bSize = len(idx)
	}
	propsPer := cfg.NumEssential + cfg.NumOptional
	b.ensure(bSize, propsPer, cfg.PropertySize)
	for i := 0; i < bSize; i++ {
		s := &samples[i]
		if idx != nil {
			s = &samples[idx[i]]
		}
		feat := b.scaleFeat.Row(i)
		ScaleOutFeaturesInto(feat, s.ScaleOut)
		m.norm.TransformInPlace(feat)
		for k, p := range s.Essential {
			m.enc.EncodeTo(b.propVecs.Row(i*propsPer+k), p.Value)
		}
		b.numOpt[i] = len(s.Optional)
		for k, p := range s.Optional {
			m.enc.EncodeTo(b.propVecs.Row(i*propsPer+cfg.NumEssential+k), p.Value)
		}
		for k := len(s.Optional); k < cfg.NumOptional; k++ {
			row := b.propVecs.Row(i*propsPer + cfg.NumEssential + k)
			for j := range row {
				row[j] = 0
			}
		}
		b.targets.Set(i, 0, m.target.ToScaled(s.RuntimeSec))
		b.runtimes[i] = s.RuntimeSec
	}
}

// forwardState carries the intermediates of one forward pass that the
// backward pass needs. All matrices live in the model workspace and are
// recycled by the next forward call; the struct itself is embedded in
// the Model so running a pass allocates nothing.
type forwardState struct {
	b       *batch
	e       *mat.Dense // B x F
	codes   *mat.Dense // (B*P) x M
	recon   *mat.Dense // (B*P) x N
	r       *mat.Dense // B x CombinedDim
	pred    *mat.Dense // B x 1 (scaled)
	train   bool
	doRecon bool
}

// forward runs the full architecture on a batch, returning the scaled
// runtime predictions together with every intermediate needed for the
// backward pass. The returned state is valid until the next forward
// call on this model.
func (m *Model) forward(b *batch, train, doRecon bool) *forwardState {
	cfg := m.Cfg
	m.ws.Reset()
	m.fst = forwardState{b: b, train: train, doRecon: doRecon}
	st := &m.fst
	st.e = m.f.Forward(m.ws, b.scaleFeat, train)
	st.codes = m.g.Forward(m.ws, b.propVecs, train)
	if doRecon {
		st.recon = m.h.Forward(m.ws, st.codes, train)
	}
	// Assemble r = e ⊕ essential codes ⊕ mean(optional codes) (Eq. 5).
	bSize := b.scaleFeat.Rows
	st.r = m.ws.Get(bSize, cfg.CombinedDim())
	for i := 0; i < bSize; i++ {
		row := st.r.Row(i)
		copy(row[:cfg.ScaleOutDim], st.e.Row(i))
		off := cfg.ScaleOutDim
		for k := 0; k < cfg.NumEssential; k++ {
			copy(row[off:off+cfg.EncodingDim], st.codes.Row(i*b.propsPer+k))
			off += cfg.EncodingDim
		}
		nOpt := b.numOpt[i]
		if nOpt > 0 {
			for k := 0; k < nOpt; k++ {
				code := st.codes.Row(i*b.propsPer + cfg.NumEssential + k)
				for j := 0; j < cfg.EncodingDim; j++ {
					row[off+j] += code[j] / float64(nOpt)
				}
			}
		}
	}
	st.pred = m.z.Forward(m.ws, st.r, train)
	return st
}

// backward propagates the joint loss gradients: predGrad is dLoss/dPred
// (scaled space), reconGrad is dLoss/dRecon or nil when the
// reconstruction term is disabled. Parameter gradients are accumulated;
// the caller steps the optimizer.
func (m *Model) backward(st *forwardState, predGrad, reconGrad *mat.Dense) {
	cfg := m.Cfg
	gradR := m.z.Backward(m.ws, predGrad)

	// Split gradR into the f part and the code parts.
	bSize := gradR.Rows
	gradE := m.ws.GetRaw(bSize, cfg.ScaleOutDim)
	mat.SliceColsTo(gradE, gradR, 0, cfg.ScaleOutDim)
	gradCodes := m.ws.Get(st.codes.Rows, cfg.EncodingDim)
	for i := 0; i < bSize; i++ {
		row := gradR.Row(i)
		off := cfg.ScaleOutDim
		for k := 0; k < cfg.NumEssential; k++ {
			copy(gradCodes.Row(i*st.b.propsPer+k), row[off:off+cfg.EncodingDim])
			off += cfg.EncodingDim
		}
		nOpt := st.b.numOpt[i]
		if nOpt > 0 {
			for k := 0; k < nOpt; k++ {
				dst := gradCodes.Row(i*st.b.propsPer + cfg.NumEssential + k)
				for j := 0; j < cfg.EncodingDim; j++ {
					dst[j] = row[off+j] / float64(nOpt)
				}
			}
		}
	}
	if reconGrad != nil {
		mat.AddInPlace(gradCodes, m.h.Backward(m.ws, reconGrad))
	}
	m.g.Backward(m.ws, gradCodes)
	m.f.Backward(m.ws, gradE)
}

// Predict estimates the runtime in seconds for a scale-out and context
// properties. The model must have been trained (pre-trained and/or
// fitted) for the estimate to be meaningful.
func (m *Model) Predict(scaleOut int, essential, optional []encoding.Property) (float64, error) {
	if err := m.ValidateQuery(Query{ScaleOut: scaleOut, Essential: essential, Optional: optional}); err != nil {
		return 0, err
	}
	m.scratchQuery[0] = Query{ScaleOut: scaleOut, Essential: essential, Optional: optional}
	err := m.PredictBatchInto(m.scratchPred[:], m.scratchQuery[:])
	m.scratchQuery[0] = Query{} // don't pin the caller's property slices
	if err != nil {
		return 0, err
	}
	return m.scratchPred[0], nil
}

// PropertyCodes returns the dense codes the encoder assigns to each
// property, the representation visualized in the paper's Fig. 4.
func (m *Model) PropertyCodes(props []encoding.Property) [][]float64 {
	vecs := m.enc.EncodeAll(props)
	in := mat.FromRows(vecs)
	m.ws.Reset()
	codes := m.g.Forward(m.ws, in, false)
	out := make([][]float64, codes.Rows)
	for i := range out {
		row := make([]float64, codes.Cols)
		copy(row, codes.Row(i))
		out[i] = row
	}
	return out
}

// ReconstructionError returns the mean squared reconstruction error of
// the auto-encoder over the given properties.
func (m *Model) ReconstructionError(props []encoding.Property) float64 {
	vecs := m.enc.EncodeAll(props)
	in := mat.FromRows(vecs)
	m.ws.Reset()
	codes := m.g.Forward(m.ws, in, false)
	recon := m.h.Forward(m.ws, codes, false)
	loss, _ := nn.MSELoss{}.Compute(m.ws, recon, in)
	return loss
}
