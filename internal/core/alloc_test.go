package core

import (
	"testing"

	"repro/internal/nn"
)

// allocConfig keeps every matmul of the step below mat's parallel
// threshold so the measured path is fully deterministic (the shared
// worker pool uses a sync.Pool, which the GC may clear mid-measurement).
func allocConfig() Config {
	cfg := DefaultConfig()
	cfg.PretrainEpochs = 2
	cfg.BatchSize = 16
	return cfg
}

// TestTrainStepZeroAlloc pins the steady-state training step — batch
// refill from the shuffled index, forward, joint loss, backward,
// gradient clip, Adam step — at zero allocations. This is the central
// guarantee of the workspace-backed compute engine.
func TestTrainStepZeroAlloc(t *testing.T) {
	cfg := allocConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(4, []int{2, 4, 6, 8})
	// Pretrain fits the scalers and warms every buffer shape (train
	// batches, eval batch, Adam moments, workspace arena).
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}

	params := m.Params()
	opt := nn.NewAdam(cfg.LearningRate, cfg.WeightDecay)
	huber := nn.HuberLoss{Delta: cfg.HuberDelta}
	idx := make([]int, cfg.BatchSize)
	for i := range idx {
		idx[i] = i % len(samples)
	}
	step := func() {
		m.fillBatch(&m.trainB, samples, idx)
		m.trainStep(&m.trainB, params, opt, huber, true)
	}
	step() // warm the fresh optimizer's moment maps
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state train step allocs/op = %v, want 0", allocs)
	}
}

// TestEvalZeroAlloc pins the per-epoch full-corpus evaluation at zero
// allocations once the eval batch is built.
func TestEvalZeroAlloc(t *testing.T) {
	m, err := New(allocConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(4, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	m.fillBatch(&m.evalB, samples, nil)
	if allocs := testing.AllocsPerRun(50, func() { m.evalMAEBatch(&m.evalB) }); allocs != 0 {
		t.Fatalf("eval allocs/op = %v, want 0", allocs)
	}
}

// TestPredictBatchZeroAlloc pins warm batched inference (the serving
// fast path) at zero allocations: once a batch shape and its property
// values have been seen, PredictBatchInto touches only model-owned
// buffers.
func TestPredictBatchZeroAlloc(t *testing.T) {
	m, err := New(allocConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := syntheticSamples(2, []int{2, 4, 6, 8})
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 16)
	for i := range queries {
		s := samples[i%len(samples)]
		queries[i] = Query{ScaleOut: s.ScaleOut, Essential: s.Essential, Optional: s.Optional}
	}
	dst := make([]float64, len(queries))
	if err := m.PredictBatchInto(dst, queries); err != nil { // warm shapes + encoder memo
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := m.PredictBatchInto(dst, queries); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm PredictBatchInto allocs/op = %v, want 0", allocs)
	}

	// The single-query convenience path rides the same machinery.
	s := samples[0]
	if _, err := m.Predict(s.ScaleOut, s.Essential, s.Optional); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Predict(s.ScaleOut, s.Essential, s.Optional); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm Predict allocs/op = %v, want 0", allocs)
	}
}
