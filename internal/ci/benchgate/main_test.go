package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPretrain-8          100           7509136 ns/op          648433 B/op        682 allocs/op
BenchmarkPretrain-8          100           7209136 ns/op          648433 B/op        682 allocs/op
BenchmarkPredictBatchWarm-8  100            179848 ns/op       5560243 pred/s       32897 B/op          3 allocs/op
PASS
ok      repro/internal/core     2.731s
`

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Repeated benchmark: fastest run wins; GOMAXPROCS suffix stripped.
	if got := m["BenchmarkPretrain"]; got != 7209136 {
		t.Fatalf("BenchmarkPretrain = %v, want 7209136 (fastest of two runs)", got)
	}
	if got := m["BenchmarkPredictBatchWarm"]; got != 179848 {
		t.Fatalf("BenchmarkPredictBatchWarm = %v, want 179848", got)
	}
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(m))
	}
}

func TestGate(t *testing.T) {
	baselines := map[string]float64{"BenchmarkPretrain": 1000, "BenchmarkWarm": 100}
	required := []string{"BenchmarkPretrain", "BenchmarkWarm"}

	// Within bounds (exactly at the limit passes).
	checked, failures := gate(map[string]float64{"BenchmarkPretrain": 2000, "BenchmarkWarm": 150}, baselines, required, 2.0)
	if len(failures) != 0 {
		t.Fatalf("in-bounds run failed: %v", failures)
	}
	if len(checked) != 2 {
		t.Fatalf("checked %d benchmarks, want 2", len(checked))
	}

	// Regression past the ratio fails.
	_, failures = gate(map[string]float64{"BenchmarkPretrain": 2001, "BenchmarkWarm": 90}, baselines, required, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkPretrain") {
		t.Fatalf("failures = %v, want exactly the regressed benchmark", failures)
	}

	// A required benchmark missing from the measurement fails loudly.
	_, failures = gate(map[string]float64{"BenchmarkPretrain": 500}, baselines, required, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkWarm") {
		t.Fatalf("failures = %v, want missing-benchmark failure", failures)
	}

	// A benchmark without a recorded baseline fails loudly too.
	_, failures = gate(map[string]float64{"BenchmarkOther": 500}, map[string]float64{}, []string{"BenchmarkOther"}, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "no recorded baseline") {
		t.Fatalf("failures = %v, want no-baseline failure", failures)
	}
}

func TestLoadBaselines(t *testing.T) {
	// The real repo files are the fixtures: the gate must find the two
	// benchmarks CI requires in them.
	m, err := loadBaselines([]string{"../../../BENCH_train.json", "../../../BENCH_serve.json"})
	if err != nil {
		t.Fatalf("loadBaselines: %v", err)
	}
	for _, name := range []string{"BenchmarkPretrain", "BenchmarkPredictBatchWarm"} {
		if m[name] <= 0 {
			t.Fatalf("baseline for %s = %v, want > 0", name, m[name])
		}
	}
}
