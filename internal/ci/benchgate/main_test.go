package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPretrain-8          100           7509136 ns/op          648433 B/op        682 allocs/op
BenchmarkPretrain-8          100           7209136 ns/op          648433 B/op        682 allocs/op
BenchmarkPredictBatchWarm-8  100            179848 ns/op       5560243 pred/s       32897 B/op          3 allocs/op
PASS
ok      repro/internal/core     2.731s
`

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Repeated benchmark: fastest run wins; GOMAXPROCS suffix stripped.
	if got := m["BenchmarkPretrain"]; got != 7209136 {
		t.Fatalf("BenchmarkPretrain = %v, want 7209136 (fastest of two runs)", got)
	}
	if got := m["BenchmarkPredictBatchWarm"]; got != 179848 {
		t.Fatalf("BenchmarkPredictBatchWarm = %v, want 179848", got)
	}
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(m))
	}
}

func TestGate(t *testing.T) {
	baselines := map[string]baseline{
		"BenchmarkPretrain": {ns: 1000, file: "BENCH_train.json"},
		"BenchmarkWarm":     {ns: 100, file: "BENCH_serve.json"},
	}
	required := []string{"BenchmarkPretrain", "BenchmarkWarm"}

	// Within bounds (exactly at the limit passes).
	checked, failures := gate(map[string]float64{"BenchmarkPretrain": 2000, "BenchmarkWarm": 150}, baselines, required, 2.0)
	if len(failures) != 0 {
		t.Fatalf("in-bounds run failed: %v", failures)
	}
	if len(checked) != 2 {
		t.Fatalf("checked %d benchmarks, want 2", len(checked))
	}

	// Regression past the ratio fails, and the failure line names the
	// benchmark, the measured-vs-allowed times, the ratio, and the
	// baseline file that set the bound.
	_, failures = gate(map[string]float64{"BenchmarkPretrain": 2001, "BenchmarkWarm": 90}, baselines, required, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkPretrain") {
		t.Fatalf("failures = %v, want exactly the regressed benchmark", failures)
	}
	for _, want := range []string{"measured 2001 ns/op", "allowed 2000 ns/op", "2.00x", "BENCH_train.json"} {
		if !strings.Contains(failures[0], want) {
			t.Fatalf("failure line %q missing %q", failures[0], want)
		}
	}

	// A required benchmark missing from the measurement fails loudly.
	_, failures = gate(map[string]float64{"BenchmarkPretrain": 500}, baselines, required, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkWarm") {
		t.Fatalf("failures = %v, want missing-benchmark failure", failures)
	}

	// A benchmark without a recorded baseline fails loudly too.
	_, failures = gate(map[string]float64{"BenchmarkOther": 500}, map[string]baseline{}, []string{"BenchmarkOther"}, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "no recorded baseline") {
		t.Fatalf("failures = %v, want no-baseline failure", failures)
	}
}

func TestParseSpeedup(t *testing.T) {
	sp, err := parseSpeedup("BenchmarkShardPredict/shards=1:BenchmarkShardPredict/shards=2:1.7")
	if err != nil {
		t.Fatalf("parseSpeedup: %v", err)
	}
	if sp.Base != "BenchmarkShardPredict/shards=1" || sp.Target != "BenchmarkShardPredict/shards=2" || sp.MinRatio != 1.7 {
		t.Fatalf("parseSpeedup = %+v, want base/target/1.7", sp)
	}

	for _, bad := range []string{
		"",               // empty
		"a:b",            // missing ratio
		"a:b:c:d",        // too many parts
		"a:b:notanumber", // unparseable ratio
		"a:b:0",          // ratio must be positive
		"a:b:-1.5",       // negative ratio
	} {
		if _, err := parseSpeedup(bad); err == nil {
			t.Fatalf("parseSpeedup(%q) accepted, want error", bad)
		}
	}
}

func TestGateSpeedups(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkShardPredict/shards=1": 10_000_000,
		"BenchmarkShardPredict/shards=2": 5_000_000,
		"BenchmarkShardPredict/shards=4": 4_000_000,
	}

	// 2.00x against a 1.7x floor passes; 2.50x against a 3.0x floor fails.
	checked, failures := gateSpeedups(measured, []speedupSpec{
		{Base: "BenchmarkShardPredict/shards=1", Target: "BenchmarkShardPredict/shards=2", MinRatio: 1.7},
		{Base: "BenchmarkShardPredict/shards=1", Target: "BenchmarkShardPredict/shards=4", MinRatio: 3.0},
	})
	if len(checked) != 2 {
		t.Fatalf("checked %d speedups, want 2: %v", len(checked), checked)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "shards=4") {
		t.Fatalf("failures = %v, want exactly the below-floor shards=4 speedup", failures)
	}
	if !strings.Contains(failures[0], "2.50x speedup (floor 3.00x)") {
		t.Fatalf("failure line = %q, want measured ratio and floor spelled out", failures[0])
	}

	// Exactly at the floor passes.
	_, failures = gateSpeedups(measured, []speedupSpec{
		{Base: "BenchmarkShardPredict/shards=1", Target: "BenchmarkShardPredict/shards=2", MinRatio: 2.0},
	})
	if len(failures) != 0 {
		t.Fatalf("at-floor speedup failed: %v", failures)
	}

	// A missing base or target fails loudly instead of passing vacuously.
	_, failures = gateSpeedups(measured, []speedupSpec{
		{Base: "BenchmarkMissing", Target: "BenchmarkShardPredict/shards=2", MinRatio: 1.5},
		{Base: "BenchmarkShardPredict/shards=1", Target: "BenchmarkAlsoMissing", MinRatio: 1.5},
	})
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want one per missing name", failures)
	}
	for _, f := range failures {
		if !strings.Contains(f, "missing from measured output") {
			t.Fatalf("failure %q does not name the missing benchmark", f)
		}
	}
}

func TestLoadBaselines(t *testing.T) {
	// The real repo files are the fixtures: the gate must find the two
	// benchmarks CI requires in them.
	m, err := loadBaselines([]string{"../../../BENCH_train.json", "../../../BENCH_serve.json", "../../../BENCH_shard.json"})
	if err != nil {
		t.Fatalf("loadBaselines: %v", err)
	}
	for _, name := range []string{"BenchmarkPretrain", "BenchmarkPredictBatchWarm", "BenchmarkShardPredict/shards=1"} {
		if m[name].ns <= 0 {
			t.Fatalf("baseline for %s = %v, want > 0", name, m[name].ns)
		}
		if m[name].file == "" {
			t.Fatalf("baseline for %s does not record its source file", name)
		}
	}
}
