// Command benchgate is the CI benchmark-regression smoke gate: it
// parses `go test -bench` output files, looks up each required
// benchmark's recorded baseline in the repo's BENCH_*.json files, and
// fails when a measured time exceeds baseline * max-ratio. It gates
// against gross regressions (the default ratio is 2x) rather than
// noise: CI runners are slower and noisier than the recording machine,
// but a hot path that doubled is a bug regardless of hardware.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkPretrain$' -benchtime 100x ./internal/core/ > train.txt
//	go test -run '^$' -bench 'BenchmarkPredictBatchWarm$' -benchtime 100x ./internal/serve/ > serve.txt
//	go run ./internal/ci/benchgate -baseline BENCH_train.json -baseline BENCH_serve.json \
//	    -require BenchmarkPretrain -require BenchmarkPredictBatchWarm train.txt serve.txt
//
// Relative assertions with -speedup compare two benchmarks of the SAME
// measured output instead of a recorded baseline, which makes them
// hardware-independent — the shard scaling gate asserts that the
// 2-shard and 4-shard router runs beat the 1-shard run by a floor
// ratio, whatever the runner's absolute speed:
//
//	go test -run '^$' -bench BenchmarkShardPredict ./internal/shard/ > shard.txt
//	go run ./internal/ci/benchgate \
//	    -speedup 'BenchmarkShardPredict/shards=1:BenchmarkShardPredict/shards=2:1.7' \
//	    -speedup 'BenchmarkShardPredict/shards=1:BenchmarkShardPredict/shards=4:3.0' shard.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchRecord is the shared shape of one benchmark entry in the
// BENCH_*.json files; only the "after" column (the current recorded
// state of the code) is used as the baseline.
type benchRecord struct {
	Name  string `json:"name"`
	After struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"after"`
}

// benchFile covers BENCH_train.json ("train" and "mat" arrays),
// BENCH_serve.json ("serve" and "store" arrays), BENCH_http.json
// ("http" array: the HTTP serving tier under load control), and
// BENCH_shard.json ("shard" array: the sharded router's scaling curve).
type benchFile struct {
	Train []benchRecord `json:"train"`
	Serve []benchRecord `json:"serve"`
	Store []benchRecord `json:"store"`
	Mat   []benchRecord `json:"mat"`
	Http  []benchRecord `json:"http"`
	Shard []benchRecord `json:"shard"`
}

// baseline is one recorded bound plus the file it came from, so a gate
// failure can point straight at the baseline to re-record.
type baseline struct {
	ns   float64
	file string
}

// loadBaselines maps benchmark name -> recorded baseline across files.
func loadBaselines(paths []string) (map[string]baseline, error) {
	out := map[string]baseline{}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading baseline %s: %w", path, err)
		}
		var f benchFile
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
		}
		for _, rec := range append(append(append(append(append(f.Train, f.Serve...), f.Store...), f.Mat...), f.Http...), f.Shard...) {
			if rec.Name != "" && rec.After.NsPerOp > 0 {
				out[rec.Name] = baseline{ns: rec.After.NsPerOp, file: path}
			}
		}
	}
	return out, nil
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkPretrain-8    100    7509136 ns/op    648433 B/op    682 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the reported name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput maps benchmark name -> measured ns/op from go test
// -bench output. When a benchmark appears multiple times the fastest
// run wins, which keeps the gate robust against one-off scheduling
// hiccups on shared CI runners.
func parseBenchOutput(r *bufio.Scanner) (map[string]float64, error) {
	out := map[string]float64{}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", r.Text(), err)
		}
		if cur, ok := out[m[1]]; !ok || ns < cur {
			out[m[1]] = ns
		}
	}
	return out, r.Err()
}

// gate compares measured times against baselines and returns one
// failure line per violated bound, plus a log line per checked bench.
// Each line names the benchmark, the measured-vs-allowed times, the
// measured/baseline ratio, and the baseline file that set the bound —
// everything needed to decide between fixing the regression and
// re-recording the baseline.
func gate(measured map[string]float64, baselines map[string]baseline, required []string, maxRatio float64) (checked []string, failures []string) {
	for _, name := range required {
		ns, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: required benchmark missing from measured output", name))
			continue
		}
		base, ok := baselines[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no recorded baseline in any given -baseline file", name))
			continue
		}
		ratio := ns / base.ns
		line := fmt.Sprintf("%s: measured %.0f ns/op vs allowed %.0f ns/op — %.2fx of baseline %.0f ns/op (limit %.1fx, recorded in %s)",
			name, ns, base.ns*maxRatio, ratio, base.ns, maxRatio, base.file)
		checked = append(checked, line)
		if ratio > maxRatio {
			failures = append(failures, line)
		}
	}
	return checked, failures
}

// speedupSpec is one -speedup assertion: the measured run of Target
// must be at least MinRatio times faster (lower ns/op) than the
// measured run of Base. Both come from the same CI output, so the
// assertion is hardware-independent — exactly what a scaling claim
// ("2 shards are >= 1.7x one shard") needs on runners of unknown speed.
type speedupSpec struct {
	Base, Target string
	MinRatio     float64
}

// parseSpeedup parses "BenchBase:BenchTarget:minRatio".
func parseSpeedup(s string) (speedupSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return speedupSpec{}, fmt.Errorf("speedup %q must be base:target:minRatio", s)
	}
	ratio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || ratio <= 0 {
		return speedupSpec{}, fmt.Errorf("speedup %q: bad ratio %q", s, parts[2])
	}
	return speedupSpec{Base: parts[0], Target: parts[1], MinRatio: ratio}, nil
}

// gateSpeedups checks the relative-throughput assertions against one
// measured output set.
func gateSpeedups(measured map[string]float64, specs []speedupSpec) (checked []string, failures []string) {
	for _, sp := range specs {
		base, ok := measured[sp.Base]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: speedup base missing from measured output", sp.Base))
			continue
		}
		target, ok := measured[sp.Target]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: speedup target missing from measured output", sp.Target))
			continue
		}
		ratio := base / target
		line := fmt.Sprintf("%s vs %s: %.2fx speedup (floor %.2fx)", sp.Target, sp.Base, ratio, sp.MinRatio)
		checked = append(checked, line)
		if ratio < sp.MinRatio {
			failures = append(failures, line)
		}
	}
	return checked, failures
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var baselinePaths, required, speedups multiFlag
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when measured ns/op exceeds baseline by this factor")
	flag.Var(&baselinePaths, "baseline", "BENCH_*.json baseline file (repeatable)")
	flag.Var(&required, "require", "benchmark name that must be present and within bounds (repeatable)")
	flag.Var(&speedups, "speedup", "base:target:minRatio — measured target must be minRatio times faster than measured base (repeatable)")
	flag.Parse()
	if (len(required) > 0 && len(baselinePaths) == 0) ||
		(len(required) == 0 && len(speedups) == 0) || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-baseline BENCH.json -require BenchmarkName] [-speedup base:target:minRatio] [-max-ratio 2.0] benchout.txt...")
		os.Exit(2)
	}
	var specs []speedupSpec
	for _, s := range speedups {
		sp, err := parseSpeedup(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		specs = append(specs, sp)
	}

	baselines, err := loadBaselines(baselinePaths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	measured := map[string]float64{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		m, err := parseBenchOutput(bufio.NewScanner(f))
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", path, err)
			os.Exit(2)
		}
		for name, ns := range m {
			if cur, ok := measured[name]; !ok || ns < cur {
				measured[name] = ns
			}
		}
	}

	checked, failures := gate(measured, baselines, required, *maxRatio)
	spChecked, spFailures := gateSpeedups(measured, specs)
	checked = append(checked, spChecked...)
	failures = append(failures, spFailures...)
	for _, line := range checked {
		fmt.Println("ok:", line)
	}
	if len(failures) > 0 {
		for _, line := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", line)
		}
		os.Exit(1)
	}
}
