package nnls

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestSolveExactNonNegative(t *testing.T) {
	// A well-conditioned system whose unconstrained solution is already
	// nonnegative must be recovered exactly.
	a := mat.FromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	want := []float64{2, 3}
	b := []float64{2, 3, 5}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveClampsNegative(t *testing.T) {
	// Unconstrained solution would be negative in the second coordinate;
	// NNLS must clamp it to zero.
	a := mat.FromRows([][]float64{
		{1, 1},
		{1, 1.0001},
	})
	b := []float64{1, 0}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v < 0", i, v)
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	x, err := Solve(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a := mat.NewDense(3, 2)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched dims")
	}
}

func TestSolveEmpty(t *testing.T) {
	x, err := Solve(mat.NewDense(0, 0), nil)
	if err != nil || len(x) != 0 {
		t.Fatalf("empty solve = (%v, %v)", x, err)
	}
}

func TestSolveErnestShape(t *testing.T) {
	// Fit the Ernest feature basis [1, 1/x, log x, x] against data
	// generated from known nonnegative weights; recovery should be close.
	theta := []float64{30, 200, 8, 1.5}
	scaleOuts := []float64{2, 4, 6, 8, 10, 12}
	a := mat.NewDense(len(scaleOuts), 4)
	b := make([]float64, len(scaleOuts))
	for i, x := range scaleOuts {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1/x)
		a.Set(i, 2, math.Log(x))
		a.Set(i, 3, x)
		for j := 0; j < 4; j++ {
			b[i] += theta[j] * a.At(i, j)
		}
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-6 {
		t.Fatalf("residual = %v, want ~0 (x=%v)", r, x)
	}
}

func TestSolveOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.NewDense(50, 3)
	for i := range a.Data {
		a.Data[i] = math.Abs(rng.NormFloat64())
	}
	trueX := []float64{1.0, 0.5, 2.0}
	b := make([]float64, 50)
	for i := 0; i < 50; i++ {
		b[i] = mat.Dot(a.Row(i), trueX) + 0.01*rng.NormFloat64()
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueX {
		if math.Abs(x[i]-trueX[i]) > 0.1 {
			t.Fatalf("x = %v, want ~%v", x, trueX)
		}
	}
}

// Property: the solution is always element-wise nonnegative.
func TestQuickNonNegativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(10)
		cols := 1 + rng.Intn(5)
		a := mat.NewDense(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return true // convergence failures are acceptable; feasibility isn't
		}
		for _, v := range x {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the NNLS residual is never better than the unconstrained
// optimum but never worse than the zero solution.
func TestQuickResidualBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(8)
		cols := 1 + rng.Intn(3)
		a := mat.NewDense(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return true
		}
		zero := make([]float64, cols)
		return Residual(a, x, b) <= Residual(a, zero, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: KKT stationarity — for the returned solution, gradient
// components of the passive set vanish and of the active set are <= 0.
func TestQuickKKT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 4 + rng.Intn(8)
		cols := 1 + rng.Intn(4)
		a := mat.NewDense(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return true
		}
		w := residualGradient(a, b, x)
		for j, xj := range x {
			if xj > 1e-9 {
				if math.Abs(w[j]) > 1e-5 {
					return false
				}
			} else if w[j] > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveErnest6Points(b *testing.B) {
	scaleOuts := []float64{2, 4, 6, 8, 10, 12}
	a := mat.NewDense(len(scaleOuts), 4)
	rhs := make([]float64, len(scaleOuts))
	for i, x := range scaleOuts {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1/x)
		a.Set(i, 2, math.Log(x))
		a.Set(i, 3, x)
		rhs[i] = 30 + 200/x + 8*math.Log(x) + 1.5*x
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
