// Package nnls implements non-negative least squares via the
// Lawson-Hanson active-set algorithm. It is the solver Ernest (NSDI'16)
// uses to fit its parametric scale-out model, and therefore the substrate
// for both baselines in the Bellamy evaluation.
package nnls

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrNoConvergence is returned when the active-set loop exceeds its
// iteration budget (which for well-posed small problems never happens).
var ErrNoConvergence = errors.New("nnls: did not converge")

// Solve returns x >= 0 minimizing ||A*x - b||₂ using Lawson-Hanson.
func Solve(a *mat.Dense, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("nnls: A has %d rows but b has %d entries", a.Rows, len(b))
	}
	if a.Rows == 0 || a.Cols == 0 {
		return make([]float64, a.Cols), nil
	}
	n := a.Cols
	x := make([]float64, n)
	passive := make([]bool, n)

	// w = Aᵀ(b - A x); with x = 0 this is Aᵀ b.
	w := residualGradient(a, b, x)

	tol := 10 * 1e-12 * float64(n) * matInfNorm(a)
	maxIter := 3 * n
	if maxIter < 30 {
		maxIter = 30
	}

	for iter := 0; iter < maxIter; iter++ {
		// Select the most violated constraint among the active set.
		j, best := -1, tol
		for i := 0; i < n; i++ {
			if !passive[i] && w[i] > best {
				best = w[i]
				j = i
			}
		}
		if j < 0 {
			return x, nil // KKT conditions satisfied
		}
		passive[j] = true

		for inner := 0; inner < maxIter*10; inner++ {
			s, err := lsqPassive(a, b, passive)
			if err != nil {
				return nil, err
			}
			minS := math.Inf(1)
			for i := 0; i < n; i++ {
				if passive[i] && s[i] < minS {
					minS = s[i]
				}
			}
			if minS > 0 {
				copy(x, s)
				break
			}
			// Step as far as feasibility allows, dropping a variable.
			alpha := math.Inf(1)
			for i := 0; i < n; i++ {
				if passive[i] && s[i] <= 0 {
					if r := x[i] / (x[i] - s[i]); r < alpha {
						alpha = r
					}
				}
			}
			if math.IsInf(alpha, 1) {
				return nil, ErrNoConvergence
			}
			for i := 0; i < n; i++ {
				x[i] += alpha * (s[i] - x[i])
				if passive[i] && x[i] <= 1e-14 {
					x[i] = 0
					passive[i] = false
				}
			}
		}
		w = residualGradient(a, b, x)
	}
	// Out of iterations; the current x is still feasible. Report it with
	// a convergence error so callers can decide.
	return x, ErrNoConvergence
}

// residualGradient computes Aᵀ(b - A x).
func residualGradient(a *mat.Dense, b, x []float64) []float64 {
	r := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		r[i] = b[i] - mat.Dot(a.Row(i), x)
	}
	w := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range w {
			w[j] += row[j] * r[i]
		}
	}
	return w
}

// lsqPassive solves the unconstrained least squares restricted to the
// passive columns, leaving active entries at zero.
func lsqPassive(a *mat.Dense, b []float64, passive []bool) ([]float64, error) {
	var cols []int
	for j, p := range passive {
		if p {
			cols = append(cols, j)
		}
	}
	k := len(cols)
	out := make([]float64, a.Cols)
	if k == 0 {
		return out, nil
	}
	// Normal equations with a tiny Tikhonov ridge for rank-deficient
	// passive sets (repeated scale-outs can make columns collinear).
	ata := mat.NewDense(k, k)
	atb := make([]float64, k)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < k; p++ {
			vp := row[cols[p]]
			if vp == 0 {
				continue
			}
			atb[p] += vp * b[i]
			rp := ata.Row(p)
			for q := 0; q < k; q++ {
				rp[q] += vp * row[cols[q]]
			}
		}
	}
	const ridge = 1e-12
	for p := 0; p < k; p++ {
		ata.Data[p*k+p] += ridge * (1 + ata.Data[p*k+p])
	}
	sol, err := solveSymmetric(ata, atb)
	if err != nil {
		return nil, err
	}
	for p, j := range cols {
		out[j] = sol[p]
	}
	return out, nil
}

// solveSymmetric solves M x = v by Gaussian elimination with partial
// pivoting. M is overwritten.
func solveSymmetric(m *mat.Dense, v []float64) ([]float64, error) {
	n := m.Rows
	if m.Cols != n || len(v) != n {
		return nil, fmt.Errorf("nnls: solveSymmetric shape mismatch")
	}
	x := make([]float64, n)
	copy(x, v)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot, pv := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if av := math.Abs(m.At(r, col)); av > pv {
				pivot, pv = r, av
			}
		}
		if pv < 1e-300 {
			return nil, fmt.Errorf("nnls: singular system")
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		d := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / d
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

func swapRows(m *mat.Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// matInfNorm returns the max-abs element of a.
func matInfNorm(a *mat.Dense) float64 {
	var mx float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	return mx
}

// Residual returns ||A x - b||₂.
func Residual(a *mat.Dense, x, b []float64) float64 {
	var sq float64
	for i := 0; i < a.Rows; i++ {
		d := mat.Dot(a.Row(i), x) - b[i]
		sq += d * d
	}
	return math.Sqrt(sq)
}
