// Package api holds the canonical wire types of the versioned /v1 HTTP
// surface: request/response DTOs for predict, batch, observe, allocate,
// and stats, the shard topology and replication status messages, and
// the unified error envelope every error path emits. It is the single
// source of truth for the wire contract — the serve handlers, the shard
// router, the bellamy CLI, and the load generator all marshal exactly
// these structs, so a field added here is a field added everywhere.
//
// The package deliberately depends only on the standard library: it is
// a contract, not an implementation, and must stay importable from
// every layer (including test harnesses) without dragging the serving
// stack along.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// StatsSchemaVersion is the current GET /v1/stats schema generation.
// Version 2 renamed the "loadctl" block to "load_ctl" (normalizing the
// last lowercase-concatenated key to snake_case) and introduced the
// schema_version field itself so consumers can switch on the shape
// instead of string-matching field names. Version 3 added the "obs"
// block: /v1/stats became a compatibility view over the metrics
// registry that also backs GET /metrics.
const StatsSchemaVersion = 3

// Request headers understood by the /v1 surface.
const (
	// ClientKeyHeader identifies the client for per-client rate
	// limiting; requests without it are keyed by remote address.
	ClientKeyHeader = "X-API-Key"
	// DeadlineHeader carries the client's remaining latency budget in
	// milliseconds; the server caps it at its configured maximum.
	DeadlineHeader = "X-Deadline-Ms"
	// TraceIDHeader carries a client-supplied trace ID; a request
	// bearing one is always traced and the ID is echoed on the
	// response. Without it the server samples and, when it does, echoes
	// the generated ID.
	TraceIDHeader = "X-Trace-Id"
)

// Property is the wire form of one descriptive property of a dataflow
// job or its execution context (dataset size, node type, ...).
type Property struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// PredictRequest is the wire form of one runtime prediction request.
type PredictRequest struct {
	Job       string     `json:"job"`
	Env       string     `json:"env"`
	ScaleOut  int        `json:"scale_out"`
	Essential []Property `json:"essential"`
	Optional  []Property `json:"optional,omitempty"`
}

// PredictResponse is the wire form of one prediction result. Exactly
// one of RuntimeSec or Error is meaningful; batch responses carry
// per-item errors here while the HTTP status stays 200.
type PredictResponse struct {
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Error      *Error  `json:"error,omitempty"`
}

// BatchRequest wraps the requests of POST /v1/predict/batch.
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchResponse wraps the results of POST /v1/predict/batch, one entry
// per request in input order. Failed counts the entries whose Error is
// set, so callers can detect a partial failure without scanning.
type BatchResponse struct {
	Responses []PredictResponse `json:"responses"`
	Failed    int               `json:"failed,omitempty"`
}

// ObserveRequest is the wire form of one runtime observation: a
// prediction request plus the runtime actually measured for it.
type ObserveRequest struct {
	PredictRequest
	RuntimeSec float64 `json:"runtime_sec"`
}

// ObserveResponse is the wire form of POST /v1/observe.
type ObserveResponse struct {
	Accepted bool   `json:"accepted"`
	Error    *Error `json:"error,omitempty"`
}

// ObservationPoint is one measured (scale-out, runtime) point feeding
// the allocation fallback.
type ObservationPoint struct {
	ScaleOut   int     `json:"scale_out"`
	RuntimeSec float64 `json:"runtime_sec"`
}

// AllocateRequest is the wire form of POST /v1/allocate.
type AllocateRequest struct {
	Job       string     `json:"job"`
	Env       string     `json:"env"`
	Essential []Property `json:"essential"`
	Optional  []Property `json:"optional,omitempty"`

	MinScaleOut int   `json:"min_scale_out"`
	MaxScaleOut int   `json:"max_scale_out"`
	Step        int   `json:"step,omitempty"`
	Candidates  []int `json:"candidates,omitempty"`

	DeadlineSec     float64 `json:"deadline_sec"`
	CostPerNodeHour float64 `json:"cost_per_node_hour"`
	SafetyMargin    float64 `json:"safety_margin,omitempty"`

	MinModelSamples int                `json:"min_model_samples,omitempty"`
	Observations    []ObservationPoint `json:"observations,omitempty"`
}

// CurvePoint is the wire form of one annotated sweep candidate.
type CurvePoint struct {
	ScaleOut     int     `json:"scale_out"`
	PredictedSec float64 `json:"predicted_sec"`
	SmoothedSec  float64 `json:"smoothed_sec"`
	Cost         float64 `json:"cost"`
	MeetsSLO     bool    `json:"meets_slo"`
}

// AllocateResponse is the wire form of one allocation decision.
type AllocateResponse struct {
	ScaleOut     int          `json:"scale_out,omitempty"`
	PredictedSec float64      `json:"predicted_sec,omitempty"`
	Cost         float64      `json:"cost,omitempty"`
	Feasible     bool         `json:"feasible"`
	Fallback     bool         `json:"fallback,omitempty"`
	LowSupport   bool         `json:"low_support,omitempty"`
	Source       string       `json:"source,omitempty"`
	MarginSec    float64      `json:"margin_sec,omitempty"`
	MarginFrac   float64      `json:"margin_frac,omitempty"`
	Curve        []CurvePoint `json:"curve,omitempty"`
	Error        *Error       `json:"error,omitempty"`
}

// Stats is the wire form of GET /v1/stats for one serve instance. In a
// sharded deployment each shard reports one Stats inside ClusterStats.
type Stats struct {
	SchemaVersion   int     `json:"schema_version"`
	Requests        int64   `json:"requests"`
	Calls           int64   `json:"calls"`
	ResultHits      int64   `json:"result_hits"`
	ResultMisses    int64   `json:"result_misses"`
	ResultCacheLen  int     `json:"result_cache_len"`
	MeanLatencyUsec float64 `json:"mean_latency_usec"`
	ModelHits       int64   `json:"model_hits"`
	ModelMisses     int64   `json:"model_misses"`
	ModelLoads      int64   `json:"model_loads"`
	ModelLoadErrors int64   `json:"model_load_errors"`
	ModelEvictions  int64   `json:"model_evictions"`
	ModelSwaps      int64   `json:"model_swaps,omitempty"`

	Alloc     AllocStats      `json:"alloc"`
	Lifecycle *LifecycleStats `json:"lifecycle,omitempty"`
	Store     *StoreStats     `json:"store,omitempty"`
	LoadCtl   *LoadCtlStats   `json:"load_ctl,omitempty"`
	Obs       *ObsStats       `json:"obs,omitempty"`
}

// ObsStats is the schema-v3 observability block: tracing counters and
// predict-latency quantiles read from the same log-linear histogram
// that backs the bellamy_predict_latency_seconds summary on /metrics.
type ObsStats struct {
	TracesSampled   int64   `json:"traces_sampled"`
	TracesFinished  int64   `json:"traces_finished"`
	MetricSeries    int     `json:"metric_series"`
	LatencyP50Usec  float64 `json:"latency_p50_usec"`
	LatencyP99Usec  float64 `json:"latency_p99_usec"`
	LatencyP999Usec float64 `json:"latency_p999_usec"`
}

// LoadCtlStats is the wire form of the overload-protection counters.
type LoadCtlStats struct {
	RateLimited       int64   `json:"rate_limited"`
	Clients           int     `json:"clients"`
	ClientsEvicted    int64   `json:"clients_evicted,omitempty"`
	Admitted          int64   `json:"admitted"`
	Queued            int64   `json:"queued"`
	ShedQueueFull     int64   `json:"shed_queue_full"`
	ShedTimeout       int64   `json:"shed_timeout"`
	ShedCanceled      int64   `json:"shed_canceled"`
	GateBypassed      int64   `json:"gate_bypassed"`
	DeadlineRejects   int64   `json:"deadline_rejects"`
	MeanQueueWaitUsec float64 `json:"mean_queue_wait_usec"`
	Draining          bool    `json:"draining,omitempty"`
}

// AllocStats is the wire form of the allocation counters.
type AllocStats struct {
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	Violations      int64   `json:"violations"`
	Fallbacks       int64   `json:"fallbacks"`
	MeanLatencyUsec float64 `json:"mean_latency_usec"`
}

// LifecycleStats is the wire form of the online-learning counters.
type LifecycleStats struct {
	Observations     int64   `json:"observations"`
	Rejected         int64   `json:"rejected"`
	PendingSamples   int     `json:"pending_samples"`
	Finetunes        int64   `json:"finetunes"`
	FinetuneErrors   int64   `json:"finetune_errors"`
	Swaps            int64   `json:"swaps"`
	SwapsSkipped     int64   `json:"swaps_skipped"`
	MeanFinetuneUsec float64 `json:"mean_finetune_usec"`
	Restored         int64   `json:"restored,omitempty"`
	LogErrors        int64   `json:"log_errors,omitempty"`
}

// StoreStats is the wire form of the durable-store counters.
type StoreStats struct {
	WALAppends           int64  `json:"wal_appends"`
	WALAppendedBytes     int64  `json:"wal_appended_bytes"`
	WALSegments          int    `json:"wal_segments"`
	WALActiveSeq         uint64 `json:"wal_active_seq"`
	Fsyncs               int64  `json:"fsyncs"`
	RepairedBytes        int64  `json:"repaired_bytes,omitempty"`
	ReplayedObservations int64  `json:"replayed_observations"`
	ReplayedDigests      int64  `json:"replayed_digests"`
	CorruptSegments      int64  `json:"corrupt_segments,omitempty"`
	Compactions          int64  `json:"compactions"`
	CompactedRecords     int64  `json:"compacted_records"`
	CompactSegments      int    `json:"compact_segments"`
	Checkpoints          int64  `json:"checkpoints"`
	CheckpointErrors     int64  `json:"checkpoint_errors,omitempty"`
	CheckpointLoads      int64  `json:"checkpoint_loads"`
}

// ClusterStats is the wire form of GET /v1/stats on a sharded router:
// per-shard serve stats plus router and replication counters.
type ClusterStats struct {
	SchemaVersion int               `json:"schema_version"`
	Shards        []ShardStats      `json:"shards"`
	Router        RouterStats       `json:"router"`
	Replication   *ReplicationStats `json:"replication,omitempty"`
}

// ShardStats pairs one shard's identity and health with its serve
// stats.
type ShardStats struct {
	ID    int   `json:"id"`
	Down  bool  `json:"down,omitempty"`
	Stats Stats `json:"stats"`
}

// RouterStats counts work done by the shard router itself.
type RouterStats struct {
	Requests        int64 `json:"requests"`
	BatchFanouts    int64 `json:"batch_fanouts"`
	PartialFailures int64 `json:"partial_failures"`
	RateLimited     int64 `json:"rate_limited"`
	DeadlineRejects int64 `json:"deadline_rejects"`
}

// ReplicationStats counts inter-shard model replication activity,
// summed over every replicator in the cluster.
type ReplicationStats struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesReceived  int64 `json:"bytes_received"`
	Applied        int64 `json:"applied"`
	Stale          int64 `json:"stale"`
	Reassemblies   int64 `json:"reassemblies"`
	PeerErrors     int64 `json:"peer_errors"`
}

// TopologyResponse is the wire form of GET /v1/shards: the cluster's
// shard layout plus each shard's replicated model versions.
type TopologyResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Shards        []ShardInfo `json:"shards"`
	VirtualNodes  int         `json:"virtual_nodes"`
}

// ShardInfo describes one shard in the topology.
type ShardInfo struct {
	ID     int            `json:"id"`
	Down   bool           `json:"down,omitempty"`
	Models []ModelVersion `json:"models,omitempty"`
}

// ModelVersion names one resident model version on a shard; versions
// are the registry generation counters that make swap propagation
// convergent.
type ModelVersion struct {
	Job     string `json:"job"`
	Env     string `json:"env"`
	Version uint64 `json:"version"`
}

// Error codes of the unified envelope. Codes are stable API: clients
// switch on them, messages are for humans.
const (
	CodeBadRequest       = "bad_request"       // 400: malformed body or missing fields
	CodeModelNotFound    = "model_not_found"   // 404: no model for (job, env)
	CodePayloadTooLarge  = "payload_too_large" // 413: body or batch over limit
	CodeRateLimited      = "rate_limited"      // 429: per-client token bucket empty
	CodeObserveCapacity  = "observe_capacity"  // 429: observation buffer full
	CodeObserveDisabled  = "observe_disabled"  // 503: no lifecycle attached
	CodeOverloaded       = "overloaded"        // 503: admission gate shed the request
	CodeDraining         = "draining"          // 503: server shutting down
	CodeShardUnavailable = "shard_unavailable" // 503 or per-item: owning shard down
	CodeDeadlineExceeded = "deadline_exceeded" // 504: budget ran out queued or mid-work
	CodeInternal         = "internal"          // 500: unexpected server fault
)

// Error is the unified error payload carried in the envelope
// {"error":{"code","message","retry_after_ms"}} and inline in per-item
// batch responses. Deadline-expiry (504) envelopes from a traced
// request additionally carry the trace ID and the spans recorded up to
// expiry, so "where did my budget go?" is answerable from the
// rejection itself.
type Error struct {
	Code         string        `json:"code"`
	Message      string        `json:"message"`
	RetryAfterMs int64         `json:"retry_after_ms,omitempty"`
	TraceID      string        `json:"trace_id,omitempty"`
	Spans        []SpanSummary `json:"spans,omitempty"`
}

// SpanSummary is the wire form of one recorded pipeline stage. Shard
// is -1 for stages that are not shard-specific — always serialized, so
// shard 0 stays distinguishable from "no shard".
type SpanSummary struct {
	Name      string  `json:"name"`
	Shard     int     `json:"shard"`
	StartUsec float64 `json:"start_usec"`
	DurUsec   float64 `json:"dur_usec"`
}

// TraceSummary is the wire form of one completed trace in
// GET /v1/debug/slow.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	AgeMs    int64         `json:"age_ms"`
	WallUsec float64       `json:"wall_usec"`
	Spans    []SpanSummary `json:"spans"`
}

// SlowTracesResponse is the wire form of GET /v1/debug/slow: the
// retained slowest traces, slowest first.
type SlowTracesResponse struct {
	SchemaVersion int            `json:"schema_version"`
	Traces        []TraceSummary `json:"traces"`
}

// Error implements the error interface so an *Error can travel through
// error-typed plumbing without losing its code.
func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	return e.Code + ": " + e.Message
}

// ErrorEnvelope is the body of every non-2xx /v1 response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// Errorf builds an *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithRetryAfter returns a copy of e carrying a retry hint rounded up
// to whole milliseconds (a hint of 0 would mean "immediately", which
// is never what a rejection intends).
func (e *Error) WithRetryAfter(d time.Duration) *Error {
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	out := *e
	out.RetryAfterMs = ms
	return &out
}

// WriteJSON writes v as the JSON body of a 200 response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// WriteError writes the unified envelope with the given HTTP status.
// When the error carries a retry hint, the conventional Retry-After
// header is set too (ceiled to whole seconds: 0 would mean "now"), so
// generic HTTP clients that know nothing of the envelope still back
// off correctly.
func WriteError(w http.ResponseWriter, status int, e *Error) {
	if e.RetryAfterMs > 0 {
		secs := (e.RetryAfterMs + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: e})
}

// DecodeError extracts the envelope from a non-2xx response body. A
// body that is not a well-formed envelope yields an *Error with
// CodeInternal and the raw body as message, so callers always get a
// typed error back.
func DecodeError(status int, body []byte) *Error {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	return &Error{Code: CodeInternal, Message: fmt.Sprintf("http %d: %s", status, body)}
}
