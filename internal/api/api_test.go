package api

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// roundTrip encodes v, decodes into a fresh value of the same type,
// and fails unless the result is deeply equal to the input.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(blob, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if got := out.Elem().Interface(); !reflect.DeepEqual(got, v) {
		t.Fatalf("%T round trip:\n in  %+v\n out %+v\n json %s", v, v, got, blob)
	}
}

func TestDTORoundTrips(t *testing.T) {
	props := []Property{{Name: "dataset_size_mb", Value: "10000"}, {Name: "node_type", Value: "m4.xlarge"}}
	pr := PredictRequest{Job: "sort", Env: "c3o", ScaleOut: 4, Essential: props, Optional: []Property{{Name: "jvm", Value: "11"}}}

	roundTrip(t, pr)
	roundTrip(t, PredictResponse{RuntimeSec: 42.5, Cached: true})
	roundTrip(t, PredictResponse{Error: &Error{Code: CodeModelNotFound, Message: "no model"}})
	roundTrip(t, BatchRequest{Requests: []PredictRequest{pr, pr}})
	roundTrip(t, BatchResponse{
		Responses: []PredictResponse{{RuntimeSec: 1}, {Error: &Error{Code: CodeShardUnavailable, Message: "shard 2 down"}}},
		Failed:    1,
	})
	roundTrip(t, ObserveRequest{PredictRequest: pr, RuntimeSec: 99.5})
	roundTrip(t, ObserveResponse{Accepted: true})
	roundTrip(t, AllocateRequest{
		Job: "sort", Env: "c3o", Essential: props,
		MinScaleOut: 2, MaxScaleOut: 16, Step: 2, Candidates: []int{2, 4, 8},
		DeadlineSec: 300, CostPerNodeHour: 0.25, SafetyMargin: 0.1,
		MinModelSamples: 5,
		Observations:    []ObservationPoint{{ScaleOut: 2, RuntimeSec: 400}},
	})
	roundTrip(t, AllocateResponse{
		ScaleOut: 8, PredictedSec: 250, Cost: 0.56, Feasible: true, Source: "model",
		MarginSec: 50, MarginFrac: 0.16,
		Curve: []CurvePoint{{ScaleOut: 8, PredictedSec: 250, SmoothedSec: 251, Cost: 0.56, MeetsSLO: true}},
	})
	roundTrip(t, Stats{
		SchemaVersion: StatsSchemaVersion,
		Requests:      10, Calls: 9, ResultHits: 5, ResultMisses: 4, ResultCacheLen: 3,
		MeanLatencyUsec: 120.5, ModelHits: 8, ModelMisses: 1, ModelLoads: 1, ModelSwaps: 2,
		Alloc:     AllocStats{Requests: 2, MeanLatencyUsec: 500},
		Lifecycle: &LifecycleStats{Observations: 7, Finetunes: 1, Swaps: 1},
		Store:     &StoreStats{WALAppends: 7, WALSegments: 1, WALActiveSeq: 3},
		LoadCtl:   &LoadCtlStats{RateLimited: 1, Admitted: 9, MeanQueueWaitUsec: 10},
	})
	roundTrip(t, ClusterStats{
		SchemaVersion: StatsSchemaVersion,
		Shards:        []ShardStats{{ID: 0, Stats: Stats{SchemaVersion: StatsSchemaVersion, Requests: 1}}, {ID: 1, Down: true, Stats: Stats{SchemaVersion: StatsSchemaVersion}}},
		Router:        RouterStats{Requests: 3, BatchFanouts: 1, PartialFailures: 1},
		Replication:   &ReplicationStats{FramesSent: 4, BytesSent: 512, Applied: 1, Stale: 1},
	})
	roundTrip(t, TopologyResponse{
		SchemaVersion: StatsSchemaVersion,
		VirtualNodes:  64,
		Shards: []ShardInfo{
			{ID: 0, Models: []ModelVersion{{Job: "sort", Env: "c3o", Version: 3}}},
			{ID: 1, Down: true},
		},
	})
	roundTrip(t, Stats{
		SchemaVersion: StatsSchemaVersion,
		Obs: &ObsStats{
			TracesSampled: 12, TracesFinished: 12, MetricSeries: 40,
			LatencyP50Usec: 110, LatencyP99Usec: 900, LatencyP999Usec: 2100,
		},
	})
	roundTrip(t, SlowTracesResponse{
		SchemaVersion: StatsSchemaVersion,
		Traces: []TraceSummary{{
			TraceID: "a1b2c3", AgeMs: 1200, WallUsec: 5400,
			Spans: []SpanSummary{
				{Name: "decode", Shard: -1, StartUsec: 0, DurUsec: 12},
				{Name: "predict", Shard: 2, StartUsec: 40, DurUsec: 5300},
			},
		}},
	})
	roundTrip(t, Error{
		Code: CodeDeadlineExceeded, Message: "budget expired queued",
		TraceID: "a1b2c3",
		Spans:   []SpanSummary{{Name: "gate_wait", Shard: -1, DurUsec: 9000}},
	})
}

// TestEnvelopeShape pins the exact JSON contract of the error envelope:
// {"error":{"code","message","retry_after_ms"}}.
func TestEnvelopeShape(t *testing.T) {
	w := httptest.NewRecorder()
	WriteError(w, 429, Errorf(CodeRateLimited, "client rate limit exceeded").WithRetryAfter(1500*time.Millisecond))

	if w.Code != 429 {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (1500ms ceiled to seconds)", got, "2")
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var raw map[string]map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	e, ok := raw["error"]
	if !ok {
		t.Fatalf("body missing top-level \"error\": %s", w.Body.String())
	}
	if e["code"] != CodeRateLimited {
		t.Fatalf("code = %v, want %q", e["code"], CodeRateLimited)
	}
	if e["message"] != "client rate limit exceeded" {
		t.Fatalf("message = %v", e["message"])
	}
	if e["retry_after_ms"] != float64(1500) {
		t.Fatalf("retry_after_ms = %v, want 1500", e["retry_after_ms"])
	}
}

func TestDecodeError(t *testing.T) {
	body := []byte(`{"error":{"code":"overloaded","message":"shed","retry_after_ms":1000}}`)
	e := DecodeError(503, body)
	if e.Code != CodeOverloaded || e.RetryAfterMs != 1000 {
		t.Fatalf("DecodeError = %+v", e)
	}
	// A non-envelope body still yields a typed error.
	e = DecodeError(500, []byte("boom"))
	if e.Code != CodeInternal || !strings.Contains(e.Message, "boom") {
		t.Fatalf("DecodeError fallback = %+v", e)
	}
}

// TestStatsFieldNamingIsSnakeCase guards the satellite fix: every JSON
// key in the stats schema is snake_case (lowercase with underscores),
// no lowercase-concatenated survivors like "loadctl".
func TestStatsFieldNamingIsSnakeCase(t *testing.T) {
	blob, err := json.Marshal(Stats{
		SchemaVersion: StatsSchemaVersion,
		Lifecycle:     &LifecycleStats{},
		Store:         &StoreStats{},
		LoadCtl:       &LoadCtlStats{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if _, bad := m["loadctl"]; bad {
		t.Fatal("stats still expose the pre-v2 \"loadctl\" key")
	}
	if _, ok := m["load_ctl"]; !ok {
		t.Fatal("stats missing \"load_ctl\" block")
	}
	if v, ok := m["schema_version"]; !ok || v != float64(StatsSchemaVersion) {
		t.Fatalf("schema_version = %v, want %d", v, StatsSchemaVersion)
	}
}

func TestErrorInterface(t *testing.T) {
	e := Errorf(CodeBadRequest, "missing job")
	if got := e.Error(); got != "bad_request: missing job" {
		t.Fatalf("Error() = %q", got)
	}
	var nilErr *Error
	if nilErr.Error() != "<nil>" {
		t.Fatal("nil *Error must not panic")
	}
}
