package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the sharded /v1 surface. Routes, DTOs, status codes,
// and the error envelope are identical to serve.(*Service).Handler() —
// including GET /metrics and GET /v1/debug/slow when an observability
// layer is attached — the only addition is GET /v1/shards, the topology
// endpoint. Rate limiting runs once at the router; admission gating
// runs per shard, so a hot shard sheds load without throttling its
// siblings.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		tr := c.startTrace(w, r)
		defer c.finishTrace(tr)
		t0 := tr.Clock()
		if !c.rateLimit(w, r) {
			return
		}
		tr.Record(obs.StageRateLimit, -1, t0)
		var in api.PredictRequest
		t0 = tr.Clock()
		if !serve.DecodeBody(w, r, &in) {
			return
		}
		tr.Record(obs.StageDecode, -1, t0)
		t0 = tr.Clock()
		req, err := serve.ToRequest(in)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		// The owner's result cache answers hits without touching its
		// gate, mirroring the single-shard bypass.
		n := c.nodes[c.ring.Owner(req.Key.Job, req.Key.Env)]
		if !n.down.Load() && n.Service.PeekCached(req.Key, req.Query) {
			tr.Record(obs.StageClassify, -1, t0)
			c.requests.Add(1)
			t0 = tr.Clock()
			resp := n.Service.PredictTraced(r.Context(), req.Key, req.Query, tr)
			tr.Record(obs.StageShardRoute, n.ID, t0)
			t0 = tr.Clock()
			api.WriteJSON(w, serve.ToAPIResponse(resp))
			tr.Record(obs.StageEncode, -1, t0)
			return
		}
		tr.Record(obs.StageClassify, -1, t0)
		ctx, cancel := serve.RequestContext(r, c.opts.MaxDeadline)
		defer cancel()
		resp := c.PredictTraced(ctx, req, tr)
		if resp.Err != nil {
			// Routing-layer failures (dead shard, saturated gate, blown
			// deadline) are HTTP-level errors; model-level failures stay
			// in the response body exactly like the single-shard handler.
			typed := serve.ToAPIError(resp.Err)
			switch typed.Code {
			case api.CodeShardUnavailable:
				api.WriteError(w, http.StatusServiceUnavailable, typed.WithRetryAfter(time.Second))
				return
			case api.CodeOverloaded:
				api.WriteError(w, http.StatusServiceUnavailable, typed)
				return
			case api.CodeDeadlineExceeded:
				c.deadlineRejects.Add(1)
				api.WriteError(w, http.StatusGatewayTimeout, attachTrace(typed, tr))
				return
			}
		}
		t0 = tr.Clock()
		api.WriteJSON(w, serve.ToAPIResponse(resp))
		tr.Record(obs.StageEncode, -1, t0)
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		tr := c.startTrace(w, r)
		defer c.finishTrace(tr)
		t0 := tr.Clock()
		if !c.rateLimit(w, r) {
			return
		}
		tr.Record(obs.StageRateLimit, -1, t0)
		var in api.BatchRequest
		t0 = tr.Clock()
		if !serve.DecodeBody(w, r, &in) {
			return
		}
		tr.Record(obs.StageDecode, -1, t0)
		if len(in.Requests) > serve.MaxBatchRequests {
			api.WriteError(w, http.StatusRequestEntityTooLarge,
				api.Errorf(api.CodePayloadTooLarge, "batch of %d requests exceeds limit %d", len(in.Requests), serve.MaxBatchRequests))
			return
		}
		t0 = tr.Clock()
		reqs := make([]serve.Request, len(in.Requests))
		resp := api.BatchResponse{Responses: make([]api.PredictResponse, len(in.Requests))}
		bad := make([]bool, len(in.Requests))
		for i, rj := range in.Requests {
			req, err := serve.ToRequest(rj)
			if err != nil {
				resp.Responses[i] = api.PredictResponse{Error: api.Errorf(api.CodeBadRequest, "%v", err)}
				bad[i] = true
				continue
			}
			reqs[i] = req
		}
		tr.Record(obs.StageClassify, -1, t0)
		ctx, cancel := serve.RequestContext(r, c.opts.MaxDeadline)
		defer cancel()
		var live []serve.Request
		var liveIdx []int
		for i, req := range reqs {
			if !bad[i] {
				live = append(live, req)
				liveIdx = append(liveIdx, i)
			}
		}
		t0 = tr.Clock()
		for j, out := range c.PredictBatchTraced(ctx, live, tr) {
			resp.Responses[liveIdx[j]] = serve.ToAPIResponse(out)
		}
		tr.Record(obs.StagePredict, -1, t0)
		if err := ctx.Err(); err != nil {
			c.deadlineRejects.Add(1)
			e := api.Errorf(api.CodeDeadlineExceeded, "shard: deadline exceeded: %v", err)
			api.WriteError(w, http.StatusGatewayTimeout, attachTrace(e, tr))
			return
		}
		for i := range resp.Responses {
			if resp.Responses[i].Error != nil {
				resp.Failed++
			}
		}
		t0 = tr.Clock()
		api.WriteJSON(w, resp)
		tr.Record(obs.StageEncode, -1, t0)
	})
	mux.HandleFunc("POST /v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		if !c.rateLimit(w, r) {
			return
		}
		var in api.AllocateRequest
		if !serve.DecodeBody(w, r, &in) {
			return
		}
		key, req, err := serve.ToAllocateRequest(in)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		ctx, cancel := serve.RequestContext(r, c.opts.MaxDeadline)
		defer cancel()
		res, err := c.Allocate(ctx, key, req)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, serve.ErrModelUnavailable) {
				code = http.StatusNotFound
			}
			c.writeStatusError(w, code, err)
			return
		}
		api.WriteJSON(w, serve.ToAllocateResponse(res))
	})
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		if !c.rateLimit(w, r) {
			return
		}
		var in api.ObserveRequest
		if !serve.DecodeBody(w, r, &in) {
			return
		}
		req, err := serve.ToRequest(in.PredictRequest)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		ctx, cancel := serve.RequestContext(r, c.opts.MaxDeadline)
		defer cancel()
		if err := c.Observe(ctx, req.Key, req.Query, in.RuntimeSec); err != nil {
			code := http.StatusBadRequest
			typed := serve.ToAPIError(err)
			switch {
			case errors.Is(err, serve.ErrObserveDisabled):
				code = http.StatusServiceUnavailable
			case errors.Is(err, serve.ErrObserveCapacity):
				code = http.StatusTooManyRequests
				typed = typed.WithRetryAfter(time.Second)
			default:
				code, typed = c.classifyError(err, typed)
			}
			api.WriteError(w, code, typed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.ObserveResponse{Accepted: true})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, c.StatsPayload())
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, c.Topology())
	})
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/debug/slow", c.handleSlowTraces)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			api.WriteError(w, http.StatusServiceUnavailable,
				api.Errorf(api.CodeDraining, "shard: draining").WithRetryAfter(time.Second))
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// rateLimit applies the router-level per-client limiter, if any.
func (c *Cluster) rateLimit(w http.ResponseWriter, r *http.Request) bool {
	if c.opts.Limiter == nil {
		return true
	}
	ok, retryAfter := c.opts.Limiter.Allow(serve.ClientKey(r), time.Now())
	if ok {
		return true
	}
	c.rateLimited.Add(1)
	api.WriteError(w, http.StatusTooManyRequests,
		api.Errorf(api.CodeRateLimited, "shard: client rate limit exceeded").WithRetryAfter(retryAfter))
	return false
}

// classifyError maps routing-layer failures onto HTTP status codes that
// match the single-shard handler's contract; anything already typed
// keeps its code.
func (c *Cluster) classifyError(err error, typed *api.Error) (int, *api.Error) {
	switch typed.Code {
	case api.CodeShardUnavailable:
		return http.StatusServiceUnavailable, typed.WithRetryAfter(time.Second)
	case api.CodeOverloaded:
		return http.StatusServiceUnavailable, typed
	case api.CodeDeadlineExceeded:
		c.deadlineRejects.Add(1)
		return http.StatusGatewayTimeout, typed
	case api.CodeModelNotFound:
		return http.StatusNotFound, typed
	}
	if serve.IsDeadline(err) {
		c.deadlineRejects.Add(1)
		return http.StatusGatewayTimeout, typed
	}
	return http.StatusBadRequest, typed
}

// writeStatusError writes err with a caller-suggested fallback status,
// overridden when the typed code demands a specific one.
func (c *Cluster) writeStatusError(w http.ResponseWriter, fallback int, err error) {
	typed := serve.ToAPIError(err)
	code, typed := c.classifyError(err, typed)
	if code == http.StatusBadRequest && fallback != 0 {
		code = fallback
	}
	api.WriteError(w, code, typed)
}
