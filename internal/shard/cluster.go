package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/allocate"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Node is one shard of the cluster: a complete serve.Service plus its
// own admission gate. A node can be marked down, at which point every
// in-flight and future dispatch to it fails fast with a typed
// shard_unavailable error instead of hanging the batch merge.
type Node struct {
	ID      int
	Service *serve.Service
	Gate    *loadctl.Gate // per-shard admission gate; nil disables gating

	down atomic.Bool

	// ctxMu guards the per-node lifetime context. Marking the node down
	// cancels it, which unblocks any dispatch currently inside the
	// node's service; marking it up again installs a fresh context.
	ctxMu  sync.Mutex
	ctx    context.Context
	cancel context.CancelFunc

	repl *Replicator
}

// NodeConfig describes one shard handed to New.
type NodeConfig struct {
	Service *serve.Service
	Gate    *loadctl.Gate
}

// Options tunes a Cluster.
type Options struct {
	// VirtualNodes is the per-shard virtual point count of the hash
	// ring (<= 0: DefaultVirtualNodes).
	VirtualNodes int
	// Limiter rate-limits per client at the router, before any body is
	// read or any shard is touched. Nil disables rate limiting.
	Limiter *loadctl.Limiter
	// MaxDeadline caps client-requested X-Deadline-Ms budgets
	// (0: serve.DefaultMaxDeadline).
	MaxDeadline time.Duration
	// FragmentSize bounds replication fragment payloads
	// (<= 0: DefaultFragmentSize).
	FragmentSize int
}

// Cluster routes the /v1 surface across N shards: single predictions
// and observations go to the owner of their (job, env) key, batches fan
// out per owning shard and merge in input order, and hot-swapped model
// versions replicate to every peer. The cluster's HTTP handler speaks
// byte-identical JSON to a single serve.Service handler — clients
// cannot tell one shard from eight.
type Cluster struct {
	ring  *Ring
	nodes []*Node
	opts  Options

	draining atomic.Bool

	requests        obs.Counter
	batchFanouts    obs.Counter
	partialFailures obs.Counter
	rateLimited     obs.Counter
	deadlineRejects obs.Counter

	obsRef atomic.Pointer[serve.Observability]
}

// New assembles a cluster over the given shards. At least one shard is
// required; a one-shard cluster is a valid (if pointless) degenerate
// case that routes everything to shard 0.
func New(nodes []NodeConfig, opts Options) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one node")
	}
	c := &Cluster{ring: NewRing(len(nodes), opts.VirtualNodes), opts: opts}
	for i, nc := range nodes {
		if nc.Service == nil {
			return nil, fmt.Errorf("shard: node %d has no service", i)
		}
		n := &Node{ID: i, Service: nc.Service, Gate: nc.Gate}
		n.ctx, n.cancel = context.WithCancel(context.Background())
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.nodes) }

// Owner maps a (job, env) key to its owning shard ID.
func (c *Cluster) Owner(job, env string) int { return c.ring.Owner(job, env) }

// Node returns shard i's node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// SetDraining flips drain mode on the router and every shard.
func (c *Cluster) SetDraining(v bool) {
	c.draining.Store(v)
	for _, n := range c.nodes {
		n.Service.SetDraining(v)
	}
}

// Draining reports whether shutdown drain has started.
func (c *Cluster) Draining() bool { return c.draining.Load() }

// MarkDown marks shard i down (or back up). Marking down cancels the
// node's lifetime context, so dispatches blocked inside the shard fail
// immediately and surface as shard_unavailable — a crashed shard
// mid-batch produces a partial-failure response, never a hung merge.
func (c *Cluster) MarkDown(i int, down bool) {
	n := c.nodes[i]
	n.ctxMu.Lock()
	defer n.ctxMu.Unlock()
	if down == n.down.Load() {
		return
	}
	n.down.Store(down)
	if down {
		n.cancel()
	} else {
		n.ctx, n.cancel = context.WithCancel(context.Background())
	}
}

// Down reports whether shard i is marked down.
func (c *Cluster) Down(i int) bool { return c.nodes[i].down.Load() }

// liveContext returns the node's current lifetime context, or false
// when the node is down.
func (n *Node) liveContext() (context.Context, bool) {
	n.ctxMu.Lock()
	defer n.ctxMu.Unlock()
	if n.down.Load() {
		return nil, false
	}
	return n.ctx, true
}

func errShardDown(id int) *api.Error {
	return api.Errorf(api.CodeShardUnavailable, "shard: shard %d unavailable", id)
}

// dispatchContext derives the context a shard call runs under: a child
// of the request context that is additionally canceled if the node goes
// down mid-call. The returned stop func must be called to release the
// watcher.
func dispatchContext(ctx context.Context, nctx context.Context) (context.Context, context.CancelFunc) {
	dctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(nctx, cancel)
	return dctx, func() { stop(); cancel() }
}

// admitOn passes the shard's admission gate at the given cost. A nil
// gate admits everything.
func (n *Node) admitOn(ctx context.Context, cost loadctl.Cost) (func(), error) {
	if n.Gate == nil {
		return func() {}, nil
	}
	if err := n.Gate.Acquire(ctx, cost); err != nil {
		return nil, err
	}
	return n.Gate.Release, nil
}

// gateError maps a gate admission failure to the typed wire error.
func gateError(err error) *api.Error {
	if serve.IsDeadline(err) {
		return api.Errorf(api.CodeDeadlineExceeded, "shard: deadline exceeded while queued: %v", err)
	}
	return api.Errorf(api.CodeOverloaded, "shard: %v", err).WithRetryAfter(time.Second)
}

// Predict routes one prediction to the owner of its key.
func (c *Cluster) Predict(ctx context.Context, req serve.Request) serve.Response {
	return c.PredictTraced(ctx, req, nil)
}

// PredictTraced is Predict with an optional request trace: the dispatch
// to the owning shard is recorded as a shard_route span tagged with the
// shard ID, and the trace rides into the shard's service so the
// registry_load and predict stages nest under the route.
func (c *Cluster) PredictTraced(ctx context.Context, req serve.Request, tr *obs.Trace) serve.Response {
	c.requests.Add(1)
	return c.predictOn(ctx, c.nodes[c.ring.Owner(req.Key.Job, req.Key.Env)], req, tr)
}

func (c *Cluster) predictOn(ctx context.Context, n *Node, req serve.Request, tr *obs.Trace) serve.Response {
	t0 := tr.Clock()
	defer func() { tr.Record(obs.StageShardRoute, n.ID, t0) }()
	nctx, ok := n.liveContext()
	if !ok {
		return serve.Response{Err: errShardDown(n.ID)}
	}
	dctx, done := dispatchContext(ctx, nctx)
	defer done()
	cost := loadctl.CostHeavy
	if n.Service.Registry().Resident(req.Key) {
		cost = loadctl.CostCheap
	}
	release, err := n.admitOn(dctx, cost)
	if err != nil {
		if n.down.Load() {
			return serve.Response{Err: errShardDown(n.ID)}
		}
		return serve.Response{Err: gateError(err)}
	}
	defer release()
	resp := n.Service.PredictTraced(dctx, req.Key, req.Query, tr)
	if resp.Err != nil && n.down.Load() {
		resp.Err = errShardDown(n.ID)
	}
	return resp
}

// PredictBatch fans a batch out to the owning shards in parallel and
// merges the per-shard answers back into input order. A shard that is
// down — or crashes mid-batch — contributes typed shard_unavailable
// errors for exactly its own items; the rest of the batch completes
// normally.
func (c *Cluster) PredictBatch(ctx context.Context, reqs []serve.Request) []serve.Response {
	return c.PredictBatchTraced(ctx, reqs, nil)
}

// PredictBatchTraced is PredictBatch with an optional request trace.
// Each per-shard dispatch records its own shard_route span tagged with
// that shard's ID, so a fanned-out batch shows one span per shard it
// touched; the trace's span slots are claimed atomically, making the
// concurrent recording safe.
func (c *Cluster) PredictBatchTraced(ctx context.Context, reqs []serve.Request, tr *obs.Trace) []serve.Response {
	c.requests.Add(int64(len(reqs)))
	out := make([]serve.Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// Group item indices by owning shard; the index lists are the merge
	// plan that restores input order after the fan-out.
	byShard := make(map[int][]int)
	for i, r := range reqs {
		sid := c.ring.Owner(r.Key.Job, r.Key.Env)
		byShard[sid] = append(byShard[sid], i)
	}
	if len(byShard) > 1 {
		c.batchFanouts.Add(1)
	}
	var wg sync.WaitGroup
	for sid, idxs := range byShard {
		wg.Add(1)
		go func(n *Node, idxs []int) {
			defer wg.Done()
			sub := make([]serve.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			for j, r := range c.batchOn(ctx, n, sub, tr) {
				out[idxs[j]] = r
			}
		}(c.nodes[sid], idxs)
	}
	wg.Wait()
	failed := 0
	for i := range out {
		if out[i].Err != nil {
			failed++
		}
	}
	if failed > 0 && failed < len(out) {
		c.partialFailures.Add(1)
	}
	return out
}

func (c *Cluster) batchOn(ctx context.Context, n *Node, sub []serve.Request, tr *obs.Trace) []serve.Response {
	t0 := tr.Clock()
	defer func() { tr.Record(obs.StageShardRoute, n.ID, t0) }()
	fill := func(err error) []serve.Response {
		rs := make([]serve.Response, len(sub))
		for i := range rs {
			rs[i].Err = err
		}
		return rs
	}
	nctx, ok := n.liveContext()
	if !ok {
		return fill(errShardDown(n.ID))
	}
	dctx, done := dispatchContext(ctx, nctx)
	defer done()
	release, err := n.admitOn(dctx, loadctl.CostHeavy)
	if err != nil {
		if n.down.Load() {
			return fill(errShardDown(n.ID))
		}
		return fill(gateError(err))
	}
	defer release()
	rs := n.Service.PredictBatch(dctx, sub)
	if n.down.Load() {
		// The shard died mid-batch: anything it failed on is reported as
		// the shard's unavailability, not the request's fault.
		for i := range rs {
			if rs[i].Err != nil {
				rs[i].Err = errShardDown(n.ID)
			}
		}
	}
	return rs
}

// Observe forwards an observation to the owner of its key, so each
// shard's lifecycle controller and WAL see exactly the observations of
// the models it serves.
func (c *Cluster) Observe(ctx context.Context, key serve.ModelKey, q core.Query, runtimeSec float64) error {
	c.requests.Add(1)
	n := c.nodes[c.ring.Owner(key.Job, key.Env)]
	nctx, ok := n.liveContext()
	if !ok {
		return errShardDown(n.ID)
	}
	dctx, done := dispatchContext(ctx, nctx)
	defer done()
	release, err := n.admitOn(dctx, loadctl.CostCheap)
	if err != nil {
		if n.down.Load() {
			return errShardDown(n.ID)
		}
		return gateError(err)
	}
	defer release()
	if err := n.Service.Observe(dctx, key, q, runtimeSec); err != nil {
		if n.down.Load() {
			return errShardDown(n.ID)
		}
		return err
	}
	return nil
}

// Allocate forwards an allocation request to the owner of its key.
func (c *Cluster) Allocate(ctx context.Context, key serve.ModelKey, req allocate.Request) (*allocate.Result, error) {
	c.requests.Add(1)
	n := c.nodes[c.ring.Owner(key.Job, key.Env)]
	nctx, ok := n.liveContext()
	if !ok {
		return nil, errShardDown(n.ID)
	}
	dctx, done := dispatchContext(ctx, nctx)
	defer done()
	release, err := n.admitOn(dctx, loadctl.CostHeavy)
	if err != nil {
		if n.down.Load() {
			return nil, errShardDown(n.ID)
		}
		return nil, gateError(err)
	}
	defer release()
	res, err := n.Service.Allocate(dctx, key, req)
	if err != nil && n.down.Load() {
		return nil, errShardDown(n.ID)
	}
	return res, err
}

// EnableReplication builds a replicator per node and connects every
// pair over in-process pipes. Each connection starts with a full-state
// snapshot push in both directions, so replication enabled after models
// are already resident still converges.
func (c *Cluster) EnableReplication() {
	for _, n := range c.nodes {
		n.repl = c.newReplicator(n)
	}
	for i := 0; i < len(c.nodes); i++ {
		for j := i + 1; j < len(c.nodes); j++ {
			a, b := net.Pipe()
			c.nodes[i].repl.AddPeer(a)
			c.nodes[j].repl.AddPeer(b)
		}
	}
}

// newReplicator wires a Replicator to node n's registry: apply goes
// through Publish (which enforces the never-older rule) and invalidates
// memoized results on success; snapshot serializes every resident
// version.
func (c *Cluster) newReplicator(n *Node) *Replicator {
	apply := func(job, env string, version uint64, blob []byte) error {
		m, err := core.Load(bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("shard %d: decoding replicated model %s@%s v%d: %w", n.ID, job, env, version, err)
		}
		key := serve.ModelKey{Job: job, Env: env}
		if !n.Service.Registry().Publish(key, version, m) {
			return ErrStale
		}
		// The shard now answers from a different model version: memoized
		// results of the old one must not outlive it.
		n.Service.InvalidateResults(key)
		return nil
	}
	snapshot := func() []VersionedBlob {
		return snapshotRegistry(n.Service)
	}
	return NewReplicator(n.ID, apply, snapshot, c.opts.FragmentSize)
}

// snapshotRegistry serializes every resident model version of a
// service, the payload of a full-state push to a reconnecting peer.
func snapshotRegistry(svc *serve.Service) []VersionedBlob {
	resident := svc.Registry().ResidentVersions()
	out := make([]VersionedBlob, 0, len(resident))
	for key := range resident {
		ref, err := svc.Registry().GetRef(context.Background(), key)
		if err != nil {
			continue // evicted between snapshot and read: nothing to push
		}
		cm, err := ref.Model.CloneCore()
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := cm.Save(&buf); err != nil {
			continue
		}
		out = append(out, VersionedBlob{Job: key.Job, Env: key.Env, Version: ref.Version, Blob: buf.Bytes()})
	}
	return out
}

// Broadcast ships a freshly installed model version from shard `from`
// to every peer. The lifecycle controller's OnInstall hook is the
// caller: a hot swap on one shard becomes resident everywhere.
func (c *Cluster) Broadcast(from int, key serve.ModelKey, version uint64, blob []byte) {
	if r := c.nodes[from].repl; r != nil {
		r.Broadcast(VersionedBlob{Job: key.Job, Env: key.Env, Version: version, Blob: blob})
	}
}

// RestartReplication tears down node i's replicator (simulating — or
// handling — a replica restart) and reconnects it to every live peer.
// The fresh connections trigger full-state pushes in both directions,
// so a replica that went away mid-replication converges to the latest
// generation of everything.
func (c *Cluster) RestartReplication(i int) {
	n := c.nodes[i]
	if n.repl != nil {
		n.repl.Close()
	}
	n.repl = c.newReplicator(n)
	for _, peer := range c.nodes {
		if peer == n || peer.repl == nil {
			continue
		}
		a, b := net.Pipe()
		n.repl.AddPeer(a)
		peer.repl.AddPeer(b)
	}
}

// CloseReplication shuts down every replicator.
func (c *Cluster) CloseReplication() {
	for _, n := range c.nodes {
		if n.repl != nil {
			n.repl.Close()
			n.repl = nil
		}
	}
}

// ReplicationStats aggregates the replication counters across shards,
// or nil when replication is not enabled.
func (c *Cluster) ReplicationStats() *api.ReplicationStats {
	var agg api.ReplicationStats
	any := false
	for _, n := range c.nodes {
		if n.repl == nil {
			continue
		}
		any = true
		st := n.repl.Stats()
		agg.FramesSent += st.FramesSent
		agg.FramesReceived += st.FramesReceived
		agg.BytesSent += st.BytesSent
		agg.BytesReceived += st.BytesReceived
		agg.Applied += st.Applied
		agg.Stale += st.Stale
		agg.Reassemblies += st.Reassemblies
		agg.PeerErrors += st.PeerErrors
	}
	if !any {
		return nil
	}
	return &agg
}

// StatsPayload snapshots the whole cluster in wire form, the body of
// GET /v1/stats on the sharded handler.
func (c *Cluster) StatsPayload() api.ClusterStats {
	out := api.ClusterStats{
		SchemaVersion: api.StatsSchemaVersion,
		Router: api.RouterStats{
			Requests:        c.requests.Load(),
			BatchFanouts:    c.batchFanouts.Load(),
			PartialFailures: c.partialFailures.Load(),
			RateLimited:     c.rateLimited.Load(),
			DeadlineRejects: c.deadlineRejects.Load(),
		},
		Replication: c.ReplicationStats(),
	}
	for _, n := range c.nodes {
		out.Shards = append(out.Shards, api.ShardStats{
			ID:    n.ID,
			Down:  n.down.Load(),
			Stats: n.Service.StatsPayload(),
		})
	}
	return out
}

// Topology snapshots the ring and per-shard resident models, the body
// of GET /v1/shards.
func (c *Cluster) Topology() api.TopologyResponse {
	out := api.TopologyResponse{
		SchemaVersion: api.StatsSchemaVersion,
		VirtualNodes:  c.ring.VirtualNodes(),
	}
	for _, n := range c.nodes {
		info := api.ShardInfo{ID: n.ID, Down: n.down.Load()}
		resident := n.Service.Registry().ResidentVersions()
		for key, v := range resident {
			info.Models = append(info.Models, api.ModelVersion{Job: key.Job, Env: key.Env, Version: v})
		}
		sort.Slice(info.Models, func(i, j int) bool {
			a, b := info.Models[i], info.Models[j]
			if a.Job != b.Job {
				return a.Job < b.Job
			}
			return a.Env < b.Env
		})
		out.Shards = append(out.Shards, info)
	}
	return out
}
