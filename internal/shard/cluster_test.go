package shard

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/loadctl"
	"repro/internal/serve"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PropertySize = 16
	cfg.EncodingDim = 3
	cfg.EncoderHidden = 6
	cfg.ScaleOutHidden = 8
	cfg.ScaleOutDim = 4
	cfg.PredictorHidden = 6
	cfg.PretrainEpochs = 25
	cfg.Seed = 7
	return cfg
}

func essentialProps(sizeMB int) []encoding.Property {
	return []encoding.Property{
		{Name: "dataset_size_mb", Value: strconv.Itoa(sizeMB)},
		{Name: "dataset_characteristics", Value: "uniform"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "node_type", Value: "m4.xlarge"},
	}
}

func testQuery(scaleOut, sizeMB int) core.Query {
	return core.Query{
		ScaleOut:  scaleOut,
		Essential: essentialProps(sizeMB),
		Optional: []encoding.Property{
			{Name: "memory_mb", Value: "16384", Optional: true},
			{Name: "cpu_cores", Value: "4", Optional: true},
		},
	}
}

// pretrainedBytes serializes one tiny pre-trained model, memoized so
// every test shares a single training run.
var pretrainedBytes = func() func(t testing.TB) []byte {
	var once sync.Once
	var blob []byte
	return func(t testing.TB) []byte {
		once.Do(func() {
			m, err := core.New(testConfig())
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			var samples []core.Sample
			for _, size := range []int{10000, 14000, 18000} {
				for x := 2; x <= 12; x += 2 {
					samples = append(samples, core.Sample{
						ScaleOut:   x,
						Essential:  essentialProps(size),
						Optional:   testQuery(x, size).Optional,
						RuntimeSec: 30 + 400/float64(x) + 1.2*float64(x),
					})
				}
			}
			if _, err := m.Pretrain(samples); err != nil {
				t.Fatalf("Pretrain: %v", err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			blob = buf.Bytes()
		})
		return blob
	}
}()

func testModel(t testing.TB) *core.Model {
	t.Helper()
	m, err := core.Load(bytes.NewReader(pretrainedBytes(t)))
	if err != nil {
		t.Fatalf("core.Load: %v", err)
	}
	return m
}

// newTestCluster builds an N-shard cluster whose loader serves the
// shared pre-trained model for every key. gates may be nil for an
// ungated cluster.
func newTestCluster(t *testing.T, shards int, gates []*loadctl.Gate, opts Options) *Cluster {
	t.Helper()
	nodes := make([]NodeConfig, shards)
	for i := range nodes {
		nodes[i].Service = serve.NewService(func(key serve.ModelKey) (*core.Model, error) {
			return core.Load(bytes.NewReader(pretrainedBytes(t)))
		}, serve.Options{ModelCap: 64})
		if gates != nil {
			nodes[i].Gate = gates[i]
		}
	}
	c, err := New(nodes, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func shardKey(job string, i int) serve.ModelKey {
	return serve.ModelKey{Job: job, Env: fmt.Sprintf("env-%d", i)}
}

// keyOwnedBy finds a key the ring assigns to the wanted shard.
func keyOwnedBy(t *testing.T, c *Cluster, want int) serve.ModelKey {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := shardKey("sort", i)
		if c.Owner(k.Job, k.Env) == want {
			return k
		}
	}
	t.Fatalf("no key owned by shard %d in 10000 candidates", want)
	return serve.ModelKey{}
}

func TestClusterRoutesByOwner(t *testing.T) {
	c := newTestCluster(t, 4, nil, Options{})
	ctx := context.Background()
	keys := make([]serve.ModelKey, 12)
	for i := range keys {
		keys[i] = shardKey("sort", i)
		resp := c.Predict(ctx, serve.Request{Key: keys[i], Query: testQuery(4, 10000)})
		if resp.Err != nil {
			t.Fatalf("predict %v: %v", keys[i], resp.Err)
		}
	}
	// Each model must be resident on exactly its owner.
	for _, k := range keys {
		owner := c.Owner(k.Job, k.Env)
		for s := 0; s < c.Shards(); s++ {
			_, resident := c.Node(s).Service.Registry().ResidentVersions()[k]
			if resident != (s == owner) {
				t.Fatalf("key %v resident=%v on shard %d, owner is %d", k, resident, s, owner)
			}
		}
	}
}

func TestClusterBatchMergesInOrder(t *testing.T) {
	c := newTestCluster(t, 3, nil, Options{})
	ctx := context.Background()

	var reqs []serve.Request
	for i := 0; i < 9; i++ {
		reqs = append(reqs, serve.Request{Key: shardKey("sort", i), Query: testQuery(2+i, 10000)})
	}
	out := c.PredictBatch(ctx, reqs)
	if len(out) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(out), len(reqs))
	}
	for i, r := range out {
		if r.Err != nil || r.RuntimeSec <= 0 {
			t.Fatalf("response %d = %+v, want success", i, r)
		}
		// The merged slot must hold the answer for its own request:
		// re-asking the single-predict path (now cached) must agree.
		direct := c.Predict(ctx, reqs[i])
		if direct.RuntimeSec != r.RuntimeSec {
			t.Fatalf("response %d = %v, direct predict = %v: merge order broken", i, r.RuntimeSec, direct.RuntimeSec)
		}
	}
}

// TestClusterCrashMidBatchPartialFailure: a shard that dies while batch
// items are queued on its gate surfaces typed shard_unavailable errors
// for exactly its items — the merge completes, nothing hangs.
func TestClusterCrashMidBatchPartialFailure(t *testing.T) {
	gates := []*loadctl.Gate{
		loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 4, MaxQueue: 16, MaxWait: 10 * time.Second}),
		loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 16, MaxWait: 10 * time.Second}),
	}
	c := newTestCluster(t, 2, gates, Options{})
	ctx := context.Background()

	k0 := keyOwnedBy(t, c, 0)
	k1 := keyOwnedBy(t, c, 1)

	// Occupy shard 1's only slot so the batch's shard-1 group queues.
	if !gates[1].TryAcquire() {
		t.Fatal("could not occupy shard 1's gate")
	}
	defer gates[1].Release()

	done := make(chan []serve.Response, 1)
	reqs := []serve.Request{
		{Key: k0, Query: testQuery(2, 10000)},
		{Key: k1, Query: testQuery(4, 10000)},
		{Key: k0, Query: testQuery(6, 10000)},
		{Key: k1, Query: testQuery(8, 10000)},
	}
	go func() { done <- c.PredictBatch(ctx, reqs) }()

	// Wait until the shard-1 group is queued on the gate, then kill the
	// shard.
	waitFor(t, 2*time.Second, "batch group to queue on shard 1", func() bool {
		return gates[1].Stats().Waiting > 0
	})
	c.MarkDown(1, true)

	var out []serve.Response
	select {
	case out = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch merge hung after shard crash")
	}
	for i, r := range out {
		owner := c.Owner(reqs[i].Key.Job, reqs[i].Key.Env)
		if owner == 0 {
			if r.Err != nil {
				t.Fatalf("item %d (live shard) failed: %v", i, r.Err)
			}
			continue
		}
		var typed *api.Error
		if !asAPIError(r.Err, &typed) || typed.Code != api.CodeShardUnavailable {
			t.Fatalf("item %d (dead shard) error = %v, want code %s", i, r.Err, api.CodeShardUnavailable)
		}
	}
	if got := c.StatsPayload().Router.PartialFailures; got != 1 {
		t.Fatalf("partial failures = %d, want 1", got)
	}
}

// countObserver counts observations per shard service.
type countObserver struct{ n atomic.Int64 }

func (o *countObserver) Observe(_ context.Context, _ serve.ModelKey, _ core.Query, runtimeSec float64) error {
	if runtimeSec <= 0 {
		return fmt.Errorf("runtime must be positive")
	}
	o.n.Add(1)
	return nil
}

func TestClusterObserveRoutesToOwner(t *testing.T) {
	c := newTestCluster(t, 3, nil, Options{})
	obs := make([]*countObserver, c.Shards())
	for i := range obs {
		obs[i] = &countObserver{}
		c.Node(i).Service.AttachObserver(obs[i])
	}
	ctx := context.Background()
	want := make([]int64, c.Shards())
	for i := 0; i < 12; i++ {
		k := shardKey("grep", i)
		if err := c.Observe(ctx, k, testQuery(4, 10000), 55.5); err != nil {
			t.Fatalf("observe %v: %v", k, err)
		}
		want[c.Owner(k.Job, k.Env)]++
	}
	for s := range obs {
		if got := obs[s].n.Load(); got != want[s] {
			t.Fatalf("shard %d saw %d observations, want %d", s, got, want[s])
		}
	}
}

// TestClusterReplicationEndToEnd: a version published on one shard
// becomes resident on every peer; a replica that dies mid-replication
// and restarts converges to the latest generation; stale re-deliveries
// never move a replica backwards.
func TestClusterReplicationEndToEnd(t *testing.T) {
	c := newTestCluster(t, 3, nil, Options{FragmentSize: 512})
	c.EnableReplication()
	defer c.CloseReplication()

	key := serve.ModelKey{Job: "sort", Env: "c3o"}
	blob := pretrainedBytes(t)

	// Publish v2 on shard 0 and broadcast, as the lifecycle OnInstall
	// hook would after a hot swap.
	if !c.Node(0).Service.Registry().Publish(key, 2, testModel(t)) {
		t.Fatal("publish v2 on shard 0 refused")
	}
	c.Broadcast(0, key, 2, blob)
	for s := 1; s < 3; s++ {
		s := s
		waitFor(t, 5*time.Second, fmt.Sprintf("shard %d to hold v2", s), func() bool {
			return c.Node(s).Service.Registry().ResidentVersions()[key] == 2
		})
	}

	// Shard 2's replicator dies; a newer version ships meanwhile.
	c.nodes[2].repl.Close()
	if !c.Node(0).Service.Registry().Publish(key, 3, testModel(t)) {
		t.Fatal("publish v3 refused")
	}
	c.Broadcast(0, key, 3, blob)
	waitFor(t, 5*time.Second, "shard 1 to hold v3", func() bool {
		return c.Node(1).Service.Registry().ResidentVersions()[key] == 3
	})
	if got := c.Node(2).Service.Registry().ResidentVersions()[key]; got != 2 {
		t.Fatalf("dead shard moved to v%d without a link", got)
	}

	// Restart: reconnects trigger full-state pushes; the replica
	// converges to the latest generation.
	c.RestartReplication(2)
	waitFor(t, 5*time.Second, "restarted shard to converge to v3", func() bool {
		return c.Node(2).Service.Registry().ResidentVersions()[key] == 3
	})

	// A stale rebroadcast is refused everywhere: versions stay at 3.
	c.Broadcast(0, key, 2, blob)
	time.Sleep(50 * time.Millisecond)
	for s := 1; s < 3; s++ {
		if got := c.Node(s).Service.Registry().ResidentVersions()[key]; got != 3 {
			t.Fatalf("shard %d regressed to v%d after stale rebroadcast", s, got)
		}
	}
	if st := c.ReplicationStats(); st == nil || st.Applied < 3 || st.Stale < 1 {
		t.Fatalf("replication stats = %+v, want >=3 applied and >=1 stale", st)
	}
}

func asAPIError(err error, target **api.Error) bool {
	if err == nil {
		return false
	}
	if e, ok := err.(*api.Error); ok {
		*target = e
		return true
	}
	return false
}
