package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/loadctl"
	"repro/internal/serve"
)

func apiRequest(key serve.ModelKey, scaleOut int) api.PredictRequest {
	return api.PredictRequest{
		Job:      key.Job,
		Env:      key.Env,
		ScaleOut: scaleOut,
		Essential: []api.Property{
			{Name: "dataset_size_mb", Value: "10000"},
			{Name: "dataset_characteristics", Value: "uniform"},
			{Name: "job_parameters", Value: "--iterations 100"},
			{Name: "node_type", Value: "m4.xlarge"},
		},
		Optional: []api.Property{
			{Name: "memory_mb", Value: "16384"},
			{Name: "cpu_cores", Value: "4"},
		},
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func decodeEnvelope(t *testing.T, raw []byte) *api.Error {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		t.Fatalf("body %q is not an error envelope (err %v)", raw, err)
	}
	return env.Error
}

func TestClusterHTTPEndToEnd(t *testing.T) {
	c := newTestCluster(t, 2, nil, Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	k1 := keyOwnedBy(t, c, 1)

	// Predict routes to the owner and answers the standard DTO.
	code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k1, 4))
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, raw)
	}
	var pr api.PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil || pr.Error != nil || pr.RuntimeSec <= 0 {
		t.Fatalf("predict response %s (err %v)", raw, err)
	}
	if _, ok := c.Node(1).Service.Registry().ResidentVersions()[k1]; !ok {
		t.Fatalf("model %v not resident on its owner after predict", k1)
	}

	// Batch across both shards merges in order; a malformed item fails
	// in place without failing the batch.
	batch := api.BatchRequest{Requests: []api.PredictRequest{
		apiRequest(k0, 2), apiRequest(k1, 4), {Job: ""}, apiRequest(k0, 6),
	}}
	code, raw = postJSON(t, srv.URL+"/v1/predict/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	if len(br.Responses) != 4 || br.Failed != 1 {
		t.Fatalf("batch = %d responses, %d failed, want 4/1", len(br.Responses), br.Failed)
	}
	for _, i := range []int{0, 1, 3} {
		if br.Responses[i].Error != nil {
			t.Fatalf("batch item %d failed: %+v", i, br.Responses[i].Error)
		}
	}
	if br.Responses[2].Error == nil || br.Responses[2].Error.Code != api.CodeBadRequest {
		t.Fatalf("malformed item error = %+v, want %s", br.Responses[2].Error, api.CodeBadRequest)
	}

	// Stats: versioned cluster schema with one block per shard.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var st api.ClusterStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.SchemaVersion != api.StatsSchemaVersion || len(st.Shards) != 2 {
		t.Fatalf("stats schema %d, %d shards, want %d/2", st.SchemaVersion, len(st.Shards), api.StatsSchemaVersion)
	}
	if st.Router.Requests == 0 {
		t.Fatal("router requests not counted")
	}

	// Topology names each shard's resident models.
	resp, err = http.Get(srv.URL + "/v1/shards")
	if err != nil {
		t.Fatalf("GET shards: %v", err)
	}
	var topo api.TopologyResponse
	err = json.NewDecoder(resp.Body).Decode(&topo)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode topology: %v", err)
	}
	if len(topo.Shards) != 2 || topo.VirtualNodes != DefaultVirtualNodes {
		t.Fatalf("topology = %+v", topo)
	}
	found := false
	for _, m := range topo.Shards[1].Models {
		if m.Job == k1.Job && m.Env == k1.Env {
			found = true
		}
	}
	if !found {
		t.Fatalf("topology shard 1 models %+v missing %v", topo.Shards[1].Models, k1)
	}
}

func TestClusterHTTPDownShardIs503(t *testing.T) {
	c := newTestCluster(t, 2, nil, Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k1 := keyOwnedBy(t, c, 1)
	c.MarkDown(1, true)

	code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k1, 4))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("predict to down shard: status %d: %s", code, raw)
	}
	e := decodeEnvelope(t, raw)
	if e.Code != api.CodeShardUnavailable || e.RetryAfterMs <= 0 {
		t.Fatalf("envelope = %+v, want %s with retry hint", e, api.CodeShardUnavailable)
	}

	// The sibling shard keeps serving.
	k0 := keyOwnedBy(t, c, 0)
	if code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k0, 4)); code != http.StatusOK {
		t.Fatalf("live shard status %d: %s", code, raw)
	}

	// Recovery: marking the shard back up restores service.
	c.MarkDown(1, false)
	if code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k1, 4)); code != http.StatusOK {
		t.Fatalf("recovered shard status %d: %s", code, raw)
	}
}

func TestClusterHTTPRateLimitAndDrain(t *testing.T) {
	limiter := loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1, Burst: 2})
	c := newTestCluster(t, 2, nil, Options{Limiter: limiter})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	limited := false
	for i := 0; i < 10; i++ {
		code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k0, 2+i))
		if code == http.StatusTooManyRequests {
			e := decodeEnvelope(t, raw)
			if e.Code != api.CodeRateLimited || e.RetryAfterMs <= 0 {
				t.Fatalf("429 envelope = %+v", e)
			}
			limited = true
			break
		}
	}
	if !limited {
		t.Fatal("burst of 10 never rate limited at burst 2")
	}
	if c.StatsPayload().Router.RateLimited == 0 {
		t.Fatal("router rate-limited counter not incremented")
	}

	c.SetDraining(true)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, buf.Bytes()); e.Code != api.CodeDraining {
		t.Fatalf("healthz envelope = %+v", e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz missing Retry-After header")
	}
}

func TestClusterHTTPDeadline(t *testing.T) {
	// Saturate the owner shard's single-slot gate so the request queues
	// until its deadline budget lapses.
	gates := []*loadctl.Gate{
		loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 8, MaxWait: 10 * time.Second}),
		loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 8, MaxWait: 10 * time.Second}),
	}
	c := newTestCluster(t, 2, gates, Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	owner := c.Owner(k0.Job, k0.Env)
	if !gates[owner].TryAcquire() {
		t.Fatal("could not occupy the owner gate")
	}
	defer gates[owner].Release()

	b, _ := json.Marshal(apiRequest(k0, 4))
	req, err := http.NewRequest("POST", srv.URL+"/v1/predict", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set(api.DeadlineHeader, "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if e := decodeEnvelope(t, buf.Bytes()); e.Code != api.CodeDeadlineExceeded {
		t.Fatalf("envelope = %+v, want %s", e, api.CodeDeadlineExceeded)
	}
}
