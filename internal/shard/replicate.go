package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/api"
)

// The inter-shard replication protocol ships hot-swapped model
// versions between peers as length-prefixed CRC-framed binary
// messages, the same framing discipline as internal/store's WAL
// records: u32 LE payload length, u32 LE CRC32C of the payload, then
// the payload. A model blob larger than one frame is fragmented and
// reassembled in order on the receiving side; every fragment names the
// (job, env, version) it belongs to, so a torn or interleaved stream
// is detected, dropped, and recovered from rather than mis-assembled.
//
// Convergence comes from the registry's version counters, not the
// transport: the receiver applies a completed blob through
// Registry.Publish, which refuses any version not strictly newer than
// the resident one. Duplicate deliveries, reordered announcements, and
// full-state replays on reconnect are therefore all idempotent — a
// replica never moves backwards.

// castagnoli is the CRC32C table, matching the WAL's frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// replFrameHeaderLen prefixes every frame: payload length (u32 LE)
	// then CRC32C of the payload (u32 LE).
	replFrameHeaderLen = 8
	// DefaultFragmentSize bounds the model-blob chunk carried by one
	// fragment payload. Model blobs (tens of KB to a few MB) typically
	// span several frames, exercising reassembly on every swap.
	DefaultFragmentSize = 64 << 10
	// maxReplPayload bounds a received frame's claimed payload length
	// so a corrupt length prefix cannot force a giant allocation.
	maxReplPayload = 4 << 20
	// maxBlobLen bounds a fragment's claimed total blob length.
	maxBlobLen = 256 << 20
	// maxKeyLen bounds job/env strings inside messages.
	maxKeyLen = 4096
)

// Message types.
const (
	msgHello    = 1 // peer handshake: uvarint shard ID
	msgFragment = 2 // one chunk of a versioned model blob
)

// appendFrame wraps payload in the length+CRC header.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// readFrame reads one frame from r and returns its validated payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [replFrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxReplPayload {
		return nil, fmt.Errorf("shard: replication frame claims %d bytes (max %d)", length, maxReplPayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("shard: replication frame CRC mismatch")
	}
	return payload, nil
}

// fragMeta identifies the blob a fragment belongs to.
type fragMeta struct {
	job, env  string
	version   uint64
	totalLen  uint64
	fragIndex uint64
	fragCount uint64
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeFragment builds one fragment payload.
func encodeFragment(m fragMeta, chunk []byte) []byte {
	dst := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(m.job)+len(m.env)+4*binary.MaxVarintLen64+len(chunk))
	dst = append(dst, msgFragment)
	dst = appendString(dst, m.job)
	dst = appendString(dst, m.env)
	dst = binary.AppendUvarint(dst, m.version)
	dst = binary.AppendUvarint(dst, m.totalLen)
	dst = binary.AppendUvarint(dst, m.fragIndex)
	dst = binary.AppendUvarint(dst, m.fragCount)
	return append(dst, chunk...)
}

// cursor is a bounds-checked decoder over one message payload, the
// same strict-decode idiom as the store's record codec: every read
// validates available bytes and every limit, and decode errors name
// what was being read.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("shard: decoding %s: truncated uvarint", what)
	}
	c.off += n
	return v, nil
}

func (c *cursor) str(what string) (string, error) {
	n, err := c.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxKeyLen {
		return "", fmt.Errorf("shard: decoding %s: length %d exceeds %d", what, n, maxKeyLen)
	}
	if c.off+int(n) > len(c.b) {
		return "", fmt.Errorf("shard: decoding %s: truncated string", what)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// decodeFragment parses a fragment payload (after the type byte).
func decodeFragment(b []byte) (fragMeta, []byte, error) {
	c := &cursor{b: b}
	var m fragMeta
	var err error
	if m.job, err = c.str("job"); err != nil {
		return m, nil, err
	}
	if m.env, err = c.str("env"); err != nil {
		return m, nil, err
	}
	if m.version, err = c.uvarint("version"); err != nil {
		return m, nil, err
	}
	if m.totalLen, err = c.uvarint("total length"); err != nil {
		return m, nil, err
	}
	if m.fragIndex, err = c.uvarint("fragment index"); err != nil {
		return m, nil, err
	}
	if m.fragCount, err = c.uvarint("fragment count"); err != nil {
		return m, nil, err
	}
	if m.totalLen > maxBlobLen {
		return m, nil, fmt.Errorf("shard: fragment claims %d-byte blob (max %d)", m.totalLen, maxBlobLen)
	}
	if m.fragCount == 0 || m.fragIndex >= m.fragCount {
		return m, nil, fmt.Errorf("shard: fragment %d/%d out of range", m.fragIndex, m.fragCount)
	}
	return m, b[c.off:], nil
}

// VersionedBlob is one resident model version in serialized form, the
// unit the replicator ships and snapshots.
type VersionedBlob struct {
	Job     string
	Env     string
	Version uint64
	Blob    []byte
}

// ErrStale marks an Apply refusal by the convergence rule: the
// received version is not newer than the resident one. Stale installs
// are counted separately from real errors — they are the protocol
// working as designed.
var ErrStale = errors.New("shard: replicated version not newer than resident")

// Apply installs a fully reassembled remote model version locally.
// ErrStale counts as convergence, any other error as a peer fault;
// neither tears down the link — one broken blob must not stop later
// versions from converging.
type Apply func(job, env string, version uint64, blob []byte) error

// Snapshot captures the local resident versions for the full-state
// push a replicator sends to each newly connected peer (anti-entropy:
// a replica that restarted mid-replication receives everything again
// and converges by the never-older rule).
type Snapshot func() []VersionedBlob

// Replicator ships model versions to peer shards and applies versions
// received from them. One Replicator serves one shard; peers are
// byte-stream connections (in-process net.Pipe today, TCP tomorrow —
// the protocol does not care).
type Replicator struct {
	id       int
	apply    Apply
	snapshot Snapshot
	fragSize int

	mu     sync.Mutex
	peers  map[*replPeer]struct{}
	closed bool
	wg     sync.WaitGroup

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	applied, stale         atomic.Int64
	reassemblies           atomic.Int64
	peerErrors             atomic.Int64
}

// replPeer is one outbound link: frames queue on out and a dedicated
// writer drains them, so a slow peer never blocks the fine-tune loop
// that triggered the broadcast. quit, closed exactly once, stops both
// loops; out is never closed (a concurrent enqueue could be sending).
type replPeer struct {
	conn     io.ReadWriteCloser
	out      chan []byte
	quit     chan struct{}
	quitOnce sync.Once
}

// NewReplicator builds a replicator for shard id. fragSize <= 0
// selects DefaultFragmentSize.
func NewReplicator(id int, apply Apply, snapshot Snapshot, fragSize int) *Replicator {
	if fragSize <= 0 {
		fragSize = DefaultFragmentSize
	}
	return &Replicator{
		id:       id,
		apply:    apply,
		snapshot: snapshot,
		fragSize: fragSize,
		peers:    map[*replPeer]struct{}{},
	}
}

// AddPeer attaches a connection to a peer shard: a hello and the full
// local state are queued immediately (so a freshly restarted peer
// converges without waiting for the next swap), then a reader applies
// everything the peer sends for the life of the connection.
func (r *Replicator) AddPeer(conn io.ReadWriteCloser) {
	p := &replPeer{conn: conn, out: make(chan []byte, 256), quit: make(chan struct{})}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return
	}
	r.peers[p] = struct{}{}
	r.mu.Unlock()

	hello := appendFrame(nil, binary.AppendUvarint([]byte{msgHello}, uint64(r.id)))
	p.out <- hello // fresh peer: 256-slot queue cannot be full yet
	if r.snapshot != nil {
		for _, vb := range r.snapshot() {
			r.enqueue(p, vb)
		}
	}

	r.wg.Add(2)
	go r.writeLoop(p)
	go r.readLoop(p)
}

// Broadcast ships one installed version to every connected peer.
func (r *Replicator) Broadcast(vb VersionedBlob) {
	r.mu.Lock()
	peers := make([]*replPeer, 0, len(r.peers))
	for p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	for _, p := range peers {
		r.enqueue(p, vb)
	}
}

// enqueue fragments vb into frames on p's queue. A full queue drops
// the peer: its reader side will see the closed connection, and a
// reconnect gets a fresh full-state push, so dropping is safe for
// convergence while blocking would stall the caller.
func (r *Replicator) enqueue(p *replPeer, vb VersionedBlob) {
	total := len(vb.Blob)
	count := (total + r.fragSize - 1) / r.fragSize
	if count == 0 {
		count = 1 // zero-length blob still ships one fragment
	}
	for i := 0; i < count; i++ {
		lo := i * r.fragSize
		hi := min(lo+r.fragSize, total)
		payload := encodeFragment(fragMeta{
			job: vb.Job, env: vb.Env, version: vb.Version,
			totalLen: uint64(total), fragIndex: uint64(i), fragCount: uint64(count),
		}, vb.Blob[lo:hi])
		select {
		case <-p.quit:
			return
		case p.out <- appendFrame(nil, payload):
		default:
			// Queue full: the peer is hopelessly behind. Drop it — a
			// reconnect gets a fresh full-state push, so dropping is
			// safe for convergence while blocking would stall the
			// fine-tune loop.
			r.peerErrors.Add(1)
			r.dropPeer(p)
			return
		}
	}
}

func (r *Replicator) dropPeer(p *replPeer) {
	r.mu.Lock()
	delete(r.peers, p)
	r.mu.Unlock()
	p.quitOnce.Do(func() {
		close(p.quit)
		p.conn.Close()
	})
}

func (r *Replicator) writeLoop(p *replPeer) {
	defer r.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case frame := <-p.out:
			if _, err := p.conn.Write(frame); err != nil {
				r.peerErrors.Add(1)
				r.dropPeer(p)
				return
			}
			r.framesSent.Add(1)
			r.bytesSent.Add(int64(len(frame)))
		}
	}
}

// readLoop decodes frames from the peer and reassembles fragments.
// Fragments of one blob arrive contiguously and in order on a single
// connection (the sender enqueues them back to back); anything else —
// an index gap, a key change mid-blob, a CRC failure — resets the
// assembly and counts an error, and the stream continues with the
// next complete blob.
func (r *Replicator) readLoop(p *replPeer) {
	defer r.wg.Done()
	var (
		cur   fragMeta
		buf   []byte
		armed bool
	)
	reset := func() { buf = nil; armed = false }
	for {
		payload, err := readFrame(p.conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, io.ErrUnexpectedEOF) {
				r.peerErrors.Add(1)
			}
			r.dropPeer(p)
			return
		}
		r.framesRecv.Add(1)
		r.bytesRecv.Add(int64(replFrameHeaderLen + len(payload)))
		if len(payload) == 0 {
			r.peerErrors.Add(1)
			continue
		}
		switch payload[0] {
		case msgHello:
			// Identity is informational; nothing to verify in-process.
		case msgFragment:
			m, chunk, err := decodeFragment(payload[1:])
			if err != nil {
				r.peerErrors.Add(1)
				reset()
				continue
			}
			if m.fragIndex == 0 {
				cur, buf, armed = m, make([]byte, 0, m.totalLen), true
			} else if !armed || m.job != cur.job || m.env != cur.env ||
				m.version != cur.version || m.fragIndex != cur.fragIndex+1 || m.fragCount != cur.fragCount {
				r.peerErrors.Add(1)
				reset()
				continue
			} else {
				cur.fragIndex = m.fragIndex
			}
			buf = append(buf, chunk...)
			if uint64(len(buf)) > cur.totalLen {
				r.peerErrors.Add(1)
				reset()
				continue
			}
			if cur.fragIndex == cur.fragCount-1 {
				if uint64(len(buf)) != cur.totalLen {
					r.peerErrors.Add(1)
					reset()
					continue
				}
				if cur.fragCount > 1 {
					r.reassemblies.Add(1)
				}
				switch err := r.apply(cur.job, cur.env, cur.version, buf); {
				case err == nil:
					r.applied.Add(1)
				case errors.Is(err, ErrStale):
					r.stale.Add(1)
				default:
					r.peerErrors.Add(1)
				}
				reset()
			}
		default:
			r.peerErrors.Add(1)
		}
	}
}

// Close tears down every peer link and waits for the loops to exit.
func (r *Replicator) Close() {
	r.mu.Lock()
	r.closed = true
	peers := make([]*replPeer, 0, len(r.peers))
	for p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	for _, p := range peers {
		r.dropPeer(p)
	}
	r.wg.Wait()
}

// Stats snapshots the replication counters in wire form.
func (r *Replicator) Stats() api.ReplicationStats {
	return api.ReplicationStats{
		FramesSent:     r.framesSent.Load(),
		FramesReceived: r.framesRecv.Load(),
		BytesSent:      r.bytesSent.Load(),
		BytesReceived:  r.bytesRecv.Load(),
		Applied:        r.applied.Load(),
		Stale:          r.stale.Load(),
		Reassemblies:   r.reassemblies.Load(),
		PeerErrors:     r.peerErrors.Load(),
	}
}
