package shard

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/serve"
)

// BenchmarkShardPredict measures predict throughput against shard
// count under a latency-bound workload: every request is a cold model
// load (ModelCap 1, many keys, unique queries) behind a single-slot
// per-shard admission gate, with a fixed model-materialization latency.
// On a single-vCPU host the CPU cannot speed anything up, so throughput
// scales with the number of independent shard gates — which is exactly
// the property the sharded tier exists to buy. The CI bench gate
// asserts shards=2 >= 1.7x and shards=4 >= 3x the shards=1 rate. (The
// sub-benchmarks are named shards=N, not shards-N, because go test
// appends a -GOMAXPROCS suffix that result parsers strip — a trailing
// -N in the name itself would be eaten with it.)
func BenchmarkShardPredict(b *testing.B) {
	const loadDelay = 10 * time.Millisecond
	blob := pretrainedBytes(b)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			nodes := make([]NodeConfig, shards)
			for i := range nodes {
				nodes[i] = NodeConfig{
					Service: serve.NewService(func(key serve.ModelKey) (*core.Model, error) {
						time.Sleep(loadDelay)
						return core.Load(bytes.NewReader(blob))
					}, serve.Options{ModelCap: 1, ResultCap: 16}),
					Gate: loadctl.NewGate(loadctl.GateConfig{
						MaxInFlight: 1, MaxQueue: 64, MaxWait: time.Minute,
					}),
				}
			}
			c, err := New(nodes, Options{})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			// Four keys per shard, dealt round-robin across shards, so
			// offered load is uniform: the benchmark measures capacity,
			// not the hash spread of an arbitrary 16-key sample.
			keysByShard := make([][]serve.ModelKey, shards)
			filled := func() bool {
				for _, ks := range keysByShard {
					if len(ks) < 4 {
						return false
					}
				}
				return true
			}
			for i := 0; !filled(); i++ {
				k := shardKey("sort", i)
				if o := c.Owner(k.Job, k.Env); len(keysByShard[o]) < 4 {
					keysByShard[o] = append(keysByShard[o], k)
				}
			}
			ctx := context.Background()
			var ctr atomic.Int64
			b.SetParallelism(16) // enough in-flight work to fill every gate
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					ks := keysByShard[i%int64(shards)]
					// Unique scale-out per op: no result-cache hits, and
					// with ModelCap 1 each key flip is a fresh cold load.
					q := testQuery(2+int(i), 10000)
					resp := c.Predict(ctx, serve.Request{Key: ks[(i/int64(shards))%int64(len(ks))], Query: q})
					if resp.Err != nil {
						b.Errorf("predict: %v", resp.Err)
						return
					}
				}
			})
		})
	}
}
