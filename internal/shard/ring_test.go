package shard

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) [][2]string {
	jobs := []string{"sort", "grep", "pagerank", "kmeans", "join", "sgd"}
	keys := make([][2]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, [2]string{jobs[i%len(jobs)], fmt.Sprintf("env-%d", i)})
	}
	return keys
}

func TestRingDeterminism(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	for _, k := range sampleKeys(1000) {
		if a.Owner(k[0], k[1]) != b.Owner(k[0], k[1]) {
			t.Fatalf("rings disagree on %v", k)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for _, k := range sampleKeys(100) {
		if got := r.Owner(k[0], k[1]); got != 0 {
			t.Fatalf("Owner(%v) = %d on a 1-shard ring", k, got)
		}
	}
	if NewRing(0, 0).Shards() != 1 {
		t.Fatal("NewRing(0) should clamp to 1 shard")
	}
}

func TestRingBalance(t *testing.T) {
	const shards, n = 4, 20000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for _, k := range sampleKeys(n) {
		counts[r.Owner(k[0], k[1])]++
	}
	// With 64 vnodes/shard the spread should be well within 2x of fair
	// share in either direction.
	fair := n / shards
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): %v", s, c, n, fair, counts)
		}
	}
}

// TestRingConsistency: growing the ring by one shard must reassign only
// a bounded fraction of keys — the property that keeps most of each
// shard's resident models valid across a topology change.
func TestRingConsistency(t *testing.T) {
	const n = 20000
	before := NewRing(4, 0)
	after := NewRing(5, 0)
	moved := 0
	for _, k := range sampleKeys(n) {
		if before.Owner(k[0], k[1]) != after.Owner(k[0], k[1]) {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow slack for vnode placement variance but
	// fail hard on anything near a full reshuffle.
	if frac := float64(moved) / n; frac > 0.35 {
		t.Fatalf("%.1f%% of keys moved adding one shard, want ~20%%", 100*frac)
	}
}

func TestRingOwnerInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		r := NewRing(shards, 16)
		for _, k := range sampleKeys(500) {
			if o := r.Owner(k[0], k[1]); o < 0 || o >= shards {
				t.Fatalf("Owner = %d with %d shards", o, shards)
			}
		}
	}
}
