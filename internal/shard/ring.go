// Package shard is the horizontal scaling tier of the serving stack: a
// consistent-hash router that partitions (job, env) model keys across
// N in-process serve instances, fans batched requests out per shard
// and merges the answers in input order, forwards observations to the
// owning shard's lifecycle controller, and replicates hot-swapped
// model versions between shards over a compact CRC-framed binary
// protocol. Each shard is a complete serving stack — registry, result
// cache, admission gate, optional lifecycle controller and WAL — so
// the partition point is the model key, not the request type.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual node count of the hash
// ring. 64 points per shard keeps the largest/smallest ownership arc
// ratio low (empirically < 1.5x at small shard counts) while the whole
// ring stays a few KB.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over shard IDs 0..N-1.
// Keys hash onto a circle of virtual points; a key is owned by the
// shard of the first point at or clockwise after it. Consistency is
// the property the replication tier leans on: adding a shard moves
// only the arcs adjacent to its new points, so a topology change
// invalidates a bounded fraction of each shard's resident set.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over shards shard IDs with vnodes virtual
// points each (<= 0 selects DefaultVirtualNodes).
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			// FNV alone clusters on short, similar inputs; a splitmix64
			// finisher spreads the points uniformly around the circle,
			// which is what bounds the largest ownership arc.
			r.points = append(r.points, ringPoint{hash: mix64(hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v))), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards reports the shard count.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes reports the per-shard virtual point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner maps a (job, env) key to its owning shard.
func (r *Ring) Owner(job, env string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(job, env)
	// First point at or after h, wrapping to the start of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashKey hashes a model key with a separator no key part can contain
// (loader file naming rejects NUL and slashes), so ("ab","c") and
// ("a","bc") never collide.
func hashKey(job, env string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(job))
	h.Write([]byte{0})
	h.Write([]byte(env))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche pass over
// an already-distinct 64-bit value.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
