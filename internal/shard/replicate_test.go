package shard

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	frame := appendFrame(nil, payload)
	got, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}

	// A flipped payload byte must fail the CRC.
	corrupt := append([]byte(nil), frame...)
	corrupt[replFrameHeaderLen] ^= 0x40
	if _, err := readFrame(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt frame passed CRC")
	}
	// A truncated frame must error, not hang or return junk.
	if _, err := readFrame(bytes.NewReader(frame[:len(frame)-3])); err == nil {
		t.Fatal("truncated frame decoded")
	}
	// A length prefix past the cap must be rejected before allocating.
	huge := appendFrame(nil, payload)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestFragmentCodecRoundTrip(t *testing.T) {
	meta := fragMeta{job: "sort", env: "c3o", version: 42, totalLen: 1000, fragIndex: 3, fragCount: 8}
	chunk := bytes.Repeat([]byte{0xab}, 125)
	payload := encodeFragment(meta, chunk)
	if payload[0] != msgFragment {
		t.Fatalf("type byte = %d", payload[0])
	}
	got, data, err := decodeFragment(payload[1:])
	if err != nil {
		t.Fatalf("decodeFragment: %v", err)
	}
	if got != meta {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
	if !bytes.Equal(data, chunk) {
		t.Fatal("chunk mismatch")
	}

	// Truncations at every prefix length must error cleanly.
	for i := 0; i < len(payload)-len(chunk); i++ {
		if _, _, err := decodeFragment(payload[1 : 1+i]); err == nil && i < len(payload)-len(chunk)-1 {
			t.Fatalf("truncated fragment (%d bytes) decoded", i)
		}
	}
	// Out-of-range fragment coordinates are rejected.
	bad := encodeFragment(fragMeta{job: "a", env: "b", version: 1, totalLen: 10, fragIndex: 5, fragCount: 5}, nil)
	if _, _, err := decodeFragment(bad[1:]); err == nil {
		t.Fatal("fragIndex == fragCount accepted")
	}
}

// memStore is a version store standing in for a registry in
// protocol-level tests: apply enforces the never-older rule, snapshot
// returns the current state.
type memStore struct {
	mu       sync.Mutex
	versions map[string]uint64
	blobs    map[string][]byte
	// applied records every successful install in order; the tests
	// assert it is strictly increasing per key (the replica never moves
	// backwards).
	applied []VersionedBlob
}

func newMemStore() *memStore {
	return &memStore{versions: make(map[string]uint64), blobs: make(map[string][]byte)}
}

func (s *memStore) apply(job, env string, version uint64, blob []byte) error {
	key := job + "\x00" + env
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.versions[key] >= version {
		return ErrStale
	}
	s.versions[key] = version
	s.blobs[key] = append([]byte(nil), blob...)
	s.applied = append(s.applied, VersionedBlob{Job: job, Env: env, Version: version})
	return nil
}

func (s *memStore) snapshot() []VersionedBlob {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []VersionedBlob
	for key, v := range s.versions {
		sep := bytes.IndexByte([]byte(key), 0)
		out = append(out, VersionedBlob{Job: key[:sep], Env: key[sep+1:], Version: v, Blob: append([]byte(nil), s.blobs[key]...)})
	}
	return out
}

// monotone reports whether the applied-install sequence never moved
// any key backwards.
func (s *memStore) monotone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := make(map[string]uint64)
	for _, vb := range s.applied {
		key := vb.Job + "\x00" + vb.Env
		if vb.Version <= last[key] && last[key] != 0 {
			return false
		}
		last[key] = vb.Version
	}
	return true
}

func (s *memStore) version(job, env string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[job+"\x00"+env]
}

func (s *memStore) blob(job, env string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.blobs[job+"\x00"+env]...)
}

func testBlob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

// TestReplicatorShipsAndReassembles: a broadcast blob larger than the
// fragment size arrives intact on the peer, through reassembly.
func TestReplicatorShipsAndReassembles(t *testing.T) {
	sa, sb := newMemStore(), newMemStore()
	ra := NewReplicator(0, sa.apply, sa.snapshot, 512)
	rb := NewReplicator(1, sb.apply, sb.snapshot, 512)
	defer ra.Close()
	defer rb.Close()

	ca, cb := net.Pipe()
	ra.AddPeer(ca)
	rb.AddPeer(cb)

	blob := testBlob(10 << 10) // 20 fragments at 512 bytes
	sa.apply("sort", "c3o", 3, blob)
	ra.Broadcast(VersionedBlob{Job: "sort", Env: "c3o", Version: 3, Blob: blob})

	waitFor(t, 2*time.Second, "peer to converge", func() bool { return sb.version("sort", "c3o") == 3 })
	if !bytes.Equal(sb.blob("sort", "c3o"), blob) {
		t.Fatal("replicated blob differs from original")
	}
	if st := rb.Stats(); st.Reassemblies < 1 {
		t.Fatalf("reassemblies = %d, want >= 1 for a multi-fragment blob", st.Reassemblies)
	}
}

// TestReplicatorSnapshotOnConnect: state resident before the link comes
// up still reaches the peer — the full-state push on connect.
func TestReplicatorSnapshotOnConnect(t *testing.T) {
	sa, sb := newMemStore(), newMemStore()
	blob := testBlob(3000)
	sa.apply("grep", "prod", 7, blob)

	ra := NewReplicator(0, sa.apply, sa.snapshot, 1024)
	rb := NewReplicator(1, sb.apply, sb.snapshot, 1024)
	defer ra.Close()
	defer rb.Close()
	ca, cb := net.Pipe()
	ra.AddPeer(ca)
	rb.AddPeer(cb)

	waitFor(t, 2*time.Second, "snapshot push", func() bool { return sb.version("grep", "prod") == 7 })
	if !bytes.Equal(sb.blob("grep", "prod"), blob) {
		t.Fatal("snapshot blob differs")
	}
}

// TestReplicatorNeverAppliesOlder: stale and duplicate deliveries are
// refused; the replica's version is monotone.
func TestReplicatorNeverAppliesOlder(t *testing.T) {
	sb := newMemStore()
	rb := NewReplicator(1, sb.apply, sb.snapshot, 0)
	defer rb.Close()

	raw, conn := net.Pipe()
	rb.AddPeer(conn)
	// Drain rb's hello + snapshot so its writer never blocks.
	go io.Copy(io.Discard, raw)

	send := func(version uint64, blob []byte) {
		t.Helper()
		payload := encodeFragment(fragMeta{
			job: "sort", env: "c3o", version: version,
			totalLen: uint64(len(blob)), fragIndex: 0, fragCount: 1,
		}, blob)
		if _, err := raw.Write(appendFrame(nil, payload)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}

	send(3, testBlob(100))
	waitFor(t, 2*time.Second, "v3 apply", func() bool { return sb.version("sort", "c3o") == 3 })
	send(2, testBlob(50))  // older: refused
	send(3, testBlob(100)) // duplicate: refused
	send(5, testBlob(200)) // newer: applied
	waitFor(t, 2*time.Second, "v5 apply", func() bool { return sb.version("sort", "c3o") == 5 })

	st := rb.Stats()
	if st.Stale != 2 {
		t.Fatalf("stale = %d, want 2 (one older, one duplicate)", st.Stale)
	}
	if !sb.monotone() {
		t.Fatal("replica applied versions out of order")
	}
}

// failAfterConn errors every write after a byte budget, simulating a
// peer that dies mid-stream.
type failAfterConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *failAfterConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return 0, fmt.Errorf("simulated link failure")
	}
	c.budget -= len(p)
	return c.Conn.Write(p)
}

// TestReplicatorRestartMidReplication: a replica that loses its link
// partway through a multi-fragment transfer — then reconnects with a
// fresh replicator — converges to the latest generation via the
// full-state push, and never applies a torn or stale blob.
func TestReplicatorRestartMidReplication(t *testing.T) {
	sa, sb := newMemStore(), newMemStore()
	sb.apply("sort", "c3o", 1, testBlob(64)) // replica starts on an old version

	blob := testBlob(8 << 10)
	sa.apply("sort", "c3o", 9, blob)

	ra := NewReplicator(0, sa.apply, sa.snapshot, 256) // 32 fragments
	defer ra.Close()

	// First attempt: the link dies after ~4 fragments' worth of bytes.
	rb1 := NewReplicator(1, sb.apply, sb.snapshot, 256)
	ca, cb := net.Pipe()
	ra.AddPeer(&failAfterConn{Conn: ca, budget: 1200})
	rb1.AddPeer(cb)
	waitFor(t, 2*time.Second, "torn link to drop", func() bool { return ra.Stats().PeerErrors >= 1 })
	if got := sb.version("sort", "c3o"); got != 1 {
		t.Fatalf("replica at v%d after torn transfer, want untouched v1", got)
	}
	rb1.Close() // the replica process dies

	// Restart: a fresh replicator over the same store reconnects; the
	// full-state push re-sends v9 whole.
	rb2 := NewReplicator(1, sb.apply, sb.snapshot, 256)
	defer rb2.Close()
	ca2, cb2 := net.Pipe()
	ra.AddPeer(ca2)
	rb2.AddPeer(cb2)

	waitFor(t, 2*time.Second, "restarted replica to converge", func() bool { return sb.version("sort", "c3o") == 9 })
	if !bytes.Equal(sb.blob("sort", "c3o"), blob) {
		t.Fatal("converged blob differs from the source")
	}
	if !sb.monotone() {
		t.Fatal("replica applied versions out of order")
	}
}

// TestReplicatorInterleavedStreamRecovers: a stream that restarts a
// blob mid-reassembly (as after a sender hiccup) is detected and the
// retransmission still lands.
func TestReplicatorInterleavedStreamRecovers(t *testing.T) {
	sb := newMemStore()
	rb := NewReplicator(1, sb.apply, sb.snapshot, 0)
	defer rb.Close()
	raw, conn := net.Pipe()
	rb.AddPeer(conn)
	go io.Copy(io.Discard, raw)

	blob := testBlob(600)
	frag := func(idx int) []byte {
		lo, hi := idx*200, (idx+1)*200
		return appendFrame(nil, encodeFragment(fragMeta{
			job: "j", env: "e", version: 2,
			totalLen: uint64(len(blob)), fragIndex: uint64(idx), fragCount: 3,
		}, blob[lo:hi]))
	}
	// Fragments 0, 1, then an unexpected restart from 0, then the full
	// sequence: the half-assembled first attempt must be discarded.
	for _, f := range [][]byte{frag(0), frag(1), frag(0), frag(1), frag(2)} {
		if _, err := raw.Write(f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	waitFor(t, 2*time.Second, "retransmission to apply", func() bool { return sb.version("j", "e") == 2 })
	if !bytes.Equal(sb.blob("j", "e"), blob) {
		t.Fatal("reassembled blob differs")
	}
}
