package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/serve"
)

// attachTestObs wires one shared observability layer into the router
// and every shard, each shard under its own {shard="i"} label set —
// the same wiring `bellamy serve -shards N` performs.
func attachTestObs(c *Cluster, sampleEvery int) *serve.Observability {
	o := &serve.Observability{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(obs.TracerOptions{SampleEvery: sampleEvery}),
	}
	obs.RegisterRuntimeMetrics(o.Metrics)
	o.Tracer.RegisterMetrics(o.Metrics, nil)
	c.AttachObs(o)
	for i := 0; i < c.Shards(); i++ {
		c.Node(i).Service.AttachObs(o, obs.Labels{"shard": strconv.Itoa(i)})
	}
	return o
}

// scrapePromText fetches /metrics and parses the exposition text with
// the same strictness as the obs package's own parser: every sample
// line must be `name{labels} value` with balanced quotes/braces and a
// preceding # TYPE for its family.
func scrapePromText(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)

	typed := map[string]bool{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Count(key, `"`)%2 != 0 || strings.Count(key, "{") != strings.Count(key, "}") {
			t.Fatalf("unbalanced labels in %q", line)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		samples[key] = v
	}
	return samples
}

func TestClusterMetricsEndToEnd(t *testing.T) {
	c := newTestCluster(t, 2, nil, Options{})
	attachTestObs(c, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	k1 := keyOwnedBy(t, c, 1)
	for _, k := range []serve.ModelKey{k0, k1} {
		if code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k, 4)); code != http.StatusOK {
			t.Fatalf("predict status %d: %s", code, raw)
		}
	}

	first := scrapePromText(t, srv.URL)
	for _, want := range []string{
		"bellamy_router_requests_total",
		`bellamy_shard_up{shard="0"}`,
		`bellamy_shard_up{shard="1"}`,
		`bellamy_predict_requests_total{shard="0"}`,
		`bellamy_predict_requests_total{shard="1"}`,
		"bellamy_traces_sampled_total",
		"go_goroutines",
	} {
		if _, ok := first[want]; !ok {
			t.Fatalf("scrape missing series %q", want)
		}
	}
	if first["bellamy_router_requests_total"] < 2 {
		t.Fatalf("router_requests_total = %v, want >= 2", first["bellamy_router_requests_total"])
	}
	if first[`bellamy_predict_requests_total{shard="0"}`] < 1 ||
		first[`bellamy_predict_requests_total{shard="1"}`] < 1 {
		t.Fatalf("per-shard predict counters = %v / %v, want >= 1 each",
			first[`bellamy_predict_requests_total{shard="0"}`],
			first[`bellamy_predict_requests_total{shard="1"}`])
	}
	if first[`bellamy_shard_up{shard="0"}`] != 1 || first[`bellamy_shard_up{shard="1"}`] != 1 {
		t.Fatal("both shards should report up")
	}

	// Counters are monotone across scrapes that bracket more traffic.
	if code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k0, 6)); code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, raw)
	}
	second := scrapePromText(t, srv.URL)
	for key, v := range first {
		if strings.Contains(key, "_total") && second[key] < v {
			t.Fatalf("counter %s went backwards: %v -> %v", key, v, second[key])
		}
	}
	if second["bellamy_router_requests_total"] <= first["bellamy_router_requests_total"] {
		t.Fatal("router_requests_total did not advance")
	}

	// A shard marked down flips its up-gauge and the topology flag.
	c.MarkDown(1, true)
	third := scrapePromText(t, srv.URL)
	if third[`bellamy_shard_up{shard="1"}`] != 0 {
		t.Fatalf(`shard_up{shard="1"} = %v after MarkDown, want 0`, third[`bellamy_shard_up{shard="1"}`])
	}
	if third[`bellamy_shard_up{shard="0"}`] != 1 {
		t.Fatal("shard 0 should still be up")
	}
	resp, err := http.Get(srv.URL + "/v1/shards")
	if err != nil {
		t.Fatalf("GET shards: %v", err)
	}
	var topo api.TopologyResponse
	err = json.NewDecoder(resp.Body).Decode(&topo)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode topology: %v", err)
	}
	if !topo.Shards[1].Down || topo.Shards[0].Down {
		t.Fatalf("topology down flags = %+v", topo.Shards)
	}
}

func TestClusterStatsCarriesObsBlock(t *testing.T) {
	c := newTestCluster(t, 2, nil, Options{})
	attachTestObs(c, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	if code, raw := postJSON(t, srv.URL+"/v1/predict", apiRequest(k0, 4)); code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, raw)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var st api.ClusterStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.SchemaVersion != api.StatsSchemaVersion {
		t.Fatalf("schema %d, want %d", st.SchemaVersion, api.StatsSchemaVersion)
	}
	for _, sh := range st.Shards {
		if sh.Stats.SchemaVersion != api.StatsSchemaVersion {
			t.Fatalf("shard %d schema %d, want %d", sh.ID, sh.Stats.SchemaVersion, api.StatsSchemaVersion)
		}
		if sh.Stats.Obs == nil {
			t.Fatalf("shard %d stats missing obs block", sh.ID)
		}
		if sh.Stats.Obs.MetricSeries == 0 {
			t.Fatalf("shard %d obs block reports 0 metric series", sh.ID)
		}
	}
	// The shard that served the prediction observed its latency.
	owner := st.Shards[c.Owner(k0.Job, k0.Env)]
	if owner.Stats.Obs.LatencyP99Usec <= 0 {
		t.Fatalf("owner obs latency p99 = %v, want > 0", owner.Stats.Obs.LatencyP99Usec)
	}
}

func TestClusterTraceFanOutPropagation(t *testing.T) {
	c := newTestCluster(t, 4, nil, Options{})
	attachTestObs(c, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0)
	k2 := keyOwnedBy(t, c, 2)

	batch := api.BatchRequest{Requests: []api.PredictRequest{
		apiRequest(k0, 2), apiRequest(k2, 4),
	}}
	b, err := json.Marshal(batch)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest("POST", srv.URL+"/v1/predict/batch", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TraceIDHeader, "fanout-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.TraceIDHeader); got != "fanout-trace-1" {
		t.Fatalf("trace ID echo = %q, want %q", got, "fanout-trace-1")
	}

	// The trace surfaces in /v1/debug/slow with one shard_route span per
	// shard the batch touched, each tagged with its shard's ID.
	dresp, err := http.Get(srv.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatalf("GET debug/slow: %v", err)
	}
	var slow api.SlowTracesResponse
	err = json.NewDecoder(dresp.Body).Decode(&slow)
	dresp.Body.Close()
	if err != nil {
		t.Fatalf("decode slow traces: %v", err)
	}
	var trace *api.TraceSummary
	for i := range slow.Traces {
		if slow.Traces[i].TraceID == "fanout-trace-1" {
			trace = &slow.Traces[i]
		}
	}
	if trace == nil {
		t.Fatalf("trace not retained; have %d traces", len(slow.Traces))
	}
	shards := map[int]bool{}
	stages := map[string]bool{}
	for _, sp := range trace.Spans {
		stages[sp.Name] = true
		if sp.Name == obs.StageShardRoute {
			shards[sp.Shard] = true
		}
	}
	if len(shards) < 2 {
		t.Fatalf("shard_route spans cover %d shards, want >= 2 (spans %+v)", len(shards), trace.Spans)
	}
	if !shards[0] || !shards[2] {
		t.Fatalf("shard_route tags = %v, want shards 0 and 2", shards)
	}
	for _, want := range []string{
		obs.StageRateLimit, obs.StageDecode, obs.StageClassify,
		obs.StageShardRoute, obs.StagePredict, obs.StageEncode,
	} {
		if !stages[want] {
			t.Fatalf("trace missing stage %q (have %v)", want, stages)
		}
	}
}
