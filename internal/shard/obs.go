package shard

import (
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/serve"
)

// AttachObs wires the shared observability layer into the router and,
// when a metrics registry is present, registers the router-level
// counters, per-shard health gauges, and replication counters. The
// per-shard service metrics are registered separately by each shard's
// own Service.AttachObs with a distinct {shard="i"} label set, so a
// single registry scrape covers the whole cluster. Attach once, before
// serving traffic.
func (c *Cluster) AttachObs(o *serve.Observability) {
	c.obsRef.Store(o)
	if o == nil || o.Metrics == nil {
		return
	}
	c.registerMetrics(o.Metrics)
}

// Obs returns the attached observability layer, or nil.
func (c *Cluster) Obs() *serve.Observability { return c.obsRef.Load() }

func (c *Cluster) registerMetrics(reg *obs.Registry) {
	reg.RegisterCounter("bellamy_router_requests_total",
		"Individual requests routed by the shard router (batch items included).", nil, &c.requests)
	reg.RegisterCounter("bellamy_router_batch_fanouts_total",
		"Batches that fanned out to more than one shard.", nil, &c.batchFanouts)
	reg.RegisterCounter("bellamy_router_partial_failures_total",
		"Batches where some but not all items failed.", nil, &c.partialFailures)
	reg.RegisterCounter("bellamy_router_rate_limited_total",
		"Requests answered 429 by the router's per-client rate limiter.", nil, &c.rateLimited)
	reg.RegisterCounter("bellamy_router_deadline_rejects_total",
		"Requests answered 504 by the router because their budget ran out.", nil, &c.deadlineRejects)
	reg.RegisterGaugeFunc("bellamy_router_draining",
		"1 while the router's shutdown drain is in progress, else 0.", nil,
		func() float64 {
			if c.draining.Load() {
				return 1
			}
			return 0
		})

	for _, n := range c.nodes {
		n := n
		reg.RegisterGaugeFunc("bellamy_shard_up",
			"1 while the shard accepts dispatches, 0 while marked down.",
			obs.Labels{"shard": strconv.Itoa(n.ID)},
			func() float64 {
				if n.down.Load() {
					return 0
				}
				return 1
			})
	}

	for _, m := range []struct {
		name, help string
		read       func(api.ReplicationStats) int64
	}{
		{"bellamy_repl_frames_sent_total", "Replication frames sent.", func(r api.ReplicationStats) int64 { return r.FramesSent }},
		{"bellamy_repl_frames_received_total", "Replication frames received.", func(r api.ReplicationStats) int64 { return r.FramesReceived }},
		{"bellamy_repl_bytes_sent_total", "Replication payload bytes sent.", func(r api.ReplicationStats) int64 { return r.BytesSent }},
		{"bellamy_repl_bytes_received_total", "Replication payload bytes received.", func(r api.ReplicationStats) int64 { return r.BytesReceived }},
		{"bellamy_repl_applied_total", "Replicated model versions installed.", func(r api.ReplicationStats) int64 { return r.Applied }},
		{"bellamy_repl_stale_total", "Replicated versions rejected as stale.", func(r api.ReplicationStats) int64 { return r.Stale }},
		{"bellamy_repl_peer_errors_total", "Replication peer connection errors.", func(r api.ReplicationStats) int64 { return r.PeerErrors }},
	} {
		read := m.read
		reg.RegisterCounterFunc(m.name, m.help, nil, func() int64 {
			rs := c.ReplicationStats()
			if rs == nil {
				return 0
			}
			return read(*rs)
		})
	}
}

// startTrace begins a request trace at the router when a tracer is
// attached, echoing the trace ID on the response header. Identical
// contract to the single-shard handler: a client-supplied X-Trace-Id is
// always traced, other requests are sampled. Returns nil for untraced
// requests.
func (c *Cluster) startTrace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	o := c.obsRef.Load()
	if o == nil || o.Tracer == nil {
		return nil
	}
	tr := o.Tracer.StartRequest(r.Header.Get(api.TraceIDHeader))
	if tr != nil {
		w.Header().Set(api.TraceIDHeader, tr.ID())
	}
	return tr
}

// finishTrace completes tr (nil-safe), offering it to the slow ring.
func (c *Cluster) finishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	if o := c.obsRef.Load(); o != nil {
		o.Tracer.Finish(tr)
	}
}

// attachTrace annotates a router-level 504 envelope with the trace ID
// and the spans recorded before the budget ran out.
func attachTrace(e *api.Error, tr *obs.Trace) *api.Error {
	if tr != nil {
		e.TraceID = tr.ID()
		e.Spans = serve.SpanSummaries(tr.Spans())
	}
	return e
}

// handleMetrics and handleSlowTraces serve GET /metrics and
// GET /v1/debug/slow on the sharded surface; both answer 404 until an
// observability layer with the relevant facility is attached.
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	o := c.obsRef.Load()
	if o == nil || o.Metrics == nil {
		http.NotFound(w, r)
		return
	}
	o.Metrics.Handler().ServeHTTP(w, r)
}

func (c *Cluster) handleSlowTraces(w http.ResponseWriter, r *http.Request) {
	o := c.obsRef.Load()
	if o == nil || o.Tracer == nil {
		http.NotFound(w, r)
		return
	}
	api.WriteJSON(w, serve.SlowTracesPayload(o.Tracer))
}
