// Package hyperopt implements the hyperparameter search of Table I:
// dropout, learning rate, and weight decay are sampled from the paper's
// grid and evaluated by pre-training candidate models, in parallel across
// CPU cores. It replaces the Ray Tune + Optuna stack of the original
// implementation with a random sampler, which is statistically equivalent
// at the paper's budget of 12 sampled configurations.
package hyperopt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Space is the searchable hyperparameter grid (Table I, pre-training).
type Space struct {
	Dropouts      []float64
	LearningRates []float64
	WeightDecays  []float64
}

// DefaultSpace returns the paper's search space.
func DefaultSpace() Space {
	return Space{
		Dropouts:      []float64{0.05, 0.10, 0.20},
		LearningRates: []float64{1e-1, 1e-2, 1e-3},
		WeightDecays:  []float64{1e-2, 1e-3, 1e-4},
	}
}

// Size returns the number of grid points.
func (s Space) Size() int {
	return len(s.Dropouts) * len(s.LearningRates) * len(s.WeightDecays)
}

// Sample draws one configuration uniformly at random.
func (s Space) Sample(rng *rand.Rand) (dropout, lr, wd float64) {
	return s.Dropouts[rng.Intn(len(s.Dropouts))],
		s.LearningRates[rng.Intn(len(s.LearningRates))],
		s.WeightDecays[rng.Intn(len(s.WeightDecays))]
}

// Trial records one evaluated configuration.
type Trial struct {
	Dropout, LearningRate, WeightDecay float64
	// ValMAE is the validation mean absolute error in seconds.
	ValMAE float64
	// Err is non-nil when the trial failed.
	Err error
}

// Options controls a search run.
type Options struct {
	// Trials is the number of sampled configurations (paper: 12).
	Trials int
	// Workers bounds the parallel trial count (0 = GOMAXPROCS).
	Workers int
	// ValFraction is the portion of samples held out for validation.
	ValFraction float64
	// Seed drives sampling and the train/validation split.
	Seed int64
}

// DefaultOptions mirrors the paper: 12 trials.
func DefaultOptions() Options {
	return Options{Trials: 12, ValFraction: 0.2, Seed: 1}
}

// Result is the outcome of a search.
type Result struct {
	Best   Trial
	Trials []Trial
}

// Search pre-trains one candidate model per sampled configuration on a
// train split of samples and scores it on a held-out validation split.
// base supplies every non-searched configuration field (epochs, dims...).
func Search(base core.Config, samples []core.Sample, space Space, opts Options) (*Result, error) {
	if len(samples) < 5 {
		return nil, fmt.Errorf("hyperopt: need at least 5 samples, got %d", len(samples))
	}
	if opts.Trials <= 0 {
		opts.Trials = 12
	}
	if opts.ValFraction <= 0 || opts.ValFraction >= 1 {
		opts.ValFraction = 0.2
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Shuffled train/validation split.
	idx := rng.Perm(len(samples))
	nVal := int(float64(len(samples)) * opts.ValFraction)
	if nVal < 1 {
		nVal = 1
	}
	val := make([]core.Sample, 0, nVal)
	train := make([]core.Sample, 0, len(samples)-nVal)
	for i, j := range idx {
		if i < nVal {
			val = append(val, samples[j])
		} else {
			train = append(train, samples[j])
		}
	}

	// Pre-draw configurations so trials are independent of scheduling.
	type cand struct {
		dropout, lr, wd float64
		seed            int64
	}
	cands := make([]cand, opts.Trials)
	for i := range cands {
		d, l, w := space.Sample(rng)
		cands[i] = cand{d, l, w, rng.Int63()}
	}

	trials := parallel.Map(opts.Trials, opts.Workers, func(i int) Trial {
		c := cands[i]
		cfg := base
		cfg.Dropout = c.dropout
		cfg.LearningRate = c.lr
		cfg.WeightDecay = c.wd
		cfg.Seed = c.seed
		t := Trial{Dropout: c.dropout, LearningRate: c.lr, WeightDecay: c.wd}
		model, err := core.New(cfg)
		if err != nil {
			t.Err = err
			t.ValMAE = math.Inf(1)
			return t
		}
		if _, err := model.Pretrain(train); err != nil {
			t.Err = err
			t.ValMAE = math.Inf(1)
			return t
		}
		t.ValMAE = validationMAE(model, val)
		return t
	})

	sort.Slice(trials, func(i, j int) bool { return trials[i].ValMAE < trials[j].ValMAE })
	res := &Result{Best: trials[0], Trials: trials}
	if res.Best.Err != nil {
		return res, fmt.Errorf("hyperopt: all trials failed: %w", res.Best.Err)
	}
	return res, nil
}

// validationMAE scores a model on held-out samples.
func validationMAE(m *core.Model, val []core.Sample) float64 {
	var sum float64
	var n int
	for _, s := range val {
		pred, err := m.Predict(s.ScaleOut, s.Essential, s.Optional)
		if err != nil {
			continue
		}
		sum += math.Abs(pred - s.RuntimeSec)
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// Apply copies the winning hyperparameters onto a config.
func (r *Result) Apply(cfg core.Config) core.Config {
	cfg.Dropout = r.Best.Dropout
	cfg.LearningRate = r.Best.LearningRate
	cfg.WeightDecay = r.Best.WeightDecay
	return cfg
}
