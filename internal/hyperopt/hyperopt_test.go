package hyperopt

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
)

func smallSamples(n int) []core.Sample {
	out := make([]core.Sample, 0, n)
	xs := []int{2, 4, 6, 8, 10, 12}
	for i := 0; i < n; i++ {
		x := xs[i%len(xs)]
		fx := float64(x)
		out = append(out, core.Sample{
			ScaleOut: x,
			Essential: []encoding.Property{
				{Name: "dataset_size_mb", Value: strconv.Itoa(10000 + 1000*(i/len(xs)))},
				{Name: "dataset_characteristics", Value: "uniform"},
				{Name: "job_parameters", Value: "--iterations 50"},
				{Name: "node_type", Value: "m4.xlarge"},
			},
			RuntimeSec: 30 + 400/fx + 10*math.Log(fx) + 1.2*fx,
		})
	}
	return out
}

func fastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PretrainEpochs = 15
	return cfg
}

func TestDefaultSpace(t *testing.T) {
	s := DefaultSpace()
	if s.Size() != 27 {
		t.Fatalf("space size = %d, want 27", s.Size())
	}
}

func TestSampleWithinSpace(t *testing.T) {
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(1))
	in := func(v float64, set []float64) bool {
		for _, x := range set {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < 50; i++ {
		d, l, w := s.Sample(rng)
		if !in(d, s.Dropouts) || !in(l, s.LearningRates) || !in(w, s.WeightDecays) {
			t.Fatalf("sample (%v, %v, %v) outside space", d, l, w)
		}
	}
}

func TestSearchFindsFiniteBest(t *testing.T) {
	res, err := Search(fastConfig(), smallSamples(24), DefaultSpace(), Options{Trials: 4, Seed: 7, ValFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Best.ValMAE, 1) {
		t.Fatal("best trial has infinite validation MAE")
	}
	if len(res.Trials) != 4 {
		t.Fatalf("trials = %d, want 4", len(res.Trials))
	}
	// Sorted ascending by MAE.
	for i := 1; i < len(res.Trials); i++ {
		if res.Trials[i].ValMAE < res.Trials[i-1].ValMAE {
			t.Fatal("trials not sorted by validation MAE")
		}
	}
}

func TestSearchDeterministicWithSeed(t *testing.T) {
	opts := Options{Trials: 3, Seed: 11, ValFraction: 0.25, Workers: 1}
	a, err := Search(fastConfig(), smallSamples(18), DefaultSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(fastConfig(), smallSamples(18), DefaultSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.ValMAE != b.Best.ValMAE || a.Best.LearningRate != b.Best.LearningRate {
		t.Fatal("search not deterministic under fixed seed")
	}
}

func TestSearchParallelMatchesSerialTrialSet(t *testing.T) {
	// The sampled (dropout, lr, wd) triples must be independent of the
	// worker count; only scheduling differs.
	optsSerial := Options{Trials: 4, Seed: 3, ValFraction: 0.25, Workers: 1}
	optsParallel := optsSerial
	optsParallel.Workers = 4
	a, err := Search(fastConfig(), smallSamples(18), DefaultSpace(), optsSerial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(fastConfig(), smallSamples(18), DefaultSpace(), optsParallel)
	if err != nil {
		t.Fatal(err)
	}
	key := func(tr Trial) [3]float64 { return [3]float64{tr.Dropout, tr.LearningRate, tr.WeightDecay} }
	seen := map[[3]float64]int{}
	for _, tr := range a.Trials {
		seen[key(tr)]++
	}
	for _, tr := range b.Trials {
		seen[key(tr)]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("trial multiset differs at %v", k)
		}
	}
}

func TestSearchRejectsTinyCorpus(t *testing.T) {
	if _, err := Search(fastConfig(), smallSamples(3), DefaultSpace(), DefaultOptions()); err == nil {
		t.Fatal("expected error for tiny corpus")
	}
}

func TestApply(t *testing.T) {
	res := &Result{Best: Trial{Dropout: 0.2, LearningRate: 0.1, WeightDecay: 1e-4}}
	cfg := res.Apply(core.DefaultConfig())
	if cfg.Dropout != 0.2 || cfg.LearningRate != 0.1 || cfg.WeightDecay != 1e-4 {
		t.Fatalf("Apply produced %+v", cfg)
	}
}
