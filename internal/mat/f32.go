package mat

// Float32 serving types. Training stays float64 end to end; the serve
// layer quantizes published model weights into DenseF32 matrices and
// runs inference through the f32 kernels in mul32.go, halving the
// memory traffic of every forward pass. The types mirror Dense and
// Workspace exactly — same invariants, same nil-safety, same zero-alloc
// steady state — so the nn/core inference paths read like their f64
// twins.

// DenseF32 is a dense row-major float32 matrix.
type DenseF32 struct {
	Rows, Cols int
	Data       []float32
}

// NewDenseF32 returns a zeroed rows x cols float32 matrix.
func NewDenseF32(rows, cols int) *DenseF32 {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &DenseF32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// QuantizeDense converts a float64 matrix to its float32 serving form,
// rounding each weight to the nearest float32.
func QuantizeDense(m *Dense) *DenseF32 {
	q := &DenseF32{Rows: m.Rows, Cols: m.Cols, Data: make([]float32, len(m.Data))}
	for i, v := range m.Data {
		q.Data[i] = float32(v)
	}
	return q
}

// Row returns row i as a slice sharing the matrix storage.
func (m *DenseF32) Row(i int) []float32 {
	if uint(i) >= uint(m.Rows) {
		panic("mat: row index out of range")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Zero sets every element to 0.
func (m *DenseF32) Zero() { clear(m.Data) }

// Resized32 is the float32 Resized: a matrix with the given shape,
// reusing m's backing storage when it has sufficient capacity (contents
// are then unspecified). A nil m always allocates.
func Resized32(m *DenseF32, rows, cols int) *DenseF32 {
	if m != nil && cap(m.Data) >= rows*cols && rows >= 0 && cols >= 0 {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:rows*cols]
		return m
	}
	return NewDenseF32(rows, cols)
}

// WorkspaceF32 is the float32 Workspace: a shape-keyed arena of scratch
// matrices recycled by Reset. Not safe for concurrent use; a nil
// workspace degrades to plain allocation.
type WorkspaceF32 struct {
	free map[uint64][]*DenseF32
	used []*DenseF32
}

// NewWorkspaceF32 returns an empty float32 workspace.
func NewWorkspaceF32() *WorkspaceF32 {
	return &WorkspaceF32{free: make(map[uint64][]*DenseF32)}
}

// GetRaw returns a rows x cols matrix with unspecified contents that
// stays valid until the next Reset. In steady state it never allocates.
func (w *WorkspaceF32) GetRaw(rows, cols int) *DenseF32 {
	if w == nil {
		return NewDenseF32(rows, cols)
	}
	k := shapeKey(rows, cols)
	if list := w.free[k]; len(list) > 0 {
		m := list[len(list)-1]
		w.free[k] = list[:len(list)-1]
		w.used = append(w.used, m)
		return m
	}
	m := NewDenseF32(rows, cols)
	w.used = append(w.used, m)
	return m
}

// Reset recycles every matrix handed out since the previous Reset.
func (w *WorkspaceF32) Reset() {
	if w == nil {
		return
	}
	for i, m := range w.used {
		w.free[shapeKey(m.Rows, m.Cols)] = append(w.free[shapeKey(m.Rows, m.Cols)], m)
		w.used[i] = nil
	}
	w.used = w.used[:0]
}
