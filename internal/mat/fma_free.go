//go:build !amd64

package mat

// fmaBranchFree reports whether math.FMA compiles to a bare fused
// instruction: true on every non-amd64 architecture with an
// intrinsified math.FMA (arm64, ppc64, riscv64, s390x, ...).
const fmaBranchFree = true

// fmaGuaranteed is false off amd64: some architectures emulate
// math.FMA in software (orders of magnitude slower), which only the
// fmaIsFast runtime probe can detect.
const fmaGuaranteed = false
