//go:build !amd64 || amd64.v3

package mat

// fmaBranchFree reports whether math.FMA compiles to a bare fused
// instruction: true on GOAMD64=v3+ builds and on every non-amd64
// architecture with an intrinsified math.FMA (arm64, ppc64, riscv64,
// s390x, ...). Architectures whose math.FMA falls back to software
// emulation are caught at runtime by the fmaIsFast probe instead.
const fmaBranchFree = true
