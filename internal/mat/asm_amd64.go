//go:build amd64 && !noasm

package mat

// hasAsm reports whether the hand-written AVX2/FMA3 kernels in
// kernel_amd64.s can run on this CPU: FMA3 + AVX2, plus OS support for
// saving ymm state (OSXSAVE/XGETBV, the same chain the runtime uses).
// Checked once at startup from raw CPUID leaves rather than a timing
// probe, so family selection is deterministic under frequency jitter;
// the result feeds selectFamily in kernel.go.
var hasAsm = detectAsm()

func detectAsm() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, cx, _ := cpuid(1, 0)
	const want = 1<<12 | 1<<27 | 1<<28 // FMA3, OSXSAVE, AVX
	if cx&want != want {
		return false
	}
	// XCR0 bits 1 and 2: the OS preserves xmm and ymm register state
	// across context switches. Without them AVX executes but corrupts.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, bx, _, _ := cpuid(7, 0)
	return bx&(1<<5) != 0 // AVX2
}

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// dgemmMicro4x8 computes the packed float64 micro-kernel tile
// acc[r][c] = Σ_k ap[k*4+r] * bp[k*8+c] over kc packed steps, fully
// overwriting acc. ap is a kernelMR-row packed A panel, bp a
// kernelNRAsm-column packed B panel (pack.go layout). kc must be >= 1.
//
//go:noescape
func dgemmMicro4x8(acc *[kernelMR][kernelNRAsm]float64, ap, bp *float64, kc int)

// daxpy4 computes dst[j] += Σ_{r<4} a[r]*b[r*ldb+j] for j in [0,n): a
// fused 4-row axpy whose four broadcasts are hoisted out of the j loop.
//
//go:noescape
func daxpy4(dst, b *float64, ldb int, a *[4]float64, n int)

// daxpy1 computes dst[j] += a*b[j] for j in [0,n).
//
//go:noescape
func daxpy1(dst, b *float64, a float64, n int)

// ddot4 computes four dot products sharing one left operand:
// s_r = Σ_{j<n} x[j]*r[r*ldr+j]. n must be >= 1.
//
//go:noescape
func ddot4(x, r *float64, ldr, n int) (s0, s1, s2, s3 float64)

// sgemmMicro4x16 is the float32 packed micro-kernel:
// acc[r][c] = Σ_k ap[k*4+r] * bp[k*16+c] over kc packed steps.
//
//go:noescape
func sgemmMicro4x16(acc *[kernelMR][kernelNR32]float32, ap, bp *float32, kc int)

// saxpy4 is the float32 form of daxpy4.
//
//go:noescape
func saxpy4(dst, b *float32, ldb int, a *[4]float32, n int)

// saxpy1 is the float32 form of daxpy1.
//
//go:noescape
func saxpy1(dst, b *float32, a float32, n int)

// sdot4 is the float32 form of ddot4. n must be >= 1.
//
//go:noescape
func sdot4(x, r *float32, ldr, n int) (s0, s1, s2, s3 float32)

// dgemmRows4x8 accumulates dst[r][c] += Σ_k a[r*lda+k] * b[k*ldb+c]
// for 4 dst rows and 8 columns, all kept in registers across the whole
// k loop. This is the skinny-product kernel: one call covers k*32
// FLOPs, so tiny n (4..64) no longer pays a call per 4 k-steps.
// k must be >= 1.
//
//go:noescape
func dgemmRows4x8(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int)

// dgemmRows4x4 is the 4-column strip variant of dgemmRows4x8.
//
//go:noescape
func dgemmRows4x4(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int)

// sgemmRows4x8 is the float32 form of dgemmRows4x8.
//
//go:noescape
func sgemmRows4x8(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int)

// sgemmRows4x4 is the float32 form of dgemmRows4x4.
//
//go:noescape
func sgemmRows4x4(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int)

// vselu32 applies SELU in place over n float32 values using an AVX2
// vectorized expf. n must be a positive multiple of 8; Selu32 wraps the
// ragged tail through a stack buffer.
//
//go:noescape
func vselu32(v *float32, n int, lambda, lambdaAlpha float32)
