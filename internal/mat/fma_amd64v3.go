//go:build amd64 && amd64.v3

package mat

// fmaBranchFree: on GOAMD64=v3+ builds math.FMA compiles to a bare
// VFMADD with no feature-flag branch.
const fmaBranchFree = true

// fmaGuaranteed: the v3 ABI requires FMA hardware, so the Go-FMA
// family is known fast at compile time and the startup timing probe
// never runs — family selection is fully deterministic.
const fmaGuaranteed = true
