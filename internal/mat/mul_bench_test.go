package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

func randDense(rows, cols int, rng *rand.Rand) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// BenchmarkMatMul covers the product shapes of the Bellamy hot path:
// skinny batch-times-weights products below the parallel threshold and
// square products above it (where Mul fans rows across cores).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, k, n int }{
		{64, 40, 8},     // property batch x encoder weights (serial)
		{1000, 43, 16},  // 1k-request serving batch x hidden layer
		{128, 128, 128}, // square, at the parallel threshold
		{256, 256, 256}, // square, parallel path
		{512, 512, 512}, // square, parallel path, cache-pressure
	}
	for _, s := range shapes {
		a := randDense(s.m, s.k, rng)
		c := randDense(s.k, s.n, rng)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			for i := 0; i < b.N; i++ {
				Mul(a, c)
			}
		})
	}
}

// BenchmarkMulSizes sweeps square products from below the register-tile
// width to far past the cache-blocking thresholds, so the crossover
// points of the direct, packed, and parallel paths stay visible. It is
// the acceptance benchmark of the blocked GEMM engine: the 256^3 case
// beats the unblocked scalar kernel by >= 2x under GOAMD64=v3 (the
// documented performance build, where the FMA kernel family is
// branch-free; ~1.9x on the default ABI) — see BENCH_train.json for
// both recordings.
func BenchmarkMulSizes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024} {
		a := randDense(n, n, rng)
		c := randDense(n, n, rng)
		dst := NewDense(n, n)
		b.Run(fmt.Sprintf("%dx%dx%d", n, n, n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n * n))
			for i := 0; i < b.N; i++ {
				MulTo(dst, a, c)
			}
		})
	}
}

// BenchmarkMulVecSizes covers the matrix-vector panel kernel on both
// sides of its worker-pool threshold.
func BenchmarkMulVecSizes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 256, 1024} {
		a := randDense(n, n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := make([]float64, n)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulVecTo(dst, a, x)
			}
		})
	}
}

// BenchmarkMatMulTransposed covers the backward-pass products.
func BenchmarkMatMulTransposed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(256, 64, rng)
	g := randDense(256, 32, rng)
	b.Run("ATB_256x64x32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulATB(x, g)
		}
	})
	w := randDense(64, 32, rng)
	b.Run("ABT_256x32x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulABT(g, w)
		}
	})
}
