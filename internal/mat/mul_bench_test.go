package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

func randDense(rows, cols int, rng *rand.Rand) *Dense {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// BenchmarkMatMul covers the product shapes of the Bellamy hot path:
// skinny batch-times-weights products below the parallel threshold and
// square products above it (where Mul fans rows across cores).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, k, n int }{
		{64, 40, 8},     // property batch x encoder weights (serial)
		{1000, 43, 16},  // 1k-request serving batch x hidden layer
		{128, 128, 128}, // square, at the parallel threshold
		{256, 256, 256}, // square, parallel path
		{512, 512, 512}, // square, parallel path, cache-pressure
	}
	for _, s := range shapes {
		a := randDense(s.m, s.k, rng)
		c := randDense(s.k, s.n, rng)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			for i := 0; i < b.N; i++ {
				Mul(a, c)
			}
		})
	}
}

// BenchmarkMatMulTransposed covers the backward-pass products.
func BenchmarkMatMulTransposed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(256, 64, rng)
	g := randDense(256, 32, rng)
	b.Run("ATB_256x64x32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulATB(x, g)
		}
	})
	w := randDense(64, 32, rng)
	b.Run("ABT_256x32x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulABT(g, w)
		}
	})
}
