package mat

import "sync"

// Packing layer of the blocked GEMM path. Before the micro-kernel runs,
// the A and B operands of the current cache block are copied into
// contiguous panel-major buffers:
//
//	packA: an mc x kc block of A becomes ceil(mc/MR) panels, each laid
//	       out k-major as kc groups of MR row values;
//	packB: a kc x nc block of B becomes ceil(nc/NR) panels, each laid
//	       out k-major as kc groups of NR column values.
//
// Ragged edges are zero-padded to full panel width, so microTile never
// branches on partial tiles. The copies cost O(mc*kc + kc*nc) against
// the O(mc*kc*nc) multiply and buy strictly sequential loads inside the
// micro-kernel.
//
// Pack buffers are recycled through a sync.Pool rather than a
// *Workspace: kernels can run from many goroutines at once (hyperopt
// trials, serve fan-out, the worker pool itself), and a Workspace is
// single-owner by design. Buffer growth uses the same Resized primitive
// the workspaces are built on, so steady-state packing allocates
// nothing.
const (
	// kernelMR x kernelNR is the register tile of the Go micro-kernel;
	// all families share the kernelMR-row packed-A layout.
	kernelMR = 4
	kernelNR = 4

	// kernelNRAsm is the B-panel width of the float64 asm micro-kernel
	// (dgemmMicro4x8): 8 columns = two ymm accumulators per row.
	kernelNRAsm = 8

	// kernelNR32 is the B-panel width of the float32 asm micro-kernel
	// (sgemmMicro4x16): 16 columns = two 8-float ymm accumulators per
	// row. The Go float32 fallback tiles kernelNR-wide.
	kernelNR32 = 16

	// blockKC is the reduction depth per packed panel: one A panel
	// (kernelMR*blockKC floats = 8 KiB) plus the B panel it multiplies
	// (kernelNR*blockKC floats = 8 KiB) stay resident in a 32 KiB L1d.
	blockKC = 256

	// blockMC rows of packed A per block: blockMC*blockKC floats
	// = 256 KiB, sized for L2.
	blockMC = 128

	// blockNC columns of packed B per block: blockKC*blockNC floats
	// = 1 MiB, sized for L3.
	blockNC = 512

	// packedBFootprint is the element count of the B operand (k*n)
	// beyond which B no longer fits a 1 MiB L2 and the packed path
	// takes over from the direct kernels.
	packedBFootprint = 1 << 17

	// packMinDim gates the packed path on shape: skinny products
	// (the Bellamy MLP layers) amortize packing poorly even when the
	// total footprint is large.
	packMinDim = 16
)

// gemmScratch holds one goroutine's pack buffers. The a buffer holds a
// packed A block (per worker); the b buffer holds a packed B block
// (packed once per cache block, shared read-only by all workers).
type gemmScratch struct {
	a, b *Dense
}

var scratchPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// getScratchA returns a scratch whose a buffer holds at least n floats.
func getScratchA(n int) *gemmScratch {
	s := scratchPool.Get().(*gemmScratch)
	s.a = Resized(s.a, 1, n)
	return s
}

// getScratchB returns a scratch whose b buffer holds at least n floats.
func getScratchB(n int) *gemmScratch {
	s := scratchPool.Get().(*gemmScratch)
	s.b = Resized(s.b, 1, n)
	return s
}

func putScratch(s *gemmScratch) { scratchPool.Put(s) }

// packedPanels returns the buffer length for packing dim values at
// panel width w: dim rounded up to a multiple of w, times depth.
func packedPanels(dim, w, depth int) int {
	return ((dim + w - 1) / w) * w * depth
}

// zeroPad supplies zero rows for edge panels; blockKC bounds every kc.
var zeroPad [blockKC]float64

// packA copies the mc x kc block of a at (i0, p0) into dst as
// kernelMR-row panels, k-major within each panel, zero-padding short
// panels.
func packA(dst []float64, a *Dense, i0, mc, p0, kc int) {
	for ip := 0; ip < mc; ip += kernelMR {
		r0 := a.Row(i0 + ip)[p0 : p0+kc]
		r1, r2, r3 := zeroPad[:kc], zeroPad[:kc], zeroPad[:kc]
		if ip+1 < mc {
			r1 = a.Row(i0 + ip + 1)[p0 : p0+kc]
		}
		if ip+2 < mc {
			r2 = a.Row(i0 + ip + 2)[p0 : p0+kc]
		}
		if ip+3 < mc {
			r3 = a.Row(i0 + ip + 3)[p0 : p0+kc]
		}
		for k := 0; k < kc; k++ {
			dst[0] = r0[k]
			dst[1] = r1[k]
			dst[2] = r2[k]
			dst[3] = r3[k]
			dst = dst[4:]
		}
	}
}

// packNR is the packed-B panel width of the selected kernel family:
// kernelNRAsm under the asm micro-kernel, kernelNR for the Go tiles.
var packNR = func() int {
	if family == famAsm {
		return kernelNRAsm
	}
	return kernelNR
}()

// packB copies the kc x nc block of b at (p0, j0) into dst as nr-column
// panels (nr = kernelNR or kernelNRAsm), k-major within each panel,
// zero-padding short panels.
func packB(dst []float64, b *Dense, p0, kc, j0, nc, nr int) {
	for jp := 0; jp < nc; jp += nr {
		w := nc - jp
		if w >= 8 && nr == 8 {
			for k := 0; k < kc; k++ {
				row := b.Row(p0 + k)[j0+jp : j0+jp+8 : j0+jp+8]
				dst[0] = row[0]
				dst[1] = row[1]
				dst[2] = row[2]
				dst[3] = row[3]
				dst[4] = row[4]
				dst[5] = row[5]
				dst[6] = row[6]
				dst[7] = row[7]
				dst = dst[8:]
			}
			continue
		}
		if w >= 4 && nr == 4 {
			for k := 0; k < kc; k++ {
				row := b.Row(p0 + k)[j0+jp : j0+jp+4 : j0+jp+4]
				dst[0] = row[0]
				dst[1] = row[1]
				dst[2] = row[2]
				dst[3] = row[3]
				dst = dst[4:]
			}
			continue
		}
		for k := 0; k < kc; k++ {
			row := b.Row(p0 + k)[j0+jp : j0+nc]
			for c := 0; c < nr; c++ {
				if c < len(row) {
					dst[c] = row[c]
				} else {
					dst[c] = 0
				}
			}
			dst = dst[nr:]
		}
	}
}
