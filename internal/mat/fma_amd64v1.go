//go:build amd64 && !amd64.v3

package mat

// fmaBranchFree reports whether math.FMA compiles to a bare fused
// instruction. Below GOAMD64=v3 the amd64 ABI cannot assume FMA
// hardware, so every math.FMA carries a feature-flag load and branch —
// in these load-dense kernels that costs more than fusion saves, and
// the plain multiply-add family wins (measured on Skylake-class cores).
// Build with GOAMD64=v3 to unlock the FMA kernels.
const fmaBranchFree = false

// fmaGuaranteed reports whether the compile target guarantees fast
// hardware FMA, making the startup timing probe unnecessary. A v1
// build cannot assume it.
const fmaGuaranteed = false
