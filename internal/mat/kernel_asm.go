package mat

// Direct-kernel drivers for the asm family: the same row-panel shapes
// as the Go kernels in kernel.go, with the inner loops handed to the
// AVX2/FMA3 helpers of kernel_amd64.s. Each driver hoists the operand
// base pointers and strides so the assembly sees raw pointers and never
// re-derives a row. These compile on every platform (the helpers have
// panicking stubs on noasm builds) but are only reachable when family
// == famAsm, which requires hasAsm.

// daxpyMinN is the output width from which the axpy drivers win over
// the strided row kernels: wide rows amortize the per-4-k-steps daxpy4
// call over n lanes, while skinny products (MLP layers are 1..16
// columns) would pay k/4 call overheads per row for almost no work.
const daxpyMinN = 32

// mulRowsAsm accumulates rows [lo,hi) of a*b into dst (rows
// pre-zeroed). Three regimes by output width: n == 1 runs 4-row dot
// products against the contiguous b column; small n runs the strided
// dgemmRows4x{8,4} kernels that hold 4 output rows in registers across
// the whole k loop; wide n falls back to the daxpy drivers.
func mulRowsAsm(dst, a, b *Dense, lo, hi int) {
	k := a.Cols
	n := dst.Cols
	if n == 0 || k == 0 {
		return
	}
	if n == 1 {
		i := lo
		for ; i+4 <= hi; i += 4 {
			dst.Data[i], dst.Data[i+1], dst.Data[i+2], dst.Data[i+3] =
				ddot4(&b.Data[0], &a.Data[i*k], k, k)
		}
		for ; i < hi; i++ {
			dst.Data[i] = dotUnrolled(a.Row(i), b.Data)
		}
		return
	}
	if n < daxpyMinN {
		ns := n &^ 3 // columns covered by the 8/4-wide strips
		i := lo
		for ; i+4 <= hi; i += 4 {
			ar := &a.Data[i*k]
			j := 0
			for ; j+8 <= ns; j += 8 {
				dgemmRows4x8(&dst.Data[i*n+j], n, ar, k, &b.Data[j], n, k)
			}
			for ; j+4 <= ns; j += 4 {
				dgemmRows4x4(&dst.Data[i*n+j], n, ar, k, &b.Data[j], n, k)
			}
		}
		if i < hi && ns > 0 {
			mulRowsColsPlain(dst, a, b, i, hi, 0, ns)
		}
		if ns < n {
			mulRowsTailCols(dst, a, b, lo, hi, ns)
		}
		return
	}
	var av [4]float64
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := &dst.Row(i)[0]
		p := 0
		for ; p+4 <= k; p += 4 {
			av[0], av[1], av[2], av[3] = ar[p], ar[p+1], ar[p+2], ar[p+3]
			daxpy4(or, &b.Data[p*n], n, &av, n)
		}
		for ; p < k; p++ {
			daxpy1(or, &b.Data[p*n], ar[p], n)
		}
	}
}

// mulRowsColsPlain is the scalar ragged-edge helper for mulRowsAsm:
// rows [r0,r1), columns [j0,j1) of a*b accumulated into dst.
func mulRowsColsPlain(dst, a, b *Dense, r0, r1, j0, j1 int) {
	k := a.Cols
	for i := r0; i < r1; i++ {
		ar := a.Row(i)
		or := dst.Row(i)[j0:j1]
		for p := 0; p < k; p++ {
			av := ar[p]
			br := b.Row(p)[j0:j1]
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// mulRowsTailCols finishes the 1..3 columns the 4-wide strips cannot
// cover, for all rows [lo,hi): each tail column of b is staged
// contiguously so ddot4 turns it into 4-row dot products.
func mulRowsTailCols(dst, a, b *Dense, lo, hi, j0 int) {
	k := a.Cols
	n := dst.Cols
	var colBuf [512]float64
	if k > len(colBuf) {
		mulRowsColsPlain(dst, a, b, lo, hi, j0, n)
		return
	}
	col := colBuf[:k]
	for j := j0; j < n; j++ {
		for p := range col {
			col[p] = b.Data[p*n+j]
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			s0, s1, s2, s3 := ddot4(&col[0], &a.Data[i*k], k, k)
			dst.Data[i*n+j] += s0
			dst.Data[(i+1)*n+j] += s1
			dst.Data[(i+2)*n+j] += s2
			dst.Data[(i+3)*n+j] += s3
		}
		for ; i < hi; i++ {
			dst.Data[i*n+j] += dotUnrolled(a.Row(i), col)
		}
	}
}

// mulATBAccRangeAsm accumulates columns [lo,hi) of aᵀ*b into dst rows
// [lo,hi): per dst row, 4 rank-1 updates fuse into one daxpy4 whose a
// coefficients are gathered from a column of a.
func mulATBAccRangeAsm(dst, a, b *Dense, lo, hi int) {
	rows := a.Rows
	cb := b.Cols
	if cb == 0 {
		return
	}
	var av [4]float64
	k := 0
	for ; k+4 <= rows; k += 4 {
		ar0 := a.Row(k)[lo:hi]
		ar1 := a.Row(k + 1)[lo:hi]
		ar2 := a.Row(k + 2)[lo:hi]
		ar3 := a.Row(k + 3)[lo:hi]
		bb := &b.Data[k*cb]
		for i := range ar0 {
			av[0], av[1], av[2], av[3] = ar0[i], ar1[i], ar2[i], ar3[i]
			daxpy4(&dst.Row(lo+i)[0], bb, cb, &av, cb)
		}
	}
	for ; k < rows; k++ {
		ar := a.Row(k)[lo:hi]
		bb := &b.Data[k*cb]
		for i, av1 := range ar {
			daxpy1(&dst.Row(lo+i)[0], bb, av1, cb)
		}
	}
}

// mulABTRowsAsm computes rows [lo,hi) of a*bᵀ into dst: ddot4 runs 4
// dot products against 4 consecutive b rows per pass over the a row.
func mulABTRowsAsm(dst, a, b *Dense, lo, hi int) {
	nb := b.Rows
	k := a.Cols
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		j := 0
		for ; j+4 <= nb; j += 4 {
			or[j], or[j+1], or[j+2], or[j+3] = ddot4(&ar[0], &b.Data[j*k], k, k)
		}
		for ; j < nb; j++ {
			or[j] = dotUnrolled(ar, b.Row(j))
		}
	}
}

// mulVecRowsAsm computes rows [lo,hi) of a*x into dst: ddot4 shares
// each load of x across 4 consecutive a rows.
func mulVecRowsAsm(dst []float64, a *Dense, x []float64, lo, hi int) {
	k := a.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		dst[i], dst[i+1], dst[i+2], dst[i+3] = ddot4(&x[0], &a.Data[i*k], k, k)
	}
	for ; i < hi; i++ {
		dst[i] = dotUnrolled(a.Row(i), x)
	}
}
