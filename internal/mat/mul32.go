package mat

import (
	"fmt"
	"sync"
)

// Float32 multiply dispatch, mirroring mul.go tier for tier: direct
// register-tiled row kernels for the small/skinny inference shapes, a
// packed blocked path for large products, and worker-pool fan-out over
// output-row panels past parallelThreshold. Under the asm family the
// inner loops run the AVX2 float32 helpers (saxpy4/sdot4-class kernels,
// 8 lanes per register); the fallback is a plain multiply-add Go kernel
// — the math.FMA intrinsic is float64-only, so there is no f32 Go-FMA
// family and famFMA shares the plain f32 loops.

// packNR32 is the packed-B panel width of the f32 path for the selected
// family.
func packNR32() int {
	if family == famAsm {
		return kernelNR32
	}
	return kernelNR
}

// MulToF32 computes dst = a*b, fully overwriting dst. dst must be
// a.Rows x b.Cols and must not alias a or b.
func MulToF32(dst, a, b *DenseF32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulToF32 inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulToF32 dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	if usePacked(m, k, n) {
		mulPacked32(dst, a, b)
		return
	}
	nPanels := (m + rowPanel - 1) / rowPanel
	if m*k*n >= parallelThreshold && nPanels > 1 {
		j := newJob(opMulRows32, rowPanel, nPanels)
		j.dst32, j.a32, j.b32 = dst, a, b
		runParallel(j)
		return
	}
	mulRows32(dst, a, b, 0, m)
}

// mulRows32 accumulates rows [lo,hi) of a*b into dst (rows pre-zeroed).
func mulRows32(dst, a, b *DenseF32, lo, hi int) {
	k := a.Cols
	n := dst.Cols
	if n == 0 || k == 0 {
		return
	}
	if family == famAsm {
		if n == 1 {
			i := lo
			for ; i+4 <= hi; i += 4 {
				dst.Data[i], dst.Data[i+1], dst.Data[i+2], dst.Data[i+3] =
					sdot4(&b.Data[0], &a.Data[i*k], k, k)
			}
			for ; i < hi; i++ {
				dst.Data[i] = dot32(a.Row(i), b.Data)
			}
			return
		}
		if n < saxpyMinN {
			// Skinny outputs (the inference MLP layers are 3..16 wide):
			// strided row kernels keep 4 dst rows in registers across
			// the whole k loop instead of a saxpy call per 4 k-steps.
			ns := n &^ 3 // columns covered by the 8/4-wide strips
			i := lo
			for ; i+4 <= hi; i += 4 {
				ar := &a.Data[i*k]
				j := 0
				for ; j+8 <= ns; j += 8 {
					sgemmRows4x8(&dst.Data[i*n+j], n, ar, k, &b.Data[j], n, k)
				}
				for ; j+4 <= ns; j += 4 {
					sgemmRows4x4(&dst.Data[i*n+j], n, ar, k, &b.Data[j], n, k)
				}
			}
			if i < hi && ns > 0 {
				mulRowsColsPlain32(dst, a, b, i, hi, 0, ns)
			}
			if ns < n {
				mulRowsTailCols32(dst, a, b, lo, hi, ns)
			}
			return
		}
		var av [4]float32
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := &dst.Row(i)[0]
			p := 0
			for ; p+4 <= k; p += 4 {
				av[0], av[1], av[2], av[3] = ar[p], ar[p+1], ar[p+2], ar[p+3]
				saxpy4(or, &b.Data[p*n], n, &av, n)
			}
			for ; p < k; p++ {
				saxpy1(or, &b.Data[p*n], ar[p], n)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := ar[p], ar[p+1], ar[p+2], ar[p+3]
			b0 := b.Row(p)[:n:n]
			b1 := b.Row(p + 1)[:n:n]
			b2 := b.Row(p + 2)[:n:n]
			b3 := b.Row(p + 3)[:n:n]
			for j := range or {
				or[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
			}
		}
		for ; p < k; p++ {
			av := ar[p]
			br := b.Row(p)[:n:n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

// saxpyMinN is the float32 analogue of daxpyMinN: twice as wide
// because each saxpy4 step covers 8 lanes per ymm instead of 4.
const saxpyMinN = 64

// mulRowsColsPlain32 is the scalar ragged-edge helper for the asm
// branch of mulRows32: rows [r0,r1), columns [j0,j1) accumulated.
func mulRowsColsPlain32(dst, a, b *DenseF32, r0, r1, j0, j1 int) {
	k := a.Cols
	for i := r0; i < r1; i++ {
		ar := a.Row(i)
		or := dst.Row(i)[j0:j1]
		for p := 0; p < k; p++ {
			av := ar[p]
			br := b.Row(p)[j0:j1]
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// mulRowsTailCols32 finishes the 1..3 columns the 4-wide strips cannot
// cover, for all rows [lo,hi): each tail column of b is copied into a
// contiguous stack buffer so sdot4 turns the column into 4-row dot
// products — the strided scalar loop this replaces was the hottest
// path on layer widths like 3 and 6.
func mulRowsTailCols32(dst, a, b *DenseF32, lo, hi, j0 int) {
	k := a.Cols
	n := dst.Cols
	var colBuf [512]float32
	if k > len(colBuf) {
		mulRowsColsPlain32(dst, a, b, lo, hi, j0, n)
		return
	}
	col := colBuf[:k]
	for j := j0; j < n; j++ {
		for p := range col {
			col[p] = b.Data[p*n+j]
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			s0, s1, s2, s3 := sdot4(&col[0], &a.Data[i*k], k, k)
			dst.Data[i*n+j] += s0
			dst.Data[(i+1)*n+j] += s1
			dst.Data[(i+2)*n+j] += s2
			dst.Data[(i+3)*n+j] += s3
		}
		for ; i < hi; i++ {
			dst.Data[i*n+j] += dot32(a.Row(i), col)
		}
	}
}

// Selu32 applies SELU elementwise in place using the AVX2 vectorized
// exp kernel. Returns false (leaving v untouched) when the asm family
// is unavailable; callers keep their scalar path as the fallback. The
// vector exp matches the scalar Cephes polynomial but fuses its
// multiply-adds, so results may differ from the scalar path by ~1 ulp.
func Selu32(v []float32, lambda, lambdaAlpha float32) bool {
	if family != famAsm {
		return false
	}
	n := len(v) &^ 7
	if n > 0 {
		vselu32(&v[0], n, lambda, lambdaAlpha)
	}
	if t := len(v) - n; t > 0 {
		var buf [8]float32
		copy(buf[:], v[n:])
		vselu32(&buf[0], 8, lambda, lambdaAlpha)
		copy(v[n:], buf[:t])
	}
	return true
}

// MulVecToF32 computes dst = a*x, fully overwriting dst.
func MulVecToF32(dst []float32, a *DenseF32, x []float32) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVecToF32 dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("mat: MulVecToF32 dst len %d != rows %d", len(dst), a.Rows))
	}
	if a.Rows == 0 {
		return
	}
	k := a.Cols
	if k == 0 {
		clear(dst)
		return
	}
	if family == famAsm {
		i := 0
		for ; i+4 <= a.Rows; i += 4 {
			dst[i], dst[i+1], dst[i+2], dst[i+3] = sdot4(&x[0], &a.Data[i*k], k, k)
		}
		for ; i < a.Rows; i++ {
			dst[i] = dot32(a.Row(i), x)
		}
		return
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] = dot32(a.Row(i), x)
	}
}

// dot32 is the float32 dotUnrolled: 4 partial sums break the add
// latency chain.
func dot32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	var s float32
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s0 + s1 + s2 + s3 + s
}

// gemmScratch32 holds one goroutine's float32 pack buffers, recycled
// through their own pool (see gemmScratch for the rationale).
type gemmScratch32 struct {
	a, b *DenseF32
}

var scratchPool32 = sync.Pool{New: func() any { return new(gemmScratch32) }}

// mulPacked32 is the float32 blocked GEMM driver, the twin of
// mulPacked: B packed once per cache block, blockMC row panels fanned
// across the pool past the parallel threshold.
func mulPacked32(dst, a, b *DenseF32) {
	m, k, n := a.Rows, a.Cols, b.Cols
	nr := packNR32()
	kc0 := min(k, blockKC)
	nc0 := min(n, blockNC)
	sb := scratchPool32.Get().(*gemmScratch32)
	sb.b = Resized32(sb.b, 1, packedPanels(nc0, nr, kc0))
	for pc := 0; pc < k; pc += blockKC {
		kc := min(blockKC, k-pc)
		for jc := 0; jc < n; jc += blockNC {
			nc := min(blockNC, n-jc)
			bp := sb.b.Data[:packedPanels(nc, nr, kc)]
			packB32(bp, b, pc, kc, jc, nc, nr)
			nPanels := (m + blockMC - 1) / blockMC
			if nPanels > 1 && m*kc*nc >= parallelThreshold {
				j := newJob(opMulPacked32, blockMC, nPanels)
				j.dst32, j.a32, j.bp32 = dst, a, bp
				j.pc, j.kc, j.jc, j.nc = pc, kc, jc, nc
				runParallel(j)
				continue
			}
			mulPackedPanels32(dst, a, bp, pc, kc, jc, nc, 0, nPanels)
		}
	}
	putScratch32(sb)
}

func putScratch32(s *gemmScratch32) { scratchPool32.Put(s) }

// mulPackedPanels32 computes output-row panels [p0,p1) of the current
// f32 cache block.
func mulPackedPanels32(dst, a *DenseF32, bp []float32, pc, kc, jc, nc, p0, p1 int) {
	m := a.Rows
	wNR := packNR32()
	sa := scratchPool32.Get().(*gemmScratch32)
	sa.a = Resized32(sa.a, 1, packedPanels(blockMC, kernelMR, kc))
	ap := sa.a.Data
	for p := p0; p < p1; p++ {
		i0 := p * blockMC
		mc := min(blockMC, m-i0)
		packA32(ap, a, i0, mc, pc, kc)
		for jr := 0; jr < nc; jr += wNR {
			nr := min(wNR, nc-jr)
			bpp := bp[(jr/wNR)*kc*wNR:]
			for ir := 0; ir < mc; ir += kernelMR {
				mr := min(kernelMR, mc-ir)
				microTile32(dst, i0+ir, jc+jr, mr, nr, ap[(ir/kernelMR)*kc*kernelMR:], bpp, kc)
			}
		}
	}
	putScratch32(sa)
}

// microTile32 computes dst[i0:i0+mr, j0:j0+nr] += Ap * Bp over kc
// packed steps: the 4x16 asm tile under famAsm, a plain-Go 4x4 tile
// otherwise. Writeback is masked to mr x nr.
func microTile32(dst *DenseF32, i0, j0, mr, nr int, ap, bp []float32, kc int) {
	if family == famAsm {
		var acc [kernelMR][kernelNR32]float32
		sgemmMicro4x16(&acc, &ap[0], &bp[0], kc)
		if mr == kernelMR && nr == kernelNR32 {
			for r := 0; r < kernelMR; r++ {
				row := dst.Row(i0 + r)[j0 : j0+kernelNR32 : j0+kernelNR32]
				for c, v := range &acc[r] {
					row[c] += v
				}
			}
			return
		}
		for r := 0; r < mr; r++ {
			row := dst.Row(i0 + r)
			for c := 0; c < nr; c++ {
				row[j0+c] += acc[r][c]
			}
		}
		return
	}
	var acc [kernelMR][kernelNR]float32
	n4 := 4 * kc
	aps := ap[:n4]
	bps := bp[:n4]
	for q := 0; q+4 <= n4; q += 4 {
		a0, a1, a2, a3 := aps[q], aps[q+1], aps[q+2], aps[q+3]
		b0, b1, b2, b3 := bps[q], bps[q+1], bps[q+2], bps[q+3]
		acc[0][0] += a0 * b0
		acc[0][1] += a0 * b1
		acc[0][2] += a0 * b2
		acc[0][3] += a0 * b3
		acc[1][0] += a1 * b0
		acc[1][1] += a1 * b1
		acc[1][2] += a1 * b2
		acc[1][3] += a1 * b3
		acc[2][0] += a2 * b0
		acc[2][1] += a2 * b1
		acc[2][2] += a2 * b2
		acc[2][3] += a2 * b3
		acc[3][0] += a3 * b0
		acc[3][1] += a3 * b1
		acc[3][2] += a3 * b2
		acc[3][3] += a3 * b3
	}
	for r := 0; r < mr; r++ {
		row := dst.Row(i0 + r)
		for c := 0; c < nr; c++ {
			row[j0+c] += acc[r][c]
		}
	}
}

// zeroPad32 supplies zero rows for edge panels; blockKC bounds kc.
var zeroPad32 [blockKC]float32

// packA32 copies the mc x kc block of a at (i0, p0) into dst as
// kernelMR-row panels, k-major, zero-padding short panels.
func packA32(dst []float32, a *DenseF32, i0, mc, p0, kc int) {
	for ip := 0; ip < mc; ip += kernelMR {
		r0 := a.Row(i0 + ip)[p0 : p0+kc]
		r1, r2, r3 := zeroPad32[:kc], zeroPad32[:kc], zeroPad32[:kc]
		if ip+1 < mc {
			r1 = a.Row(i0 + ip + 1)[p0 : p0+kc]
		}
		if ip+2 < mc {
			r2 = a.Row(i0 + ip + 2)[p0 : p0+kc]
		}
		if ip+3 < mc {
			r3 = a.Row(i0 + ip + 3)[p0 : p0+kc]
		}
		for k := 0; k < kc; k++ {
			dst[0] = r0[k]
			dst[1] = r1[k]
			dst[2] = r2[k]
			dst[3] = r3[k]
			dst = dst[4:]
		}
	}
}

// packB32 copies the kc x nc block of b at (p0, j0) into dst as
// nr-column panels, k-major, zero-padding short panels.
func packB32(dst []float32, b *DenseF32, p0, kc, j0, nc, nr int) {
	for jp := 0; jp < nc; jp += nr {
		w := nc - jp
		if w >= nr {
			for k := 0; k < kc; k++ {
				row := b.Row(p0 + k)[j0+jp : j0+jp+nr : j0+jp+nr]
				copy(dst[:nr], row)
				dst = dst[nr:]
			}
			continue
		}
		for k := 0; k < kc; k++ {
			row := b.Row(p0 + k)[j0+jp : j0+nc]
			for c := 0; c < nr; c++ {
				if c < len(row) {
					dst[c] = row[c]
				} else {
					dst[c] = 0
				}
			}
			dst = dst[nr:]
		}
	}
}
