//go:build !noasm

// AVX2/FMA3 micro-kernels for the mat package. Layouts and contracts
// are documented on the Go declarations in asm_amd64.go; the selection
// chain that gates these on CPU features lives in kernel.go.
//
// Register conventions shared by the kernels below:
//   DI  dst / acc base pointer
//   SI  first operand-row pointer (b, r)
//   R9-R11  operand rows 1-3 (base + 1..3 strides)
//   AX  shared left operand (a coefficients, x vector)
//   CX  element count n / kc
//   BX  running element index
//   DX  unroll bound
// Accumulators stay in Y0-Y7; broadcast coefficients in Y12-Y15.
// Every kernel ends with VZEROUPPER so the caller's SSE code pays no
// AVX-SSE transition penalty.

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dgemmMicro4x8(acc *[4][8]float64, ap, bp *float64, kc int)
//
// 8 ymm accumulators hold the full 4x8 float64 tile (row r = Y2r:Y2r+1).
// Per k step: 2 B-panel loads + 4 A broadcasts feed 8 FMAs, so the loop
// is FMA-bound on two FMA ports. The k loop is unrolled 2x with a
// second pair of B registers to halve loop overhead.
TEXT ·dgemmMicro4x8(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ kc+24(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   dtail

dloop2:
	VMOVUPD      (BX), Y8
	VMOVUPD      32(BX), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y10
	VBROADCASTSD 24(SI), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7
	VMOVUPD      64(BX), Y12
	VMOVUPD      96(BX), Y13
	VBROADCASTSD 32(SI), Y10
	VBROADCASTSD 40(SI), Y11
	VFMADD231PD  Y12, Y10, Y0
	VFMADD231PD  Y13, Y10, Y1
	VFMADD231PD  Y12, Y11, Y2
	VFMADD231PD  Y13, Y11, Y3
	VBROADCASTSD 48(SI), Y10
	VBROADCASTSD 56(SI), Y11
	VFMADD231PD  Y12, Y10, Y4
	VFMADD231PD  Y13, Y10, Y5
	VFMADD231PD  Y12, Y11, Y6
	VFMADD231PD  Y13, Y11, Y7
	ADDQ $64, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  dloop2

dtail:
	TESTQ $1, CX
	JZ    dstore
	VMOVUPD      (BX), Y8
	VMOVUPD      32(BX), Y9
	VBROADCASTSD (SI), Y10
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y10
	VBROADCASTSD 24(SI), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7

dstore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)
	VZEROUPPER
	RET

// func daxpy4(dst, b *float64, ldb int, a *[4]float64, n int)
TEXT ·daxpy4(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R8
	SHLQ $3, R8
	MOVQ a+24(FP), AX
	MOVQ n+32(FP), CX
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VBROADCASTSD (AX), Y12
	VBROADCASTSD 8(AX), Y13
	VBROADCASTSD 16(AX), Y14
	VBROADCASTSD 24(AX), Y15
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   axtail4

axloop8:
	VMOVUPD     (DI)(BX*8), Y0
	VMOVUPD     32(DI)(BX*8), Y1
	VFMADD231PD (SI)(BX*8), Y12, Y0
	VFMADD231PD 32(SI)(BX*8), Y12, Y1
	VFMADD231PD (R9)(BX*8), Y13, Y0
	VFMADD231PD 32(R9)(BX*8), Y13, Y1
	VFMADD231PD (R10)(BX*8), Y14, Y0
	VFMADD231PD 32(R10)(BX*8), Y14, Y1
	VFMADD231PD (R11)(BX*8), Y15, Y0
	VFMADD231PD 32(R11)(BX*8), Y15, Y1
	VMOVUPD     Y0, (DI)(BX*8)
	VMOVUPD     Y1, 32(DI)(BX*8)
	ADDQ $8, BX
	CMPQ BX, DX
	JLT  axloop8

axtail4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ BX, DX
	JGE  axtail1
	VMOVUPD     (DI)(BX*8), Y0
	VFMADD231PD (SI)(BX*8), Y12, Y0
	VFMADD231PD (R9)(BX*8), Y13, Y0
	VFMADD231PD (R10)(BX*8), Y14, Y0
	VFMADD231PD (R11)(BX*8), Y15, Y0
	VMOVUPD     Y0, (DI)(BX*8)
	ADDQ $4, BX

axtail1:
	CMPQ BX, CX
	JGE  axdone

axloop1:
	VMOVSD      (DI)(BX*8), X0
	VMOVSD      (SI)(BX*8), X1
	VFMADD231SD X12, X1, X0
	VMOVSD      (R9)(BX*8), X1
	VFMADD231SD X13, X1, X0
	VMOVSD      (R10)(BX*8), X1
	VFMADD231SD X14, X1, X0
	VMOVSD      (R11)(BX*8), X1
	VFMADD231SD X15, X1, X0
	VMOVSD      X0, (DI)(BX*8)
	INCQ BX
	CMPQ BX, CX
	JLT  axloop1

axdone:
	VZEROUPPER
	RET

// func daxpy1(dst, b *float64, a float64, n int)
TEXT ·daxpy1(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         b+8(FP), SI
	VBROADCASTSD a+16(FP), Y12
	MOVQ         n+24(FP), CX
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-8, DX
	JZ           ax1tail4

ax1loop8:
	VMOVUPD     (DI)(BX*8), Y0
	VMOVUPD     32(DI)(BX*8), Y1
	VFMADD231PD (SI)(BX*8), Y12, Y0
	VFMADD231PD 32(SI)(BX*8), Y12, Y1
	VMOVUPD     Y0, (DI)(BX*8)
	VMOVUPD     Y1, 32(DI)(BX*8)
	ADDQ $8, BX
	CMPQ BX, DX
	JLT  ax1loop8

ax1tail4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ BX, DX
	JGE  ax1tail1
	VMOVUPD     (DI)(BX*8), Y0
	VFMADD231PD (SI)(BX*8), Y12, Y0
	VMOVUPD     Y0, (DI)(BX*8)
	ADDQ $4, BX

ax1tail1:
	CMPQ BX, CX
	JGE  ax1done

ax1loop1:
	VMOVSD      (DI)(BX*8), X0
	VMOVSD      (SI)(BX*8), X1
	VFMADD231SD X12, X1, X0
	VMOVSD      X0, (DI)(BX*8)
	INCQ BX
	CMPQ BX, CX
	JLT  ax1loop1

ax1done:
	VZEROUPPER
	RET

// func ddot4(x, r *float64, ldr, n int) (s0, s1, s2, s3 float64)
TEXT ·ddot4(SB), NOSPLIT, $0-64
	MOVQ x+0(FP), AX
	MOVQ r+8(FP), SI
	MOVQ ldr+16(FP), R8
	SHLQ $3, R8
	MOVQ n+24(FP), CX
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   dottail4

dotloop8:
	VMOVUPD     (AX)(BX*8), Y8
	VFMADD231PD (SI)(BX*8), Y8, Y0
	VFMADD231PD (R9)(BX*8), Y8, Y1
	VFMADD231PD (R10)(BX*8), Y8, Y2
	VFMADD231PD (R11)(BX*8), Y8, Y3
	VMOVUPD     32(AX)(BX*8), Y9
	VFMADD231PD 32(SI)(BX*8), Y9, Y4
	VFMADD231PD 32(R9)(BX*8), Y9, Y5
	VFMADD231PD 32(R10)(BX*8), Y9, Y6
	VFMADD231PD 32(R11)(BX*8), Y9, Y7
	ADDQ $8, BX
	CMPQ BX, DX
	JLT  dotloop8
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

dottail4:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ BX, DX
	JGE  dotreduce
	VMOVUPD     (AX)(BX*8), Y8
	VFMADD231PD (SI)(BX*8), Y8, Y0
	VFMADD231PD (R9)(BX*8), Y8, Y1
	VFMADD231PD (R10)(BX*8), Y8, Y2
	VFMADD231PD (R11)(BX*8), Y8, Y3
	ADDQ $4, BX

dotreduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	CMPQ         BX, CX
	JGE          dotstore

dotloop1:
	VMOVSD      (AX)(BX*8), X8
	VMOVSD      (SI)(BX*8), X9
	VFMADD231SD X9, X8, X0
	VMOVSD      (R9)(BX*8), X9
	VFMADD231SD X9, X8, X1
	VMOVSD      (R10)(BX*8), X9
	VFMADD231SD X9, X8, X2
	VMOVSD      (R11)(BX*8), X9
	VFMADD231SD X9, X8, X3
	INCQ BX
	CMPQ BX, CX
	JLT  dotloop1

dotstore:
	VMOVSD X0, s0+32(FP)
	VMOVSD X1, s1+40(FP)
	VMOVSD X2, s2+48(FP)
	VMOVSD X3, s3+56(FP)
	VZEROUPPER
	RET

// func sgemmMicro4x16(acc *[4][16]float32, ap, bp *float32, kc int)
//
// The float32 twin of dgemmMicro4x8: same 8-accumulator layout, but
// each ymm holds 8 floats so the tile is 4x16.
TEXT ·sgemmMicro4x16(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ kc+24(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   stail

sloop2:
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (SI), Y10
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y10
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y9, Y11, Y7
	VMOVUPS      64(BX), Y12
	VMOVUPS      96(BX), Y13
	VBROADCASTSS 16(SI), Y10
	VBROADCASTSS 20(SI), Y11
	VFMADD231PS  Y12, Y10, Y0
	VFMADD231PS  Y13, Y10, Y1
	VFMADD231PS  Y12, Y11, Y2
	VFMADD231PS  Y13, Y11, Y3
	VBROADCASTSS 24(SI), Y10
	VBROADCASTSS 28(SI), Y11
	VFMADD231PS  Y12, Y10, Y4
	VFMADD231PS  Y13, Y10, Y5
	VFMADD231PS  Y12, Y11, Y6
	VFMADD231PS  Y13, Y11, Y7
	ADDQ $32, SI
	ADDQ $128, BX
	DECQ DX
	JNZ  sloop2

stail:
	TESTQ $1, CX
	JZ    sstore
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (SI), Y10
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y10
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y9, Y11, Y7

sstore:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, 128(DI)
	VMOVUPS Y5, 160(DI)
	VMOVUPS Y6, 192(DI)
	VMOVUPS Y7, 224(DI)
	VZEROUPPER
	RET

// func saxpy4(dst, b *float32, ldb int, a *[4]float32, n int)
TEXT ·saxpy4(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R8
	SHLQ $2, R8
	MOVQ a+24(FP), AX
	MOVQ n+32(FP), CX
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VBROADCASTSS (AX), Y12
	VBROADCASTSS 4(AX), Y13
	VBROADCASTSS 8(AX), Y14
	VBROADCASTSS 12(AX), Y15
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	JZ   saxtail8

saxloop16:
	VMOVUPS     (DI)(BX*4), Y0
	VMOVUPS     32(DI)(BX*4), Y1
	VFMADD231PS (SI)(BX*4), Y12, Y0
	VFMADD231PS 32(SI)(BX*4), Y12, Y1
	VFMADD231PS (R9)(BX*4), Y13, Y0
	VFMADD231PS 32(R9)(BX*4), Y13, Y1
	VFMADD231PS (R10)(BX*4), Y14, Y0
	VFMADD231PS 32(R10)(BX*4), Y14, Y1
	VFMADD231PS (R11)(BX*4), Y15, Y0
	VFMADD231PS 32(R11)(BX*4), Y15, Y1
	VMOVUPS     Y0, (DI)(BX*4)
	VMOVUPS     Y1, 32(DI)(BX*4)
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  saxloop16

saxtail8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  saxtail1
	VMOVUPS     (DI)(BX*4), Y0
	VFMADD231PS (SI)(BX*4), Y12, Y0
	VFMADD231PS (R9)(BX*4), Y13, Y0
	VFMADD231PS (R10)(BX*4), Y14, Y0
	VFMADD231PS (R11)(BX*4), Y15, Y0
	VMOVUPS     Y0, (DI)(BX*4)
	ADDQ $8, BX

saxtail1:
	CMPQ BX, CX
	JGE  saxdone

saxloop1:
	VMOVSS      (DI)(BX*4), X0
	VMOVSS      (SI)(BX*4), X1
	VFMADD231SS X12, X1, X0
	VMOVSS      (R9)(BX*4), X1
	VFMADD231SS X13, X1, X0
	VMOVSS      (R10)(BX*4), X1
	VFMADD231SS X14, X1, X0
	VMOVSS      (R11)(BX*4), X1
	VFMADD231SS X15, X1, X0
	VMOVSS      X0, (DI)(BX*4)
	INCQ BX
	CMPQ BX, CX
	JLT  saxloop1

saxdone:
	VZEROUPPER
	RET

// func saxpy1(dst, b *float32, a float32, n int)
TEXT ·saxpy1(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         b+8(FP), SI
	VBROADCASTSS a+16(FP), Y12
	MOVQ         n+24(FP), CX
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-16, DX
	JZ           sax1tail8

sax1loop16:
	VMOVUPS     (DI)(BX*4), Y0
	VMOVUPS     32(DI)(BX*4), Y1
	VFMADD231PS (SI)(BX*4), Y12, Y0
	VFMADD231PS 32(SI)(BX*4), Y12, Y1
	VMOVUPS     Y0, (DI)(BX*4)
	VMOVUPS     Y1, 32(DI)(BX*4)
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  sax1loop16

sax1tail8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  sax1tail1
	VMOVUPS     (DI)(BX*4), Y0
	VFMADD231PS (SI)(BX*4), Y12, Y0
	VMOVUPS     Y0, (DI)(BX*4)
	ADDQ $8, BX

sax1tail1:
	CMPQ BX, CX
	JGE  sax1done

sax1loop1:
	VMOVSS      (DI)(BX*4), X0
	VMOVSS      (SI)(BX*4), X1
	VFMADD231SS X12, X1, X0
	VMOVSS      X0, (DI)(BX*4)
	INCQ BX
	CMPQ BX, CX
	JLT  sax1loop1

sax1done:
	VZEROUPPER
	RET

// func sdot4(x, r *float32, ldr, n int) (s0, s1, s2, s3 float32)
TEXT ·sdot4(SB), NOSPLIT, $0-48
	MOVQ x+0(FP), AX
	MOVQ r+8(FP), SI
	MOVQ ldr+16(FP), R8
	SHLQ $2, R8
	MOVQ n+24(FP), CX
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	JZ   sdottail8

sdotloop16:
	VMOVUPS     (AX)(BX*4), Y8
	VFMADD231PS (SI)(BX*4), Y8, Y0
	VFMADD231PS (R9)(BX*4), Y8, Y1
	VFMADD231PS (R10)(BX*4), Y8, Y2
	VFMADD231PS (R11)(BX*4), Y8, Y3
	VMOVUPS     32(AX)(BX*4), Y9
	VFMADD231PS 32(SI)(BX*4), Y9, Y4
	VFMADD231PS 32(R9)(BX*4), Y9, Y5
	VFMADD231PS 32(R10)(BX*4), Y9, Y6
	VFMADD231PS 32(R11)(BX*4), Y9, Y7
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  sdotloop16
	VADDPS Y4, Y0, Y0
	VADDPS Y5, Y1, Y1
	VADDPS Y6, Y2, Y2
	VADDPS Y7, Y3, Y3

sdottail8:
	MOVQ CX, DX
	ANDQ $-8, DX
	CMPQ BX, DX
	JGE  sdotreduce
	VMOVUPS     (AX)(BX*4), Y8
	VFMADD231PS (SI)(BX*4), Y8, Y0
	VFMADD231PS (R9)(BX*4), Y8, Y1
	VFMADD231PS (R10)(BX*4), Y8, Y2
	VFMADD231PS (R11)(BX*4), Y8, Y3
	ADDQ $8, BX

sdotreduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3
	CMPQ         BX, CX
	JGE          sdotstore

sdotloop1:
	VMOVSS      (AX)(BX*4), X8
	VMOVSS      (SI)(BX*4), X9
	VFMADD231SS X9, X8, X0
	VMOVSS      (R9)(BX*4), X9
	VFMADD231SS X9, X8, X1
	VMOVSS      (R10)(BX*4), X9
	VFMADD231SS X9, X8, X2
	VMOVSS      (R11)(BX*4), X9
	VFMADD231SS X9, X8, X3
	INCQ BX
	CMPQ BX, CX
	JLT  sdotloop1

sdotstore:
	VMOVSS X0, s0+32(FP)
	VMOVSS X1, s1+36(FP)
	VMOVSS X2, s2+40(FP)
	VMOVSS X3, s3+44(FP)
	VZEROUPPER
	RET

// func dgemmRows4x8(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int)
//
// Strided-B row kernel for skinny products: four dst rows times an
// 8-column strip of B stay in Y0-Y7 across the whole k loop, so one
// call per 4 output rows amortizes call overhead over k*32 FLOPs —
// the shape where packing and per-k-step kernels both lose.
TEXT ·dgemmRows4x8(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ lda+24(FP), R9
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R10
	MOVQ k+48(FP), CX
	SHLQ $3, R8
	SHLQ $3, R9
	SHLQ $3, R10
	LEAQ (SI)(R9*1), R12
	LEAQ (SI)(R9*2), R13
	LEAQ (R12)(R9*2), R14
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX

dr48loop:
	VMOVUPD      (BX), Y8
	VMOVUPD      32(BX), Y9
	VBROADCASTSD (SI)(AX*8), Y10
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VBROADCASTSD (R12)(AX*8), Y11
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VBROADCASTSD (R13)(AX*8), Y10
	VFMADD231PD  Y10, Y8, Y4
	VFMADD231PD  Y10, Y9, Y5
	VBROADCASTSD (R14)(AX*8), Y11
	VFMADD231PD  Y11, Y8, Y6
	VFMADD231PD  Y11, Y9, Y7
	ADDQ R10, BX
	INCQ AX
	CMPQ AX, CX
	JLT  dr48loop

	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VADDPD  Y8, Y0, Y0
	VADDPD  Y9, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VADDPD  Y8, Y2, Y2
	VADDPD  Y9, Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VADDPD  Y8, Y6, Y6
	VADDPD  Y9, Y7, Y7
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func dgemmRows4x4(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int)
//
// 4-column variant of dgemmRows4x8: one ymm accumulator per dst row.
TEXT ·dgemmRows4x4(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ lda+24(FP), R9
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R10
	MOVQ k+48(FP), CX
	SHLQ $3, R8
	SHLQ $3, R9
	SHLQ $3, R10
	LEAQ (SI)(R9*1), R12
	LEAQ (SI)(R9*2), R13
	LEAQ (R12)(R9*2), R14
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

dr44loop:
	VMOVUPD      (BX), Y4
	VBROADCASTSD (SI)(AX*8), Y5
	VFMADD231PD  Y5, Y4, Y0
	VBROADCASTSD (R12)(AX*8), Y6
	VFMADD231PD  Y6, Y4, Y1
	VBROADCASTSD (R13)(AX*8), Y5
	VFMADD231PD  Y5, Y4, Y2
	VBROADCASTSD (R14)(AX*8), Y6
	VFMADD231PD  Y6, Y4, Y3
	ADDQ R10, BX
	INCQ AX
	CMPQ AX, CX
	JLT  dr44loop

	VMOVUPD (DI), Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y4
	VADDPD  Y4, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    R8, DI
	VMOVUPD (DI), Y4
	VADDPD  Y4, Y3, Y3
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

// func sgemmRows4x8(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int)
//
// Float32 strided-B row kernel: 4 dst rows x 8 columns in Y0-Y3 for
// the whole k loop. This is the serving-shape kernel — the Bellamy
// MLP layers are 4..16 columns wide, far too skinny for the packed
// path and too narrow to amortize per-k-step kernel calls.
TEXT ·sgemmRows4x8(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ lda+24(FP), R9
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R10
	MOVQ k+48(FP), CX
	SHLQ $2, R8
	SHLQ $2, R9
	SHLQ $2, R10
	LEAQ (SI)(R9*1), R12
	LEAQ (SI)(R9*2), R13
	LEAQ (R12)(R9*2), R14
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX

sr48loop:
	VMOVUPS      (BX), Y4
	VBROADCASTSS (SI)(AX*4), Y5
	VFMADD231PS  Y5, Y4, Y0
	VBROADCASTSS (R12)(AX*4), Y6
	VFMADD231PS  Y6, Y4, Y1
	VBROADCASTSS (R13)(AX*4), Y5
	VFMADD231PS  Y5, Y4, Y2
	VBROADCASTSS (R14)(AX*4), Y6
	VFMADD231PS  Y6, Y4, Y3
	ADDQ R10, BX
	INCQ AX
	CMPQ AX, CX
	JLT  sr48loop

	VMOVUPS (DI), Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), Y4
	VADDPS  Y4, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), Y4
	VADDPS  Y4, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), Y4
	VADDPS  Y4, Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

// func sgemmRows4x4(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int)
//
// 4-column xmm variant of sgemmRows4x8.
TEXT ·sgemmRows4x4(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ lda+24(FP), R9
	MOVQ b+32(FP), BX
	MOVQ ldb+40(FP), R10
	MOVQ k+48(FP), CX
	SHLQ $2, R8
	SHLQ $2, R9
	SHLQ $2, R10
	LEAQ (SI)(R9*1), R12
	LEAQ (SI)(R9*2), R13
	LEAQ (R12)(R9*2), R14
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3
	XORQ AX, AX

sr44loop:
	VMOVUPS      (BX), X4
	VBROADCASTSS (SI)(AX*4), X5
	VFMADD231PS  X5, X4, X0
	VBROADCASTSS (R12)(AX*4), X6
	VFMADD231PS  X6, X4, X1
	VBROADCASTSS (R13)(AX*4), X5
	VFMADD231PS  X5, X4, X2
	VBROADCASTSS (R14)(AX*4), X6
	VFMADD231PS  X6, X4, X3
	ADDQ R10, BX
	INCQ AX
	CMPQ AX, CX
	JLT  sr44loop

	VMOVUPS (DI), X4
	VADDPS  X4, X0, X0
	VMOVUPS X0, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), X4
	VADDPS  X4, X1, X1
	VMOVUPS X1, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), X4
	VADDPS  X4, X2, X2
	VMOVUPS X2, (DI)
	ADDQ    R8, DI
	VMOVUPS (DI), X4
	VADDPS  X4, X3, X3
	VMOVUPS X3, (DI)
	VZEROUPPER
	RET

// Cephes expf constants for the vectorized SELU kernel (see nn.exp32
// for the scalar twin and the error analysis).
DATA expc<>+0(SB)/4, $0x3FB8AA3B  // log2(e)
DATA expc<>+4(SB)/4, $0x3F000000  // 0.5
DATA expc<>+8(SB)/4, $0x3F318000  // ln2 high = 0.693359375
DATA expc<>+12(SB)/4, $0xB95E8083 // ln2 low  = -2.12194440e-4
DATA expc<>+16(SB)/4, $0x39506967 // p0 = 1.9875691500e-4
DATA expc<>+20(SB)/4, $0x3AB743CE // p1 = 1.3981999507e-3
DATA expc<>+24(SB)/4, $0x3C088908 // p2 = 8.3334519073e-3
DATA expc<>+28(SB)/4, $0x3D2AA9C1 // p3 = 4.1665795894e-2
DATA expc<>+32(SB)/4, $0x3E2AAAAA // p4 = 1.6666665459e-1
DATA expc<>+36(SB)/4, $0x3F000000 // p5 = 5.0000001201e-1
DATA expc<>+40(SB)/4, $0x3F800000 // 1.0
DATA expc<>+44(SB)/4, $0xC2AEAC50 // exp underflow clamp = -87.33655
GLOBL expc<>(SB), RODATA|NOPTR, $48

// func vselu32(v *float32, n int, lambda, lambdaAlpha float32)
//
// Vectorized SELU over a contiguous float32 slice: 8 lanes per step of
// the Cephes expf polynomial (range-reduce, degree-5 Horner, exponent
// assembly via integer bits), then a sign-bit blend between the linear
// positive branch and the exponential negative branch. n must be a
// positive multiple of 8; the Go wrapper rounds the tail through a
// stack buffer.
TEXT ·vselu32(SB), NOSPLIT, $0-24
	MOVQ         v+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSS lambda+16(FP), Y8
	VBROADCASTSS lambdaAlpha+20(FP), Y9
	VBROADCASTSS expc<>+0(SB), Y10
	VBROADCASTSS expc<>+4(SB), Y11
	VBROADCASTSS expc<>+8(SB), Y12
	VBROADCASTSS expc<>+12(SB), Y13
	VBROADCASTSS expc<>+40(SB), Y14
	VBROADCASTSS expc<>+44(SB), Y15
	XORQ         BX, BX

vselloop:
	VMOVUPS (DI)(BX*4), Y0

	// Positive branch: lambda*x.
	VMULPS Y8, Y0, Y1

	// t = max(min(x, 0), clamp): the exp argument, clamped so the
	// exponent bit assembly below cannot under- or overflow.
	VXORPS Y2, Y2, Y2
	VMINPS Y0, Y2, Y2
	VMAXPS Y15, Y2, Y2

	// nq = floor(t*log2e + 0.5); r = t - nq*ln2 (two-part ln2).
	VMOVAPS      Y11, Y3
	VFMADD231PS  Y10, Y2, Y3
	VROUNDPS     $1, Y3, Y3
	VFNMADD231PS Y12, Y3, Y2
	VFNMADD231PS Y13, Y3, Y2

	// Degree-5 Horner for e^r, then y = p*r^2 + r + 1.
	VBROADCASTSS expc<>+16(SB), Y4
	VBROADCASTSS expc<>+20(SB), Y5
	VFMADD213PS  Y5, Y2, Y4
	VBROADCASTSS expc<>+24(SB), Y5
	VFMADD213PS  Y5, Y2, Y4
	VBROADCASTSS expc<>+28(SB), Y5
	VFMADD213PS  Y5, Y2, Y4
	VBROADCASTSS expc<>+32(SB), Y5
	VFMADD213PS  Y5, Y2, Y4
	VBROADCASTSS expc<>+36(SB), Y5
	VFMADD213PS  Y5, Y2, Y4
	VMULPS       Y2, Y2, Y5
	VFMADD213PS  Y2, Y5, Y4
	VADDPS       Y14, Y4, Y4

	// Scale by 2^nq: bits(2^nq) = (nq << 23) + bits(1.0).
	VCVTPS2DQ Y3, Y3
	VPSLLD    $23, Y3, Y3
	VPADDD    Y14, Y3, Y3
	VMULPS    Y3, Y4, Y4

	// Negative branch: lambdaAlpha*(e^t - 1).
	VSUBPS Y14, Y4, Y4
	VMULPS Y9, Y4, Y4

	// Lanes with the sign bit of x set take the negative branch.
	VBLENDVPS Y0, Y4, Y1, Y1
	VMOVUPS   Y1, (DI)(BX*4)
	ADDQ      $8, BX
	CMPQ      BX, CX
	JLT       vselloop

	VZEROUPPER
	RET
