package mat

import (
	"fmt"
	"math"
)

// Add returns a+b element-wise.
func Add(a, b *Dense) *Dense {
	sameShape("Add", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b element-wise.
func Sub(a, b *Dense) *Dense {
	sameShape("Sub", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a*b.
func Hadamard(a, b *Dense) *Dense {
	sameShape("Hadamard", a, b)
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Dense) {
	sameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Apply returns a new matrix with f applied to every element of a.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// AddRowVec adds the 1 x Cols row vector v to every row of a, returning a
// new matrix. It is the broadcast used for bias addition.
func AddRowVec(a *Dense, v []float64) *Dense {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVec len %d != cols %d", len(v), a.Cols))
	}
	out := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := range ar {
			or[j] = ar[j] + v[j]
		}
	}
	return out
}

// ColSums returns the per-column sums of a as a length-Cols slice.
func ColSums(a *Dense) []float64 {
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot len %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AxPy computes y += alpha*x in place.
func AxPy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AxPy len %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Concat concatenates matrices horizontally (same row count).
func Concat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: Concat row mismatch %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		or := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(or[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns a copy of columns [from, to) of a.
func SliceCols(a *Dense, from, to int) *Dense {
	if from < 0 || to > a.Cols || from > to {
		panic(fmt.Sprintf("mat: SliceCols [%d,%d) out of bounds cols=%d", from, to, a.Cols))
	}
	out := NewDense(a.Rows, to-from)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i)[from:to])
	}
	return out
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
