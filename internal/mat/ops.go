package mat

import (
	"fmt"
	"math"
)

// The element-wise kernels come in two flavors: an allocating form
// (Add, Scale, ...) kept for convenience, and a destination form
// (AddTo, ScaleTo, ...) that writes into a caller-provided matrix and
// allocates nothing. Every destination kernel fully overwrites dst and
// tolerates dst aliasing one of its inputs, which is what makes in-place
// updates (ScaleTo(a, s, a)) legal.

// Add returns a+b element-wise.
func Add(a, b *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	AddTo(out, a, b)
	return out
}

// AddTo computes dst = a+b element-wise. dst may alias a or b.
func AddTo(dst, a, b *Dense) {
	sameShape("Add", a, b)
	sameShape("AddTo(dst)", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// Sub returns a-b element-wise.
func Sub(a, b *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	SubTo(out, a, b)
	return out
}

// SubTo computes dst = a-b element-wise. dst may alias a or b.
func SubTo(dst, a, b *Dense) {
	sameShape("Sub", a, b)
	sameShape("SubTo(dst)", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
}

// Hadamard returns the element-wise product a*b.
func Hadamard(a, b *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	HadamardTo(out, a, b)
	return out
}

// HadamardTo computes dst = a⊙b element-wise. dst may alias a or b.
func HadamardTo(dst, a, b *Dense) {
	sameShape("Hadamard", a, b)
	sameShape("HadamardTo(dst)", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// Scale returns s*a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	ScaleTo(out, s, a)
	return out
}

// ScaleTo computes dst = s*a. dst may alias a for an in-place rescale.
func ScaleTo(dst *Dense, s float64, a *Dense) {
	sameShape("ScaleTo(dst)", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Dense) {
	sameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Apply returns a new matrix with f applied to every element of a.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	ApplyTo(out, a, f)
	return out
}

// ApplyTo computes dst[i] = f(a[i]) for every element. dst may alias a.
func ApplyTo(dst, a *Dense, f func(float64) float64) {
	sameShape("ApplyTo(dst)", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
}

// AddRowVec adds the 1 x Cols row vector v to every row of a, returning a
// new matrix. It is the broadcast used for bias addition.
func AddRowVec(a *Dense, v []float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	AddRowVecTo(out, a, v)
	return out
}

// AddRowVecTo computes dst = a + broadcast(v). dst may alias a, which is
// the in-place bias addition of the linear layer.
func AddRowVecTo(dst, a *Dense, v []float64) {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("mat: AddRowVec len %d != cols %d", len(v), a.Cols))
	}
	sameShape("AddRowVecTo(dst)", dst, a)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		for j := range ar {
			or[j] = ar[j] + v[j]
		}
	}
}

// ColSums returns the per-column sums of a as a length-Cols slice.
func ColSums(a *Dense) []float64 {
	out := make([]float64, a.Cols)
	ColSumsAcc(out, a)
	return out
}

// ColSumsAcc accumulates the per-column sums of a into dst. It is the
// bias-gradient kernel: db += colsums(grad) writes straight into the
// parameter gradient.
func ColSumsAcc(dst []float64, a *Dense) {
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("mat: ColSumsAcc dst len %d != cols %d", len(dst), a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot len %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AxPy computes y += alpha*x in place.
func AxPy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AxPy len %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// FrobeniusNorm returns the Frobenius norm of a.
func FrobeniusNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Concat concatenates matrices horizontally (same row count).
func Concat(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: Concat row mismatch %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		or := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(or[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SliceCols returns a copy of columns [from, to) of a.
func SliceCols(a *Dense, from, to int) *Dense {
	out := NewDense(a.Rows, to-from)
	SliceColsTo(out, a, from, to)
	return out
}

// SliceColsTo copies columns [from, to) of a into dst.
func SliceColsTo(dst, a *Dense, from, to int) {
	if from < 0 || to > a.Cols || from > to {
		panic(fmt.Sprintf("mat: SliceCols [%d,%d) out of bounds cols=%d", from, to, a.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != to-from {
		panic(fmt.Sprintf("mat: SliceColsTo dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, to-from))
	}
	for i := 0; i < a.Rows; i++ {
		copy(dst.Row(i), a.Row(i)[from:to])
	}
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
