package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Float32 kernel equivalence: the f32 serving kernels are validated
// against the float64 oracle on float32-rounded inputs, so the only
// admissible error is f32 summation rounding. The bound scales with
// the reduction depth like tolClose, at float32 epsilon.

func tolClose32(got float32, want float64, k int) bool {
	d := math.Abs(float64(got) - want)
	return d <= 2e-6*float64(k+1)*(1+math.Abs(want))
}

// randomDense32 draws a float32 matrix plus its exact float64 shadow:
// the f64 copy holds the same (f32-representable) values, so oracle
// products differ from the f32 kernels only by accumulation rounding.
func randomDense32(rng *rand.Rand, rows, cols int) (*DenseF32, *Dense) {
	q := NewDenseF32(rows, cols)
	d := NewDense(rows, cols)
	for i := range q.Data {
		v := float32(rng.NormFloat64())
		q.Data[i] = v
		d.Data[i] = float64(v)
	}
	return q, d
}

func equalishTol32(t *testing.T, name string, got *DenseF32, want *Dense, k int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if !tolClose32(v, want.Data[i], k) {
			t.Fatalf("%s: element %d = %v, want %v (reduction depth %d)", name, i, v, want.Data[i], k)
		}
	}
}

// TestF32FamiliesMatchRef sweeps the float32 kernels across every
// runnable family and a set of ragged shapes: the direct row kernel,
// the packed path forced regardless of size gates (4x16 asm tile and
// 4x4 Go tile both see partial panels), and the vector kernel.
func TestF32FamiliesMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, fam := range testFamilies() {
		setFamily(t, fam)
		name := "family=" + fam.String()
		for _, s := range []struct{ m, k, n int }{{37, 23, 19}, {70, 67, 66}, {5, 300, 47}, {16, 16, 16}, {33, 29, 1}, {9, 40, 8}} {
			a32, a := randomDense32(rng, s.m, s.k)
			b32, b := randomDense32(rng, s.k, s.n)
			want := NewDense(s.m, s.n)
			refMulTo(want, a, b)

			got := NewDenseF32(s.m, s.n)
			MulToF32(got, a32, b32)
			equalishTol32(t, "MulToF32/"+name, got, want, s.k)

			got.Zero()
			mulPacked32(got, a32, b32) // packed path, forced
			equalishTol32(t, "mulPacked32/"+name, got, want, s.k)

			x32 := make([]float32, s.k)
			x := make([]float64, s.k)
			for i := range x32 {
				x32[i] = b32.Data[i]
				x[i] = float64(b32.Data[i])
			}
			wantV := make([]float64, s.m)
			refMulVecTo(wantV, a, x)
			gotV := make([]float32, s.m)
			MulVecToF32(gotV, a32, x32)
			for i := range wantV {
				if !tolClose32(gotV[i], wantV[i], s.k) {
					t.Fatalf("MulVecToF32/%s: row %d = %v, want %v", name, i, gotV[i], wantV[i])
				}
			}
		}
	}
}

// TestF32LargePathsMatchRef forces the parallel and packed dispatch
// routes of MulToF32 (worker-pool row panels, blocked B) on shapes
// past their thresholds, including a single-row edge.
func TestF32LargePathsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, fam := range testFamilies() {
		setFamily(t, fam)
		name := "family=" + fam.String()
		for _, s := range []struct{ m, k, n int }{
			{300, 60, 17},  // parallel direct route
			{40, 300, 512}, // packed route (k*n past packedBFootprint)
			{1, 300, 300},  // single row stays on the direct kernel
		} {
			a32, a := randomDense32(rng, s.m, s.k)
			b32, b := randomDense32(rng, s.k, s.n)
			want := NewDense(s.m, s.n)
			refMulTo(want, a, b)
			got := NewDenseF32(s.m, s.n)
			MulToF32(got, a32, b32)
			equalishTol32(t, "MulToF32/"+name, got, want, s.k)
		}
	}
}
