package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of scalar multiply-adds in a
// product before Mul fans the row loop out across goroutines. Small
// products (the common case for Bellamy's 2-layer MLPs) stay serial to
// avoid scheduling overhead.
const parallelThreshold = 64 * 1024

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work >= parallelThreshold && a.Rows > 1 {
		mulParallel(a, b, out)
	} else {
		mulRange(a, b, out, 0, a.Rows)
	}
	return out
}

// mulRange computes out rows [lo,hi) of a*b using an ikj loop order that
// streams rows of b for cache friendliness.
func mulRange(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

func mulParallel(a, b, out *Dense) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulATB returns aᵀ*b without materializing the transpose.
func MulATB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulATB row mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MulABT returns a*bᵀ without materializing the transpose.
func MulABT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABT col mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			or[j] = Dot(ar, b.Row(j))
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x as a new slice.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}
