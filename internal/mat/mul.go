package mat

import (
	"fmt"
)

// Multiply dispatch. Every product family has three tiers:
//
//  1. direct register-tiled kernels (kernel.go) for the small and
//     skinny shapes of the Bellamy MLP hot path;
//  2. the packed, cache-blocked GEMM path (pack.go + microTile) once a
//     product is large enough in every dimension to amortize packing;
//  3. output-row-panel parallelism across the shared worker pool
//     (pool.go) once the multiply-add count clears parallelThreshold.
//
// The blocked tiers change floating-point summation order relative to
// the reference kernels in mul_ref.go, so equivalence is specified to
// epsilon tolerance (see mul_equiv_test.go); the reference kernels
// remain the bit-exact oracle.

// parallelThreshold is the minimum number of scalar multiply-adds in a
// product before the kernels fan output-row panels across the shared
// worker pool. Small products (the common case for Bellamy's 2-layer
// MLPs) stay serial to avoid scheduling overhead.
const parallelThreshold = 64 * 1024

// rowPanel is the output-row panel size of the direct (unpacked)
// parallel kernels; the packed path uses blockMC-row panels so one
// claim amortizes one A-block pack.
const rowPanel = 8

// usePacked reports whether a product of the given dimensions should
// take the packed blocked path: once the B operand outgrows L2, the
// direct kernels stream it from shared cache for every output-row pass
// and packing starts paying for itself. Below that, the direct kernels
// win — packing traffic is pure overhead on an L2-resident B.
func usePacked(m, k, n int) bool {
	return k*n >= packedBFootprint && m >= kernelMR && k >= packMinDim && n >= packMinDim
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, fully overwriting dst. dst must be
// a.Rows x b.Cols and must not alias a or b.
func MulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulTo", dst, a.Rows, b.Cols)
	dst.Zero()
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	if usePacked(m, k, n) {
		mulPacked(dst, a, b)
		return
	}
	nPanels := (m + rowPanel - 1) / rowPanel
	if m*k*n >= parallelThreshold && nPanels > 1 {
		j := newJob(opMulRows, rowPanel, nPanels)
		j.dst, j.a, j.b = dst, a, b
		runParallel(j)
		return
	}
	mulRows(dst, a, b, 0, m)
}

// mulPacked is the blocked GEMM driver: B is packed once per
// (k-block, column-block) and shared read-only, then output-row panels
// of blockMC rows are either computed inline or fanned across the
// worker pool, each worker packing its own A block.
func mulPacked(dst, a, b *Dense) {
	m, k, n := a.Rows, a.Cols, b.Cols
	nr := packNR
	kc0 := min(k, blockKC)
	nc0 := min(n, blockNC)
	sb := getScratchB(packedPanels(nc0, nr, kc0))
	for pc := 0; pc < k; pc += blockKC {
		kc := min(blockKC, k-pc)
		for jc := 0; jc < n; jc += blockNC {
			nc := min(blockNC, n-jc)
			bp := sb.b.Data[:packedPanels(nc, nr, kc)]
			packB(bp, b, pc, kc, jc, nc, nr)
			nPanels := (m + blockMC - 1) / blockMC
			if nPanels > 1 && m*kc*nc >= parallelThreshold {
				j := newJob(opMulPacked, blockMC, nPanels)
				j.dst, j.a, j.bp = dst, a, bp
				j.pc, j.kc, j.jc, j.nc = pc, kc, jc, nc
				runParallel(j)
				continue
			}
			mulPackedPanels(dst, a, bp, pc, kc, jc, nc, 0, nPanels)
		}
	}
	putScratch(sb)
}

// mulPackedPanels computes output-row panels [p0,p1) of the current
// cache block: pack the A block, then run the micro-kernel over every
// (column panel, row tile) pair, with the column panel of B held hot in
// L1 across the row tiles. The column-panel width follows the selected
// kernel family (packNR).
func mulPackedPanels(dst, a *Dense, bp []float64, pc, kc, jc, nc, p0, p1 int) {
	m := a.Rows
	wNR := packNR
	sa := getScratchA(packedPanels(blockMC, kernelMR, kc))
	ap := sa.a.Data
	for p := p0; p < p1; p++ {
		i0 := p * blockMC
		mc := min(blockMC, m-i0)
		packA(ap, a, i0, mc, pc, kc)
		for jr := 0; jr < nc; jr += wNR {
			nr := min(wNR, nc-jr)
			bpp := bp[(jr/wNR)*kc*wNR:]
			for ir := 0; ir < mc; ir += kernelMR {
				mr := min(kernelMR, mc-ir)
				microTile(dst, i0+ir, jc+jr, mr, nr, ap[(ir/kernelMR)*kc*kernelMR:], bpp, kc)
			}
		}
	}
	putScratch(sa)
}

// MulATB returns aᵀ*b without materializing the transpose.
func MulATB(a, b *Dense) *Dense {
	out := NewDense(a.Cols, b.Cols)
	MulATBAcc(out, a, b)
	return out
}

// MulATBTo computes dst = aᵀ*b, fully overwriting dst.
func MulATBTo(dst, a, b *Dense) {
	checkDst("MulATBTo", dst, a.Cols, b.Cols)
	dst.Zero()
	MulATBAcc(dst, a, b)
}

// MulATBAcc accumulates dst += aᵀ*b without materializing the
// transpose. It is the gradient-accumulation kernel: dW += xᵀ*grad
// writes straight into the parameter gradient. Large products fan
// output-row panels (columns of a) across the worker pool; every
// worker's accesses stay row-contiguous, re-reading b from shared
// cache while owning its dst rows exclusively.
func MulATBAcc(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulATB row mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulATBAcc", dst, a.Cols, b.Cols)
	if a.Rows == 0 || a.Cols == 0 || b.Cols == 0 {
		return
	}
	nPanels := (a.Cols + rowPanel - 1) / rowPanel
	if a.Rows*a.Cols*b.Cols >= parallelThreshold && nPanels > 1 {
		j := newJob(opMulATBCols, rowPanel, nPanels)
		j.dst, j.a, j.b = dst, a, b
		runParallel(j)
		return
	}
	mulATBAccRange(dst, a, b, 0, a.Cols)
}

// MulABT returns a*bᵀ without materializing the transpose.
func MulABT(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Rows)
	MulABTTo(out, a, b)
	return out
}

// MulABTTo computes dst = a*bᵀ, fully overwriting dst.
func MulABTTo(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABT col mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulABTTo", dst, a.Rows, b.Rows)
	if a.Rows == 0 || b.Rows == 0 {
		return
	}
	if a.Cols == 0 {
		dst.Zero()
		return
	}
	nPanels := (a.Rows + rowPanel - 1) / rowPanel
	if a.Rows*a.Cols*b.Rows >= parallelThreshold && nPanels > 1 {
		j := newJob(opMulABTRows, rowPanel, nPanels)
		j.dst, j.a, j.b = dst, a, b
		runParallel(j)
		return
	}
	mulABTRows(dst, a, b, 0, a.Rows)
}

// MulVec returns the matrix-vector product a*x as a new slice.
func MulVec(a *Dense, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MulVecTo(out, a, x)
	return out
}

// MulVecTo computes dst = a*x, fully overwriting dst. It rides the same
// register-tiled panel kernels as the matrix products — including the
// worker-pool fan-out over output-row panels for large matrices — so
// single-row inference is served by the tiled path too.
func MulVecTo(dst []float64, a *Dense, x []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("mat: MulVecTo dst len %d != rows %d", len(dst), a.Rows))
	}
	if a.Rows == 0 {
		return
	}
	if a.Cols == 0 {
		clear(dst)
		return
	}
	nPanels := (a.Rows + rowPanel - 1) / rowPanel
	if a.Rows*a.Cols >= parallelThreshold && nPanels > 1 {
		j := newJob(opMulVecRows, rowPanel, nPanels)
		j.a, j.x, j.y = a, x, dst
		runParallel(j)
		return
	}
	mulVecRows(dst, a, x, 0, a.Rows)
}

func checkDst(op string, dst *Dense, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("mat: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}
