package mat

import (
	"fmt"
)

// parallelThreshold is the minimum number of scalar multiply-adds in a
// product before MulTo fans the row loop out across the shared worker
// pool. Small products (the common case for Bellamy's 2-layer MLPs) stay
// serial to avoid scheduling overhead.
const parallelThreshold = 64 * 1024

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, fully overwriting dst. dst must be
// a.Rows x b.Cols and must not alias a or b.
func MulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulTo", dst, a.Rows, b.Cols)
	dst.Zero()
	work := a.Rows * a.Cols * b.Cols
	if work >= parallelThreshold && a.Rows > 1 {
		mulParallel(a, b, dst)
	} else {
		mulRange(a, b, dst, 0, a.Rows)
	}
}

// mulRange accumulates rows [lo,hi) of a*b into out using an ikj loop
// order that streams rows of b for cache friendliness. out rows must be
// zeroed beforehand.
func mulRange(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// MulATB returns aᵀ*b without materializing the transpose.
func MulATB(a, b *Dense) *Dense {
	out := NewDense(a.Cols, b.Cols)
	MulATBAcc(out, a, b)
	return out
}

// MulATBTo computes dst = aᵀ*b, fully overwriting dst.
func MulATBTo(dst, a, b *Dense) {
	checkDst("MulATBTo", dst, a.Cols, b.Cols)
	dst.Zero()
	MulATBAcc(dst, a, b)
}

// MulATBAcc accumulates dst += aᵀ*b without materializing the transpose.
// It is the gradient-accumulation kernel: dW += xᵀ*grad writes straight
// into the parameter gradient.
func MulATBAcc(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulATB row mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulATBAcc", dst, a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := dst.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// MulABT returns a*bᵀ without materializing the transpose.
func MulABT(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Rows)
	MulABTTo(out, a, b)
	return out
}

// MulABTTo computes dst = a*bᵀ, fully overwriting dst.
func MulABTTo(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABT col mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDst("MulABTTo", dst, a.Rows, b.Rows)
	bc := b.Cols
	bd := b.Data
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := bd[j*bc : (j+1)*bc]
			var s float64
			for k, av := range ar {
				s += av * br[k]
			}
			or[j] = s
		}
	}
}

// MulVec returns the matrix-vector product a*x as a new slice.
func MulVec(a *Dense, x []float64) []float64 {
	out := make([]float64, a.Rows)
	MulVecTo(out, a, x)
	return out
}

// MulVecTo computes dst = a*x, fully overwriting dst.
func MulVecTo(dst []float64, a *Dense, x []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("mat: MulVecTo dst len %d != rows %d", len(dst), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
}

func checkDst(op string, dst *Dense, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("mat: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}
