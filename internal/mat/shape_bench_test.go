package mat

import (
	"fmt"
	"testing"
)

// BenchmarkServeShape sweeps the float32 products of one serving-batch
// forward pass (f/g/z layer shapes for a 250-query batch): skinny
// outputs where the strided sgemmRows4x{8,4} kernels and the dot-based
// column-tail path do the work. These are the shapes the packed GEMM
// path never sees.
func BenchmarkServeShape(b *testing.B) {
	for _, s := range []struct{ m, k, n int }{
		{1750, 40, 8}, // g layer 1: (B*7) property rows x encoder
		{250, 3, 16},  // f layer 1: scale-out features x hidden
		{250, 16, 8},  // f layer 2
		{1750, 8, 4},  // g layer 2: hidden x encoding dim
		{250, 28, 8},  // z layer 1: combined features x hidden
		{250, 8, 1},   // z layer 2: hidden x runtime
	} {
		a := NewDenseF32(s.m, s.k)
		bb := NewDenseF32(s.k, s.n)
		for i := range a.Data {
			a.Data[i] = float32(i%7) * 0.1
		}
		for i := range bb.Data {
			bb.Data[i] = float32(i%5) * 0.2
		}
		dst := NewDenseF32(s.m, s.n)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulToF32(dst, a, bb)
			}
		})
	}
}
