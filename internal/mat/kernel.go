package mat

import (
	"math"
	"os"
	"time"
)

// Register-tiled multiply kernels. Two kernel shapes live here:
//
//   - microTile: the packed micro-kernel of the blocked GEMM path. It
//     multiplies a kernelMR-wide packed A panel by a packNR-wide packed
//     B panel, keeping the output tile in registers across the k loop.
//     The asm family runs a 4x8 tile (8 ymm accumulators, FMA-bound on
//     two FMA ports); the Go families run a 4x4 tile as two 2x4
//     register halves — 8 accumulators plus 6 operands fit amd64's 16
//     float registers, whereas a monolithic 4x4 (16 accumulators)
//     spills half its tile to the stack on every iteration — measured
//     ~1.6x slower. Operands come from pack.go's contiguous panels, so
//     every load is sequential and bounds checks vanish.
//
//   - mulRows / mulATBAccRange / mulABTRows / mulVecRows: direct
//     register-tiled kernels that run straight on the row-major
//     operands. They unroll the reduction (or the output columns) 4-
//     or 8-way so each output element is loaded and stored once per
//     unroll group instead of once per multiply-add, and they carry
//     independent accumulator chains for instruction-level parallelism.
//     They serve the small/skinny products of the Bellamy MLPs, the
//     products whose B operand still fits in L2 (where packing is pure
//     overhead), and the transposed products. Under the asm family
//     their inner loops run through the daxpy4/ddot4 AVX2 helpers of
//     kernel_asm.go.
//
// None of the kernels branch on zero operands: the old `av == 0` skip
// helped only on artificially sparse data and defeated pipelining on
// the dense matrices that dominate training and serving.

// kernelFamily identifies one implementation family of the multiply
// kernels. The fallback chain is famAsm → famFMA → famPlain: the
// hand-written AVX2/FMA3 kernels when the CPU has them, the Go kernels
// built on the math.FMA intrinsic when it is branch-free and
// hardware-fused, the plain multiply-add kernels otherwise.
type kernelFamily uint8

const (
	famPlain kernelFamily = iota
	famFMA
	famAsm
)

func (f kernelFamily) String() string {
	switch f {
	case famAsm:
		return "asm"
	case famFMA:
		return "fma"
	default:
		return "plain"
	}
}

// kernelEnv forces a kernel family, overriding detection: "asm", "fma"
// or "plain". The equivalence suite uses it to pin a family per run;
// forcing "asm" on a build or CPU without the kernels falls back to
// the automatic chain.
const kernelEnv = "BELLAMY_MAT_KERNEL"

// family is the kernel family every multiply in this process runs,
// fixed at startup.
var family = selectFamily(os.Getenv(kernelEnv))

// KernelFamily reports the selected multiply-kernel family ("asm",
// "fma" or "plain") for startup logging and diagnostics.
func KernelFamily() string { return family.String() }

// selectFamily resolves the kernel family once at init. Compile-time
// and cpuid signals decide everything on amd64 (GOAMD64 fixes the
// math.FMA codegen, cpuid fixes asm availability), so selection there
// is deterministic under CPU-frequency jitter; the fmaIsFast timing
// probe runs only on non-amd64 builds, where a hardware-looking
// math.FMA may still be software emulation.
func selectFamily(forced string) kernelFamily {
	switch forced {
	case "asm":
		if hasAsm {
			return famAsm
		}
	case "fma":
		return famFMA
	case "plain":
		return famPlain
	}
	if hasAsm {
		return famAsm
	}
	if fmaGuaranteed {
		return famFMA
	}
	if fmaBranchFree && fmaIsFast() {
		return famFMA
	}
	return famPlain
}

var probeSink float64

// fmaIsFast distinguishes hardware math.FMA from the software fallback
// by timing: the emulation is >20x slower than a plain multiply-add, so
// a 4x threshold is robust to scheduling noise. Runs once at package
// init (~tens of microseconds).
func fmaIsFast() bool {
	const n = 4096
	x, y := 1.0000001, 0.99999997
	run := func(fma bool) time.Duration {
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < 3; trial++ {
			s := probeSink
			start := time.Now()
			if fma {
				for i := 0; i < n; i++ {
					s = math.FMA(x, y, s)
				}
			} else {
				for i := 0; i < n; i++ {
					s += x * y
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
			probeSink = s - s // keep the loop observable, stay at zero
		}
		return best
	}
	run(false) // warm the timer and the cache lines
	return run(true) <= 4*run(false)
}

// microTile computes dst[i0:i0+mr, j0:j0+nr] += Ap * Bp over kc packed
// steps. ap holds kc groups of kernelMR row values, bp holds kc groups
// of packNR column values; out-of-range lanes are zero-padded by the
// packers, so the register tile always runs full width and only the
// writeback is masked to mr x nr.
func microTile(dst *Dense, i0, j0, mr, nr int, ap, bp []float64, kc int) {
	if family == famAsm {
		var acc [kernelMR][kernelNRAsm]float64
		dgemmMicro4x8(&acc, &ap[0], &bp[0], kc)
		if mr == kernelMR && nr == kernelNRAsm {
			for r := 0; r < kernelMR; r++ {
				row := dst.Row(i0 + r)[j0 : j0+kernelNRAsm : j0+kernelNRAsm]
				for c, v := range &acc[r] {
					row[c] += v
				}
			}
			return
		}
		for r := 0; r < mr; r++ {
			row := dst.Row(i0 + r)
			for c := 0; c < nr; c++ {
				row[j0+c] += acc[r][c]
			}
		}
		return
	}
	var acc [kernelMR][kernelNR]float64
	if family == famFMA {
		microTileFMA(&acc, ap, bp, kc)
	} else {
		microTilePlain(&acc, ap, bp, kc)
	}
	if mr == kernelMR && nr == kernelNR {
		for r := 0; r < kernelMR; r++ {
			row := dst.Row(i0 + r)[j0 : j0+kernelNR : j0+kernelNR]
			row[0] += acc[r][0]
			row[1] += acc[r][1]
			row[2] += acc[r][2]
			row[3] += acc[r][3]
		}
		return
	}
	for r := 0; r < mr; r++ {
		row := dst.Row(i0 + r)
		for c := 0; c < nr; c++ {
			row[j0+c] += acc[r][c]
		}
	}
}

// microTileFMA accumulates the 4x4 tile as two 2x4 register halves with
// fused multiply-adds: per k step each half issues 8 independent FMAs,
// exactly saturating two FMA ports without spilling. The packed
// operands are walked by a single proven index, so the loops carry no
// bounds checks and no per-iteration slice updates.
func microTileFMA(acc *[kernelMR][kernelNR]float64, ap, bp []float64, kc int) {
	n4 := 4 * kc
	ap = ap[:n4]
	bp = bp[:n4]
	{
		var c00, c01, c02, c03, c10, c11, c12, c13 float64
		for q := 0; q+4 <= n4; q += 4 {
			a0, a1 := ap[q], ap[q+1]
			b0, b1, b2, b3 := bp[q], bp[q+1], bp[q+2], bp[q+3]
			c00 = math.FMA(a0, b0, c00)
			c01 = math.FMA(a0, b1, c01)
			c02 = math.FMA(a0, b2, c02)
			c03 = math.FMA(a0, b3, c03)
			c10 = math.FMA(a1, b0, c10)
			c11 = math.FMA(a1, b1, c11)
			c12 = math.FMA(a1, b2, c12)
			c13 = math.FMA(a1, b3, c13)
		}
		acc[0] = [kernelNR]float64{c00, c01, c02, c03}
		acc[1] = [kernelNR]float64{c10, c11, c12, c13}
	}
	{
		var c20, c21, c22, c23, c30, c31, c32, c33 float64
		for q := 0; q+4 <= n4; q += 4 {
			a2, a3 := ap[q+2], ap[q+3]
			b0, b1, b2, b3 := bp[q], bp[q+1], bp[q+2], bp[q+3]
			c20 = math.FMA(a2, b0, c20)
			c21 = math.FMA(a2, b1, c21)
			c22 = math.FMA(a2, b2, c22)
			c23 = math.FMA(a2, b3, c23)
			c30 = math.FMA(a3, b0, c30)
			c31 = math.FMA(a3, b1, c31)
			c32 = math.FMA(a3, b2, c32)
			c33 = math.FMA(a3, b3, c33)
		}
		acc[2] = [kernelNR]float64{c20, c21, c22, c23}
		acc[3] = [kernelNR]float64{c30, c31, c32, c33}
	}
}

// microTilePlain is the multiply-add form of microTileFMA for builds
// and CPUs where math.FMA does not pay.
func microTilePlain(acc *[kernelMR][kernelNR]float64, ap, bp []float64, kc int) {
	n4 := 4 * kc
	ap = ap[:n4]
	bp = bp[:n4]
	{
		var c00, c01, c02, c03, c10, c11, c12, c13 float64
		for q := 0; q+4 <= n4; q += 4 {
			a0, a1 := ap[q], ap[q+1]
			b0, b1, b2, b3 := bp[q], bp[q+1], bp[q+2], bp[q+3]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
		}
		acc[0] = [kernelNR]float64{c00, c01, c02, c03}
		acc[1] = [kernelNR]float64{c10, c11, c12, c13}
	}
	{
		var c20, c21, c22, c23, c30, c31, c32, c33 float64
		for q := 0; q+4 <= n4; q += 4 {
			a2, a3 := ap[q+2], ap[q+3]
			b0, b1, b2, b3 := bp[q], bp[q+1], bp[q+2], bp[q+3]
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
		acc[2] = [kernelNR]float64{c20, c21, c22, c23}
		acc[3] = [kernelNR]float64{c30, c31, c32, c33}
	}
}

// mulRows accumulates rows [lo,hi) of a*b into dst (rows pre-zeroed).
// The reduction is unrolled 8-way (with 4-way and scalar tails): each
// pass streams 8 rows of b and touches the output row once per 8
// multiply-adds. The FMA variant splits each element's update into two
// independent 4-deep chains to stay ahead of the fused-multiply-add
// latency; the plain variant sums a balanced tree.
func mulRows(dst, a, b *Dense, lo, hi int) {
	if family == famAsm {
		mulRowsAsm(dst, a, b, lo, hi)
		return
	}
	k := a.Cols
	fma := family == famFMA
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		n := len(or)
		p := 0
		for ; p+8 <= k; p += 8 {
			a0, a1, a2, a3 := ar[p], ar[p+1], ar[p+2], ar[p+3]
			a4, a5, a6, a7 := ar[p+4], ar[p+5], ar[p+6], ar[p+7]
			b0 := b.Row(p)[:n:n]
			b1 := b.Row(p + 1)[:n:n]
			b2 := b.Row(p + 2)[:n:n]
			b3 := b.Row(p + 3)[:n:n]
			b4 := b.Row(p + 4)[:n:n]
			b5 := b.Row(p + 5)[:n:n]
			b6 := b.Row(p + 6)[:n:n]
			b7 := b.Row(p + 7)[:n:n]
			if fma {
				for j := range or {
					c0 := math.FMA(a3, b3[j], math.FMA(a2, b2[j], math.FMA(a1, b1[j], math.FMA(a0, b0[j], or[j]))))
					c1 := math.FMA(a7, b7[j], math.FMA(a6, b6[j], math.FMA(a5, b5[j], a4*b4[j])))
					or[j] = c0 + c1
				}
			} else {
				for j := range or {
					or[j] += ((a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])) +
						((a4*b4[j] + a5*b5[j]) + (a6*b6[j] + a7*b7[j]))
				}
			}
		}
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := ar[p], ar[p+1], ar[p+2], ar[p+3]
			b0 := b.Row(p)[:n:n]
			b1 := b.Row(p + 1)[:n:n]
			b2 := b.Row(p + 2)[:n:n]
			b3 := b.Row(p + 3)[:n:n]
			if fma {
				for j := range or {
					or[j] = math.FMA(a3, b3[j], math.FMA(a2, b2[j], math.FMA(a1, b1[j], math.FMA(a0, b0[j], or[j]))))
				}
			} else {
				for j := range or {
					or[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])
				}
			}
		}
		for ; p < k; p++ {
			av := ar[p]
			br := b.Row(p)[:n:n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

// mulATBAccRange accumulates columns [lo,hi) of aᵀ*b into dst rows
// [lo,hi): dst[i][j] += Σ_k a[k][i]*b[k][j]. The k loop (rows of a and
// b) is unrolled 4-way so each dst row is loaded and stored once per 4
// rank-1 updates. All accesses stay row-contiguous, which is what lets
// the same kernel serve as a panel body for the worker pool: a worker
// owning an output-row panel re-reads b but touches only its dst rows.
func mulATBAccRange(dst, a, b *Dense, lo, hi int) {
	if family == famAsm {
		mulATBAccRangeAsm(dst, a, b, lo, hi)
		return
	}
	rows := a.Rows
	cb := b.Cols
	fma := family == famFMA
	k := 0
	for ; k+4 <= rows; k += 4 {
		ar0 := a.Row(k)[lo:hi]
		ar1 := a.Row(k + 1)[lo:hi]
		ar2 := a.Row(k + 2)[lo:hi]
		ar3 := a.Row(k + 3)[lo:hi]
		br0 := b.Row(k)[:cb:cb]
		br1 := b.Row(k + 1)[:cb:cb]
		br2 := b.Row(k + 2)[:cb:cb]
		br3 := b.Row(k + 3)[:cb:cb]
		for i, a0 := range ar0 {
			a1, a2, a3 := ar1[i], ar2[i], ar3[i]
			or := dst.Row(lo + i)
			if fma {
				for j := range or {
					or[j] = math.FMA(a3, br3[j], math.FMA(a2, br2[j], math.FMA(a1, br1[j], math.FMA(a0, br0[j], or[j]))))
				}
			} else {
				for j := range or {
					or[j] += (a0*br0[j] + a1*br1[j]) + (a2*br2[j] + a3*br3[j])
				}
			}
		}
	}
	for ; k < rows; k++ {
		ar := a.Row(k)[lo:hi]
		br := b.Row(k)[:cb:cb]
		for i, av := range ar {
			or := dst.Row(lo + i)
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

// mulABTRows computes rows [lo,hi) of a*bᵀ into dst. Output columns are
// tiled 4-wide: one pass over the (contiguous) a row feeds 4 dot
// products against 4 (contiguous) b rows, giving 4 independent
// accumulator chains instead of one latency-bound chain per element.
func mulABTRows(dst, a, b *Dense, lo, hi int) {
	if family == famAsm {
		mulABTRowsAsm(dst, a, b, lo, hi)
		return
	}
	nb := b.Rows
	fma := family == famFMA
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		j := 0
		for ; j+4 <= nb; j += 4 {
			br0 := b.Row(j)
			br1 := b.Row(j + 1)
			br2 := b.Row(j + 2)
			br3 := b.Row(j + 3)
			var s0, s1, s2, s3 float64
			if fma {
				for k, av := range ar {
					s0 = math.FMA(av, br0[k], s0)
					s1 = math.FMA(av, br1[k], s1)
					s2 = math.FMA(av, br2[k], s2)
					s3 = math.FMA(av, br3[k], s3)
				}
			} else {
				for k, av := range ar {
					s0 += av * br0[k]
					s1 += av * br1[k]
					s2 += av * br2[k]
					s3 += av * br3[k]
				}
			}
			or[j] = s0
			or[j+1] = s1
			or[j+2] = s2
			or[j+3] = s3
		}
		for ; j < nb; j++ {
			or[j] = dotUnrolled(ar, b.Row(j))
		}
	}
}

// mulVecRows computes rows [lo,hi) of a*x into dst. Rows are tiled 4 at
// a time so every load of x feeds 4 independent accumulator chains.
func mulVecRows(dst []float64, a *Dense, x []float64, lo, hi int) {
	if family == famAsm {
		mulVecRowsAsm(dst, a, x, lo, hi)
		return
	}
	fma := family == famFMA
	i := lo
	for ; i+4 <= hi; i += 4 {
		ar0 := a.Row(i)
		ar1 := a.Row(i + 1)
		ar2 := a.Row(i + 2)
		ar3 := a.Row(i + 3)
		var s0, s1, s2, s3 float64
		if fma {
			for k, xv := range x {
				s0 = math.FMA(ar0[k], xv, s0)
				s1 = math.FMA(ar1[k], xv, s1)
				s2 = math.FMA(ar2[k], xv, s2)
				s3 = math.FMA(ar3[k], xv, s3)
			}
		} else {
			for k, xv := range x {
				s0 += ar0[k] * xv
				s1 += ar1[k] * xv
				s2 += ar2[k] * xv
				s3 += ar3[k] * xv
			}
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < hi; i++ {
		dst[i] = dotUnrolled(a.Row(i), x)
	}
}

// dotUnrolled is an inner product with 4 partial sums, breaking the
// single add-latency chain of the naive loop. The partial sums change
// the summation order, which is why the blocked stack is specified to
// epsilon tolerance rather than bit identity.
func dotUnrolled(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	if family == famFMA {
		for ; k+4 <= len(a); k += 4 {
			s0 = math.FMA(a[k], b[k], s0)
			s1 = math.FMA(a[k+1], b[k+1], s1)
			s2 = math.FMA(a[k+2], b[k+2], s2)
			s3 = math.FMA(a[k+3], b[k+3], s3)
		}
	} else {
		for ; k+4 <= len(a); k += 4 {
			s0 += a[k] * b[k]
			s1 += a[k+1] * b[k+1]
			s2 += a[k+2] * b[k+2]
			s3 += a[k+3] * b[k+3]
		}
	}
	var s float64
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s0 + s1 + s2 + s3 + s
}
