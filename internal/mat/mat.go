// Package mat provides dense matrix and vector algebra for the neural
// network and NNLS substrates. Matrices are stored in row-major order.
// Large multiplications are automatically parallelized across goroutines.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// FromVec builds a column vector (n x 1) from v.
func FromVec(v []float64) *Dense {
	m := NewDense(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i. The panic message is a bare
// constant so the accessor stays within the inlining budget — it is the
// innermost call of every kernel, and inlining it is worth ~8% of a
// training step.
func (m *Dense) Row(i int) []float64 {
	if uint(i) >= uint(m.Rows) {
		panic("mat: row index out of bounds")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: col %d out of bounds %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero resets every element of m to 0.
func (m *Dense) Zero() { clear(m.Data) }

// Equalish reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Dense) Equalish(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Dense) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
