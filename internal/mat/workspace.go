package mat

// Workspace is an arena of reusable scratch matrices keyed by shape. It
// is the allocation backbone of the compute engine: forward/backward
// passes Get their intermediates from a workspace instead of allocating,
// and the owner calls Reset once per step to recycle every buffer handed
// out since the previous Reset. In steady state (shapes repeating across
// steps) Get never allocates.
//
// A Workspace is not safe for concurrent use; give each model or worker
// its own. A nil *Workspace is valid and degrades gracefully: Get
// allocates a fresh matrix and Reset is a no-op, so workspace-threaded
// code also works without one.
type Workspace struct {
	free map[uint64][]*Dense
	used []*Dense
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[uint64][]*Dense)}
}

func shapeKey(rows, cols int) uint64 {
	return uint64(uint32(rows))<<32 | uint64(uint32(cols))
}

// Get returns a zeroed rows x cols matrix that stays valid until the next
// Reset. Matrices are recycled by exact shape, so repeated steps with the
// same shapes allocate nothing.
func (w *Workspace) Get(rows, cols int) *Dense {
	m := w.GetRaw(rows, cols)
	if w != nil {
		m.Zero() // NewDense (the nil-workspace path) is already zeroed
	}
	return m
}

// GetRaw is Get without the zeroing: the buffer's contents are
// unspecified. It is for callers that fully overwrite the buffer (every
// *To kernel does), saving a memset on the hot path.
func (w *Workspace) GetRaw(rows, cols int) *Dense {
	if w == nil {
		return NewDense(rows, cols)
	}
	k := shapeKey(rows, cols)
	if list := w.free[k]; len(list) > 0 {
		m := list[len(list)-1]
		w.free[k] = list[:len(list)-1]
		w.used = append(w.used, m)
		return m
	}
	m := NewDense(rows, cols)
	w.used = append(w.used, m)
	return m
}

// Reset recycles every matrix handed out since the previous Reset. All
// buffers previously returned by Get become invalid for the caller.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	for i, m := range w.used {
		k := shapeKey(m.Rows, m.Cols)
		w.free[k] = append(w.free[k], m)
		w.used[i] = nil
	}
	w.used = w.used[:0]
}

// NumBuffers reports how many matrices the workspace owns in total
// (checked out plus free). It exposes steady-state behaviour to tests:
// the count stops growing once every shape of a repeating step has been
// seen.
func (w *Workspace) NumBuffers() int {
	if w == nil {
		return 0
	}
	n := len(w.used)
	for _, list := range w.free {
		n += len(list)
	}
	return n
}

// Resized returns a matrix with the given shape, reusing m's backing
// storage when it has sufficient capacity (contents are then
// unspecified). It is the reuse primitive for long-lived buffers whose
// shape varies between uses, e.g. batch matrices that outlive a
// per-step workspace Reset. A nil m always allocates.
func Resized(m *Dense, rows, cols int) *Dense {
	if m != nil && cap(m.Data) >= rows*cols && rows >= 0 && cols >= 0 {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:rows*cols]
		return m
	}
	return NewDense(rows, cols)
}
