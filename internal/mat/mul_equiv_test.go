package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

// Kernel equivalence suite: the blocked/tiled production kernels are
// validated against the mul_ref.go oracle to epsilon tolerance, over
// random shapes including ragged edges (dims drawn from 1..67, so every
// partial-tile and partial-panel combination of the 4x4 micro-kernel is
// exercised) and over shapes large enough to force the worker-pool
// parallel path and the packed blocked path. The reference kernels
// themselves are pinned bit-identically below.

// tolClose reports whether got is within summation-reordering distance
// of want for a reduction of depth k: the bound scales with the
// reduction length and the magnitudes involved.
func tolClose(got, want float64, k int) bool {
	d := math.Abs(got - want)
	return d <= 1e-11*float64(k+1)*(1+math.Abs(want))
}

func equalishTol(t *testing.T, name string, got, want *Dense, k int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if !tolClose(v, want.Data[i], k) {
			t.Fatalf("%s: element %d = %.17g, want %.17g (reduction depth %d)", name, i, v, want.Data[i], k)
		}
	}
}

// raggedDim draws a dimension from 1..67, biased toward the 4x4 tile
// edges.
func raggedDim(rng *rand.Rand) int {
	if rng.Intn(3) == 0 {
		return 1 + rng.Intn(7) // tiny: below one tile
	}
	return 1 + rng.Intn(67)
}

func TestQuickMulToMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := raggedDim(rng), raggedDim(rng), raggedDim(rng)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		want := NewDense(m, n)
		refMulTo(want, a, b)
		dst := garbageDense(m, n)
		MulTo(dst, a, b)
		alloc := Mul(a, b)
		for i := range want.Data {
			if !tolClose(dst.Data[i], want.Data[i], k) || !tolClose(alloc.Data[i], want.Data[i], k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulATBMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, ca, cb := raggedDim(rng), raggedDim(rng), raggedDim(rng)
		a := randomDense(rng, r, ca)
		b := randomDense(rng, r, cb)
		want := NewDense(ca, cb)
		refMulATBTo(want, a, b)
		dst := garbageDense(ca, cb)
		MulATBTo(dst, a, b)
		alloc := MulATB(a, b)
		for i := range want.Data {
			if !tolClose(dst.Data[i], want.Data[i], r) || !tolClose(alloc.Data[i], want.Data[i], r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulABTMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ra, rb, c := raggedDim(rng), raggedDim(rng), raggedDim(rng)
		a := randomDense(rng, ra, c)
		b := randomDense(rng, rb, c)
		want := garbageDense(ra, rb)
		refMulABTTo(want, a, b)
		dst := garbageDense(ra, rb)
		MulABTTo(dst, a, b)
		alloc := MulABT(a, b)
		for i := range want.Data {
			if !tolClose(dst.Data[i], want.Data[i], c) || !tolClose(alloc.Data[i], want.Data[i], c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulVecMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := raggedDim(rng), raggedDim(rng)
		a := randomDense(rng, m, k)
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, m)
		refMulVecTo(want, a, x)
		dst := make([]float64, m)
		MulVecTo(dst, a, x)
		alloc := MulVec(a, x)
		for i := range want {
			if !tolClose(dst[i], want[i], k) || !tolClose(alloc[i], want[i], k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLargePathsMatchRef forces the worker-pool parallel path and the
// packed blocked path (every dimension past packMinDim and total work
// past both thresholds), including ragged edges on each dimension.
func TestLargePathsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{128, 128, 128}, // packed, aligned tiles
		{131, 67, 97},   // parallel direct path, ragged everywhere
		{67, 131, 70},   // packed with ragged edges
		{1, 300, 300},   // single-row inference shape, tiled row kernel
		{300, 300, 1},   // column output
	}
	for _, s := range shapes {
		name := fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n)
		a := randomDense(rng, s.m, s.k)
		b := randomDense(rng, s.k, s.n)

		want := NewDense(s.m, s.n)
		refMulTo(want, a, b)
		got := garbageDense(s.m, s.n)
		MulTo(got, a, b)
		equalishTol(t, "MulTo/"+name, got, want, s.k)

		at := a.T()
		wantATB := NewDense(s.m, s.n)
		refMulATBTo(wantATB, at, b)
		gotATB := garbageDense(s.m, s.n)
		MulATBTo(gotATB, at, b)
		equalishTol(t, "MulATBTo/"+name, gotATB, wantATB, s.k)

		bt := b.T()
		wantABT := garbageDense(s.m, s.n)
		refMulABTTo(wantABT, a, bt)
		gotABT := garbageDense(s.m, s.n)
		MulABTTo(gotABT, a, bt)
		equalishTol(t, "MulABTTo/"+name, gotABT, wantABT, s.k)
	}

	// MulVecTo across its parallel threshold (rows*cols >= 64Ki).
	a := randomDense(rng, 512, 300)
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 512)
	refMulVecTo(want, a, x)
	got := make([]float64, 512)
	MulVecTo(got, a, x)
	for i := range want {
		if !tolClose(got[i], want[i], 300) {
			t.Fatalf("MulVecTo parallel: row %d = %.17g, want %.17g", i, got[i], want[i])
		}
	}
}

// setFamily forces the kernel family (and its packed panel width) for
// the duration of a test, restoring both on cleanup. Only for serial
// tests: family is read lock-free by every kernel.
func setFamily(t *testing.T, f kernelFamily) {
	t.Helper()
	oldFam, oldNR := family, packNR
	t.Cleanup(func() { family, packNR = oldFam, oldNR })
	family = f
	if f == famAsm {
		packNR = kernelNRAsm
	} else {
		packNR = kernelNR
	}
}

// testFamilies returns every kernel family runnable on this build and
// CPU: the Go families always, the asm family when hasAsm.
func testFamilies() []kernelFamily {
	fams := []kernelFamily{famPlain, famFMA}
	if hasAsm {
		fams = append(fams, famAsm)
	}
	return fams
}

// TestAllKernelFamiliesMatchRef pins every kernel family the build can
// run — plain, Go-FMA, and (CPU permitting) the AVX2 asm kernels —
// against the oracle, regardless of which family startup selection
// picked. The packed path is driven through mulPacked directly, forced
// regardless of size gates, so both micro-tile widths (4x4 Go, 4x8
// asm) see ragged edges; the direct kernels are called at their
// row-range level.
func TestAllKernelFamiliesMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, fam := range testFamilies() {
		setFamily(t, fam)
		name := "family=" + fam.String()
		for _, s := range []struct{ m, k, n int }{{37, 23, 19}, {70, 67, 66}, {12, 300, 41}, {33, 29, 1}, {9, 40, 8}} {
			a := randomDense(rng, s.m, s.k)
			b := randomDense(rng, s.k, s.n)

			want := NewDense(s.m, s.n)
			refMulTo(want, a, b)
			got := garbageDense(s.m, s.n)
			got.Zero()
			mulPacked(got, a, b) // packed path, forced regardless of size gates
			equalishTol(t, "mulPacked/"+name, got, want, s.k)

			got2 := NewDense(s.m, s.n)
			mulRows(got2, a, b, 0, s.m)
			equalishTol(t, "mulRows/"+name, got2, want, s.k)

			wantATB := NewDense(s.m, s.n)
			refMulATBTo(wantATB, a.T(), b)
			gotATB := NewDense(s.m, s.n)
			mulATBAccRange(gotATB, a.T(), b, 0, s.m)
			equalishTol(t, "mulATBAcc/"+name, gotATB, wantATB, s.k)

			wantABT := garbageDense(s.m, s.n)
			refMulABTTo(wantABT, a, b.T())
			gotABT := garbageDense(s.m, s.n)
			mulABTRows(gotABT, a, b.T(), 0, s.m)
			equalishTol(t, "mulABT/"+name, gotABT, wantABT, s.k)

			x := b.Col(0)
			wantV := make([]float64, s.m)
			refMulVecTo(wantV, a, x[:s.k])
			gotV := make([]float64, s.m)
			mulVecRows(gotV, a, x[:s.k], 0, s.m)
			for i := range wantV {
				if !tolClose(gotV[i], wantV[i], s.k) {
					t.Fatalf("mulVec/%s: row %d = %.17g, want %.17g", name, i, gotV[i], wantV[i])
				}
			}
		}
	}
}

// TestSelectFamilyForced covers the BELLAMY_MAT_KERNEL override used by
// the equivalence suite and CI: a recognized value forces that family
// (asm only when the CPU has it), anything else falls back to the
// deterministic automatic chain.
func TestSelectFamilyForced(t *testing.T) {
	if got := selectFamily("plain"); got != famPlain {
		t.Fatalf("selectFamily(plain) = %v", got)
	}
	if got := selectFamily("fma"); got != famFMA {
		t.Fatalf("selectFamily(fma) = %v", got)
	}
	auto := selectFamily("")
	if got := selectFamily("bogus"); got != auto {
		t.Fatalf("selectFamily(bogus) = %v, want automatic choice %v", got, auto)
	}
	if hasAsm {
		if got := selectFamily("asm"); got != famAsm {
			t.Fatalf("selectFamily(asm) = %v with hasAsm", got)
		}
		if auto != famAsm {
			t.Fatalf("automatic selection = %v, want asm on an AVX2+FMA CPU", auto)
		}
	} else if got := selectFamily("asm"); got != auto {
		t.Fatalf("selectFamily(asm) without hasAsm = %v, want fallback %v", got, auto)
	}
}

// TestRefKernelsBitIdentical pins the oracle itself: every reference
// kernel must match an At()-indexed textbook triple loop bit for bit,
// and the transposed references must match refMulTo on explicitly
// transposed operands bit for bit (their summation orders coincide by
// construction).
func TestRefKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomDense(rng, 13, 9)
	b := randomDense(rng, 9, 11)

	want := NewDense(13, 11)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				want.Data[i*want.Cols+j] += a.At(i, k) * b.At(k, j)
			}
		}
	}
	got := garbageDense(13, 11)
	refMulTo(got, a, b)
	bitIdentical(t, "refMulTo", got, want)

	gotATB := garbageDense(13, 11)
	refMulATBTo(gotATB, a.T(), b)
	bitIdentical(t, "refMulATBTo", gotATB, want)

	gotABT := garbageDense(13, 11)
	refMulABTTo(gotABT, a, b.T())
	bitIdentical(t, "refMulABTTo", gotABT, want)

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	wantV := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := 0; k < a.Cols; k++ {
			s += a.At(i, k) * x[k]
		}
		wantV[i] = s
	}
	gotV := make([]float64, a.Rows)
	refMulVecTo(gotV, a, x)
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("refMulVecTo[%d] = %v, want bit-identical %v", i, gotV[i], wantV[i])
		}
	}
}

// TestMulNestedParallelism drives the shared worker pool from many
// concurrent callers — the hyperopt-trials-times-matmul shape that used
// to oversubscribe cores — and checks every product against the oracle.
func TestMulNestedParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomDense(rng, 96, 48)
	b := randomDense(rng, 48, 32)
	want := NewDense(96, 32)
	refMulTo(want, a, b)
	parallel.ForEach(16, 8, func(i int) {
		got := Mul(a, b)
		for j := range want.Data {
			if !tolClose(got.Data[j], want.Data[j], 48) {
				t.Errorf("concurrent Mul %d diverged at %d", i, j)
				return
			}
		}
	})
}
