package mat

import (
	"math/rand"
	"testing"
)

// The element-wise destination kernels never reorder arithmetic, so the
// property tests here demand bit-identical results (==, not
// within-epsilon) from the destination/in-place variants. The multiply
// kernels, whose blocked paths do reorder summation, are covered to
// epsilon tolerance against the mul_ref.go oracle in mul_equiv_test.go.

func closeish(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+max(abs(a), abs(b)))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// garbageDense returns a matrix pre-filled with junk, to prove the To
// kernels fully overwrite their destination.
func garbageDense(rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = 1e30 + float64(i)
	}
	return m
}

func bitIdentical(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want bit-identical %v", name, i, v, want.Data[i])
		}
	}
}

func TestMulATBAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomDense(rng, 11, 5)
	b := randomDense(rng, 11, 3)
	prior := randomDense(rng, 5, 3)
	dst := prior.Clone()
	MulATBAcc(dst, a, b)
	want := NewDense(5, 3)
	refMulATBTo(want, a, b)
	for i := range dst.Data {
		if got, w := dst.Data[i], prior.Data[i]+want.Data[i]; !closeish(got, w) {
			t.Fatalf("MulATBAcc[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestElementwiseToKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 7, 9)
	b := randomDense(rng, 7, 9)
	v := make([]float64, 9)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	sq := func(x float64) float64 { return x * x }

	cases := []struct {
		name string
		run  func(dst *Dense)
		want *Dense
	}{
		{"AddTo", func(d *Dense) { AddTo(d, a, b) }, Add(a, b)},
		{"SubTo", func(d *Dense) { SubTo(d, a, b) }, Sub(a, b)},
		{"HadamardTo", func(d *Dense) { HadamardTo(d, a, b) }, Hadamard(a, b)},
		{"ScaleTo", func(d *Dense) { ScaleTo(d, 3.7, a) }, Scale(3.7, a)},
		{"ApplyTo", func(d *Dense) { ApplyTo(d, a, sq) }, Apply(a, sq)},
		{"AddRowVecTo", func(d *Dense) { AddRowVecTo(d, a, v) }, AddRowVec(a, v)},
	}
	for _, tc := range cases {
		dst := garbageDense(7, 9)
		tc.run(dst)
		bitIdentical(t, tc.name, dst, tc.want)
		// Aliased: dst == a must produce the same values.
		aliased := a.Clone()
		switch tc.name {
		case "AddTo":
			AddTo(aliased, aliased, b)
		case "SubTo":
			SubTo(aliased, aliased, b)
		case "HadamardTo":
			HadamardTo(aliased, aliased, b)
		case "ScaleTo":
			ScaleTo(aliased, 3.7, aliased)
		case "ApplyTo":
			ApplyTo(aliased, aliased, sq)
		case "AddRowVecTo":
			AddRowVecTo(aliased, aliased, v)
		}
		bitIdentical(t, tc.name+"(aliased)", aliased, tc.want)
	}
}

func TestSliceColsToAndColSumsAcc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomDense(rng, 6, 8)
	dst := garbageDense(6, 3)
	SliceColsTo(dst, a, 2, 5)
	bitIdentical(t, "SliceColsTo", dst, SliceCols(a, 2, 5))

	prior := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	acc := append([]float64(nil), prior...)
	ColSumsAcc(acc, a)
	want := ColSums(a)
	for j := range acc {
		if !closeish(acc[j], prior[j]+want[j]) {
			t.Fatalf("ColSumsAcc[%d] = %v, want %v", j, acc[j], prior[j]+want[j])
		}
	}

	vd := make([]float64, 6)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	MulVecTo(vd, a, x)
	wantV := MulVec(a, x)
	for i := range vd {
		if vd[i] != wantV[i] {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, vd[i], wantV[i])
		}
	}
}

func TestWorkspaceReusesBuffersByShape(t *testing.T) {
	w := NewWorkspace()
	m1 := w.Get(4, 6)
	m1.Fill(7)
	w.Reset()
	m2 := w.Get(4, 6)
	if &m1.Data[0] != &m2.Data[0] {
		t.Fatal("workspace did not recycle the same-shape buffer")
	}
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	// Distinct shapes get distinct buffers; two concurrent Gets of the
	// same shape within one round must not alias.
	a := w.Get(4, 6)
	b := w.Get(4, 6)
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two live Gets alias the same buffer")
	}
}

func TestWorkspaceSteadyStateStopsGrowing(t *testing.T) {
	w := NewWorkspace()
	step := func() {
		w.Reset()
		_ = w.Get(8, 3)
		_ = w.Get(8, 3)
		_ = w.Get(16, 5)
		_ = w.Get(1, 1)
	}
	step()
	step()
	n := w.NumBuffers()
	for i := 0; i < 50; i++ {
		step()
	}
	if got := w.NumBuffers(); got != n {
		t.Fatalf("workspace kept growing: %d -> %d buffers", n, got)
	}
}

func TestNilWorkspaceAllocates(t *testing.T) {
	var w *Workspace
	m := w.Get(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("nil workspace Get shape %dx%d", m.Rows, m.Cols)
	}
	w.Reset() // must not panic
	if w.NumBuffers() != 0 {
		t.Fatal("nil workspace reports buffers")
	}
}

func TestResized(t *testing.T) {
	m := NewDense(4, 8)
	ptr := &m.Data[0]
	r := Resized(m, 2, 8)
	if r != m || &r.Data[0] != ptr || r.Rows != 2 || r.Cols != 8 {
		t.Fatal("Resized did not reuse sufficient capacity")
	}
	grown := Resized(r, 16, 16)
	if grown == m {
		t.Fatal("Resized reused insufficient capacity")
	}
	if got := Resized(nil, 3, 3); got.Rows != 3 || got.Cols != 3 {
		t.Fatal("Resized(nil) did not allocate")
	}
}

// TestMulToZeroAllocSerial pins the steady-state allocation count of the
// serial direct kernel at zero.
func TestMulToZeroAllocSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomDense(rng, 16, 24)
	b := randomDense(rng, 24, 12)
	dst := NewDense(16, 12)
	if allocs := testing.AllocsPerRun(100, func() { MulTo(dst, a, b) }); allocs != 0 {
		t.Fatalf("MulTo allocs/op = %v, want 0", allocs)
	}
}
