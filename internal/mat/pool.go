package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared matmul worker pool. Large multiplications split their row
// range into chunks that workers claim with an atomic counter; the
// calling goroutine always participates, so a saturated pool degrades to
// serial execution instead of blocking. Because the pool is bounded at
// GOMAXPROCS-1 resident workers for the whole process, nested
// parallelism (e.g. hyperopt trials fanned across cores, each running
// matmuls) cannot oversubscribe the machine the way per-call goroutine
// spawning did.

// mulJob is one parallel multiplication: workers claim row chunks via the
// atomic next counter. Jobs are pooled so steady-state parallel matmuls
// allocate nothing.
type mulJob struct {
	a, b, out *Dense
	chunk     int
	next      atomic.Int64
	wg        sync.WaitGroup
}

func (j *mulJob) run() {
	defer j.wg.Done()
	rows := j.a.Rows
	nChunks := (rows + j.chunk - 1) / j.chunk
	for {
		t := int(j.next.Add(1)) - 1
		if t >= nChunks {
			return
		}
		lo := t * j.chunk
		hi := lo + j.chunk
		if hi > rows {
			hi = rows
		}
		mulRange(j.a, j.b, j.out, lo, hi)
	}
}

var (
	poolOnce sync.Once
	poolCh   chan *mulJob
	jobPool  = sync.Pool{New: func() any { return new(mulJob) }}
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	poolCh = make(chan *mulJob, n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolCh {
				j.run()
			}
		}()
	}
}

// mulParallel computes out = a*b (out already zeroed) by fanning row
// chunks across the shared worker pool. Submission is non-blocking: when
// the pool is busy the caller simply computes more chunks itself.
func mulParallel(a, b, out *Dense) {
	poolOnce.Do(startPool)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	j := jobPool.Get().(*mulJob)
	j.a, j.b, j.out = a, b, out
	j.chunk = (a.Rows + workers - 1) / workers
	j.next.Store(0)
submit:
	for i := 0; i < workers-1; i++ {
		j.wg.Add(1)
		select {
		case poolCh <- j:
		default:
			j.wg.Done()
			break submit // pool saturated; run the rest on the caller
		}
	}
	j.wg.Add(1)
	j.run()
	j.wg.Wait()
	j.a, j.b, j.out = nil, nil, nil
	jobPool.Put(j)
}
