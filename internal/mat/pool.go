package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared kernel worker pool. Large products split their output-row
// range into panels that workers claim with an atomic counter; the
// calling goroutine always participates, so a saturated pool degrades
// to serial execution instead of blocking. Because the pool is bounded
// at GOMAXPROCS-1 resident workers for the whole process, nested
// parallelism (e.g. hyperopt trials fanned across cores, each running
// matmuls) cannot oversubscribe the machine the way per-call goroutine
// spawning did.
//
// Unlike the raw-row fan-out it replaces, the unit of work is an
// output-row panel: a block of rows sized so one claim amortizes the
// claim's atomic traffic and, on the packed path, one A-block pack.
// Jobs carry an operation code plus operands instead of a closure so
// steady-state parallel products allocate nothing.

// panelOp selects the kernel a panelJob runs per claimed panel range.
type panelOp uint8

const (
	opMulRows     panelOp = iota // dst rows = a*b rows, direct kernel
	opMulPacked                  // dst row-panels of blockMC, packed kernel
	opMulATBCols                 // dst rows = (aᵀb) output rows (a columns)
	opMulABTRows                 // dst rows = a*bᵀ rows
	opMulVecRows                 // y rows = a*x rows
	opMulRows32                  // float32 dst rows = a*b rows
	opMulPacked32                // float32 packed row-panels of blockMC
)

// panelJob is one parallel product: workers claim panel chunks via the
// atomic next counter. Jobs are pooled so steady-state parallel
// products allocate nothing.
type panelJob struct {
	op        panelOp
	a, b, dst *Dense
	a32, b32  *DenseF32 // float32 operands
	dst32     *DenseF32
	x, y      []float64 // MulVec operands
	bp        []float64 // shared packed B block (opMulPacked)
	bp32      []float32 // shared packed float32 B block
	pc, kc    int       // packed k-block origin/size
	jc, nc    int       // packed column-block origin/size
	panel     int       // rows per panel
	nPanels   int
	chunk     int // panels per claim
	next      atomic.Int64
	wg        sync.WaitGroup
}

func (j *panelJob) run() {
	defer j.wg.Done()
	for {
		t := int(j.next.Add(1)) - 1
		if t*j.chunk >= j.nPanels {
			return
		}
		p0 := t * j.chunk
		p1 := p0 + j.chunk
		if p1 > j.nPanels {
			p1 = j.nPanels
		}
		j.runPanels(p0, p1)
	}
}

// runPanels executes panels [p0,p1). Row ranges are panel*panelSize,
// clamped to the true row count of the output dimension.
func (j *panelJob) runPanels(p0, p1 int) {
	lo := p0 * j.panel
	hi := p1 * j.panel
	switch j.op {
	case opMulRows:
		if hi > j.a.Rows {
			hi = j.a.Rows
		}
		mulRows(j.dst, j.a, j.b, lo, hi)
	case opMulPacked:
		mulPackedPanels(j.dst, j.a, j.bp, j.pc, j.kc, j.jc, j.nc, p0, p1)
	case opMulATBCols:
		if hi > j.a.Cols {
			hi = j.a.Cols
		}
		mulATBAccRange(j.dst, j.a, j.b, lo, hi)
	case opMulABTRows:
		if hi > j.a.Rows {
			hi = j.a.Rows
		}
		mulABTRows(j.dst, j.a, j.b, lo, hi)
	case opMulVecRows:
		if hi > j.a.Rows {
			hi = j.a.Rows
		}
		mulVecRows(j.y, j.a, j.x, lo, hi)
	case opMulRows32:
		if hi > j.a32.Rows {
			hi = j.a32.Rows
		}
		mulRows32(j.dst32, j.a32, j.b32, lo, hi)
	case opMulPacked32:
		mulPackedPanels32(j.dst32, j.a32, j.bp32, j.pc, j.kc, j.jc, j.nc, p0, p1)
	}
}

var (
	poolOnce sync.Once
	poolCh   chan *panelJob
	jobPool  = sync.Pool{New: func() any { return new(panelJob) }}
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	poolCh = make(chan *panelJob, n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolCh {
				j.run()
			}
		}()
	}
}

// runParallel fans j's panels across the shared worker pool. Submission
// is non-blocking: when the pool is busy the caller simply computes
// more panels itself. The job's operands are cleared and the job
// recycled before returning.
func runParallel(j *panelJob) {
	poolOnce.Do(startPool)
	workers := runtime.GOMAXPROCS(0)
	if workers > j.nPanels {
		workers = j.nPanels
	}
	j.chunk = (j.nPanels + workers - 1) / workers
	j.next.Store(0)
submit:
	for i := 0; i < workers-1; i++ {
		j.wg.Add(1)
		select {
		case poolCh <- j:
		default:
			j.wg.Done()
			break submit // pool saturated; run the rest on the caller
		}
	}
	j.wg.Add(1)
	j.run()
	j.wg.Wait()
	j.a, j.b, j.dst = nil, nil, nil
	j.a32, j.b32, j.dst32 = nil, nil, nil
	j.x, j.y, j.bp, j.bp32 = nil, nil, nil, nil
	jobPool.Put(j)
}

// newJob draws a pooled job and fills the common fields.
func newJob(op panelOp, panel, nPanels int) *panelJob {
	j := jobPool.Get().(*panelJob)
	j.op = op
	j.panel = panel
	j.nPanels = nPanels
	return j
}
