//go:build !amd64 || noasm

package mat

// Pure-Go builds (non-amd64, or the noasm escape hatch) carry no
// assembly kernels. Family selection never picks famAsm when hasAsm is
// false, so these stubs exist only to satisfy the compiler; reaching
// one means the selection chain is broken, which is worth a loud crash.
const hasAsm = false

func dgemmMicro4x8(acc *[kernelMR][kernelNRAsm]float64, ap, bp *float64, kc int) {
	panic("mat: asm kernel called on a noasm build")
}

func daxpy4(dst, b *float64, ldb int, a *[4]float64, n int) {
	panic("mat: asm kernel called on a noasm build")
}

func daxpy1(dst, b *float64, a float64, n int) {
	panic("mat: asm kernel called on a noasm build")
}

func ddot4(x, r *float64, ldr, n int) (s0, s1, s2, s3 float64) {
	panic("mat: asm kernel called on a noasm build")
}

func sgemmMicro4x16(acc *[kernelMR][kernelNR32]float32, ap, bp *float32, kc int) {
	panic("mat: asm kernel called on a noasm build")
}

func saxpy4(dst, b *float32, ldb int, a *[4]float32, n int) {
	panic("mat: asm kernel called on a noasm build")
}

func saxpy1(dst, b *float32, a float32, n int) {
	panic("mat: asm kernel called on a noasm build")
}

func sdot4(x, r *float32, ldr, n int) (s0, s1, s2, s3 float32) {
	panic("mat: asm kernel called on a noasm build")
}

func dgemmRows4x8(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int) {
	panic("mat: asm kernel called on a noasm build")
}

func dgemmRows4x4(dst *float64, ldd int, a *float64, lda int, b *float64, ldb int, k int) {
	panic("mat: asm kernel called on a noasm build")
}

func sgemmRows4x8(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int) {
	panic("mat: asm kernel called on a noasm build")
}

func sgemmRows4x4(dst *float32, ldd int, a *float32, lda int, b *float32, ldb int, k int) {
	panic("mat: asm kernel called on a noasm build")
}

func vselu32(v *float32, n int, lambda, lambdaAlpha float32) {
	panic("mat: asm kernel called on a noasm build")
}
