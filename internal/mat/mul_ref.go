package mat

// Reference multiply kernels: the bit-exact oracle for the blocked
// stack. Each kernel is the textbook triple loop with one accumulator
// per output element and strictly increasing k, i.e. a single
// well-defined floating-point summation order. They are deliberately
// unblocked, untiled, and serial.
//
// The production kernels (kernel.go, pack.go, mul.go) reorder
// summation for cache blocking and instruction-level parallelism, so
// they are validated against these references to epsilon tolerance
// (mul_equiv_test.go); the references themselves are pinned
// bit-identically by the property tests in inplace_test.go. They are
// kept in a production file, not a test file, so any future kernel —
// or a debugging session questioning the fast path — has the oracle at
// hand.

// refMulTo computes dst = a*b with the reference summation order.
func refMulTo(dst, a, b *Dense) {
	checkDst("refMulTo", dst, a.Rows, b.Cols)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		for k, av := range ar {
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// refMulATBAcc accumulates dst += aᵀ*b with the reference summation
// order.
func refMulATBAcc(dst, a, b *Dense) {
	checkDst("refMulATBAcc", dst, a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			or := dst.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// refMulATBTo computes dst = aᵀ*b with the reference summation order.
func refMulATBTo(dst, a, b *Dense) {
	checkDst("refMulATBTo", dst, a.Cols, b.Cols)
	dst.Zero()
	refMulATBAcc(dst, a, b)
}

// refMulABTTo computes dst = a*bᵀ with the reference summation order.
func refMulABTTo(dst, a, b *Dense) {
	checkDst("refMulABTTo", dst, a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := b.Row(j)
			var s float64
			for k, av := range ar {
				s += av * br[k]
			}
			or[j] = s
		}
	}
}

// refMulVecTo computes dst = a*x with the reference summation order.
func refMulVecTo(dst []float64, a *Dense, x []float64) {
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		var s float64
		for k, av := range ar {
			s += av * x[k]
		}
		dst[i] = s
	}
}
