package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !tr.Equalish(want, 0) {
		t.Fatalf("T() = %v, want %v", tr, want)
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 5, 5)
	id := NewDense(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if got := Mul(a, id); !got.Equalish(a, 1e-12) {
		t.Fatalf("A*I != A")
	}
	if got := Mul(id, a); !got.Equalish(a, 1e-12) {
		t.Fatalf("I*A != A")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched dims")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to cross parallelThreshold.
	a := randomDense(rng, 80, 120)
	b := randomDense(rng, 120, 90)
	got := Mul(a, b)
	want := NewDense(80, 90)
	mulRows(want, a, b, 0, 80)
	if !got.Equalish(want, 1e-9) {
		t.Fatal("parallel Mul disagrees with serial")
	}
}

func TestMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 7, 4)
	b := randomDense(rng, 7, 5)
	got := MulATB(a, b)
	want := Mul(a.T(), b)
	if !got.Equalish(want, 1e-10) {
		t.Fatal("MulATB disagrees with explicit transpose product")
	}
}

func TestMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 6, 4)
	b := randomDense(rng, 9, 4)
	got := MulABT(a, b)
	want := Mul(a, b.T())
	if !got.Equalish(want, 1e-10) {
		t.Fatal("MulABT disagrees with explicit transpose product")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := MulVec(a, []float64{4, 5, 6})
	if got[0] != 16 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [16 15]", got)
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !got.Equalish(FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equalish(FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Hadamard(a, b); !got.Equalish(FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatalf("Hadamard = %v", got)
	}
	if got := Scale(2, a); !got.Equalish(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAddRowVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := AddRowVec(a, []float64{10, 20})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !got.Equalish(want, 0) {
		t.Fatalf("AddRowVec = %v, want %v", got, want)
	}
}

func TestColSums(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := ColSums(a)
	if got[0] != 9 || got[1] != 12 {
		t.Fatalf("ColSums = %v, want [9 12]", got)
	}
}

func TestConcat(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	got := Concat(a, b)
	want := FromRows([][]float64{{1, 3, 4}, {2, 5, 6}})
	if !got.Equalish(want, 0) {
		t.Fatalf("Concat = %v, want %v", got, want)
	}
}

func TestSliceCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := SliceCols(a, 1, 3)
	want := FromRows([][]float64{{2, 3}, {5, 6}})
	if !got.Equalish(want, 0) {
		t.Fatalf("SliceCols = %v, want %v", got, want)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestAxPy(t *testing.T) {
	y := []float64{1, 1}
	AxPy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AxPy = %v, want [7 9]", y)
	}
}

func TestHasNaN(t *testing.T) {
	m := NewDense(1, 2)
	if m.HasNaN() {
		t.Fatal("fresh matrix reports NaN")
	}
	m.Set(0, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

// Property: matrix multiplication distributes over addition,
// A*(B+C) == A*B + A*C.
func TestQuickMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		a := randomDense(rng, n, m)
		b := randomDense(rng, m, k)
		c := randomDense(rng, m, k)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return left.Equalish(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		k := 1 + rng.Intn(5)
		a := randomDense(rng, n, m)
		b := randomDense(rng, m, k)
		return Mul(a, b).T().Equalish(Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return a.T().T().Equalish(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMulSerial32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomDense(rng, 32, 32)
	y := randomDense(rng, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomDense(rng, 256, 256)
	y := randomDense(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
