package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// GroupKey identifies an aggregation cell.
type GroupKey struct {
	Job       string
	Method    Method
	NumPoints int
}

// Aggregate collects per-cell statistics from raw measurements.
type Aggregate struct {
	InterpRelErrs []float64
	InterpAbsErrs []float64
	ExtraRelErrs  []float64
	ExtraAbsErrs  []float64
	FitSeconds    []float64
	Epochs        []float64
}

// GroupByPoints buckets measurements by (job, method, numPoints).
func GroupByPoints(ms []Measurement) map[GroupKey]*Aggregate {
	out := map[GroupKey]*Aggregate{}
	for _, m := range ms {
		k := GroupKey{m.Job, m.Method, m.NumPoints}
		a := out[k]
		if a == nil {
			a = &Aggregate{}
			out[k] = a
		}
		addMeasurement(a, m)
	}
	return out
}

// GroupByMethod buckets measurements by (job, method) across all point
// counts — the aggregation behind Fig. 6 and Fig. 8.
func GroupByMethod(ms []Measurement) map[GroupKey]*Aggregate {
	out := map[GroupKey]*Aggregate{}
	for _, m := range ms {
		k := GroupKey{Job: m.Job, Method: m.Method}
		a := out[k]
		if a == nil {
			a = &Aggregate{}
			out[k] = a
		}
		addMeasurement(a, m)
	}
	return out
}

func addMeasurement(a *Aggregate, m Measurement) {
	if m.HasInterp {
		a.InterpRelErrs = append(a.InterpRelErrs, m.InterpRelErr)
		a.InterpAbsErrs = append(a.InterpAbsErrs, m.InterpAbsErr)
	}
	if m.HasExtra {
		a.ExtraRelErrs = append(a.ExtraRelErrs, m.ExtraRelErr)
		a.ExtraAbsErrs = append(a.ExtraAbsErrs, m.ExtraAbsErr)
	}
	a.FitSeconds = append(a.FitSeconds, m.FitSeconds)
	if m.Method.IsBellamy() && m.Epochs > 0 {
		a.Epochs = append(a.Epochs, float64(m.Epochs))
	}
}

// MethodOrder fixes the column order of reports.
var MethodOrder = []Method{
	MethodNNLS, MethodBell,
	MethodBellamyLocal, MethodBellamyFiltered, MethodBellamyFull,
	MethodBellamyPartialUnfreeze, MethodBellamyFullUnfreeze,
	MethodBellamyPartialReset, MethodBellamyFullReset,
}

// methodsPresent returns MethodOrder restricted to methods observed in
// the measurement set.
func methodsPresent(ms []Measurement) []Method {
	seen := map[Method]bool{}
	for _, m := range ms {
		seen[m.Method] = true
	}
	var out []Method
	for _, m := range MethodOrder {
		if seen[m] {
			out = append(out, m)
		}
	}
	return out
}

func jobsPresent(ms []Measurement) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		if !seen[m.Job] {
			seen[m.Job] = true
			out = append(out, m.Job)
		}
	}
	sort.Strings(out)
	return out
}

func pointCountsPresent(ms []Measurement) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range ms {
		if !seen[m.NumPoints] {
			seen[m.NumPoints] = true
			out = append(out, m.NumPoints)
		}
	}
	sort.Ints(out)
	return out
}

// FormatMRETable renders the Fig. 5 style table: mean relative errors per
// (job, #points, method) for either interpolation or extrapolation.
func FormatMRETable(ms []Measurement, extrapolation bool) string {
	byCell := GroupByPoints(ms)
	methods := methodsPresent(ms)
	jobs := jobsPresent(ms)
	points := pointCountsPresent(ms)

	var b strings.Builder
	task := "interpolation"
	if extrapolation {
		task = "extrapolation"
	}
	fmt.Fprintf(&b, "MRE (%s) per job, #points, method\n", task)
	for _, job := range jobs {
		fmt.Fprintf(&b, "\n%s\n", job)
		fmt.Fprintf(&b, "%8s", "#points")
		for _, m := range methods {
			fmt.Fprintf(&b, " %24s", m)
		}
		b.WriteByte('\n')
		for _, k := range points {
			fmt.Fprintf(&b, "%8d", k)
			for _, m := range methods {
				a := byCell[GroupKey{job, m, k}]
				vals := []float64(nil)
				if a != nil {
					if extrapolation {
						vals = a.ExtraRelErrs
					} else {
						vals = a.InterpRelErrs
					}
				}
				if len(vals) == 0 {
					fmt.Fprintf(&b, " %24s", "-")
				} else {
					fmt.Fprintf(&b, " %18.3f (%3d)", Mean(vals), len(vals))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatMAETable renders the Fig. 6 / Fig. 8 style table: interpolation
// MAE in seconds per (job, method), aggregated over splits, contexts and
// point counts.
func FormatMAETable(ms []Measurement, title string) string {
	byCell := GroupByMethod(ms)
	methods := methodsPresent(ms)
	jobs := jobsPresent(ms)

	var b strings.Builder
	fmt.Fprintf(&b, "%s — interpolation MAE [s]\n", title)
	fmt.Fprintf(&b, "%10s", "job")
	for _, m := range methods {
		fmt.Fprintf(&b, " %24s", m)
	}
	b.WriteByte('\n')
	for _, job := range jobs {
		fmt.Fprintf(&b, "%10s", job)
		for _, m := range methods {
			a := byCell[GroupKey{Job: job, Method: m}]
			if a == nil || len(a.InterpAbsErrs) == 0 {
				fmt.Fprintf(&b, " %24s", "-")
			} else {
				fmt.Fprintf(&b, " %12.1f ± %8.1f", Mean(a.InterpAbsErrs), Std(a.InterpAbsErrs))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatEpochECDF renders the Fig. 7 style summary: quantiles of the
// fine-tuning epoch distribution per (job, Bellamy variant).
func FormatEpochECDF(ms []Measurement) string {
	byCell := GroupByMethod(ms)
	methods := methodsPresent(ms)
	jobs := jobsPresent(ms)
	quantiles := []float64{0.25, 0.5, 0.75, 0.9, 1.0}

	var b strings.Builder
	b.WriteString("Fine-tuning epochs eCDF quantiles per job and Bellamy variant\n")
	for _, job := range jobs {
		fmt.Fprintf(&b, "\n%s\n%26s", job, "quantile")
		for _, q := range quantiles {
			fmt.Fprintf(&b, " %8.0f%%", q*100)
		}
		b.WriteByte('\n')
		for _, m := range methods {
			if !m.IsBellamy() {
				continue
			}
			a := byCell[GroupKey{Job: job, Method: m}]
			if a == nil || len(a.Epochs) == 0 {
				continue
			}
			e := NewECDF(a.Epochs)
			fmt.Fprintf(&b, "%26s", m)
			for _, q := range quantiles {
				fmt.Fprintf(&b, " %9.0f", e.Quantile(q))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatFitTimes renders the §IV-C fit-time comparison: mean wall-clock
// Fit seconds per method, across all jobs.
func FormatFitTimes(ms []Measurement) string {
	agg := map[Method][]float64{}
	for _, m := range ms {
		agg[m.Method] = append(agg[m.Method], m.FitSeconds)
	}
	var b strings.Builder
	b.WriteString("Mean time to fit per method [s]\n")
	for _, m := range MethodOrder {
		vals := agg[m]
		if len(vals) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%26s %10.4f (n=%d)\n", m, Mean(vals), len(vals))
	}
	return b.String()
}
