package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Method identifies one runtime model variant in the comparison.
type Method string

// Methods of the cross-context experiment (Fig. 5/6/7).
const (
	MethodNNLS            Method = "nnls"
	MethodBell            Method = "bell"
	MethodBellamyLocal    Method = "bellamy-local"
	MethodBellamyFiltered Method = "bellamy-filtered"
	MethodBellamyFull     Method = "bellamy-full"
)

// Methods of the cross-environment experiment (Fig. 8); the first two
// baselines and bellamy-local are shared with the list above.
const (
	MethodBellamyPartialUnfreeze Method = "bellamy-partial-unfreeze"
	MethodBellamyFullUnfreeze    Method = "bellamy-full-unfreeze"
	MethodBellamyPartialReset    Method = "bellamy-partial-reset"
	MethodBellamyFullReset       Method = "bellamy-full-reset"
)

// IsBellamy reports whether the method is a Bellamy variant (relevant for
// epoch statistics — baselines have no epochs).
func (m Method) IsBellamy() bool {
	switch m {
	case MethodNNLS, MethodBell:
		return false
	default:
		return true
	}
}

// MethodRunner builds fresh predictors for a target context.
type MethodRunner struct {
	Name Method
	// Make returns a new predictor instance bound to the target context.
	Make func() (baselines.Predictor, error)
	// ZeroShot marks methods usable with zero training points.
	ZeroShot bool
	// MinPoints is the smallest training size the method accepts.
	MinPoints int
}

// Measurement is one (method, split) outcome.
type Measurement struct {
	Job       string
	Context   string
	Method    Method
	NumPoints int

	// HasInterp/HasExtra report which test points existed in the split.
	HasInterp, HasExtra bool
	InterpRelErr        float64
	InterpAbsErr        float64
	ExtraRelErr         float64
	ExtraAbsErr         float64

	// FitSeconds is the wall-clock time of Fit.
	FitSeconds float64
	// Epochs is the number of fine-tuning epochs (Bellamy only).
	Epochs int
}

// runSplit fits a fresh predictor on the split's training points and
// evaluates both test points. It returns ok=false when the method cannot
// run on this split (too few points).
func runSplit(r MethodRunner, job, ctxID string, sp Split) (Measurement, bool) {
	k := len(sp.Train)
	if k < r.MinPoints && !(k == 0 && r.ZeroShot) {
		return Measurement{}, false
	}
	p, err := r.Make()
	if err != nil {
		return Measurement{}, false
	}
	points := make([]baselines.Point, k)
	for i, e := range sp.Train {
		points[i] = baselines.Point{ScaleOut: e.ScaleOut, Runtime: e.RuntimeSec}
	}
	start := time.Now()
	if err := p.Fit(points); err != nil {
		return Measurement{}, false
	}
	m := Measurement{
		Job: job, Context: ctxID, Method: r.Name, NumPoints: k,
		FitSeconds: time.Since(start).Seconds(),
	}
	if cp, ok := p.(*core.ContextPredictor); ok && cp.Report != nil {
		m.Epochs = cp.Report.Epochs
	}
	if sp.Interp != nil {
		if pred, err := p.Predict(sp.Interp.ScaleOut); err == nil {
			m.HasInterp = true
			m.InterpRelErr = RelErr(pred, sp.Interp.RuntimeSec)
			m.InterpAbsErr = AbsErr(pred, sp.Interp.RuntimeSec)
		}
	}
	if sp.Extra != nil {
		if pred, err := p.Predict(sp.Extra.ScaleOut); err == nil {
			m.HasExtra = true
			m.ExtraRelErr = RelErr(pred, sp.Extra.RuntimeSec)
			m.ExtraAbsErr = AbsErr(pred, sp.Extra.RuntimeSec)
		}
	}
	return m, true
}

// baselineRunners returns the NNLS and Bell method runners.
func baselineRunners() []MethodRunner {
	return []MethodRunner{
		{
			Name:      MethodNNLS,
			Make:      func() (baselines.Predictor, error) { return baselines.NewErnest(), nil },
			MinPoints: 1,
		},
		{
			Name:      MethodBell,
			Make:      func() (baselines.Predictor, error) { return baselines.NewBell(), nil },
			MinPoints: 1,
		},
	}
}

// bellamyRunner wraps a pre-trained base model (nil for the local
// variant) as a method runner for one target context.
func bellamyRunner(name Method, base *core.Model, cfg core.Config, target *dataset.Context, opts core.FinetuneOptions) MethodRunner {
	ess := target.EssentialProps()
	opt := target.OptionalProps()
	return MethodRunner{
		Name:      name,
		ZeroShot:  base != nil,
		MinPoints: 1,
		Make: func() (baselines.Predictor, error) {
			var m *core.Model
			var err error
			if base != nil {
				m, err = base.Clone()
			} else {
				m, err = core.New(cfg)
			}
			if err != nil {
				return nil, err
			}
			return core.NewContextPredictor(m, ess, opt, opts), nil
		},
	}
}
