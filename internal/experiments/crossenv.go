package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// CrossEnvConfig parameterizes the ad hoc cross-environment learning
// experiment (§IV-C2, Fig. 8): models pre-trained on the public-cloud
// C3O traces are reused on the private-cluster Bell traces under the
// different reuse strategies.
type CrossEnvConfig struct {
	Seed int64
	// Jobs to evaluate; nil selects the Bell dataset jobs
	// (Grep, SGD, PageRank).
	Jobs []string
	// MaxSplits bounds the unique splits per training size (paper: 500).
	MaxSplits int
	// PointCounts are the training sizes.
	PointCounts []int
	// Model is the Bellamy configuration.
	Model core.Config
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultCrossEnvConfig returns a laptop-scale configuration of the
// cross-environment experiment; raise MaxSplits to 500 and epochs to
// Table I values for the full run.
func DefaultCrossEnvConfig() CrossEnvConfig {
	cfg := core.DefaultConfig()
	cfg.PretrainEpochs = 250
	cfg.FinetuneEpochs = 400
	cfg.FinetunePatience = 150
	return CrossEnvConfig{
		Seed:        1,
		MaxSplits:   40,
		PointCounts: []int{1, 2, 3, 4, 5, 6},
		Model:       cfg,
	}
}

// CrossEnvResult aggregates the experiment's measurements.
type CrossEnvResult struct {
	Measurements []Measurement
	// PretrainSeconds per job (one C3O pre-training per algorithm).
	PretrainSeconds map[string]float64
}

// RunCrossEnv pre-trains one Bellamy model per algorithm on the C3O
// dataset and evaluates every reuse strategy on the Bell dataset's
// single context per algorithm, against the NNLS/Bell baselines and a
// local Bellamy model.
func RunCrossEnv(c3o, bell *dataset.Dataset, cfg CrossEnvConfig) (*CrossEnvResult, error) {
	if cfg.MaxSplits <= 0 {
		return nil, fmt.Errorf("experiments: MaxSplits must be positive")
	}
	jobs := cfg.Jobs
	if len(jobs) == 0 {
		jobs = bell.Jobs()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &CrossEnvResult{PretrainSeconds: map[string]float64{}}

	type jobOut struct {
		ms       []Measurement
		pretrain float64
		err      error
	}
	seeds := make([]int64, len(jobs))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	outs := parallel.Map(len(jobs), cfg.Workers, func(i int) jobOut {
		ms, pt, err := runCrossEnvJob(c3o, bell, jobs[i], cfg, seeds[i])
		return jobOut{ms, pt, err}
	})
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Measurements = append(res.Measurements, o.ms...)
		res.PretrainSeconds[jobs[i]] = o.pretrain
	}
	return res, nil
}

func runCrossEnvJob(c3o, bell *dataset.Dataset, job string, cfg CrossEnvConfig, seed int64) ([]Measurement, float64, error) {
	rng := rand.New(rand.NewSource(seed))
	bellCtxs := bell.Contexts(job)
	if len(bellCtxs) == 0 {
		return nil, 0, fmt.Errorf("experiments: job %q absent from bell dataset", job)
	}
	target := bellCtxs[0] // single context per algorithm in Bell datasets

	modelCfg := cfg.Model
	modelCfg.Seed = rng.Int63()
	corpus := core.SamplesFromExecutions(c3o.ForJob(job))
	if len(corpus) == 0 {
		return nil, 0, fmt.Errorf("experiments: job %q absent from c3o dataset", job)
	}
	base, err := core.New(modelCfg)
	if err != nil {
		return nil, 0, err
	}
	rep, err := base.Pretrain(corpus)
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: pre-training %s on c3o: %w", job, err)
	}

	localCfg := modelCfg
	localCfg.Seed = rng.Int63()
	strategies := []struct {
		name Method
		s    core.Strategy
	}{
		{MethodBellamyPartialUnfreeze, core.StrategyPartialUnfreeze},
		{MethodBellamyFullUnfreeze, core.StrategyFullUnfreeze},
		{MethodBellamyPartialReset, core.StrategyPartialReset},
		{MethodBellamyFullReset, core.StrategyFullReset},
	}
	runners := baselineRunners()
	runners = append(runners, bellamyRunner(MethodBellamyLocal, nil, localCfg, target,
		core.FinetuneOptions{Strategy: core.StrategyLocal}))
	for _, st := range strategies {
		runners = append(runners, bellamyRunner(st.name, base, modelCfg, target,
			core.FinetuneOptions{Strategy: st.s}))
	}

	ctxExecs := bell.ForContext(target.ID)
	var out []Measurement
	counts := append([]int{0}, cfg.PointCounts...)
	for _, k := range counts {
		splits, err := GenerateSplits(ctxExecs, k, cfg.MaxSplits, rng)
		if err != nil {
			continue
		}
		for _, sp := range splits {
			for _, r := range runners {
				if m, ok := runSplit(r, job, target.ID, sp); ok {
					out = append(out, m)
				}
			}
		}
	}
	return out, rep.Duration.Seconds(), nil
}
