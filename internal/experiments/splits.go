package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Split is one random sub-sampling cross-validation unit (§IV-C): a
// training set whose scale-outs are pairwise different, an interpolation
// test point whose scale-out lies within the range of the training
// points, and an extrapolation test point whose scale-out lies outside
// that range. A split may lack one of the test points when the context's
// scale-out grid makes it impossible (e.g. extrapolation when all
// scale-outs are in the training range).
type Split struct {
	Train []dataset.Execution
	// Interp / Extra are nil when no valid test point exists.
	Interp *dataset.Execution
	Extra  *dataset.Execution
}

// GenerateSplits draws up to maxSplits unique splits with k training
// points from a single context's executions. For k = 0 the training set
// is empty and both test points are unconstrained random picks (the
// zero-shot case only pre-trained models can exploit).
func GenerateSplits(execs []dataset.Execution, k, maxSplits int, rng *rand.Rand) ([]Split, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("experiments: no executions to split")
	}
	if k < 0 {
		return nil, fmt.Errorf("experiments: negative training size %d", k)
	}
	distinct := dataset.ScaleOuts(execs)
	if k > len(distinct) {
		return nil, fmt.Errorf("experiments: k=%d exceeds %d distinct scale-outs", k, len(distinct))
	}
	byScale := dataset.GroupByScaleOut(execs)

	seen := map[string]bool{}
	var out []Split
	maxAttempts := maxSplits * 40
	for attempt := 0; attempt < maxAttempts && len(out) < maxSplits; attempt++ {
		sp, key, ok := drawSplit(execs, byScale, distinct, k, rng)
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, sp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no valid splits for k=%d", k)
	}
	return out, nil
}

func drawSplit(execs []dataset.Execution, byScale map[int][]dataset.Execution, distinct []int, k int, rng *rand.Rand) (Split, string, bool) {
	// Choose k distinct scale-outs, then one repeat each.
	perm := rng.Perm(len(distinct))
	trainScales := make([]int, k)
	for i := 0; i < k; i++ {
		trainScales[i] = distinct[perm[i]]
	}
	sort.Ints(trainScales)

	var sp Split
	usedKey := make([]int, 0, k*2+4)
	used := map[[2]int]bool{} // (scaleOut, repeatIdx) already taken
	for _, s := range trainScales {
		reps := byScale[s]
		ri := rng.Intn(len(reps))
		sp.Train = append(sp.Train, reps[ri])
		used[[2]int{s, ri}] = true
		usedKey = append(usedKey, s, ri)
	}

	lo, hi := 0, 0
	if k > 0 {
		lo, hi = trainScales[0], trainScales[k-1]
	}

	// Interpolation test: scale-out within [lo, hi] (any point for k=0),
	// excluding the exact training records.
	interp, iKey, ok := pickTest(byScale, distinct, used, rng, func(s int) bool {
		if k == 0 {
			return true
		}
		return s >= lo && s <= hi
	})
	if ok {
		sp.Interp = interp
		usedKey = append(usedKey, iKey[0], iKey[1])
	} else {
		usedKey = append(usedKey, -1, -1)
	}

	// Extrapolation test: scale-out strictly outside [lo, hi].
	extra, eKey, ok := pickTest(byScale, distinct, used, rng, func(s int) bool {
		if k == 0 {
			return true
		}
		return s < lo || s > hi
	})
	if ok {
		sp.Extra = extra
		usedKey = append(usedKey, eKey[0], eKey[1])
	} else {
		usedKey = append(usedKey, -1, -1)
	}

	if sp.Interp == nil && sp.Extra == nil {
		return sp, "", false
	}
	return sp, fmt.Sprint(usedKey), true
}

// pickTest selects a random execution whose scale-out satisfies accept
// and which is not one of the already used records.
func pickTest(byScale map[int][]dataset.Execution, distinct []int, used map[[2]int]bool, rng *rand.Rand, accept func(int) bool) (*dataset.Execution, [2]int, bool) {
	var candScales []int
	for _, s := range distinct {
		if accept(s) {
			candScales = append(candScales, s)
		}
	}
	rng.Shuffle(len(candScales), func(i, j int) { candScales[i], candScales[j] = candScales[j], candScales[i] })
	for _, s := range candScales {
		reps := byScale[s]
		start := rng.Intn(len(reps))
		for d := 0; d < len(reps); d++ {
			ri := (start + d) % len(reps)
			if used[[2]int{s, ri}] {
				continue
			}
			e := reps[ri]
			used[[2]int{s, ri}] = true
			return &e, [2]int{s, ri}, true
		}
	}
	return nil, [2]int{}, false
}
