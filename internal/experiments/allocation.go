package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/allocate"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// AllocationConfig parameterizes the allocation-quality experiment: how
// well each runtime model, driven through the allocation engine, picks
// the cheapest configuration that meets a deadline — the end-to-end
// question the paper motivates runtime prediction with.
type AllocationConfig struct {
	// Seed drives context choice, split sampling and model init.
	Seed int64
	// Jobs to evaluate; nil selects all.
	Jobs []string
	// ContextsPerJob is the number of randomly chosen target contexts.
	ContextsPerJob int
	// MaxSplits bounds the unique splits per training size.
	MaxSplits int
	// PointCounts are the training sizes to evaluate (>= 1; the
	// baselines cannot allocate zero-shot).
	PointCounts []int
	// DeadlineFactors scale the context's best achievable mean runtime
	// into SLO deadlines: factor 1.2 is a tight SLO, 2.0 a loose one.
	DeadlineFactors []float64
	// CostPerNodeHour prices the cost model (any positive constant
	// yields the same regret ordering).
	CostPerNodeHour float64
	// Model is the Bellamy configuration.
	Model core.Config
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultAllocationConfig returns a laptop-scale configuration.
func DefaultAllocationConfig() AllocationConfig {
	cfg := core.DefaultConfig()
	cfg.PretrainEpochs = 250
	cfg.FinetuneEpochs = 400
	cfg.FinetunePatience = 150
	return AllocationConfig{
		Seed:            1,
		ContextsPerJob:  3,
		MaxSplits:       10,
		PointCounts:     []int{1, 2, 3},
		DeadlineFactors: []float64{1.2, 1.5, 2.0},
		CostPerNodeHour: 1,
		Model:           cfg,
	}
}

// AllocationMeasurement is one (method, split, deadline) outcome.
type AllocationMeasurement struct {
	Job       string
	Context   string
	Method    Method
	NumPoints int
	// DeadlineFactor is the tightness of the SLO for this measurement.
	DeadlineFactor float64
	// OracleFeasible reports whether any candidate met the deadline on
	// the ground-truth curve; violation accounting only covers these.
	OracleFeasible bool
	// Violated reports that the chosen configuration's true runtime
	// exceeds the deadline although the oracle had a feasible choice.
	Violated bool
	// Regret is the relative extra true cost of the chosen
	// configuration over the oracle's (0 = optimal), recorded when the
	// choice did not violate the SLO.
	Regret float64
}

// AllocationResult aggregates the experiment's measurements.
type AllocationResult struct {
	Measurements []AllocationMeasurement
}

// RunAllocation executes the allocation-quality experiment on a
// C3O-style dataset: per (job, target context, split) it fits each
// method on the split's training points, sweeps the context's true
// scale-out grid through the allocation engine, and scores the chosen
// configuration against the ground-truth oracle.
func RunAllocation(ds *dataset.Dataset, cfg AllocationConfig) (*AllocationResult, error) {
	if cfg.ContextsPerJob <= 0 || cfg.MaxSplits <= 0 {
		return nil, fmt.Errorf("experiments: ContextsPerJob and MaxSplits must be positive")
	}
	if len(cfg.DeadlineFactors) == 0 || cfg.CostPerNodeHour <= 0 {
		return nil, fmt.Errorf("experiments: DeadlineFactors and CostPerNodeHour must be set")
	}
	for _, k := range cfg.PointCounts {
		if k < 1 {
			return nil, fmt.Errorf("experiments: allocation PointCounts must be >= 1, got %d", k)
		}
	}
	jobs := cfg.Jobs
	if len(jobs) == 0 {
		jobs = ds.Jobs()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &AllocationResult{}

	for _, job := range jobs {
		targets, err := chooseTargetContexts(ds, job, cfg.ContextsPerJob, rng)
		if err != nil {
			return nil, err
		}
		type ctxOut struct {
			ms  []AllocationMeasurement
			err error
		}
		seeds := make([]int64, len(targets))
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		outs := parallel.Map(len(targets), cfg.Workers, func(i int) ctxOut {
			ms, err := runAllocationTarget(ds, job, targets[i], cfg, seeds[i])
			return ctxOut{ms, err}
		})
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			res.Measurements = append(res.Measurements, o.ms...)
		}
	}
	return res, nil
}

// trueCurve derives the ground-truth allocation substrate of a context:
// its distinct scale-outs and the mean measured runtime at each.
func trueCurve(execs []dataset.Execution) (candidates []int, runtime map[int]float64) {
	runtime = dataset.MeanRuntimeByScaleOut(execs)
	candidates = dataset.ScaleOuts(execs)
	return candidates, runtime
}

// oracleChoice returns the cost of the cheapest candidate whose true
// runtime meets the deadline (feasible=false when none does).
func oracleChoice(candidates []int, runtime map[int]float64, deadline, costPerNodeHour float64) (cost float64, feasible bool) {
	for _, x := range candidates {
		rt := runtime[x]
		if rt > deadline {
			continue
		}
		c := float64(x) * rt / 3600 * costPerNodeHour
		if !feasible || c < cost {
			cost, feasible = c, true
		}
	}
	return cost, feasible
}

// runAllocationTarget handles one (job, target context): pre-trains the
// Bellamy base on the other contexts, then sweeps splits, methods and
// deadline factors.
func runAllocationTarget(ds *dataset.Dataset, job string, target *dataset.Context, cfg AllocationConfig, seed int64) ([]AllocationMeasurement, error) {
	rng := rand.New(rand.NewSource(seed))
	modelCfg := cfg.Model
	modelCfg.Seed = rng.Int63()

	corpus := core.SamplesFromExecutions(dataset.FilterExcludeContext(ds, target))
	var base *core.Model
	if len(corpus) > 0 {
		m, err := core.New(modelCfg)
		if err != nil {
			return nil, err
		}
		if _, err := m.Pretrain(corpus); err != nil {
			return nil, fmt.Errorf("experiments: pre-training allocation base for %s: %w", target.ID, err)
		}
		base = m
	}

	runners := baselineRunners()
	if base != nil {
		ftOpts := core.FinetuneOptions{Strategy: core.StrategyPartialUnfreeze}
		runners = append(runners, bellamyRunner(MethodBellamyFull, base, modelCfg, target, ftOpts))
	}

	ctxExecs := ds.ForContext(target.ID)
	candidates, runtime := trueCurve(ctxExecs)
	minTrue := runtime[candidates[0]]
	for _, x := range candidates[1:] {
		if runtime[x] < minTrue {
			minTrue = runtime[x]
		}
	}

	engine := allocate.NewEngine()
	var out []AllocationMeasurement
	for _, k := range cfg.PointCounts {
		splits, err := GenerateSplits(ctxExecs, k, cfg.MaxSplits, rng)
		if err != nil {
			continue // k may be infeasible for this context
		}
		for _, sp := range splits {
			points := make([]baselines.Point, len(sp.Train))
			for i, e := range sp.Train {
				points[i] = baselines.Point{ScaleOut: e.ScaleOut, Runtime: e.RuntimeSec}
			}
			for _, r := range runners {
				if len(points) < r.MinPoints {
					continue
				}
				p, err := r.Make()
				if err != nil {
					continue
				}
				if err := p.Fit(points); err != nil {
					continue
				}
				for _, factor := range cfg.DeadlineFactors {
					deadline := factor * minTrue
					oracleCost, oracleOK := oracleChoice(candidates, runtime, deadline, cfg.CostPerNodeHour)
					req := allocate.Request{
						Candidates:      candidates,
						DeadlineSec:     deadline,
						CostPerNodeHour: cfg.CostPerNodeHour,
					}
					res, err := engine.Allocate(allocate.FromPointPredictor(p), req)
					if err != nil {
						continue
					}
					m := AllocationMeasurement{
						Job: job, Context: target.ID, Method: r.Name,
						NumPoints: k, DeadlineFactor: factor,
						OracleFeasible: oracleOK,
					}
					trueRT := runtime[res.Chosen.ScaleOut]
					if oracleOK {
						if trueRT > deadline {
							m.Violated = true
						} else {
							trueCost := float64(res.Chosen.ScaleOut) * trueRT / 3600 * cfg.CostPerNodeHour
							m.Regret = (trueCost - oracleCost) / oracleCost
						}
					}
					out = append(out, m)
				}
			}
		}
	}
	return out, nil
}

// FormatAllocationTable renders the allocation-quality comparison: per
// (job, method) the SLO-violation rate and the mean cost regret over
// splits, point counts and deadline factors where the oracle had a
// feasible configuration.
func FormatAllocationTable(ms []AllocationMeasurement) string {
	type cell struct {
		feasible, violated int
		regrets            []float64
	}
	byCell := map[GroupKey]*cell{}
	seenJobs := map[string]bool{}
	var jobs []string
	seenMethods := map[Method]bool{}
	for _, m := range ms {
		if !m.OracleFeasible {
			continue
		}
		k := GroupKey{Job: m.Job, Method: m.Method}
		c := byCell[k]
		if c == nil {
			c = &cell{}
			byCell[k] = c
		}
		c.feasible++
		if m.Violated {
			c.violated++
		} else {
			c.regrets = append(c.regrets, m.Regret)
		}
		if !seenJobs[m.Job] {
			seenJobs[m.Job] = true
			jobs = append(jobs, m.Job)
		}
		seenMethods[m.Method] = true
	}
	sort.Strings(jobs)
	var methods []Method
	for _, m := range MethodOrder {
		if seenMethods[m] {
			methods = append(methods, m)
		}
	}

	var b strings.Builder
	b.WriteString("Allocation quality — SLO-violation rate / mean cost regret\n")
	fmt.Fprintf(&b, "%10s", "job")
	for _, m := range methods {
		fmt.Fprintf(&b, " %28s", m)
	}
	b.WriteByte('\n')
	for _, job := range jobs {
		fmt.Fprintf(&b, "%10s", job)
		for _, m := range methods {
			c := byCell[GroupKey{Job: job, Method: m}]
			if c == nil || c.feasible == 0 {
				fmt.Fprintf(&b, " %28s", "-")
				continue
			}
			viol := float64(c.violated) / float64(c.feasible)
			regret := 0.0
			if len(c.regrets) > 0 {
				regret = Mean(c.regrets)
			}
			fmt.Fprintf(&b, "   %6.1f%% / %8.1f%% (%3d)", viol*100, regret*100, c.feasible)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
