// Package experiments implements the evaluation harness of the paper:
// random sub-sampling cross-validation splits with interpolation and
// extrapolation test points, the MRE/MAE metrics, the epoch eCDFs, and
// runners that regenerate every figure of §IV (Fig. 5, 6, 7, 8 and the
// training-time observations).
package experiments

import (
	"math"
	"sort"
)

// RelErr returns |pred-actual| / actual, the per-prediction relative
// error underlying the paper's MRE plots.
func RelErr(pred, actual float64) float64 {
	if actual == 0 {
		return math.Abs(pred)
	}
	return math.Abs(pred-actual) / math.Abs(actual)
}

// AbsErr returns |pred-actual| in seconds.
func AbsErr(pred, actual float64) float64 { return math.Abs(pred - actual) }

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Std returns the sample standard deviation of vals.
func Std(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := Mean(vals)
	var sq float64
	for _, v := range vals {
		sq += (v - m) * (v - m)
	}
	return math.Sqrt(sq / float64(len(vals)-1))
}

// Percentile returns the p-th percentile (0..100) of vals using linear
// interpolation between order statistics.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function over observed
// values (Fig. 7 plots these for trained epoch counts).
type ECDF struct {
	Values []float64 // sorted ascending
}

// NewECDF builds an eCDF from unsorted observations.
func NewECDF(vals []float64) *ECDF {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return &ECDF{Values: sorted}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.Search(len(e.Values), func(i int) bool { return e.Values[i] > x })
	return float64(idx) / float64(len(e.Values))
}

// Quantile returns the smallest value v with P(X <= v) >= q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.Values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.Values[0]
	}
	idx := int(math.Ceil(q*float64(len(e.Values)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.Values) {
		idx = len(e.Values) - 1
	}
	return e.Values[idx]
}
