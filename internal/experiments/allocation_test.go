package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// tinyAllocationConfig shrinks the experiment to a smoke-test budget:
// one job, one target context, a handful of splits, tiny model.
func tinyAllocationConfig() AllocationConfig {
	cfg := DefaultAllocationConfig()
	cfg.Jobs = []string{"sort"}
	cfg.ContextsPerJob = 1
	cfg.MaxSplits = 2
	cfg.PointCounts = []int{2}
	cfg.DeadlineFactors = []float64{1.5}
	cfg.Workers = 1

	m := core.DefaultConfig()
	m.PropertySize = 16
	m.EncodingDim = 3
	m.EncoderHidden = 6
	m.ScaleOutHidden = 8
	m.ScaleOutDim = 4
	m.PredictorHidden = 6
	m.PretrainEpochs = 3
	m.FinetuneEpochs = 10
	m.FinetunePatience = 5
	cfg.Model = m
	return cfg
}

func TestRunAllocationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pre-trains a model; skipped in -short")
	}
	ds := dataset.GenerateC3O(dataset.SimConfig{Seed: 7, Repeats: 2})
	cfg := tinyAllocationConfig()
	res, err := RunAllocation(ds, cfg)
	if err != nil {
		t.Fatalf("RunAllocation: %v", err)
	}
	if len(res.Measurements) == 0 {
		t.Fatal("experiment produced no measurements")
	}
	methods := map[Method]bool{}
	for _, m := range res.Measurements {
		methods[m.Method] = true
		if m.Job != "sort" {
			t.Fatalf("measurement for unexpected job %q", m.Job)
		}
		if m.OracleFeasible && !m.Violated && m.Regret < 0 {
			t.Fatalf("negative regret %v: chosen config cheaper than the oracle", m.Regret)
		}
	}
	for _, want := range []Method{MethodNNLS, MethodBell, MethodBellamyFull} {
		if !methods[want] {
			t.Fatalf("method %s missing from measurements", want)
		}
	}
	table := FormatAllocationTable(res.Measurements)
	if !strings.Contains(table, "sort") || !strings.Contains(table, "nnls") {
		t.Fatalf("allocation table missing expected rows/columns:\n%s", table)
	}
}

func TestOracleChoice(t *testing.T) {
	candidates := []int{2, 4, 8}
	runtime := map[int]float64{2: 300, 4: 150, 8: 100}
	// Deadline 200: feasible at 4 (cost 4*150) and 8 (cost 8*100);
	// cheapest is 4.
	cost, ok := oracleChoice(candidates, runtime, 200, 1)
	if !ok {
		t.Fatal("deadline 200 reported infeasible")
	}
	if want := 4.0 * 150 / 3600; cost != want {
		t.Fatalf("oracle cost = %v, want %v", cost, want)
	}
	if _, ok := oracleChoice(candidates, runtime, 50, 1); ok {
		t.Fatal("deadline 50 reported feasible")
	}
}

func TestRunAllocationValidation(t *testing.T) {
	ds := dataset.GenerateC3O(dataset.SimConfig{Seed: 1, Repeats: 2})
	cfg := tinyAllocationConfig()
	cfg.PointCounts = []int{0}
	if _, err := RunAllocation(ds, cfg); err == nil {
		t.Fatal("PointCounts {0} accepted")
	}
	cfg = tinyAllocationConfig()
	cfg.DeadlineFactors = nil
	if _, err := RunAllocation(ds, cfg); err == nil {
		t.Fatal("empty DeadlineFactors accepted")
	}
	cfg = tinyAllocationConfig()
	cfg.CostPerNodeHour = 0
	if _, err := RunAllocation(ds, cfg); err == nil {
		t.Fatal("zero CostPerNodeHour accepted")
	}
}
