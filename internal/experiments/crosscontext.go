package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

// CrossContextConfig parameterizes the ad hoc cross-context learning
// experiment (§IV-C1), the source of Fig. 5, Fig. 6, Fig. 7 and the
// fit-time observations.
type CrossContextConfig struct {
	// Seed drives context choice, split sampling and model init.
	Seed int64
	// Jobs to evaluate; nil selects all five C3O algorithms.
	Jobs []string
	// ContextsPerJob is the number of randomly chosen target contexts
	// (paper: 7, each node type present at least once).
	ContextsPerJob int
	// MaxSplits bounds the unique splits per training size (paper: 200).
	MaxSplits int
	// PointCounts are the interpolation training sizes (paper: 1..6).
	PointCounts []int
	// Model is the Bellamy configuration; epoch counts inside it control
	// the pre-training and fine-tuning budgets.
	Model core.Config
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultCrossContextConfig returns a configuration that reproduces the
// paper's experiment shape at a laptop-scale budget. Raise MaxSplits to
// 200 and the model epochs to Table I values for the full run.
func DefaultCrossContextConfig() CrossContextConfig {
	cfg := core.DefaultConfig()
	cfg.PretrainEpochs = 250
	cfg.FinetuneEpochs = 400
	cfg.FinetunePatience = 150
	return CrossContextConfig{
		Seed:           1,
		ContextsPerJob: 7,
		MaxSplits:      30,
		PointCounts:    []int{1, 2, 3, 4, 5, 6},
		Model:          cfg,
	}
}

// CrossContextResult aggregates every measurement of the experiment.
type CrossContextResult struct {
	Measurements []Measurement
	// PretrainSeconds records the pre-training wall time per
	// (job, context, method).
	PretrainSeconds map[string]float64
}

// RunCrossContext executes the experiment on a C3O-style dataset.
func RunCrossContext(ds *dataset.Dataset, cfg CrossContextConfig) (*CrossContextResult, error) {
	if cfg.ContextsPerJob <= 0 || cfg.MaxSplits <= 0 {
		return nil, fmt.Errorf("experiments: ContextsPerJob and MaxSplits must be positive")
	}
	jobs := cfg.Jobs
	if len(jobs) == 0 {
		jobs = ds.Jobs()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &CrossContextResult{PretrainSeconds: map[string]float64{}}

	for _, job := range jobs {
		targets, err := chooseTargetContexts(ds, job, cfg.ContextsPerJob, rng)
		if err != nil {
			return nil, err
		}
		// Per-context work units; run in parallel, collect deterministically.
		type ctxOut struct {
			ms       []Measurement
			pretrain map[string]float64
			err      error
		}
		seeds := make([]int64, len(targets))
		for i := range seeds {
			seeds[i] = rng.Int63()
		}
		outs := parallel.Map(len(targets), cfg.Workers, func(i int) ctxOut {
			ms, pt, err := runCrossContextTarget(ds, job, targets[i], cfg, seeds[i])
			return ctxOut{ms, pt, err}
		})
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			res.Measurements = append(res.Measurements, o.ms...)
			for k, v := range o.pretrain {
				res.PretrainSeconds[k] = v
			}
		}
	}
	return res, nil
}

// chooseTargetContexts picks n random contexts of a job ensuring every
// node type appearing in the dataset is present at least once among the
// chosen contexts (paper §IV-C1).
func chooseTargetContexts(ds *dataset.Dataset, job string, n int, rng *rand.Rand) ([]*dataset.Context, error) {
	all := ds.Contexts(job)
	if len(all) == 0 {
		return nil, fmt.Errorf("experiments: job %q has no contexts", job)
	}
	if n >= len(all) {
		return all, nil
	}
	// Group contexts by node type and pick one of each first.
	byNode := map[string][]*dataset.Context{}
	var nodeOrder []string
	for _, c := range all {
		if len(byNode[c.NodeType]) == 0 {
			nodeOrder = append(nodeOrder, c.NodeType)
		}
		byNode[c.NodeType] = append(byNode[c.NodeType], c)
	}
	chosen := map[string]*dataset.Context{}
	for _, nt := range nodeOrder {
		cs := byNode[nt]
		c := cs[rng.Intn(len(cs))]
		chosen[c.ID] = c
		if len(chosen) == n {
			break
		}
	}
	// Fill the remainder randomly.
	perm := rng.Perm(len(all))
	for _, i := range perm {
		if len(chosen) >= n {
			break
		}
		chosen[all[i].ID] = all[i]
	}
	var out []*dataset.Context
	for _, c := range all { // deterministic order
		if _, ok := chosen[c.ID]; ok {
			out = append(out, c)
		}
	}
	return out, nil
}

// runCrossContextTarget handles one (job, target context): pre-trains
// the filtered and full Bellamy variants, then sweeps training sizes and
// splits over all five methods.
func runCrossContextTarget(ds *dataset.Dataset, job string, target *dataset.Context, cfg CrossContextConfig, seed int64) ([]Measurement, map[string]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	pretrainSec := map[string]float64{}

	modelCfg := cfg.Model
	modelCfg.Seed = rng.Int63()

	fullCorpus := core.SamplesFromExecutions(dataset.FilterExcludeContext(ds, target))
	filteredCorpus := core.SamplesFromExecutions(dataset.FilterDissimilar(ds, target))

	var fullBase, filteredBase *core.Model
	if len(fullCorpus) > 0 {
		m, err := core.New(modelCfg)
		if err != nil {
			return nil, nil, err
		}
		rep, err := m.Pretrain(fullCorpus)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: pre-training full variant for %s: %w", target.ID, err)
		}
		fullBase = m
		pretrainSec[key(job, target.ID, MethodBellamyFull)] = rep.Duration.Seconds()
	}
	if len(filteredCorpus) > 0 {
		mc := modelCfg
		mc.Seed = rng.Int63()
		m, err := core.New(mc)
		if err != nil {
			return nil, nil, err
		}
		rep, err := m.Pretrain(filteredCorpus)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: pre-training filtered variant for %s: %w", target.ID, err)
		}
		filteredBase = m
		pretrainSec[key(job, target.ID, MethodBellamyFiltered)] = rep.Duration.Seconds()
	}

	ftOpts := core.FinetuneOptions{Strategy: core.StrategyPartialUnfreeze}
	localOpts := core.FinetuneOptions{Strategy: core.StrategyLocal}
	localCfg := modelCfg
	localCfg.Seed = rng.Int63()

	runners := baselineRunners()
	runners = append(runners,
		bellamyRunner(MethodBellamyLocal, nil, localCfg, target, localOpts),
	)
	if filteredBase != nil {
		runners = append(runners, bellamyRunner(MethodBellamyFiltered, filteredBase, modelCfg, target, ftOpts))
	}
	if fullBase != nil {
		runners = append(runners, bellamyRunner(MethodBellamyFull, fullBase, modelCfg, target, ftOpts))
	}

	ctxExecs := ds.ForContext(target.ID)
	var out []Measurement
	counts := append([]int{0}, cfg.PointCounts...) // 0 = zero-shot extrapolation
	for _, k := range counts {
		splits, err := GenerateSplits(ctxExecs, k, cfg.MaxSplits, rng)
		if err != nil {
			continue // k may be infeasible for this context
		}
		for _, sp := range splits {
			for _, r := range runners {
				if m, ok := runSplit(r, job, target.ID, sp); ok {
					out = append(out, m)
				}
			}
		}
	}
	return out, pretrainSec, nil
}

func key(job, ctxID string, m Method) string {
	return job + "/" + ctxID + "/" + string(m)
}
