// Package parallel provides a bounded worker pool for fanning experiment
// work (hyperparameter trials, cross-validation splits) across CPU cores.
// It replaces the GPU/Ray-Tune parallelism of the paper's original setup.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) using at most workers goroutines.
// workers <= 0 selects GOMAXPROCS. It blocks until all calls finish.
// Indices are claimed with an atomic counter, so uneven per-index costs
// (e.g. hyperopt trials of different epochs) balance across workers
// without lock contention.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with bounded parallelism and collects results
// in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
