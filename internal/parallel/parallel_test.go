package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachSerial(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	got := Map(3, 64, func(i int) int { return i + 1 })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Map = %v", got)
	}
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(j int) {
			s := 0.0
			for k := 0; k < 1000; k++ {
				s += float64(k)
			}
			_ = s
		})
	}
}
