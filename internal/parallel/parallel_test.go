package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachSerial(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMoreWorkersThanItems(t *testing.T) {
	got := Map(3, 64, func(i int) int { return i + 1 })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Map = %v", got)
	}
}

// TestForEachConcurrentCallers runs many ForEach invocations from
// separate goroutines at once — the shape the serving layer produces
// when concurrent batches each fan out their model groups. Run under
// -race this checks the pool has no shared mutable state across calls.
func TestForEachConcurrentCallers(t *testing.T) {
	const callers = 16
	const n = 200
	var total int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForEach(n, 4, func(i int) { atomic.AddInt64(&total, int64(i)) })
		}()
	}
	wg.Wait()
	want := int64(callers) * int64(n*(n-1)/2)
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

// TestForEachNested checks that fn may itself call ForEach (batch
// prediction inside an experiment sweep) without deadlocking or losing
// work.
func TestForEachNested(t *testing.T) {
	const outer, inner = 8, 50
	var count int64
	ForEach(outer, 4, func(i int) {
		ForEach(inner, 2, func(j int) { atomic.AddInt64(&count, 1) })
	})
	if count != outer*inner {
		t.Fatalf("count = %d, want %d", count, outer*inner)
	}
}

// TestForEachEachIndexOnce hammers a larger index space with maximum
// worker contention and asserts exactly-once delivery per index.
func TestForEachEachIndexOnce(t *testing.T) {
	const n = 10000
	hits := make([]int32, n)
	ForEach(n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times, want exactly once", i, h)
		}
	}
}

// TestMapConcurrentCallers checks Map result isolation across
// concurrent invocations.
func TestMapConcurrentCallers(t *testing.T) {
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]int, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = Map(100, 8, func(i int) int { return c*1000 + i })
		}(c)
	}
	wg.Wait()
	for c, r := range results {
		for i, v := range r {
			if v != c*1000+i {
				t.Fatalf("caller %d result[%d] = %d, want %d", c, i, v, c*1000+i)
			}
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(j int) {
			s := 0.0
			for k := 0; k < 1000; k++ {
				s += float64(k)
			}
			_ = s
		})
	}
}
