package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// HTTPTargetConfig describes one benchmark target: a running /v1
// surface (single serve instance or sharded router — the wire contract
// is identical) and the request mix to offer it.
type HTTPTargetConfig struct {
	// BaseURL of the server, e.g. http://localhost:8080. A trailing
	// slash is tolerated.
	BaseURL string
	// Client issues the requests (nil: a default client with a generous
	// idle-connection pool).
	Client *http.Client

	// Job and Env name the target model.
	Job, Env string
	// ScaleOuts are cycled across predict/observe requests; more
	// distinct values lower the server's result-cache hit ratio.
	ScaleOuts []int
	// Essential and Optional describe the job context, in model order.
	Essential, Optional []api.Property

	// PredictPct and ObservePct set the request mix out of 100; the
	// remainder allocates. PredictPct+ObservePct must fit in 100.
	PredictPct, ObservePct int
	// ObserveRuntimeSec is the runtime reported by observe requests.
	ObserveRuntimeSec float64

	// DeadlineMS, when positive, sets the X-Deadline-Ms budget header
	// on every request.
	DeadlineMS int
	// APIKeys, when positive, spreads requests across this many
	// X-API-Key identities so per-client rate limits can be exercised.
	APIKeys int
}

// HTTPTarget issues the weighted predict/observe/allocate mix of one
// benchmark run against a /v1 server. Request bodies are the canonical
// api DTOs, marshaled once at construction; Issue only picks one per
// sequence number and classifies the response status.
type HTTPTarget struct {
	cfg         HTTPTargetConfig
	client      *http.Client
	baseURL     string
	observeCut  int
	predictReqs [][]byte
	observeReqs [][]byte
	allocateReq []byte
}

// NewHTTPTarget validates cfg and pre-marshals one request body per
// scale-out for each endpoint in the mix.
func NewHTTPTarget(cfg HTTPTargetConfig) (*HTTPTarget, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: missing base URL")
	}
	if cfg.Job == "" {
		return nil, fmt.Errorf("loadgen: missing job")
	}
	if len(cfg.ScaleOuts) == 0 {
		return nil, fmt.Errorf("loadgen: missing scale-outs")
	}
	if cfg.PredictPct < 0 || cfg.ObservePct < 0 || cfg.PredictPct+cfg.ObservePct > 100 {
		return nil, fmt.Errorf("loadgen: predict %d%% + observe %d%% must fit in 100",
			cfg.PredictPct, cfg.ObservePct)
	}
	t := &HTTPTarget{
		cfg:        cfg,
		client:     cfg.Client,
		baseURL:    strings.TrimRight(cfg.BaseURL, "/"),
		observeCut: cfg.PredictPct + cfg.ObservePct,
	}
	if t.client == nil {
		t.client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 4096,
			},
		}
	}
	minX, maxX := cfg.ScaleOuts[0], cfg.ScaleOuts[0]
	for _, x := range cfg.ScaleOuts {
		minX, maxX = min(minX, x), max(maxX, x)
		pr := api.PredictRequest{
			Job: cfg.Job, Env: cfg.Env, ScaleOut: x,
			Essential: cfg.Essential, Optional: cfg.Optional,
		}
		p, err := json.Marshal(pr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshaling predict body: %w", err)
		}
		t.predictReqs = append(t.predictReqs, p)
		o, err := json.Marshal(api.ObserveRequest{
			PredictRequest: pr,
			RuntimeSec:     cfg.ObserveRuntimeSec,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshaling observe body: %w", err)
		}
		t.observeReqs = append(t.observeReqs, o)
	}
	var err error
	t.allocateReq, err = json.Marshal(api.AllocateRequest{
		Job: cfg.Job, Env: cfg.Env,
		Essential: cfg.Essential, Optional: cfg.Optional,
		MinScaleOut: minX, MaxScaleOut: maxX,
		DeadlineSec: 1e6, CostPerNodeHour: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: marshaling allocate body: %w", err)
	}
	return t, nil
}

// Issue sends the request for one arrival and classifies its outcome.
// It is safe for concurrent calls and is the op handed to Run.
func (t *HTTPTarget) Issue(seq int) Outcome {
	var path string
	var body []byte
	switch m := seq % 100; {
	case m < t.cfg.PredictPct:
		path, body = "/v1/predict", t.predictReqs[seq%len(t.predictReqs)]
	case m < t.observeCut:
		path, body = "/v1/observe", t.observeReqs[seq%len(t.observeReqs)]
	default:
		path, body = "/v1/allocate", t.allocateReq
	}
	req, err := http.NewRequest(http.MethodPost, t.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return OutcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	if t.cfg.DeadlineMS > 0 {
		req.Header.Set(api.DeadlineHeader, strconv.Itoa(t.cfg.DeadlineMS))
	}
	if t.cfg.APIKeys > 0 {
		req.Header.Set(api.ClientKeyHeader, "bench-"+strconv.Itoa(seq%t.cfg.APIKeys))
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return OutcomeError
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return OutcomeOK
	case resp.StatusCode == http.StatusTooManyRequests:
		return OutcomeRateLimited
	case resp.StatusCode == http.StatusServiceUnavailable:
		return OutcomeShed
	case resp.StatusCode == http.StatusGatewayTimeout:
		return OutcomeDeadline
	default:
		return OutcomeError
	}
}
