package loadgen

import (
	"sync/atomic"
	"testing"
	"time"
)

// The bucket-layout tests (round-trip, monotonicity) moved to
// internal/obs with the histogram implementation; what stays here is
// the public-API behavior `bellamy bench` depends on.

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		err := float64(c.want-got) / float64(c.want)
		if got > c.want || err > 0.05 {
			t.Fatalf("q%.3f = %v, want within 5%% below %v", c.q, got, c.want)
		}
	}
	if max := h.Max(); max > time.Millisecond || max < 900*time.Microsecond {
		t.Fatalf("max = %v, want ~1ms", max)
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if m := h.Max(); m != 0 {
		t.Fatalf("empty max = %v, want 0", m)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d, want 2", a.Count())
	}
	if q := a.Quantile(1.0); q < 900*time.Millisecond {
		t.Fatalf("merged p100 = %v, want ~1s", q)
	}
}

// TestRunOpenLoop: the scheduler issues roughly Rate*Duration arrivals
// and classifies outcomes.
func TestRunOpenLoop(t *testing.T) {
	var n atomic.Int64
	res := Run(Config{Rate: 2000, Duration: 200 * time.Millisecond}, func(seq int) Outcome {
		n.Add(1)
		switch seq % 4 {
		case 0:
			return OutcomeRateLimited
		case 1:
			return OutcomeShed
		default:
			return OutcomeOK
		}
	})
	want := int64(2000 * 0.2)
	if res.Sent < want/2 || res.Sent > want*2 {
		t.Fatalf("sent = %d, want ~%d", res.Sent, want)
	}
	if res.Sent != n.Load() {
		t.Fatalf("sent = %d but op ran %d times", res.Sent, n.Load())
	}
	if got := res.OK + res.RateLimited + res.Shed + res.Deadline + res.Errors; got != res.Sent {
		t.Fatalf("outcomes sum to %d, want %d", got, res.Sent)
	}
	if res.OK == 0 || res.RateLimited == 0 || res.Shed == 0 {
		t.Fatalf("outcome mix missing classes: %+v", res)
	}
	if res.OKLatency.Count() != res.OK || res.RejectLatency.Count() != res.RateLimited+res.Shed {
		t.Fatal("latency histograms do not match outcome counts")
	}
	if res.Goodput() <= 0 {
		t.Fatal("goodput = 0, want positive")
	}
}

// TestRunBoundsOutstanding: with op blocking forever past the cap, the
// generator drops instead of growing without bound.
func TestRunBoundsOutstanding(t *testing.T) {
	block := make(chan struct{})
	// Unblock the stuck ops after the schedule ends so Run's final wait
	// can finish.
	timer := time.AfterFunc(150*time.Millisecond, func() { close(block) })
	defer timer.Stop()
	res := Run(Config{Rate: 5000, Duration: 100 * time.Millisecond, MaxOutstanding: 8}, func(seq int) Outcome {
		<-block
		return OutcomeError
	})
	if res.Dropped == 0 {
		t.Fatal("no arrivals dropped despite a stuck server and an 8-request cap")
	}
	if res.Sent > 8 {
		t.Fatalf("sent = %d, want <= MaxOutstanding", res.Sent)
	}
}
