package loadgen

import "repro/internal/obs"

// Hist is the log-linear latency histogram, now shared with the
// serving tier's metrics layer. It started here; internal/obs promoted
// it so /metrics and `bellamy bench` quantiles come from the same
// bucket layout, and the alias keeps every loadgen call site and
// consumer (`Result.OKLatency.Quantile(...)`) source-compatible.
type Hist = obs.Hist

// NewHist returns an empty histogram.
func NewHist() *Hist { return obs.NewHist() }
