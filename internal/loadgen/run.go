// Package loadgen is the open-loop load-generation harness behind
// `bellamy bench` and the overload tests: a log-linear latency
// histogram (HDR-style: bounded memory, ~3% relative error at any
// magnitude, shared with internal/obs) and a scheduler that fires
// requests at a fixed arrival rate regardless of completions — the
// only way to observe how a server behaves past saturation, since a
// closed loop slows its own offered load down to whatever the server
// can absorb.
package loadgen

import (
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies one completed request.
type Outcome int

const (
	// OutcomeOK is a successful (2xx) response — goodput.
	OutcomeOK Outcome = iota
	// OutcomeRateLimited is a 429 from the per-client rate limiter.
	OutcomeRateLimited
	// OutcomeShed is a 503 from the admission gate (or a draining
	// health check).
	OutcomeShed
	// OutcomeDeadline is a 504: the budget ran out server-side.
	OutcomeDeadline
	// OutcomeError is any other failure (transport error, 5xx, 4xx).
	OutcomeError
)

// Config tunes one open-loop run.
type Config struct {
	// Rate is the offered load in arrivals per second (> 0).
	Rate float64
	// Duration bounds the arrival schedule; in-flight requests are
	// awaited past it, so the run's wall clock can exceed Duration by
	// the slowest response.
	Duration time.Duration
	// MaxOutstanding caps concurrently in-flight requests, protecting
	// the generator itself (file descriptors, goroutines) when the
	// server stops answering. Arrivals past the cap are counted as
	// Dropped, not silently skipped — a saturated generator must not
	// masquerade as a healthy server (<= 0: 4096).
	MaxOutstanding int
}

// Result aggregates one run.
type Result struct {
	// Offered is the configured arrival rate; Elapsed the measured
	// schedule duration.
	Offered float64
	Elapsed time.Duration
	// Sent counts issued requests; Dropped counts arrivals skipped
	// because MaxOutstanding was reached (client-side overload).
	Sent, Dropped int64
	// Outcome counters.
	OK, RateLimited, Shed, Deadline, Errors int64
	// OKLatency holds latencies of successful responses only;
	// RejectLatency those of rate-limited and shed responses — the
	// price of a rejection, which must stay microseconds under
	// overload.
	OKLatency, RejectLatency *Hist
}

// Goodput is the successful-response rate in responses per second.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// Run drives op at cfg.Rate for cfg.Duration and aggregates outcomes.
// Arrivals follow a fixed schedule (open loop): a slow or saturated
// server does not slow the schedule down, it just accumulates
// in-flight requests until MaxOutstanding protects the generator. op
// receives the arrival's sequence number and must be safe for
// concurrent calls.
func Run(cfg Config, op func(seq int) Outcome) Result {
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	res := Result{
		Offered:       cfg.Rate,
		OKLatency:     NewHist(),
		RejectLatency: NewHist(),
	}
	var (
		wg       sync.WaitGroup
		sent     atomic.Int64
		dropped  atomic.Int64
		counts   [5]atomic.Int64
		sem      = make(chan struct{}, cfg.MaxOutstanding)
		interval = time.Duration(float64(time.Second) / cfg.Rate)
		start    = time.Now()
		deadline = start.Add(cfg.Duration)
		next     = start
		seq      = 0
	)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Launch every arrival the schedule says is due; sleeping once
		// per batch keeps the schedule accurate at rates well above the
		// sleep granularity.
		for !next.After(now) {
			next = next.Add(interval)
			select {
			case sem <- struct{}{}:
			default:
				dropped.Add(1)
				seq++
				continue
			}
			sent.Add(1)
			wg.Add(1)
			go func(seq int) {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				out := op(seq)
				lat := time.Since(t0)
				counts[out].Add(1)
				switch out {
				case OutcomeOK:
					res.OKLatency.Observe(lat)
				case OutcomeRateLimited, OutcomeShed:
					res.RejectLatency.Observe(lat)
				}
			}(seq)
			seq++
		}
		if d := time.Until(next); d > 0 {
			if d > time.Millisecond {
				d = time.Millisecond
			}
			time.Sleep(d)
		}
	}
	res.Elapsed = time.Since(start)
	wg.Wait()
	res.Sent = sent.Load()
	res.Dropped = dropped.Load()
	res.OK = counts[OutcomeOK].Load()
	res.RateLimited = counts[OutcomeRateLimited].Load()
	res.Shed = counts[OutcomeShed].Load()
	res.Deadline = counts[OutcomeDeadline].Load()
	res.Errors = counts[OutcomeError].Load()
	return res
}
