package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Layer is one differentiable stage of a network. Forward caches whatever
// it needs for Backward; Backward consumes the gradient w.r.t. its output,
// accumulates parameter gradients, and returns the gradient w.r.t. its
// input.
//
// Both passes draw their output buffers from the caller's workspace, so a
// steady-state training step allocates nothing. Buffers returned by
// Forward/Backward (and the input caches they keep) are valid until the
// workspace is Reset; callers own the Reset cadence — typically once per
// training step, before the forward pass. A nil workspace is allowed and
// falls back to allocating.
type Layer interface {
	Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense
	Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense
	Params() []*Param
}

// Linear is a fully connected layer computing y = x*W + b with
// W ∈ R^{In x Out}. The bias is optional: Bellamy's auto-encoder waives
// additive biases (paper §IV-A).
type Linear struct {
	In, Out int
	W       *Param
	B       *Param // nil when the layer has no bias

	input *mat.Dense
}

// NewLinear constructs a linear layer and initializes its weights.
func NewLinear(name string, in, out int, withBias bool, scheme InitScheme, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(name+".W", in, out)}
	InitDense(l.W.Value, scheme, rng)
	if withBias {
		l.B = NewParam(name+".b", 1, out)
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear %s input cols %d != in %d", l.W.Name, x.Cols, l.In))
	}
	l.input = x
	y := ws.GetRaw(x.Rows, l.Out)
	mat.MulTo(y, x, l.W.Value)
	if l.B != nil {
		mat.AddRowVecTo(y, y, l.B.Value.Row(0))
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	if l.input == nil {
		panic("nn: Linear.Backward before Forward")
	}
	if grad.Cols != l.Out {
		panic(fmt.Sprintf("nn: Linear %s grad cols %d != out %d", l.W.Name, grad.Cols, l.Out))
	}
	// dW += xᵀ * grad, straight into the parameter gradient.
	mat.MulATBAcc(l.W.Grad, l.input, grad)
	if l.B != nil {
		mat.ColSumsAcc(l.B.Grad.Row(0), grad)
	}
	// dx = grad * Wᵀ
	dx := ws.GetRaw(grad.Rows, l.In)
	mat.MulABTTo(dx, grad, l.W.Value)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// LinearAct is a fully connected layer with its activation fused in:
// y = act(x*W + b). Compared to a Linear followed by an ActLayer it
// runs the bias-add and the activation in a single pass over the
// output (one read of the matmul result instead of three), computes
// the backward activation-derivative ∘ upstream-gradient product and
// the bias gradient in one sweep, and needs one less workspace buffer
// per pass. Parameter names match the unfused pair (name.W / name.b),
// so serialized states are interchangeable.
type LinearAct struct {
	In, Out int
	W       *Param
	B       *Param // nil when the layer has no bias
	Act     Activation

	input *mat.Dense
	// cache holds what Backward needs: the activated output when Act
	// has an output-form derivative (cacheIsOut), the pre-activation
	// otherwise, nil for Identity (whose derivative is constant).
	cache      *mat.Dense
	cacheIsOut bool
}

// NewLinearAct constructs a fused linear+activation layer.
func NewLinearAct(name string, in, out int, withBias bool, act Activation, scheme InitScheme, rng *rand.Rand) *LinearAct {
	l := &LinearAct{In: in, Out: out, W: NewParam(name+".W", in, out), Act: act}
	InitDense(l.W.Value, scheme, rng)
	if withBias {
		l.B = NewParam(name+".b", 1, out)
	}
	return l
}

// Forward implements Layer.
func (l *LinearAct) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: LinearAct %s input cols %d != in %d", l.W.Name, x.Cols, l.In))
	}
	l.input = x
	pre := ws.GetRaw(x.Rows, l.Out)
	mat.MulTo(pre, x, l.W.Value)
	if _, id := l.Act.(Identity); id {
		// Identity needs no cache and no second buffer: the bias (if
		// any) is added in place and pre is the output.
		l.cache = nil
		if l.B != nil {
			mat.AddRowVecTo(pre, pre, l.B.Value.Row(0))
		}
		return pre
	}
	var bias []float64
	if l.B != nil {
		bias = l.B.Value.Row(0)
	}
	if _, ok := l.Act.(outputDeriv); ok {
		// Bias and activation applied in place, single pass, single
		// buffer; the output doubles as the derivative cache.
		fusedBiasActInPlace(l.Act, pre, bias)
		l.cache = pre
		l.cacheIsOut = true
		return pre
	}
	out := ws.GetRaw(x.Rows, l.Out)
	fusedBiasAct(l.Act, pre, out, bias) // pre becomes x*W+b in the same pass
	l.cache = pre
	l.cacheIsOut = false
	return out
}

// Backward implements Layer.
func (l *LinearAct) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	if l.input == nil {
		panic("nn: LinearAct.Backward before Forward")
	}
	if grad.Cols != l.Out {
		panic(fmt.Sprintf("nn: LinearAct %s grad cols %d != out %d", l.W.Name, grad.Cols, l.Out))
	}
	dpre := grad
	if _, id := l.Act.(Identity); !id {
		var biasGrad []float64
		if l.B != nil {
			biasGrad = l.B.Grad.Row(0)
		}
		dpre = ws.GetRaw(grad.Rows, l.Out)
		if l.cacheIsOut {
			fusedActGradFromOut(l.Act, grad, l.cache, dpre, biasGrad)
		} else {
			fusedActGrad(l.Act, grad, l.cache, dpre, biasGrad)
		}
	} else if l.B != nil {
		mat.ColSumsAcc(l.B.Grad.Row(0), grad)
	}
	// dW += xᵀ * dpre, straight into the parameter gradient.
	mat.MulATBAcc(l.W.Grad, l.input, dpre)
	// dx = dpre * Wᵀ
	dx := ws.GetRaw(grad.Rows, l.In)
	mat.MulABTTo(dx, dpre, l.W.Value)
	return dx
}

// Params implements Layer.
func (l *LinearAct) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// MLP is a sequential stack of layers. Every network in the Bellamy
// architecture (f, g, h, z) is a two-layer MLP; the type supports any
// depth for ablations.
type MLP struct {
	Layers []Layer
}

// NewMLP wraps layers into a network.
func NewMLP(layers ...Layer) *MLP { return &MLP{Layers: layers} }

// Forward implements Layer by chaining all constituent layers.
func (m *MLP) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	for _, l := range m.Layers {
		x = l.Forward(ws, x, train)
	}
	return x
}

// Backward implements Layer by back-propagating through all layers.
func (m *MLP) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(ws, grad)
	}
	return grad
}

// Params implements Layer, collecting every learnable parameter.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TwoLayerSpec describes the 2-layer feed-forward networks of paper
// Eq. (2): in → hidden (actHidden) → out (actOut), with optional biases
// and optional alpha-dropout between the layers.
type TwoLayerSpec struct {
	Name      string
	In        int
	Hidden    int
	Out       int
	ActHidden Activation
	ActOut    Activation
	WithBias  bool
	Dropout   float64
	Init      InitScheme
}

// Build constructs the MLP for the spec, drawing initial weights from
// rng. Each linear layer is built fused with its activation
// (LinearAct), so the per-layer epilogues run in single passes; weight
// initialization order — and therefore every drawn weight — is
// identical to the unfused Linear/ActLayer stack.
func (s TwoLayerSpec) Build(rng *rand.Rand) *MLP {
	layers := []Layer{
		NewLinearAct(s.Name+".l1", s.In, s.Hidden, s.WithBias, s.ActHidden, s.Init, rng),
	}
	if s.Dropout > 0 {
		layers = append(layers, NewAlphaDropout(s.Dropout, rng))
	}
	layers = append(layers,
		NewLinearAct(s.Name+".l2", s.Hidden, s.Out, s.WithBias, s.ActOut, s.Init, rng),
	)
	return NewMLP(layers...)
}
