package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// Layer is one differentiable stage of a network. Forward caches whatever
// it needs for Backward; Backward consumes the gradient w.r.t. its output,
// accumulates parameter gradients, and returns the gradient w.r.t. its
// input.
//
// Both passes draw their output buffers from the caller's workspace, so a
// steady-state training step allocates nothing. Buffers returned by
// Forward/Backward (and the input caches they keep) are valid until the
// workspace is Reset; callers own the Reset cadence — typically once per
// training step, before the forward pass. A nil workspace is allowed and
// falls back to allocating.
type Layer interface {
	Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense
	Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense
	Params() []*Param
}

// Linear is a fully connected layer computing y = x*W + b with
// W ∈ R^{In x Out}. The bias is optional: Bellamy's auto-encoder waives
// additive biases (paper §IV-A).
type Linear struct {
	In, Out int
	W       *Param
	B       *Param // nil when the layer has no bias

	input *mat.Dense
}

// NewLinear constructs a linear layer and initializes its weights.
func NewLinear(name string, in, out int, withBias bool, scheme InitScheme, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(name+".W", in, out)}
	InitDense(l.W.Value, scheme, rng)
	if withBias {
		l.B = NewParam(name+".b", 1, out)
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear %s input cols %d != in %d", l.W.Name, x.Cols, l.In))
	}
	l.input = x
	y := ws.GetRaw(x.Rows, l.Out)
	mat.MulTo(y, x, l.W.Value)
	if l.B != nil {
		mat.AddRowVecTo(y, y, l.B.Value.Row(0))
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	if l.input == nil {
		panic("nn: Linear.Backward before Forward")
	}
	if grad.Cols != l.Out {
		panic(fmt.Sprintf("nn: Linear %s grad cols %d != out %d", l.W.Name, grad.Cols, l.Out))
	}
	// dW += xᵀ * grad, straight into the parameter gradient.
	mat.MulATBAcc(l.W.Grad, l.input, grad)
	if l.B != nil {
		mat.ColSumsAcc(l.B.Grad.Row(0), grad)
	}
	// dx = grad * Wᵀ
	dx := ws.GetRaw(grad.Rows, l.In)
	mat.MulABTTo(dx, grad, l.W.Value)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// MLP is a sequential stack of layers. Every network in the Bellamy
// architecture (f, g, h, z) is a two-layer MLP; the type supports any
// depth for ablations.
type MLP struct {
	Layers []Layer
}

// NewMLP wraps layers into a network.
func NewMLP(layers ...Layer) *MLP { return &MLP{Layers: layers} }

// Forward implements Layer by chaining all constituent layers.
func (m *MLP) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	for _, l := range m.Layers {
		x = l.Forward(ws, x, train)
	}
	return x
}

// Backward implements Layer by back-propagating through all layers.
func (m *MLP) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(ws, grad)
	}
	return grad
}

// Params implements Layer, collecting every learnable parameter.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TwoLayerSpec describes the 2-layer feed-forward networks of paper
// Eq. (2): in → hidden (actHidden) → out (actOut), with optional biases
// and optional alpha-dropout between the layers.
type TwoLayerSpec struct {
	Name      string
	In        int
	Hidden    int
	Out       int
	ActHidden Activation
	ActOut    Activation
	WithBias  bool
	Dropout   float64
	Init      InitScheme
}

// Build constructs the MLP for the spec, drawing initial weights from rng.
func (s TwoLayerSpec) Build(rng *rand.Rand) *MLP {
	layers := []Layer{
		NewLinear(s.Name+".l1", s.In, s.Hidden, s.WithBias, s.Init, rng),
		NewActLayer(s.ActHidden),
	}
	if s.Dropout > 0 {
		layers = append(layers, NewAlphaDropout(s.Dropout, rng))
	}
	layers = append(layers,
		NewLinear(s.Name+".l2", s.Hidden, s.Out, s.WithBias, s.Init, rng),
		NewActLayer(s.ActOut),
	)
	return NewMLP(layers...)
}
