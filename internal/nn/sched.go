package nn

import "math"

// LRSchedule yields a learning rate for an epoch index.
type LRSchedule interface {
	Rate(epoch int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR struct{ Value float64 }

// Rate implements LRSchedule.
func (c ConstantLR) Rate(epoch int) float64 { return c.Value }

// CyclicalLR implements triangular cyclical annealing between Low and
// High, the schedule Bellamy's fine-tuning uses in (1e-3, 1e-2). The rate
// starts at High, descends linearly to Low over half a period, and climbs
// back.
type CyclicalLR struct {
	Low, High float64
	// Period is the full cycle length in epochs; 0 defaults to 200.
	Period int
}

// Rate implements LRSchedule.
func (c CyclicalLR) Rate(epoch int) float64 {
	period := c.Period
	if period <= 0 {
		period = 200
	}
	half := float64(period) / 2
	pos := float64(epoch % period)
	var frac float64 // 0 at High, 1 at Low
	if pos < half {
		frac = pos / half
	} else {
		frac = (float64(period) - pos) / half
	}
	return c.High - (c.High-c.Low)*frac
}

// CosineAnnealingLR decays from High to Low over Span epochs following a
// half cosine, then stays at Low. Used by the pre-training ablations.
type CosineAnnealingLR struct {
	Low, High float64
	Span      int
}

// Rate implements LRSchedule.
func (c CosineAnnealingLR) Rate(epoch int) float64 {
	if c.Span <= 0 || epoch >= c.Span {
		return c.Low
	}
	t := float64(epoch) / float64(c.Span)
	return c.Low + (c.High-c.Low)*(1+math.Cos(math.Pi*t))/2
}

// EarlyStopper tracks the best observed metric and signals when training
// should stop: either the metric reached Target, or no improvement was
// seen within Patience epochs. It mirrors Bellamy's fine-tuning criterion
// (MAE <= 5 s, or no improvement in 1000 epochs).
type EarlyStopper struct {
	// Target stops training as soon as the metric is <= Target.
	Target float64
	// Patience is the number of epochs without improvement tolerated.
	Patience int

	best      float64
	bestEpoch int
	seen      bool
}

// NewEarlyStopper builds a stopper with the given target and patience.
func NewEarlyStopper(target float64, patience int) *EarlyStopper {
	return &EarlyStopper{Target: target, Patience: patience}
}

// Observe records the metric for an epoch and reports (improved, stop).
func (e *EarlyStopper) Observe(epoch int, metric float64) (improved, stop bool) {
	if !e.seen || metric < e.best {
		e.best = metric
		e.bestEpoch = epoch
		e.seen = true
		improved = true
	}
	if metric <= e.Target {
		return improved, true
	}
	if e.Patience > 0 && epoch-e.bestEpoch >= e.Patience {
		return improved, true
	}
	return improved, false
}

// Best returns the best metric observed so far and its epoch.
func (e *EarlyStopper) Best() (float64, int) { return e.best, e.bestEpoch }
