package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/mat"
)

// State is a snapshot of parameter values keyed by parameter name. It is
// how Bellamy preserves a pre-trained model state for later fine-tuning.
type State map[string]*mat.Dense

// CaptureState deep-copies the current values of params.
func CaptureState(params []*Param) State {
	s := make(State, len(params))
	for _, p := range params {
		if _, dup := s[p.Name]; dup {
			panic(fmt.Sprintf("nn: duplicate param name %q", p.Name))
		}
		s[p.Name] = p.Value.Clone()
	}
	return s
}

// CaptureStateInto copies the current values of params into dst, reusing
// dst's matrices when shapes match so repeated captures (best-state
// tracking every improved epoch) stop allocating. A nil dst allocates a
// fresh state. It returns dst.
func CaptureStateInto(dst State, params []*Param) State {
	if dst == nil {
		return CaptureState(params)
	}
	for _, p := range params {
		if v, ok := dst[p.Name]; ok && v.Rows == p.Value.Rows && v.Cols == p.Value.Cols {
			copy(v.Data, p.Value.Data)
			continue
		}
		dst[p.Name] = p.Value.Clone()
	}
	return dst
}

// RestoreState loads captured values back into params. Every parameter
// must be present in the state with a matching shape.
func RestoreState(params []*Param, s State) error {
	for _, p := range params {
		v, ok := s[p.Name]
		if !ok {
			return fmt.Errorf("nn: state missing param %q", p.Name)
		}
		if v.Rows != p.Value.Rows || v.Cols != p.Value.Cols {
			return fmt.Errorf("nn: state param %q shape %dx%d != %dx%d",
				p.Name, v.Rows, v.Cols, p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, v.Data)
	}
	return nil
}

// Encode serializes the state with encoding/gob.
func (s State) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("nn: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState deserializes a state produced by Encode.
func DecodeState(b []byte) (State, error) {
	var s State
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decoding state: %w", err)
	}
	return s, nil
}
