package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// InitScheme selects a weight initialization strategy.
type InitScheme int

const (
	// InitHe draws from N(0, 2/fanIn), the He et al. scheme the paper
	// cites for its layers.
	InitHe InitScheme = iota
	// InitLeCun draws from N(0, 1/fanIn), the initialization the SELU
	// paper prescribes for self-normalizing networks.
	InitLeCun
	// InitXavier draws from U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
	InitXavier
)

// String implements fmt.Stringer.
func (s InitScheme) String() string {
	switch s {
	case InitHe:
		return "he"
	case InitLeCun:
		return "lecun"
	case InitXavier:
		return "xavier"
	default:
		return "unknown"
	}
}

// InitDense fills m (treated as a fanIn x fanOut weight matrix) according
// to the chosen scheme using rng for reproducibility.
func InitDense(m *mat.Dense, scheme InitScheme, rng *rand.Rand) {
	fanIn := float64(m.Rows)
	fanOut := float64(m.Cols)
	switch scheme {
	case InitHe:
		std := math.Sqrt(2 / fanIn)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * std
		}
	case InitLeCun:
		std := math.Sqrt(1 / fanIn)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * std
		}
	case InitXavier:
		a := math.Sqrt(6 / (fanIn + fanOut))
		for i := range m.Data {
			m.Data[i] = (rng.Float64()*2 - 1) * a
		}
	default:
		panic("nn: unknown init scheme")
	}
}
