package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// SELU constants from Klambauer et al., "Self-Normalizing Neural Networks".
const (
	SELUAlpha  = 1.6732632423543772
	SELULambda = 1.0507009873554805
)

// Activation is an element-wise nonlinearity with an analytic derivative.
type Activation interface {
	// Name identifies the activation for serialization and debugging.
	Name() string
	// Apply computes the activation for a pre-activation value.
	Apply(x float64) float64
	// Derivative computes d act/d x at pre-activation value x.
	Derivative(x float64) float64
}

// SELU is the scaled exponential linear unit.
type SELU struct{}

// Name implements Activation.
func (SELU) Name() string { return "selu" }

// Apply implements Activation.
func (SELU) Apply(x float64) float64 {
	if x > 0 {
		return SELULambda * x
	}
	return SELULambda * SELUAlpha * (math.Exp(x) - 1)
}

// Derivative implements Activation.
func (SELU) Derivative(x float64) float64 {
	if x > 0 {
		return SELULambda
	}
	return SELULambda * SELUAlpha * math.Exp(x)
}

// Tanh is the hyperbolic tangent, used by the last decoder layer to match
// the range of the vectorized properties.
type Tanh struct{}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Apply implements Activation.
func (Tanh) Apply(x float64) float64 { return math.Tanh(x) }

// Derivative implements Activation.
func (Tanh) Derivative(x float64) float64 {
	t := math.Tanh(x)
	return 1 - t*t
}

// ReLU is the rectified linear unit (used by ablation benches).
type ReLU struct{}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Apply implements Activation.
func (ReLU) Apply(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Derivative implements Activation.
func (ReLU) Derivative(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Identity is the no-op activation (linear output layers).
type Identity struct{}

// Name implements Activation.
func (Identity) Name() string { return "identity" }

// Apply implements Activation.
func (Identity) Apply(x float64) float64 { return x }

// Derivative implements Activation.
func (Identity) Derivative(x float64) float64 { return 1 }

// ActivationByName resolves a serialized activation name.
func ActivationByName(name string) Activation {
	switch name {
	case "selu":
		return SELU{}
	case "tanh":
		return Tanh{}
	case "relu":
		return ReLU{}
	case "identity":
		return Identity{}
	default:
		panic("nn: unknown activation " + name)
	}
}

// ActLayer applies an Activation element-wise and caches the
// pre-activation input for the backward pass.
type ActLayer struct {
	Act   Activation
	input *mat.Dense
}

// NewActLayer wraps act as a Layer.
func NewActLayer(act Activation) *ActLayer { return &ActLayer{Act: act} }

// Forward implements Layer. The element loops are specialized per
// concrete activation so the per-element calls devirtualize and inline;
// the results are identical to the generic interface loop.
func (l *ActLayer) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	l.input = x
	out := ws.GetRaw(x.Rows, x.Cols)
	switch act := l.Act.(type) {
	case SELU:
		for i, v := range x.Data {
			out.Data[i] = act.Apply(v)
		}
	case Tanh:
		for i, v := range x.Data {
			out.Data[i] = math.Tanh(v)
		}
	case ReLU:
		for i, v := range x.Data {
			out.Data[i] = act.Apply(v)
		}
	case Identity:
		copy(out.Data, x.Data)
	default:
		for i, v := range x.Data {
			out.Data[i] = l.Act.Apply(v)
		}
	}
	return out
}

// Backward implements Layer.
func (l *ActLayer) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	if l.input == nil {
		panic("nn: ActLayer.Backward before Forward")
	}
	out := ws.GetRaw(grad.Rows, grad.Cols)
	in := l.input.Data
	switch act := l.Act.(type) {
	case SELU:
		for i, g := range grad.Data {
			out.Data[i] = g * act.Derivative(in[i])
		}
	case Tanh:
		for i, g := range grad.Data {
			out.Data[i] = g * act.Derivative(in[i])
		}
	case ReLU:
		for i, g := range grad.Data {
			out.Data[i] = g * act.Derivative(in[i])
		}
	case Identity:
		copy(out.Data, grad.Data)
	default:
		for i, g := range grad.Data {
			out.Data[i] = l.Act.Derivative(in[i]) * g
		}
	}
	return out
}

// Params implements Layer. Activations are parameter-free.
func (l *ActLayer) Params() []*Param { return nil }

// outputDeriv marks activations whose derivative can be computed from
// the activation output instead of the pre-activation input. For
// these, the fused layers cache the (in-place) output only: the
// forward pass saves a workspace buffer and a write stream, and the
// backward pass saves the transcendental re-evaluation the
// input-based Derivative would need (math.Exp for SELU, math.Tanh for
// Tanh — together a double-digit share of a training step).
type outputDeriv interface {
	// DerivFromOutput returns d act/d x given y = act(x).
	DerivFromOutput(y float64) float64
}

// DerivFromOutput implements outputDeriv: for y = selu(x),
// d/dx = lambda when x > 0 (iff y > 0), else lambda*alpha*e^x = y + lambda*alpha.
func (SELU) DerivFromOutput(y float64) float64 {
	if y > 0 {
		return SELULambda
	}
	return y - alphaPrime
}

// DerivFromOutput implements outputDeriv: d tanh/dx = 1 - tanh(x)^2.
func (Tanh) DerivFromOutput(y float64) float64 { return 1 - y*y }

// DerivFromOutput implements outputDeriv: relu passes gradient iff the
// output is positive.
func (ReLU) DerivFromOutput(y float64) float64 {
	if y > 0 {
		return 1
	}
	return 0
}

// fusedBiasActInPlace is the fused forward epilogue of a linear layer
// for output-derivative activations: in one pass it adds the
// (optional) bias row vector and applies the activation, overwriting
// pre with the activated output. Fusing the passes — and needing no
// separate pre-activation buffer — cuts the old
// AddRowVecTo-then-ActLayer pipeline from three passes over two
// buffers to one pass over one. The loops are specialized per concrete
// activation so the per-element calls devirtualize and inline.
func fusedBiasActInPlace(act Activation, pre *mat.Dense, bias []float64) {
	if bias == nil {
		switch a := act.(type) {
		case SELU:
			for i, v := range pre.Data {
				pre.Data[i] = a.Apply(v)
			}
		case Tanh:
			for i, v := range pre.Data {
				pre.Data[i] = math.Tanh(v)
			}
		case ReLU:
			for i, v := range pre.Data {
				pre.Data[i] = a.Apply(v)
			}
		default:
			// Any other outputDeriv activation: interface calls, still
			// fused and in place.
			for i, v := range pre.Data {
				pre.Data[i] = act.Apply(v)
			}
		}
		return
	}
	for r := 0; r < pre.Rows; r++ {
		pr := pre.Row(r)
		switch a := act.(type) {
		case SELU:
			for j, b := range bias {
				pr[j] = a.Apply(pr[j] + b)
			}
		case Tanh:
			for j, b := range bias {
				pr[j] = math.Tanh(pr[j] + b)
			}
		case ReLU:
			for j, b := range bias {
				pr[j] = a.Apply(pr[j] + b)
			}
		default:
			for j, b := range bias {
				pr[j] = act.Apply(pr[j] + b)
			}
		}
	}
}

// fusedActGradFromOut is the fused backward epilogue for
// output-derivative activations: in one pass it computes
// dpre = grad ⊙ act'(out) — with the derivative taken from the cached
// output, avoiding any transcendental re-evaluation — and, when
// biasGrad is non-nil, accumulates the bias gradient column sums in
// the same sweep.
func fusedActGradFromOut(act Activation, grad, out, dpre *mat.Dense, biasGrad []float64) {
	od, _ := act.(outputDeriv) // non-nil on every path that routes here
	if biasGrad == nil {
		o := out.Data
		switch a := act.(type) {
		case SELU:
			for i, g := range grad.Data {
				dpre.Data[i] = g * a.DerivFromOutput(o[i])
			}
		case Tanh:
			for i, g := range grad.Data {
				dpre.Data[i] = g * a.DerivFromOutput(o[i])
			}
		case ReLU:
			for i, g := range grad.Data {
				dpre.Data[i] = g * a.DerivFromOutput(o[i])
			}
		default:
			for i, g := range grad.Data {
				dpre.Data[i] = g * od.DerivFromOutput(o[i])
			}
		}
		return
	}
	for r := 0; r < grad.Rows; r++ {
		gr := grad.Row(r)
		or := out.Row(r)
		dr := dpre.Row(r)
		switch a := act.(type) {
		case SELU:
			for j, g := range gr {
				d := g * a.DerivFromOutput(or[j])
				dr[j] = d
				biasGrad[j] += d
			}
		case Tanh:
			for j, g := range gr {
				d := g * a.DerivFromOutput(or[j])
				dr[j] = d
				biasGrad[j] += d
			}
		case ReLU:
			for j, g := range gr {
				d := g * a.DerivFromOutput(or[j])
				dr[j] = d
				biasGrad[j] += d
			}
		default:
			for j, g := range gr {
				d := g * od.DerivFromOutput(or[j])
				dr[j] = d
				biasGrad[j] += d
			}
		}
	}
}

// fusedBiasAct is the fused forward epilogue for custom activations
// without an output-form derivative: one pass adds the (optional) bias
// row vector into pre — which thereby becomes the cached
// pre-activation — and writes the activation into out. The built-in
// activations never reach it; they take the devirtualized in-place
// path above.
func fusedBiasAct(act Activation, pre, out *mat.Dense, bias []float64) {
	if bias == nil {
		for i, v := range pre.Data {
			out.Data[i] = act.Apply(v)
		}
		return
	}
	for r := 0; r < pre.Rows; r++ {
		pr := pre.Row(r)
		or := out.Row(r)
		for j, b := range bias {
			p := pr[j] + b
			pr[j] = p
			or[j] = act.Apply(p)
		}
	}
}

// fusedActGrad is the fused backward epilogue: in one pass it computes
// dpre = grad ⊙ act'(pre) and, when biasGrad is non-nil, accumulates
// the bias gradient column sums — folding what used to be an ActLayer
// backward pass plus a separate ColSumsAcc sweep into a single loop.
func fusedActGrad(act Activation, grad, pre, dpre *mat.Dense, biasGrad []float64) {
	if biasGrad == nil {
		in := pre.Data
		for i, g := range grad.Data {
			dpre.Data[i] = g * act.Derivative(in[i])
		}
		return
	}
	for r := 0; r < grad.Rows; r++ {
		gr := grad.Row(r)
		pr := pre.Row(r)
		dr := dpre.Row(r)
		for j, g := range gr {
			d := g * act.Derivative(pr[j])
			dr[j] = d
			biasGrad[j] += d
		}
	}
}

// AlphaDropout implements the SELU-compatible dropout of Klambauer et al.:
// dropped units are set to the negative saturation value alpha' and the
// result is affinely transformed to preserve zero mean and unit variance.
type AlphaDropout struct {
	// P is the drop probability.
	P float64
	// Rng provides reproducible masks; required when P > 0.
	Rng *rand.Rand

	mask  []bool
	scale float64
}

// NewAlphaDropout builds an alpha-dropout layer with drop probability p.
func NewAlphaDropout(p float64, rng *rand.Rand) *AlphaDropout {
	return &AlphaDropout{P: p, Rng: rng}
}

// alphaPrime is the negative saturation value of SELU: -lambda*alpha.
const alphaPrime = -SELULambda * SELUAlpha

// Forward implements Layer. Dropout is active only when train is true and
// P > 0; otherwise it is the identity.
func (l *AlphaDropout) Forward(ws *mat.Workspace, x *mat.Dense, train bool) *mat.Dense {
	if !train || l.P <= 0 {
		l.mask = nil
		return x
	}
	q := 1 - l.P
	a := 1 / math.Sqrt(q+alphaPrime*alphaPrime*q*l.P)
	b := -a * l.P * alphaPrime
	l.scale = a
	if cap(l.mask) < len(x.Data) {
		l.mask = make([]bool, len(x.Data))
	}
	l.mask = l.mask[:len(x.Data)]
	out := ws.GetRaw(x.Rows, x.Cols)
	for i, v := range x.Data {
		keep := l.Rng.Float64() < q
		l.mask[i] = keep
		if keep {
			out.Data[i] = a*v + b
		} else {
			out.Data[i] = a*alphaPrime + b
		}
	}
	return out
}

// Backward implements Layer.
func (l *AlphaDropout) Backward(ws *mat.Workspace, grad *mat.Dense) *mat.Dense {
	if l.mask == nil {
		return grad
	}
	out := ws.Get(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		if l.mask[i] {
			out.Data[i] = g * l.scale
		}
	}
	return out
}

// Params implements Layer.
func (l *AlphaDropout) Params() []*Param { return nil }
