package nn

import "math"

// Fast float32 transcendentals for the serving path. The float64
// forward pass spends a double-digit share of its time in math.Exp
// (SELU) — see the serve cold-batch profile — so the quantized path
// replaces it with single-precision polynomial approximations (the
// classic Cephes expf/tanhf minimax fits):
//
//   - exp32: maximum relative error ~2e-7 over [-87, 88] — below one
//     float32 ulp of the subsequent arithmetic, so activation error is
//     indistinguishable from float32 rounding itself.
//   - tanh32: maximum relative error ~1e-7 over the real line.
//
// End-to-end, quantized predictions stay within ~1e-4 relative error
// of the float64 model (dominated by float32 weight rounding, not by
// these approximations); the documented serving bound of 1e-3 is
// pinned by TestQuantizedPredictionAccuracy in core.

// exp32 approximates e^x in float32: range reduction x = n*ln2 + r
// with a two-part ln2 (so r is exact to float32), a degree-5 minimax
// polynomial for e^r on [-ln2/2, ln2/2], and exponent-bit assembly of
// 2^n.
func exp32(x float32) float32 {
	const (
		log2e float32 = 1.44269504088896341
		c1    float32 = 0.693359375    // high part of ln2
		c2    float32 = -2.12194440e-4 // low part of ln2
	)
	if x > 88 {
		return float32(math.Inf(1))
	}
	if x < -87.33655 {
		return 0
	}
	f := log2e*x + 0.5
	n := int32(f)
	if float32(n) > f { // int32() truncates toward zero; we need floor
		n--
	}
	r := x - float32(n)*c1
	r -= float32(n) * c2
	z := r * r
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	y := p*z + r + 1
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// tanh32 approximates tanh(x) in float32: a degree-6 odd minimax
// polynomial below |x| < 0.625, 1 - 2/(e^{2|x|}+1) above.
func tanh32(x float32) float32 {
	z := x
	if z < 0 {
		z = -z
	}
	if z < 0.625 {
		s := x * x
		p := float32(-5.70498872745e-3)
		p = p*s + 2.06390887954e-2
		p = p*s - 5.37397155531e-2
		p = p*s + 1.33314422036e-1
		p = p*s - 3.33332819422e-1
		return p*s*x + x
	}
	r := 1 - 2/(exp32(2*z)+1)
	if x < 0 {
		return -r
	}
	return r
}

// SELU constants pre-rounded to float32 for the serving loops.
const (
	seluLambda32      float32 = SELULambda
	seluLambdaAlpha32 float32 = SELULambda * SELUAlpha
)

// selu32 is the float32 SELU built on exp32.
func selu32(x float32) float32 {
	if x > 0 {
		return seluLambda32 * x
	}
	return seluLambdaAlpha32 * (exp32(x) - 1)
}
