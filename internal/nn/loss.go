package nn

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Loss computes a scalar loss and the gradient of the mean loss with
// respect to the prediction matrix. The gradient buffer comes from the
// caller's workspace (valid until its next Reset); a nil workspace
// allocates.
type Loss interface {
	Name() string
	// Compute returns the mean loss over all elements and dLoss/dPred.
	Compute(ws *mat.Workspace, pred, target *mat.Dense) (float64, *mat.Dense)
}

// MSELoss is the mean squared error, used for the auto-encoder
// reconstruction term of Bellamy's joint objective.
type MSELoss struct{}

// Name implements Loss.
func (MSELoss) Name() string { return "mse" }

// Compute implements Loss.
func (MSELoss) Compute(ws *mat.Workspace, pred, target *mat.Dense) (float64, *mat.Dense) {
	checkLossShapes("mse", pred, target)
	n := float64(len(pred.Data))
	grad := ws.GetRaw(pred.Rows, pred.Cols)
	var sum float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		sum += d * d
		grad.Data[i] = 2 * d / n
	}
	return sum / n, grad
}

// HuberLoss is the Huber (smooth L1) loss used for the runtime term. For
// |d| <= Delta the loss is quadratic, beyond it linear, which damps the
// influence of outlier runtimes.
type HuberLoss struct {
	// Delta is the quadratic-to-linear transition point; PyTorch's
	// SmoothL1 default of 1.0 is used when zero.
	Delta float64
}

// Name implements Loss.
func (HuberLoss) Name() string { return "huber" }

// Compute implements Loss.
func (h HuberLoss) Compute(ws *mat.Workspace, pred, target *mat.Dense) (float64, *mat.Dense) {
	checkLossShapes("huber", pred, target)
	delta := h.Delta
	if delta == 0 {
		delta = 1
	}
	n := float64(len(pred.Data))
	grad := ws.GetRaw(pred.Rows, pred.Cols)
	var sum float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		if math.Abs(d) <= delta {
			sum += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			sum += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad.Data[i] = delta / n
			} else {
				grad.Data[i] = -delta / n
			}
		}
	}
	return sum / n, grad
}

// MAE returns the mean absolute error between pred and target, the metric
// Bellamy's fine-tuning stopping criterion is defined on.
func MAE(pred, target *mat.Dense) float64 {
	checkLossShapes("mae", pred, target)
	if len(pred.Data) == 0 {
		return 0
	}
	var sum float64
	for i, p := range pred.Data {
		sum += math.Abs(p - target.Data[i])
	}
	return sum / float64(len(pred.Data))
}

func checkLossShapes(name string, pred, target *mat.Dense) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: %s loss shape mismatch %dx%d vs %dx%d",
			name, pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
}
