package nn

import (
	"math"

	"repro/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call
	// ZeroGrads afterwards).
	Step(params []*Param)
	// SetLR changes the learning rate (used by schedulers).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// FusedStepper is an Optimizer whose update can fold gradient
// clipping, the parameter update, and gradient zeroing into a single
// sweep per parameter. Relative to the unfused
// ZeroGrads/GradClip/Step sequence it eliminates three full memory
// passes over the gradients per training step: the upfront zeroing
// pass (gradients are re-zeroed as they are consumed), the clip
// rescale pass (the clip factor is applied to each gradient as it is
// read), and one of the two moment-buffer streams (first and second
// moments are interleaved in one buffer). Callers must ensure
// gradients are zero before the next backward pass accumulates — which
// StepClipZero itself guarantees for every following step.
type FusedStepper interface {
	Optimizer
	// StepClipZero rescales gradients so their global L2 norm does not
	// exceed maxNorm (<= 0 disables clipping), applies one update, and
	// leaves every gradient — frozen parameters included — zeroed.
	StepClipZero(params []*Param, maxNorm float64)
}

// Adam implements the Adam optimizer with decoupled weight decay (AdamW
// style), matching the paper's "Adam + weight decay" training setup.
// Frozen parameters are skipped entirely, including their moment state.
// The first and second moment estimates of each parameter live
// interleaved in a single buffer ([m0 v0 m1 v1 ...]): one map lookup
// and one sequential stream per parameter instead of two.
type Adam struct {
	LearningRate float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t     int
	state map[*Param][]float64
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LearningRate: lr,
		Beta1:        0.9,
		Beta2:        0.999,
		Eps:          1e-8,
		WeightDecay:  weightDecay,
		state:        make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	a.step(params, 1, false)
}

// StepClipZero implements FusedStepper.
func (a *Adam) StepClipZero(params []*Param, maxNorm float64) {
	scale := gradClipScale(params, maxNorm)
	a.t++
	a.step(params, scale, true)
}

// step is the single-sweep update: per parameter it reads each
// gradient once (pre-scaled by the clip factor), updates both moments
// in the interleaved state buffer, applies the bias-corrected update
// with decoupled weight decay, and optionally zeroes the gradient in
// the same pass.
func (a *Adam) step(params []*Param, gscale float64, zeroGrads bool) {
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	b1, b2 := a.Beta1, a.Beta2
	lr, wd, eps := a.LearningRate, a.WeightDecay, a.Eps
	for _, p := range params {
		if p.Frozen {
			if zeroGrads {
				p.Grad.Zero()
			}
			continue
		}
		gd := p.Grad.Data
		st, ok := a.state[p]
		if !ok {
			st = make([]float64, 2*len(gd))
			a.state[p] = st
		}
		st = st[: 2*len(gd) : 2*len(gd)]
		vd := p.Value.Data
		for i, g := range gd {
			g *= gscale
			m := b1*st[2*i] + (1-b1)*g
			v := b2*st[2*i+1] + (1-b2)*g*g
			st[2*i] = m
			st[2*i+1] = v
			upd := (m / bc1) / (math.Sqrt(v/bc2) + eps)
			// Decoupled weight decay.
			vd[i] -= lr * (upd + wd*vd[i])
			if zeroGrads {
				gd[i] = 0
			}
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.LearningRate = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.LearningRate }

// ResetState clears the moment estimates, e.g. after re-initializing
// model components for the reset reuse strategies.
func (a *Adam) ResetState() {
	a.t = 0
	a.state = make(map[*Param][]float64)
}

// SGD is plain stochastic gradient descent with optional momentum, kept
// for ablation experiments.
type SGD struct {
	LearningRate float64
	Momentum     float64
	WeightDecay  float64

	vel map[*Param]*mat.Dense
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LearningRate: lr, Momentum: momentum, WeightDecay: weightDecay, vel: make(map[*Param]*mat.Dense)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		vel, ok := s.vel[p]
		if !ok {
			vel = mat.NewDense(p.Value.Rows, p.Value.Cols)
			s.vel[p] = vel
		}
		for i, g := range p.Grad.Data {
			g += s.WeightDecay * p.Value.Data[i]
			vel.Data[i] = s.Momentum*vel.Data[i] + g
			p.Value.Data[i] -= s.LearningRate * vel.Data[i]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.LearningRate = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.LearningRate }

// GradClip rescales gradients so the global L2 norm does not exceed max.
// It guards fine-tuning on tiny sample counts against exploding steps.
// Fused optimizers fold the rescale into their update sweep instead
// (see FusedStepper); GradClip remains for unfused optimizers.
func GradClip(params []*Param, max float64) {
	scale := gradClipScale(params, max)
	if scale == 1 {
		return
	}
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}

// gradClipScale returns the factor that caps the global gradient L2
// norm at max, or 1 when no rescale is needed. The norm is computed
// over every parameter, frozen included, matching GradClip.
func gradClipScale(params []*Param, max float64) float64 {
	if max <= 0 {
		return 1
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= max {
		return 1
	}
	return max / norm
}
