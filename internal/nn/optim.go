package nn

import (
	"math"

	"repro/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (call
	// ZeroGrads afterwards).
	Step(params []*Param)
	// SetLR changes the learning rate (used by schedulers).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// Adam implements the Adam optimizer with decoupled weight decay (AdamW
// style), matching the paper's "Adam + weight decay" training setup.
// Frozen parameters are skipped entirely, including their moment state.
type Adam struct {
	LearningRate float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	t int
	m map[*Param]*mat.Dense
	v map[*Param]*mat.Dense
}

// NewAdam constructs an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LearningRate: lr,
		Beta1:        0.9,
		Beta2:        0.999,
		Eps:          1e-8,
		WeightDecay:  weightDecay,
		m:            make(map[*Param]*mat.Dense),
		v:            make(map[*Param]*mat.Dense),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = mat.NewDense(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = mat.NewDense(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			upd := mhat / (math.Sqrt(vhat) + a.Eps)
			// Decoupled weight decay.
			p.Value.Data[i] -= a.LearningRate * (upd + a.WeightDecay*p.Value.Data[i])
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.LearningRate = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.LearningRate }

// ResetState clears the moment estimates, e.g. after re-initializing
// model components for the reset reuse strategies.
func (a *Adam) ResetState() {
	a.t = 0
	a.m = make(map[*Param]*mat.Dense)
	a.v = make(map[*Param]*mat.Dense)
}

// SGD is plain stochastic gradient descent with optional momentum, kept
// for ablation experiments.
type SGD struct {
	LearningRate float64
	Momentum     float64
	WeightDecay  float64

	vel map[*Param]*mat.Dense
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LearningRate: lr, Momentum: momentum, WeightDecay: weightDecay, vel: make(map[*Param]*mat.Dense)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		vel, ok := s.vel[p]
		if !ok {
			vel = mat.NewDense(p.Value.Rows, p.Value.Cols)
			s.vel[p] = vel
		}
		for i, g := range p.Grad.Data {
			g += s.WeightDecay * p.Value.Data[i]
			vel.Data[i] = s.Momentum*vel.Data[i] + g
			p.Value.Data[i] -= s.LearningRate * vel.Data[i]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.LearningRate = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.LearningRate }

// GradClip rescales gradients so the global L2 norm does not exceed max.
// It guards fine-tuning on tiny sample counts against exploding steps.
func GradClip(params []*Param, max float64) {
	if max <= 0 {
		return
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= max {
		return
	}
	scale := max / norm
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}
