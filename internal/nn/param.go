// Package nn implements the feed-forward neural network substrate used by
// the Bellamy model: linear layers, SELU-family activations, alpha-dropout,
// Huber/MSE losses, Adam with decoupled weight decay, and cyclical
// learning-rate annealing. It replaces the PyTorch stack used in the paper
// with a pure-Go implementation of the same mathematics.
package nn

import (
	"fmt"

	"repro/internal/mat"
)

// Param is a learnable tensor together with its accumulated gradient and a
// freeze flag. Frozen parameters are skipped by optimizers, which is how
// Bellamy's fine-tuning stages keep most of the model fixed.
type Param struct {
	Name   string
	Value  *mat.Dense
	Grad   *mat.Dense
	Frozen bool
}

// NewParam allocates a parameter with a zeroed value and gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: mat.NewDense(rows, cols),
		Grad:  mat.NewDense(rows, cols),
	}
}

// ZeroGrad resets the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// AccumulateGrad adds g to the parameter's gradient.
func (p *Param) AccumulateGrad(g *mat.Dense) {
	if g.Rows != p.Value.Rows || g.Cols != p.Value.Cols {
		panic(fmt.Sprintf("nn: grad shape %dx%d != param %q shape %dx%d",
			g.Rows, g.Cols, p.Name, p.Value.Rows, p.Value.Cols))
	}
	mat.AddInPlace(p.Grad, g)
}

// NumElements returns the number of scalar weights in the parameter.
func (p *Param) NumElements() int { return len(p.Value.Data) }

// ZeroGrads resets the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// Freeze sets the frozen flag on all params.
func Freeze(params []*Param, frozen bool) {
	for _, p := range params {
		p.Frozen = frozen
	}
}

// CountParams returns the total number of scalar weights across params.
func CountParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.NumElements()
	}
	return n
}
