package nn

import (
	"fmt"

	"repro/internal/mat"
)

// Float32 inference network. Training keeps the float64 MLP; when a
// model is published for serving, QuantizeMLP snapshots the trained
// weights into an InferMLP32 — a flat, forward-only network with
// float32 weights, float32 activations (act32.go), and none of the
// backward-pass machinery (no gradients, no caches, no dropout).
// Quantization rounds each weight to the nearest float32 (~6e-8
// relative), which bounds prediction drift far below the model's own
// validation error; the end-to-end bound is pinned in core.

// InferLayer32 is one fused linear+activation inference layer.
type InferLayer32 struct {
	In, Out int
	W       *mat.DenseF32 // In x Out
	Bias    []float32     // nil when the layer has no bias
	Act     Activation    // Identity when the layer is purely linear
}

// InferMLP32 is a float32 feed-forward network.
type InferMLP32 struct {
	Layers []InferLayer32
}

// QuantizeMLP converts a trained float64 MLP into its float32 serving
// form. AlphaDropout layers are dropped (identity at inference);
// standalone ActLayers fold into the preceding linear layer. Layer
// types without an inference mapping are an error rather than a silent
// misprediction.
func QuantizeMLP(m *MLP) (*InferMLP32, error) {
	net := &InferMLP32{Layers: make([]InferLayer32, 0, len(m.Layers))}
	for _, layer := range m.Layers {
		switch l := layer.(type) {
		case *LinearAct:
			net.Layers = append(net.Layers, quantizeLinear(l.In, l.Out, l.W, l.B, l.Act))
		case *Linear:
			net.Layers = append(net.Layers, quantizeLinear(l.In, l.Out, l.W, l.B, Identity{}))
		case *ActLayer:
			n := len(net.Layers)
			if n == 0 {
				return nil, fmt.Errorf("nn: QuantizeMLP: ActLayer with no preceding linear layer")
			}
			prev := &net.Layers[n-1]
			if _, id := prev.Act.(Identity); !id {
				return nil, fmt.Errorf("nn: QuantizeMLP: ActLayer after non-identity activation %s", prev.Act.Name())
			}
			prev.Act = l.Act
		case *AlphaDropout:
			// Identity at inference time.
		default:
			return nil, fmt.Errorf("nn: QuantizeMLP: no float32 inference mapping for layer type %T", layer)
		}
	}
	return net, nil
}

func quantizeLinear(in, out int, w, b *Param, act Activation) InferLayer32 {
	il := InferLayer32{In: in, Out: out, W: mat.QuantizeDense(w.Value), Act: act}
	if b != nil {
		src := b.Value.Row(0)
		il.Bias = make([]float32, len(src))
		for i, v := range src {
			il.Bias[i] = float32(v)
		}
	}
	return il
}

// Forward runs the network on a batch. The returned matrix belongs to
// ws and stays valid until the next ws.Reset; in steady state the pass
// allocates nothing.
func (n *InferMLP32) Forward(ws *mat.WorkspaceF32, x *mat.DenseF32) *mat.DenseF32 {
	for i := range n.Layers {
		l := &n.Layers[i]
		if x.Cols != l.In {
			panic(fmt.Sprintf("nn: InferMLP32 layer %d input cols %d != in %d", i, x.Cols, l.In))
		}
		y := ws.GetRaw(x.Rows, l.Out)
		mat.MulToF32(y, x, l.W)
		biasAct32(l.Act, y, l.Bias)
		x = y
	}
	return x
}

// biasAct32 applies bias then activation in place, devirtualized per
// activation like the float64 fused epilogues: one type switch per
// matrix, tight monomorphic loops inside.
func biasAct32(act Activation, m *mat.DenseF32, bias []float32) {
	data := m.Data
	cols := m.Cols
	switch act.(type) {
	case Identity:
		if bias == nil {
			return
		}
		for r := 0; r < len(data); r += cols {
			row := data[r : r+cols : r+cols]
			for j, bj := range bias {
				row[j] += bj
			}
		}
	case SELU:
		if bias != nil {
			for r := 0; r < len(data); r += cols {
				row := data[r : r+cols : r+cols]
				for j, bj := range bias {
					row[j] += bj
				}
			}
		}
		// Vectorized SELU when the asm kernel family is active; the
		// scalar loop is the portable fallback.
		if mat.Selu32(data, seluLambda32, seluLambdaAlpha32) {
			return
		}
		for i, v := range data {
			data[i] = selu32(v)
		}
	case Tanh:
		if bias == nil {
			for i, v := range data {
				data[i] = tanh32(v)
			}
			return
		}
		for r := 0; r < len(data); r += cols {
			row := data[r : r+cols : r+cols]
			for j, bj := range bias {
				row[j] = tanh32(row[j] + bj)
			}
		}
	case ReLU:
		if bias == nil {
			for i, v := range data {
				if v < 0 {
					data[i] = 0
				}
			}
			return
		}
		for r := 0; r < len(data); r += cols {
			row := data[r : r+cols : r+cols]
			for j, bj := range bias {
				v := row[j] + bj
				if v < 0 {
					v = 0
				}
				row[j] = v
			}
		}
	default:
		// Unknown activation: correctness over speed via the float64
		// scalar Apply.
		for r := 0; r < len(data); r += cols {
			row := data[r : r+cols : r+cols]
			for j := range row {
				v := float64(row[j])
				if bias != nil {
					v += float64(bias[j])
				}
				row[j] = float32(act.Apply(v))
			}
		}
	}
}
