package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// TestFastActivations32 pins the documented error bounds of the float32
// polynomial activations against the float64 library functions.
func TestFastActivations32(t *testing.T) {
	// exp32: ~2e-7 max relative error documented; assert 5e-7 with
	// headroom for the float64 reference's own rounding. The reference
	// is evaluated at the float32-rounded input — rounding x itself
	// perturbs e^x by |x|*ulp, which is input error, not kernel error.
	for x := -87.0; x <= 87.0; x += 0.0137 {
		xf := float32(x)
		got := float64(exp32(xf))
		want := math.Exp(float64(xf))
		if rel := math.Abs(got-want) / want; rel > 5e-7 {
			t.Fatalf("exp32(%v) = %v, want %v (rel err %.3g)", x, got, want, rel)
		}
	}
	if exp32(-100) != 0 {
		t.Fatalf("exp32(-100) = %v, want 0", exp32(-100))
	}
	if !math.IsInf(float64(exp32(200)), 1) {
		t.Fatalf("exp32(200) = %v, want +Inf", exp32(200))
	}

	// tanh32: absolute error bound (tanh saturates, relative error near
	// 0 is dominated by float32 rounding of x itself).
	for x := -12.0; x <= 12.0; x += 0.0071 {
		xf := float32(x)
		got := float64(tanh32(xf))
		want := math.Tanh(float64(xf))
		if d := math.Abs(got - want); d > 4e-7 {
			t.Fatalf("tanh32(%v) = %v, want %v (abs err %.3g)", x, got, want, d)
		}
	}

	// selu32 against the float64 SELU on both branches.
	act := SELU{}
	for x := -20.0; x <= 20.0; x += 0.0093 {
		xf := float32(x)
		got := float64(selu32(xf))
		want := act.Apply(float64(xf))
		if d := math.Abs(got - want); d > 5e-7*(1+math.Abs(want)) {
			t.Fatalf("selu32(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestVectorSeluMatchesScalar pins the AVX2 SELU kernel against the
// scalar selu32 across both branches and every tail length 0..7. The
// asm kernel fuses multiply-adds the scalar path leaves unfused, so
// agreement is to ~2 ulp, not bit-exact.
func TestVectorSeluMatchesScalar(t *testing.T) {
	for n := 1; n <= 37; n++ {
		v := make([]float32, n)
		ref := make([]float32, n)
		for i := range v {
			// Sweep [-12, 12] including exact zero and subnormal-adjacent
			// negatives.
			v[i] = float32(i-n/2) * 24.0 / float32(n)
			ref[i] = selu32(v[i])
		}
		if !mat.Selu32(v, seluLambda32, seluLambdaAlpha32) {
			t.Skip("asm kernel family unavailable on this build/CPU")
		}
		for i := range v {
			got, want := float64(v[i]), float64(ref[i])
			if d := math.Abs(got - want); d > 2e-7*(1+math.Abs(want)) {
				t.Fatalf("n=%d: vselu32[%d](%v) = %v, scalar %v", n, i, float32(i-n/2)*24.0/float32(n), got, want)
			}
		}
	}
}
