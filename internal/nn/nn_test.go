package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// ws is the shared test workspace. Tests in this package run
// sequentially (none call t.Parallel), so sharing one arena is safe and
// exercises the buffer-recycling path across many shapes.
var ws = mat.NewWorkspace()

func TestSELUValues(t *testing.T) {
	s := SELU{}
	if got := s.Apply(1); math.Abs(got-SELULambda) > 1e-12 {
		t.Fatalf("SELU(1) = %v, want lambda", got)
	}
	if got := s.Apply(0); got != 0 {
		t.Fatalf("SELU(0) = %v, want 0", got)
	}
	// As x -> -inf, SELU approaches -lambda*alpha.
	if got := s.Apply(-50); math.Abs(got-alphaPrime) > 1e-9 {
		t.Fatalf("SELU(-50) = %v, want %v", got, alphaPrime)
	}
}

func TestActivationDerivatives(t *testing.T) {
	acts := []Activation{SELU{}, Tanh{}, ReLU{}, Identity{}}
	xs := []float64{-2.3, -0.5, 0.1, 0.9, 3.7}
	const h = 1e-6
	for _, act := range acts {
		for _, x := range xs {
			want := (act.Apply(x+h) - act.Apply(x-h)) / (2 * h)
			got := act.Derivative(x)
			if math.Abs(got-want) > 1e-4 {
				t.Errorf("%s'(%v) = %v, finite-diff %v", act.Name(), x, got, want)
			}
		}
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range []string{"selu", "tanh", "relu", "identity"} {
		if got := ActivationByName(name).Name(); got != name {
			t.Errorf("ActivationByName(%q).Name() = %q", name, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown activation")
		}
	}()
	ActivationByName("gelu")
}

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 3, 5, true, InitHe, rng)
	x := mat.NewDense(4, 3)
	y := l.Forward(ws, x, false)
	if y.Rows != 4 || y.Cols != 5 {
		t.Fatalf("output shape %dx%d, want 4x5", y.Rows, y.Cols)
	}
}

func TestLinearNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("t", 2, 2, false, InitHe, rng)
	if l.B != nil {
		t.Fatal("bias allocated for no-bias layer")
	}
	if got := len(l.Params()); got != 1 {
		t.Fatalf("Params len = %d, want 1", got)
	}
	// Zero input must map to zero output without bias.
	y := l.Forward(ws, mat.NewDense(1, 2), false)
	if y.Data[0] != 0 || y.Data[1] != 0 {
		t.Fatalf("no-bias layer maps 0 to %v", y.Data)
	}
}

// gradCheck compares analytic parameter gradients of a network against
// central finite differences of the loss.
func gradCheck(t *testing.T, net *MLP, x, target *mat.Dense, loss Loss) {
	t.Helper()
	params := net.Params()
	ZeroGrads(params)
	pred := net.Forward(ws, x, false)
	_, g := loss.Compute(ws, pred, target)
	net.Backward(ws, g)

	const h = 1e-5
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp, _ := loss.Compute(ws, net.Forward(ws, x, false), target)
			p.Value.Data[i] = orig - h
			lm, _ := loss.Compute(ws, net.Forward(ws, x, false), target)
			p.Value.Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic grad %v, numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestGradCheckTwoLayerSELU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := TwoLayerSpec{
		Name: "f", In: 3, Hidden: 6, Out: 2,
		ActHidden: SELU{}, ActOut: SELU{}, WithBias: true, Init: InitLeCun,
	}.Build(rng)
	x := randDense(rng, 5, 3)
	target := randDense(rng, 5, 2)
	gradCheck(t, net, x, target, MSELoss{})
}

func TestGradCheckTanhHuber(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := TwoLayerSpec{
		Name: "h", In: 4, Hidden: 8, Out: 4,
		ActHidden: SELU{}, ActOut: Tanh{}, WithBias: false, Init: InitLeCun,
	}.Build(rng)
	x := randDense(rng, 3, 4)
	target := randDense(rng, 3, 4)
	gradCheck(t, net, x, target, HuberLoss{Delta: 1})
}

func TestGradCheckIdentityOut(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := TwoLayerSpec{
		Name: "z", In: 6, Hidden: 4, Out: 1,
		ActHidden: SELU{}, ActOut: Identity{}, WithBias: true, Init: InitHe,
	}.Build(rng)
	x := randDense(rng, 7, 6)
	target := randDense(rng, 7, 1)
	gradCheck(t, net, x, target, HuberLoss{})
}

func TestMSELoss(t *testing.T) {
	pred := mat.FromRows([][]float64{{2}, {4}})
	target := mat.FromRows([][]float64{{1}, {2}})
	l, g := MSELoss{}.Compute(ws, pred, target)
	if math.Abs(l-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("MSE = %v, want 2.5", l)
	}
	if math.Abs(g.Data[0]-1) > 1e-12 || math.Abs(g.Data[1]-2) > 1e-12 {
		t.Fatalf("MSE grad = %v, want [1 2]", g.Data)
	}
}

func TestHuberLossRegions(t *testing.T) {
	h := HuberLoss{Delta: 1}
	pred := mat.FromRows([][]float64{{0.5}, {3}})
	target := mat.FromRows([][]float64{{0}, {0}})
	l, g := h.Compute(ws, pred, target)
	// 0.5*0.25 + 1*(3-0.5) = 0.125 + 2.5 = 2.625; mean = 1.3125
	if math.Abs(l-1.3125) > 1e-12 {
		t.Fatalf("Huber = %v, want 1.3125", l)
	}
	if math.Abs(g.Data[0]-0.25) > 1e-12 { // d/n = 0.5/2
		t.Fatalf("quadratic-region grad = %v, want 0.25", g.Data[0])
	}
	if math.Abs(g.Data[1]-0.5) > 1e-12 { // delta/n = 1/2
		t.Fatalf("linear-region grad = %v, want 0.5", g.Data[1])
	}
}

func TestMAE(t *testing.T) {
	pred := mat.FromRows([][]float64{{1}, {5}})
	target := mat.FromRows([][]float64{{2}, {3}})
	if got := MAE(pred, target); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("MAE = %v, want 1.5", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - c||^2 for a fixed target c.
	p := NewParam("w", 1, 3)
	c := []float64{1.5, -2.0, 0.5}
	opt := NewAdam(0.05, 0)
	for i := 0; i < 2000; i++ {
		p.ZeroGrad()
		for j := range c {
			p.Grad.Data[j] = 2 * (p.Value.Data[j] - c[j])
		}
		opt.Step([]*Param{p})
	}
	for j, want := range c {
		if math.Abs(p.Value.Data[j]-want) > 1e-3 {
			t.Fatalf("w[%d] = %v, want %v", j, p.Value.Data[j], want)
		}
	}
}

func TestAdamSkipsFrozen(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Value.Data[0] = 3
	p.Grad.Data[0] = 1
	p.Frozen = true
	opt := NewAdam(0.1, 0)
	opt.Step([]*Param{p})
	if p.Value.Data[0] != 3 {
		t.Fatalf("frozen param moved to %v", p.Value.Data[0])
	}
}

func TestAdamWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Value.Data[0] = 10
	opt := NewAdam(0.01, 0.1)
	// Zero gradient: only decay acts.
	for i := 0; i < 100; i++ {
		p.ZeroGrad()
		opt.Step([]*Param{p})
	}
	if p.Value.Data[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Value.Data[0])
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Value.Data[0] = 5
	opt := NewSGD(0.05, 0.9, 0)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * p.Value.Data[0]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Value.Data[0]) > 1e-3 {
		t.Fatalf("SGD did not converge: %v", p.Value.Data[0])
	}
}

func TestGradClip(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	GradClip([]*Param{p}, 1)
	if got := mat.Norm2(p.Grad.Data); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", got)
	}
	// Below the threshold nothing changes.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0.1
	GradClip([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Fatalf("grad changed below threshold: %v", p.Grad.Data[0])
	}
}

func TestCyclicalLRBounds(t *testing.T) {
	s := CyclicalLR{Low: 1e-3, High: 1e-2, Period: 100}
	for e := 0; e < 500; e++ {
		r := s.Rate(e)
		if r < 1e-3-1e-15 || r > 1e-2+1e-15 {
			t.Fatalf("epoch %d: rate %v out of bounds", e, r)
		}
	}
	if got := s.Rate(0); math.Abs(got-1e-2) > 1e-15 {
		t.Fatalf("Rate(0) = %v, want High", got)
	}
	if got := s.Rate(50); math.Abs(got-1e-3) > 1e-15 {
		t.Fatalf("Rate(half period) = %v, want Low", got)
	}
}

func TestCosineAnnealingLR(t *testing.T) {
	s := CosineAnnealingLR{Low: 0.001, High: 0.1, Span: 100}
	if got := s.Rate(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Rate(0) = %v, want 0.1", got)
	}
	if got := s.Rate(100); got != 0.001 {
		t.Fatalf("Rate(Span) = %v, want Low", got)
	}
	if s.Rate(25) <= s.Rate(75) {
		t.Fatal("cosine schedule is not decreasing")
	}
}

func TestEarlyStopperTarget(t *testing.T) {
	e := NewEarlyStopper(5, 100)
	if _, stop := e.Observe(0, 10); stop {
		t.Fatal("stopped above target without patience exhaustion")
	}
	if _, stop := e.Observe(1, 4.9); !stop {
		t.Fatal("did not stop at target")
	}
}

func TestEarlyStopperPatience(t *testing.T) {
	e := NewEarlyStopper(0, 3)
	e.Observe(0, 10)
	for i := 1; i < 3; i++ {
		if _, stop := e.Observe(i, 10); stop {
			t.Fatalf("stopped too early at epoch %d", i)
		}
	}
	if _, stop := e.Observe(3, 10); !stop {
		t.Fatal("did not stop after patience exhausted")
	}
	best, epoch := e.Best()
	if best != 10 || epoch != 0 {
		t.Fatalf("Best = (%v, %d), want (10, 0)", best, epoch)
	}
}

func TestEarlyStopperImprovementResets(t *testing.T) {
	e := NewEarlyStopper(0, 3)
	e.Observe(0, 10)
	e.Observe(1, 9) // improvement
	e.Observe(2, 9)
	e.Observe(3, 9)
	if _, stop := e.Observe(4, 9); !stop {
		t.Fatal("did not stop 3 epochs after last improvement")
	}
}

func TestAlphaDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewAlphaDropout(0.5, rng)
	x := randDense(rng, 4, 4)
	y := d.Forward(ws, x, false)
	if !y.Equalish(x, 0) {
		t.Fatal("eval-mode dropout is not identity")
	}
}

func TestAlphaDropoutPreservesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewAlphaDropout(0.1, rng)
	// Standard-normal input; output should stay near zero mean, unit var.
	n := 200000
	x := mat.NewDense(1, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := d.Forward(ws, x, true)
	var mean float64
	for _, v := range y.Data {
		mean += v
	}
	mean /= float64(n)
	var varSum float64
	for _, v := range y.Data {
		varSum += (v - mean) * (v - mean)
	}
	variance := varSum / float64(n)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("alpha-dropout mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("alpha-dropout variance = %v, want ~1", variance)
	}
}

func TestAlphaDropoutBackwardMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewAlphaDropout(0.5, rng)
	x := randDense(rng, 2, 8)
	d.Forward(ws, x, true)
	g := mat.NewDense(2, 8)
	g.Fill(1)
	back := d.Backward(ws, g)
	zeros, scaled := 0, 0
	for _, v := range back.Data {
		switch {
		case v == 0:
			zeros++
		default:
			scaled++
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout backward mask degenerate: zeros=%d scaled=%d", zeros, scaled)
	}
}

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := TwoLayerSpec{
		Name: "f", In: 3, Hidden: 4, Out: 2,
		ActHidden: SELU{}, ActOut: Identity{}, WithBias: true, Init: InitHe,
	}.Build(rng)
	st := CaptureState(net.Params())
	blob, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb then restore.
	for _, p := range net.Params() {
		p.Value.Fill(99)
	}
	if err := RestoreState(net.Params(), st2); err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		if !p.Value.Equalish(st[p.Name], 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
}

func TestRestoreStateMissingParam(t *testing.T) {
	p := NewParam("a", 1, 1)
	if err := RestoreState([]*Param{p}, State{}); err == nil {
		t.Fatal("expected error for missing param")
	}
}

func TestRestoreStateShapeMismatch(t *testing.T) {
	p := NewParam("a", 1, 2)
	s := State{"a": mat.NewDense(2, 2)}
	if err := RestoreState([]*Param{p}, s); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestInitSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, scheme := range []InitScheme{InitHe, InitLeCun, InitXavier} {
		m := mat.NewDense(200, 100)
		InitDense(m, scheme, rng)
		var sum, sq float64
		for _, v := range m.Data {
			sum += v
			sq += v * v
		}
		n := float64(len(m.Data))
		mean := sum / n
		if math.Abs(mean) > 0.01 {
			t.Errorf("%v: mean = %v, want ~0", scheme, mean)
		}
		variance := sq/n - mean*mean
		var want float64
		switch scheme {
		case InitHe:
			want = 2.0 / 200
		case InitLeCun:
			want = 1.0 / 200
		case InitXavier:
			want = 2.0 / (200 + 100) // var of U(-a,a) = a^2/3 = 2/(fanIn+fanOut)
		}
		if math.Abs(variance-want) > want*0.2 {
			t.Errorf("%v: variance = %v, want ~%v", scheme, variance, want)
		}
	}
}

// Property: Huber loss is bounded above by MSE-style quadratic loss and
// nonnegative; gradient magnitude never exceeds delta/n.
func TestQuickHuberProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		pred := randDense(rng, n, 1)
		target := randDense(rng, n, 1)
		h := HuberLoss{Delta: 1}
		l, g := h.Compute(ws, pred, target)
		if l < 0 {
			return false
		}
		for _, gv := range g.Data {
			if math.Abs(gv) > 1.0/float64(n)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a frozen network's forward output is deterministic in eval
// mode regardless of dropout configuration.
func TestQuickEvalDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := TwoLayerSpec{
			Name: "q", In: 3, Hidden: 5, Out: 2,
			ActHidden: SELU{}, ActOut: Identity{}, WithBias: true,
			Dropout: 0.2, Init: InitLeCun,
		}.Build(rng)
		x := randDense(rng, 4, 3)
		a := net.Forward(ws, x, false)
		b := net.Forward(ws, x, false)
		return a.Equalish(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMLPTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := TwoLayerSpec{
		Name: "fit", In: 2, Hidden: 16, Out: 1,
		ActHidden: SELU{}, ActOut: Identity{}, WithBias: true, Init: InitLeCun,
	}.Build(rng)
	// Learn y = x0 + 2*x1.
	x := randDense(rng, 64, 2)
	y := mat.NewDense(64, 1)
	for i := 0; i < 64; i++ {
		y.Data[i] = x.At(i, 0) + 2*x.At(i, 1)
	}
	opt := NewAdam(0.01, 0)
	loss := MSELoss{}
	first, _ := loss.Compute(ws, net.Forward(ws, x, false), y)
	for e := 0; e < 500; e++ {
		ZeroGrads(net.Params())
		pred := net.Forward(ws, x, true)
		_, g := loss.Compute(ws, pred, y)
		net.Backward(ws, g)
		opt.Step(net.Params())
	}
	last, _ := loss.Compute(ws, net.Forward(ws, x, false), y)
	if last > first/10 {
		t.Fatalf("training did not reduce loss: first=%v last=%v", first, last)
	}
}

func randDense(rng *rand.Rand, rows, cols int) *mat.Dense {
	m := mat.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkForwardBackwardTwoLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := TwoLayerSpec{
		Name: "b", In: 40, Hidden: 8, Out: 4,
		ActHidden: SELU{}, ActOut: SELU{}, WithBias: false, Init: InitLeCun,
	}.Build(rng)
	x := randDense(rng, 64, 40)
	target := randDense(rng, 64, 4)
	loss := MSELoss{}
	params := net.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset() // recycle the previous iteration's intermediates
		ZeroGrads(params)
		pred := net.Forward(ws, x, true)
		_, g := loss.Compute(ws, pred, target)
		net.Backward(ws, g)
	}
}
