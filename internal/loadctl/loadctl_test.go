package loadctl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLimiterBurstAndRefill(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 3})
	now := time.Unix(1000, 0)

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("client", now); !ok {
			t.Fatalf("burst request %d denied, want allowed", i)
		}
	}
	ok, retry := l.Allow("client", now)
	if ok {
		t.Fatal("request past burst allowed, want denied")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms] at 10 tokens/s", retry)
	}

	// One token refills after 100ms at 10/s.
	now = now.Add(110 * time.Millisecond)
	if ok, _ := l.Allow("client", now); !ok {
		t.Fatal("request after refill denied, want allowed")
	}
	if ok, _ := l.Allow("client", now); ok {
		t.Fatal("second request after single refill allowed, want denied")
	}

	// Refill never exceeds the burst depth.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("client", now); !ok {
			t.Fatalf("post-idle burst request %d denied, want allowed", i)
		}
	}
	if ok, _ := l.Allow("client", now); ok {
		t.Fatal("post-idle request past burst allowed, want capped at burst")
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1})
	now := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("client a first request denied")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("client a second request allowed, want denied")
	}
	// An exhausted client a must not affect client b.
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("client b denied by client a's exhaustion")
	}
}

func TestLimiterEvictsLRUClient(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, MaxClients: 2})
	now := time.Unix(1000, 0)
	l.Allow("a", now) // a's bucket now empty
	l.Allow("b", now)
	l.Allow("b", now.Add(time.Millisecond)) // b most recently seen
	// c's arrival evicts a (least recently seen).
	l.Allow("c", now.Add(2*time.Millisecond))
	st := l.Stats()
	if st.Clients != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 clients and 1 eviction", st)
	}
	// a returns with a fresh full bucket: forgiven, but bounded memory.
	if ok, _ := l.Allow("a", now.Add(3*time.Millisecond)); !ok {
		t.Fatal("evicted client a denied on return, want fresh bucket")
	}
}

// TestLimiterAllowZeroAlloc pins the warm admit path at zero
// allocations: a limiter in front of the warm predict path must not
// make it allocate.
func TestLimiterAllowZeroAlloc(t *testing.T) {
	l := NewLimiter(LimiterConfig{Rate: 1e9, Burst: 1e9})
	now := time.Unix(1000, 0)
	key := "10.0.0.1"
	l.Allow(key, now)
	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Microsecond)
		l.Allow(key, now)
	})
	if allocs != 0 {
		t.Fatalf("warm Allow allocates %.1f/op, want 0", allocs)
	}
}

func TestGateAdmitsUpToLimitThenQueues(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 2, MaxQueue: 4, MaxWait: time.Second})
	ctx := context.Background()
	if err := g.Acquire(ctx, CostCheap); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(ctx, CostCheap); err != nil {
		t.Fatalf("second acquire: %v", err)
	}

	// Third must queue until a release.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, CostCheap) }()
	select {
	case err := <-done:
		t.Fatalf("third acquire returned %v before any release", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	st := g.Stats()
	if st.Admitted != 2 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want 2 admitted + 1 queued", st)
	}
}

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 2, MaxWait: time.Second})
	ctx := context.Background()
	if err := g.Acquire(ctx, CostCheap); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Fill the queue with two cheap waiters.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- g.Acquire(ctx, CostCheap) }()
	}
	waitForWaiting(t, g, 2)

	// Queue full: the next cheap arrival sheds immediately.
	start := time.Now()
	if err := g.Acquire(ctx, CostCheap); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("shed decision took %v, want immediate", d)
	}

	// Drain: release lets the waiters through one by one.
	g.Release()
	if err := <-errs; err != nil {
		t.Fatalf("first queued acquire: %v", err)
	}
	g.Release()
	if err := <-errs; err != nil {
		t.Fatalf("second queued acquire: %v", err)
	}
}

// TestGateHeavyShedsBeforeCheap: with the queue half full of waiters,
// heavy arrivals shed while cheap arrivals may still queue — expensive
// work degrades first.
func TestGateHeavyShedsBeforeCheap(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: time.Second})
	ctx := context.Background()
	if err := g.Acquire(ctx, CostCheap); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- g.Acquire(ctx, CostCheap) }()
	}
	waitForWaiting(t, g, 2)

	// Heavy queue bound is MaxQueue/2 = 2: already at it, shed.
	if err := g.Acquire(ctx, CostHeavy); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("heavy acquire = %v, want ErrOverloaded", err)
	}
	// A cheap request still has queue room.
	cheap := make(chan error, 1)
	go func() { cheap <- g.Acquire(ctx, CostCheap) }()
	waitForWaiting(t, g, 3)

	for i := 0; i < 3; i++ {
		g.Release()
	}
	if err := <-errs; err != nil {
		t.Fatalf("queued cheap acquire: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("queued cheap acquire: %v", err)
	}
	if err := <-cheap; err != nil {
		t.Fatalf("late cheap acquire: %v", err)
	}
	if st := g.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v, want exactly the heavy request shed", st)
	}
}

func TestGateQueueWaitTimesOut(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: 30 * time.Millisecond})
	ctx := context.Background()
	if err := g.Acquire(ctx, CostCheap); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	start := time.Now()
	if err := g.Acquire(ctx, CostCheap); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire = %v, want ErrOverloaded after MaxWait", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("queued acquire shed after %v, want >= MaxWait", d)
	}
	if st := g.Stats(); st.ShedTimeout != 1 {
		t.Fatalf("stats = %+v, want 1 timeout shed", st)
	}
}

func TestGateHonorsContextWhileQueued(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: time.Minute})
	if err := g.Acquire(context.Background(), CostCheap); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, CostCheap) }()
	waitForWaiting(t, g, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued acquire = %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.ShedCanceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled shed", st)
	}
}

// TestGateFastPathZeroAlloc pins the uncontended acquire/release cycle
// at zero allocations.
func TestGateFastPathZeroAlloc(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 4})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if err := g.Acquire(ctx, CostCheap); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		g.Release()
	})
	if allocs != 0 {
		t.Fatalf("fast-path acquire/release allocates %.1f/op, want 0", allocs)
	}
}

// TestGateConcurrentChurn hammers the gate from many goroutines and
// checks the slot accounting stays consistent (run with -race).
func TestGateConcurrentChurn(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 4, MaxQueue: 8, MaxWait: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				cost := CostCheap
				if i%3 == 0 {
					cost = CostHeavy
				}
				if err := g.Acquire(ctx, cost); err == nil {
					g.Release()
				} else if !errors.Is(err, ErrOverloaded) {
					t.Errorf("worker %d: acquire = %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("after churn: %+v, want empty gate", st)
	}
	if total := st.Admitted + st.Queued; total == 0 {
		t.Fatal("no request was ever admitted")
	}
}

func waitForWaiting(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Stats().Waiting < n {
		if time.Now().After(deadline) {
			t.Fatalf("gate never reached %d waiters (stats %+v)", n, g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCostString(t *testing.T) {
	for c, want := range map[Cost]string{CostCheap: "cheap", CostHeavy: "heavy"} {
		if got := c.String(); got != want {
			t.Fatalf("Cost(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// Example of the intended HTTP wiring: limiter first (headers only),
// then the gate with a cost picked by the route.
func ExampleGate() {
	g := NewGate(GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: time.Millisecond})
	_ = g.Acquire(context.Background(), CostCheap)
	err := g.Acquire(context.Background(), CostHeavy)
	fmt.Println(errors.Is(err, ErrOverloaded))
	// Output: true
}
