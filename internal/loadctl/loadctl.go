// Package loadctl is the overload-protection layer of the serving
// tier: per-client token-bucket rate limiters (bounded key count, LRU
// eviction) and a concurrency-bounded admission gate with a short wait
// queue and cost-aware load shedding. The serve package threads both in
// front of its POST endpoints so a burst of expensive requests — or one
// abusive client — degrades service gracefully (cheap requests keep
// flowing, excess load is answered 429/503 in microseconds) instead of
// collapsing every caller's latency together.
//
// The package is deliberately free of repro-internal dependencies so it
// stays reusable by any HTTP front end; classification of what is
// "cheap" versus "heavy" belongs to the caller.
package loadctl

import "errors"

// ErrOverloaded is returned by Gate.Acquire when a request must be
// shed: the server is at its concurrency bound and the wait queue for
// the request's cost class is full (or the queue wait timed out).
// HTTP layers should answer it with 503 and a Retry-After hint.
var ErrOverloaded = errors.New("loadctl: server overloaded")

// Cost classifies a request for admission. Under saturation the gate
// sheds heavy requests first: they get a shorter wait queue, so the
// remaining capacity drains toward cheap work and the system degrades
// instead of collapsing.
type Cost uint8

const (
	// CostCheap marks requests with small, predictable service times:
	// single predictions against a resident model, observation appends.
	CostCheap Cost = iota
	// CostHeavy marks requests with large or unbounded service times:
	// batch predictions, allocation sweeps, and anything forcing a cold
	// model load.
	CostHeavy
)

func (c Cost) String() string {
	if c == CostHeavy {
		return "heavy"
	}
	return "cheap"
}
