package loadctl

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for LimiterConfig fields left zero.
const (
	DefaultRate       = 500.0
	DefaultMaxClients = 4096
)

// LimiterConfig tunes a Limiter.
type LimiterConfig struct {
	// Rate is the sustained per-client request rate in tokens/second
	// (<= 0: DefaultRate).
	Rate float64
	// Burst is the bucket depth — how many requests a client may send
	// back-to-back after idling (<= 0: 2*Rate, at least 1).
	Burst float64
	// MaxClients bounds the number of tracked client buckets. When a
	// new client would exceed it, the least recently seen bucket is
	// evicted — mirroring the lifecycle package's bounded-key
	// discipline, so a flood of spoofed client keys costs bounded
	// memory (<= 0: DefaultMaxClients).
	MaxClients int
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Rate <= 0 {
		c.Rate = DefaultRate
	}
	if c.Burst <= 0 {
		c.Burst = max(2*c.Rate, 1)
	}
	if c.MaxClients <= 0 {
		c.MaxClients = DefaultMaxClients
	}
	return c
}

// clientBucket is one client's token bucket. Buckets live in an LRU
// list keyed by client, so abusive or spoofed key floods evict idle
// clients instead of growing memory without bound.
type clientBucket struct {
	key    string
	tokens float64
	last   time.Time
}

// LimiterStats is a snapshot of the limiter counters.
type LimiterStats struct {
	// Allowed / Limited count Allow outcomes.
	Allowed, Limited int64
	// Clients is the current tracked-bucket count; Evicted counts
	// buckets dropped by the MaxClients bound.
	Clients int
	Evicted int64
}

// Limiter rate-limits requests per client key with lazily created
// token buckets. Safe for concurrent use. The admit fast path (a
// tracked client with tokens available) performs no allocations, so a
// limiter in front of the warm predict path keeps it allocation-free.
type Limiter struct {
	rate, burst float64
	maxClients  int

	mu      sync.Mutex
	buckets map[string]*list.Element
	lru     *list.List // front = most recently seen

	allowed, limited, evicted atomic.Int64
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{
		rate:       cfg.Rate,
		burst:      cfg.Burst,
		maxClients: cfg.MaxClients,
		buckets:    map[string]*list.Element{},
		lru:        list.New(),
	}
}

// Allow spends one token from key's bucket at time now. When the
// bucket is empty it reports false and how long the client should wait
// before retrying (the time until one token refills) — the HTTP layer
// turns that into a 429 with Retry-After. A brand-new key (or one
// whose bucket was evicted) starts with a full burst allowance.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	el, found := l.buckets[key]
	if !found {
		el = l.insertLocked(key, now)
	}
	b := el.Value.(*clientBucket)
	l.lru.MoveToFront(el)
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		l.mu.Unlock()
		l.allowed.Add(1)
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	l.mu.Unlock()
	l.limited.Add(1)
	return false, wait
}

// insertLocked creates a full bucket for key, evicting the least
// recently seen client when at the bound. An evicted client's next
// request re-creates its bucket at full burst — forgiveness is the
// price of bounded memory, and an attacker cycling fresh keys is still
// capped at MaxClients * Burst outstanding tokens.
func (l *Limiter) insertLocked(key string, now time.Time) *list.Element {
	if l.lru.Len() >= l.maxClients {
		oldest := l.lru.Back()
		victim := oldest.Value.(*clientBucket)
		delete(l.buckets, victim.key)
		l.lru.Remove(oldest)
		l.evicted.Add(1)
	}
	el := l.lru.PushFront(&clientBucket{key: key, tokens: l.burst, last: now})
	l.buckets[key] = el
	return el
}

// Stats snapshots the counters.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	clients := l.lru.Len()
	l.mu.Unlock()
	return LimiterStats{
		Allowed: l.allowed.Load(),
		Limited: l.limited.Load(),
		Clients: clients,
		Evicted: l.evicted.Load(),
	}
}
