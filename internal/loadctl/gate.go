package loadctl

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// Defaults for GateConfig fields left zero.
const (
	DefaultMaxQueue = 64
	DefaultMaxWait  = 100 * time.Millisecond
)

// GateConfig tunes a Gate.
type GateConfig struct {
	// MaxInFlight bounds concurrently admitted requests
	// (<= 0: 4*GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot. Cheap requests may
	// queue up to MaxQueue; heavy requests only up to MaxQueue/2
	// (at least 1), so under saturation heavy work sheds first and the
	// queue drains toward cheap work (<= 0: DefaultMaxQueue).
	MaxQueue int
	// MaxWait bounds how long a queued request waits before it is shed;
	// it also caps how much stale queueing delay a shed response
	// carries (<= 0: DefaultMaxWait).
	MaxWait time.Duration
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	return c
}

// GateStats is a snapshot of the gate counters.
type GateStats struct {
	// Admitted counts acquisitions that got a slot immediately; Queued
	// counts acquisitions that waited in the queue first.
	Admitted, Queued int64
	// ShedQueueFull counts requests rejected because their cost class's
	// queue was full; ShedTimeout counts queued requests that gave up
	// after MaxWait; ShedCanceled counts queued requests abandoned by
	// their context (client disconnect or blown deadline).
	ShedQueueFull, ShedTimeout, ShedCanceled int64
	// InFlight / Waiting are the current occupancy of slots and queue.
	InFlight, Waiting int
	// MeanQueueWait is the average time queued requests waited for a
	// slot (admitted ones only).
	MeanQueueWait time.Duration
}

// Gate is a concurrency-bounded admission gate: at most MaxInFlight
// requests run at once, a short bounded queue absorbs bursts, and
// everything beyond that is shed immediately (ErrOverloaded) so the
// rejection itself costs microseconds, not a queue's worth of latency.
// Heavy requests get half the queue of cheap ones — graceful
// degradation sheds expensive work first. Safe for concurrent use; the
// uncontended Acquire/Release fast path performs no allocations.
type Gate struct {
	slots     chan struct{}
	maxQueue  int64
	heavyMax  int64
	maxWait   time.Duration
	waiting   atomic.Int64
	admitted  atomic.Int64
	queued    atomic.Int64
	shedFull  atomic.Int64
	shedWait  atomic.Int64
	shedCancl atomic.Int64
	waitNS    atomic.Int64
}

// NewGate builds a gate from cfg.
func NewGate(cfg GateConfig) *Gate {
	cfg = cfg.withDefaults()
	return &Gate{
		slots:    make(chan struct{}, cfg.MaxInFlight),
		maxQueue: int64(cfg.MaxQueue),
		heavyMax: max(int64(cfg.MaxQueue)/2, 1),
		maxWait:  cfg.MaxWait,
	}
}

// Acquire admits one request of the given cost, blocking in the
// bounded queue while the gate is saturated. It returns nil once a
// slot is held (pair with Release), ErrOverloaded when the request is
// shed, or ctx.Err() when the caller's context ends while queued. The
// shed decision is immediate when the queue is full; a queued request
// is shed after MaxWait.
func (g *Gate) Acquire(ctx context.Context, cost Cost) error {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	// Saturated: join the cost class's bounded queue or shed now. The
	// shared waiting counter is compared against per-class bounds, so
	// once cheap waiters fill the queue past MaxQueue/2, heavy arrivals
	// shed instantly while cheap ones may still wait.
	limit := g.maxQueue
	if cost == CostHeavy {
		limit = g.heavyMax
	}
	if g.waiting.Add(1) > limit {
		g.waiting.Add(-1)
		g.shedFull.Add(1)
		return ErrOverloaded
	}
	start := time.Now()
	t := time.NewTimer(g.maxWait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.waiting.Add(-1)
		g.queued.Add(1)
		g.waitNS.Add(int64(time.Since(start)))
		return nil
	case <-t.C:
		g.waiting.Add(-1)
		g.shedWait.Add(1)
		return ErrOverloaded
	case <-ctx.Done():
		g.waiting.Add(-1)
		g.shedCancl.Add(1)
		return ctx.Err()
	}
}

// TryAcquire admits one request only if a slot is free right now,
// without queueing. The caller must Release on a true return.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		return false
	}
}

// Release frees the slot held by a successful Acquire/TryAcquire.
func (g *Gate) Release() { <-g.slots }

// Stats snapshots the counters.
func (g *Gate) Stats() GateStats {
	st := GateStats{
		Admitted:      g.admitted.Load(),
		Queued:        g.queued.Load(),
		ShedQueueFull: g.shedFull.Load(),
		ShedTimeout:   g.shedWait.Load(),
		ShedCanceled:  g.shedCancl.Load(),
		InFlight:      len(g.slots),
		Waiting:       int(g.waiting.Load()),
	}
	if st.Queued > 0 {
		st.MeanQueueWait = time.Duration(g.waitNS.Load() / st.Queued)
	}
	return st
}
