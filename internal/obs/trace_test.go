package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if !tr.Clock().IsZero() {
		t.Fatal("nil trace Clock must return zero time")
	}
	tr.Record(StageDecode, -1, time.Time{})
	if tr.ID() != "" || tr.Spans() != nil {
		t.Fatal("nil trace must report empty ID and no spans")
	}
	var tc *Tracer
	if got := tc.StartRequest("abc"); got != nil {
		t.Fatal("nil tracer must not trace")
	}
	tc.Finish(nil)
}

func TestClientIDAlwaysTraced(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 1 << 30})
	for i := 0; i < 10; i++ {
		tr := tc.StartRequest("client-id-7")
		if tr == nil {
			t.Fatal("client-supplied trace ID must always be traced")
		}
		if tr.ID() != "client-id-7" {
			t.Fatalf("ID = %q", tr.ID())
		}
		tc.Finish(tr)
	}
	// Oversized client IDs truncate instead of overflowing.
	tr := tc.StartRequest(strings.Repeat("x", 100))
	if len(tr.ID()) != maxTraceID {
		t.Fatalf("oversized ID len = %d, want %d", len(tr.ID()), maxTraceID)
	}
	tc.Finish(tr)
}

func TestSampling(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 4})
	traced := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if tr := tc.StartRequest(""); tr != nil {
			traced++
			if len(tr.ID()) != traceIDLen {
				t.Fatalf("generated ID %q, want %d hex chars", tr.ID(), traceIDLen)
			}
			tc.Finish(tr)
		}
	}
	// Sampling is probabilistic (p = 1/4 per request): the count is
	// binomial with mean 1000 and stddev ~27, so a [850, 1150] band is
	// ~5.5 sigma on each side — it flakes never, but catches an
	// off-by-a-factor sampling bug immediately.
	if traced < 850 || traced > 1150 {
		t.Fatalf("traced %d of %d at p=1/4, want within [850, 1150]", traced, n)
	}
	sampled, finished := tc.Stats()
	if sampled != int64(traced) || finished != int64(traced) {
		t.Fatalf("Stats = %d, %d, want %d each", sampled, finished, traced)
	}
}

func TestSpanRecording(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.StartRequest("req-1")
	t0 := tr.Clock()
	if t0.IsZero() {
		t.Fatal("live trace Clock must return a real time")
	}
	time.Sleep(2 * time.Millisecond)
	tr.Record(StageDecode, -1, t0)
	t1 := tr.Clock()
	time.Sleep(time.Millisecond)
	tr.Record(StagePredict, 3, t1)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != StageDecode || spans[0].Shard != -1 || spans[0].Dur < time.Millisecond {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != StagePredict || spans[1].Shard != 3 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	if spans[1].Start <= spans[0].Start {
		t.Fatal("span offsets must advance")
	}
	tc.Finish(tr)
}

func TestConcurrentRecordFanOut(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.StartRequest("fan-out")
	var wg sync.WaitGroup
	for shard := 0; shard < 8; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			tr.Record(StageShardRoute, shard, tr.Clock())
		}(shard)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans from 8 concurrent writers, want 8", len(spans))
	}
	seen := map[int]bool{}
	for _, s := range spans {
		if s.Name != StageShardRoute {
			t.Fatalf("span = %+v", s)
		}
		seen[s.Shard] = true
	}
	if len(seen) != 8 {
		t.Fatalf("concurrent writers clobbered slots: %v", seen)
	}
	tc.Finish(tr)
}

func TestSpanOverflowDropsNotGrows(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.StartRequest("overflow")
	for i := 0; i < maxSpans+10; i++ {
		tr.Record(StagePredict, i, tr.Clock())
	}
	if n := len(tr.Spans()); n != maxSpans {
		t.Fatalf("spans = %d, want capped at %d", n, maxSpans)
	}
	tc.Finish(tr)
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	tc := NewTracer(TracerOptions{SlowN: 3})
	// Finish traces with controlled walls by back-dating start.
	for i, ms := range []int{5, 50, 1, 20, 40, 2} {
		tr := tc.StartRequest("t" + string(rune('0'+i)))
		tr.start = time.Now().Add(-time.Duration(ms) * time.Millisecond)
		tr.Record(StagePredict, -1, tr.Clock())
		tc.Finish(tr)
	}
	recs := tc.Slowest()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	// Slowest first: ~50ms, ~40ms, ~20ms.
	if recs[0].Wall < recs[1].Wall || recs[1].Wall < recs[2].Wall {
		t.Fatalf("not sorted slowest-first: %v %v %v", recs[0].Wall, recs[1].Wall, recs[2].Wall)
	}
	if recs[0].ID() != "t1" {
		t.Fatalf("slowest = %q, want t1 (50ms)", recs[0].ID())
	}
	if recs[2].Wall < 15*time.Millisecond {
		t.Fatalf("3rd slowest %v, want the ~20ms trace", recs[2].Wall)
	}
	if recs[0].NSpans != 1 || recs[0].Spans[0].Name != StagePredict {
		t.Fatalf("record lost spans: %+v", recs[0])
	}
}

func TestStartFinishZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	tc := NewTracer(TracerOptions{SampleEvery: 1})
	// Warm the pool.
	tc.Finish(tc.StartRequest(""))
	allocs := testing.AllocsPerRun(200, func() {
		tr := tc.StartRequest("")
		tr.Record(StagePredict, -1, tr.Clock())
		tc.Finish(tr)
	})
	if allocs != 0 {
		t.Fatalf("sampled trace lifecycle allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkTracerUnsampled measures the untraced fast path: the single
// sampling tick every request pays when no trace ID is supplied.
func BenchmarkTracerUnsampled(b *testing.B) {
	t := NewTracer(TracerOptions{SampleEvery: 1 << 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := t.StartRequest("")
		t.Finish(tr)
	}
}

// BenchmarkTracerSampled measures the full traced round trip: pooled
// trace checkout, ID generation, and the slow-ring offer on finish.
func BenchmarkTracerSampled(b *testing.B) {
	t := NewTracer(TracerOptions{SampleEvery: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := t.StartRequest("")
		t.Finish(tr)
	}
}
