package obs

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_requests_total", "Requests.", Labels{"shard": "0"})
	c.Add(7)
	c2 := reg.NewCounter("test_requests_total", "Requests.", Labels{"shard": "1"})
	c2.Inc()
	g := reg.NewGauge("test_inflight", "In flight.", nil)
	g.Set(3)
	reg.RegisterCounterFunc("test_scraped_total", "Func-backed.", nil, func() int64 { return 42 })
	reg.RegisterGaugeFunc("test_ratio", "Func gauge.", nil, func() float64 { return 0.5 })
	h := reg.NewHistogram("test_latency_seconds", "Latency.", Labels{"shard": "0"})
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{shard="0"} 7`,
		`test_requests_total{shard="1"} 1`,
		"# TYPE test_inflight gauge",
		"test_inflight 3",
		"test_scraped_total 42",
		"test_ratio 0.5",
		"# TYPE test_latency_seconds summary",
		`test_latency_seconds{shard="0",quantile="0.5"}`,
		`test_latency_seconds_count{shard="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Exact sum: 30ms in seconds.
	if !strings.Contains(text, `test_latency_seconds_sum{shard="0"} 0.03`) {
		t.Fatalf("exposition missing exact _sum:\n%s", text)
	}
	if n := reg.NumSeries(); n != 6 {
		t.Fatalf("NumSeries = %d, want 6", n)
	}
}

// checkPromText is a minimal exposition-format parser: every
// non-comment line must be `name{labels} value` with a parseable value
// and balanced quotes, and every sample's family must carry TYPE/HELP.
func checkPromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]bool{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("invalid metric type in %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Split metric name+labels from value at the last space.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Count(key, `"`)%2 != 0 || strings.Count(key, "{") != strings.Count(key, "}") {
			t.Fatalf("unbalanced labels in %q", line)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		samples[key] = v
	}
	return samples
}

func TestHandlerServesParseCleanText(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "X.", Labels{"shard": "0"}).Add(5)
	reg.NewHistogram("x_latency_seconds", "L.", nil).Observe(time.Millisecond)
	RegisterRuntimeMetrics(reg)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	res := httptest.NewRecorder()
	reg.Handler().ServeHTTP(res, httptest.NewRequest("GET", "/metrics", nil))
	if ct := res.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples := checkPromText(t, res.Body.String())
	if samples[`x_total{shard="0"}`] != 5 {
		t.Fatalf("samples = %v", samples)
	}
	if samples["go_goroutines"] <= 0 {
		t.Fatal("runtime metrics missing go_goroutines")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "D.", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series must panic at registration")
		}
	}()
	reg.NewCounter("dup_total", "D.", nil)
}

func TestLabelEscaping(t *testing.T) {
	got := renderLabels(Labels{"a": `x"y\z` + "\n"})
	want := `{a="x\"y\\z\n"}`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
}
