// Package obs is the observability substrate of the serving tier: a
// dependency-free metrics registry (counters, gauges, log-linear
// histograms) with Prometheus text exposition, request tracing with
// per-stage spans and a bounded slowest-trace ring, and structured
// logging helpers. Every layer of the system registers its counters
// here; the HTTP tier mounts the registry at GET /metrics and the
// trace ring at GET /v1/debug/slow.
//
// The package deliberately depends only on the standard library — like
// internal/api it is plumbing every layer must be able to import
// (serve, shard, store, loadgen, cmd) without dragging the serving
// stack along. Hot-path cost is one atomic add per counter increment
// and one atomic add pair per histogram observation: metric handles
// are resolved at registration time, so the fast path never touches a
// label map or the registry mutex.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; registration (RegisterCounter) only attaches a name to
// it. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Labels are the dimensions of one metric series, e.g. {"shard": "0"}.
// They are rendered once at registration; the hot path never sees them.
type Labels map[string]string

// renderLabels renders labels in sorted-key order as `{k="v",...}`, or
// "" when empty. Values are escaped per the Prometheus text format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// seriesKind discriminates what backs one registered series.
type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHist
)

// series is one registered (metric family, label set) pair.
type series struct {
	labels    string // rendered label block, "" when unlabeled
	kind      seriesKind
	counter   *Counter
	gauge     *Gauge
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Hist
}

// family groups the series of one metric name, sharing HELP and TYPE.
type family struct {
	name, help string
	typ        string // "counter", "gauge", or "summary"
	series     []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes the mutex; reading a
// registered Counter/Gauge/Hist does not.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register attaches one series to its family, creating the family on
// first use. A family's type is fixed by its first registration;
// re-registering a name under a different type panics — that is a
// wiring bug, not a runtime condition.
func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// RegisterCounter attaches an existing Counter (typically a struct
// field of the component being instrumented) under name+labels.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.register(name, help, "counter", &series{labels: renderLabels(labels), kind: kindCounter, counter: c})
}

// NewCounter creates and registers a Counter.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, labels, c)
	return c
}

// RegisterGauge attaches an existing Gauge under name+labels.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	r.register(name, help, "gauge", &series{labels: renderLabels(labels), kind: kindGauge, gauge: g})
}

// NewGauge creates and registers a Gauge.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, labels, g)
	return g
}

// RegisterCounterFunc exposes a counter whose value is read by fn at
// scrape time — the bridge for components that already keep their own
// atomic counters (loadctl, lifecycle, store) and stay decoupled from
// this package.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, fn func() int64) {
	r.register(name, help, "counter", &series{labels: renderLabels(labels), kind: kindCounterFunc, counterFn: fn})
}

// RegisterGaugeFunc exposes a gauge read by fn at scrape time.
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", &series{labels: renderLabels(labels), kind: kindGaugeFunc, gaugeFn: fn})
}

// RegisterHist attaches an existing Hist under name+labels, exposed as
// a Prometheus summary (quantiles 0.5/0.9/0.99/0.999 plus _sum and
// _count, in seconds). A summary rather than a native histogram: the
// log-linear layout has ~1900 buckets, and shipping all of them per
// scrape buys nothing over server-side quantiles at 1/32 relative
// error.
func (r *Registry) RegisterHist(name, help string, labels Labels, h *Hist) {
	r.register(name, help, "summary", &series{labels: renderLabels(labels), kind: kindHist, hist: h})
}

// NewHistogram creates and registers a Hist.
func (r *Registry) NewHistogram(name, help string, labels Labels) *Hist {
	h := NewHist()
	r.RegisterHist(name, help, labels, h)
	return h
}

// NumSeries reports the number of registered series.
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.fams {
		n += len(f.series)
	}
	return n
}

// summaryQuantiles are the quantiles a Hist exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// WriteText renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, len(order))
	for i, name := range order {
		f := r.fams[name]
		cp := *f
		cp.series = append([]*series(nil), f.series...)
		fams[i] = &cp
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Load())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gauge.Load())
			case kindCounterFunc:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counterFn())
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFn()))
			case kindHist:
				writeSummary(&b, f.name, s.labels, s.hist)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSummary renders one Hist as summary samples in seconds.
func writeSummary(b *strings.Builder, name, labels string, h *Hist) {
	for _, q := range summaryQuantiles {
		v := h.Quantile(q).Seconds()
		qs := strconv.FormatFloat(q, 'g', -1, 64)
		if labels == "" {
			fmt.Fprintf(b, "%s{quantile=%q} %s\n", name, qs, formatFloat(v))
		} else {
			// Splice the quantile label into the existing block.
			fmt.Fprintf(b, "%s%s,quantile=%q} %s\n", name, labels[:len(labels)-1], qs, formatFloat(v))
		}
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler serves the registry as the body of GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
