package obs

import (
	"testing"
	"time"
)

// TestBucketRoundTrip: for representative values across the range,
// bucketValue(bucketIdx(v)) is <= v and within the layout's relative
// error bound.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 100, 1000, 1e6, 1e9, 1e12, 1 << 62}
	for _, v := range values {
		idx := bucketIdx(v)
		lo := bucketValue(idx)
		if lo > v {
			t.Fatalf("bucketValue(bucketIdx(%d)) = %d > input", v, lo)
		}
		if v >= subBuckets {
			// Relative error bounded by 1/subBuckets.
			if float64(v-lo) > float64(v)/float64(subBuckets)+1 {
				t.Fatalf("value %d mapped to bucket floor %d: error too large", v, lo)
			}
		} else if lo != v {
			t.Fatalf("small value %d must be exact, got %d", v, lo)
		}
	}
}

// TestBucketMonotonic: bucket index is non-decreasing in the value and
// bucket floors strictly increase with the index.
func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<16; v += 7 {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	// The final power-of-two row (2^63) overflows int64 floors; real
	// durations (~292y) never reach it, so the sweep stops short.
	for i := 1; i < numBuckets-subBuckets; i++ {
		if bucketValue(i) <= bucketValue(i-1) {
			t.Fatalf("bucketValue not strictly increasing at %d: %d <= %d",
				i, bucketValue(i), bucketValue(i-1))
		}
	}
}

func TestHistSumAndMean(t *testing.T) {
	h := NewHist()
	if h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty hist must report zero sum and mean")
	}
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if got := h.Sum(); got != int64(40*time.Millisecond) {
		t.Fatalf("Sum = %d, want exact 40ms in ns", got)
	}
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want exact 20ms", got)
	}
	// Negative durations clamp to zero rather than corrupting the sum.
	h.Observe(-time.Second)
	if h.Sum() != int64(40*time.Millisecond) || h.Count() != 3 {
		t.Fatalf("negative observe: sum %d count %d", h.Sum(), h.Count())
	}
}

func TestHistMergeCarriesSum(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("Count = %d, want 3", a.Count())
	}
	if got := a.Sum(); got != int64(9*time.Millisecond) {
		t.Fatalf("Sum after merge = %d, want 9ms in ns", got)
	}
}

func TestHistQuantileBounds(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Microsecond || p50 > 550*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500us", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 900*time.Microsecond || p999 > time.Millisecond {
		t.Fatalf("p999 = %v, want ~999us (never over-reporting)", p999)
	}
	if h.Max() > time.Millisecond || h.Max() < 960*time.Microsecond {
		t.Fatalf("Max = %v, want lower bound of the 1ms bucket", h.Max())
	}
}
