package obs

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats snapshots: ReadMemStats stops
// the world, so back-to-back metric reads within one scrape (and
// scrapes arriving faster than maxAge) share a snapshot.
type memReader struct {
	mu     sync.Mutex
	last   time.Time
	stats  runtime.MemStats
	maxAge time.Duration
}

func (m *memReader) read() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.last) > m.maxAge {
		runtime.ReadMemStats(&m.stats)
		m.last = now
	}
	return &m.stats
}

// RegisterRuntimeMetrics exposes Go runtime health on reg: goroutine
// count, heap usage, and cumulative GC pause/cycle counters.
func RegisterRuntimeMetrics(reg *Registry) {
	mr := &memReader{maxAge: time.Second}
	reg.RegisterGaugeFunc("go_goroutines",
		"Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.RegisterGaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.", nil,
		func() float64 { return float64(mr.read().HeapAlloc) })
	reg.RegisterGaugeFunc("go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.", nil,
		func() float64 { return float64(mr.read().HeapSys) })
	reg.RegisterCounterFunc("go_gc_cycles_total",
		"Completed GC cycles.", nil,
		func() int64 { return int64(mr.read().NumGC) })
	reg.RegisterGaugeFunc("go_gc_pause_total_seconds",
		"Cumulative stop-the-world GC pause time.", nil,
		func() float64 { return float64(mr.read().PauseTotalNs) / 1e9 })
}
