package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stage names. Handlers record spans under these so traces
// are comparable across requests and tiers.
const (
	StageRateLimit    = "ratelimit"
	StageDecode       = "decode"
	StageClassify     = "classify"
	StageGateWait     = "gate_wait"
	StageShardRoute   = "shard_route"
	StageRegistryLoad = "registry_load"
	StagePredict      = "predict"
	StageEncode       = "encode"
)

// maxSpans bounds a trace's span storage. The full predict pipeline is
// 8 stages; batch fan-out adds one shard_route span per touched shard,
// so 32 covers any realistic topology. Past the cap spans are dropped,
// never reallocated.
const maxSpans = 32

// traceIDLen is the generated trace ID length (hex characters).
const traceIDLen = 16

// maxTraceID bounds accepted client-supplied X-Trace-Id values; longer
// IDs are truncated rather than allocated for.
const maxTraceID = 32

// Span is one named stage of a traced request. Start is the offset
// from the trace's start; Dur the stage duration. Shard is the shard
// the stage ran on, or -1 when not shard-specific.
type Span struct {
	Name  string
	Shard int
	Start time.Duration
	Dur   time.Duration
}

// Trace accumulates the spans of one request. All methods are safe on
// a nil receiver (the untraced fast path pays only the nil checks) and
// Record is safe for concurrent callers (shard fan-out).
type Trace struct {
	id    [maxTraceID]byte
	idLen int
	start time.Time
	next  atomic.Int32
	spans [maxSpans]Span
}

// ID returns the trace ID, or "" for a nil trace. The string
// materialization allocates; call it only off the hot path (header
// echo, debug rendering).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return string(t.id[:t.idLen])
}

// Clock returns the current time for a live trace and the zero time
// otherwise, so untraced requests skip the clock read entirely:
//
//	t0 := tr.Clock()
//	... stage ...
//	tr.Record(obs.StageDecode, -1, t0)
func (t *Trace) Clock() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Record appends a span for the stage that began at since and ends
// now. No-op on a nil trace or when the span array is full. Concurrent
// Record calls reserve distinct slots atomically.
func (t *Trace) Record(name string, shard int, since time.Time) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	if int(i) >= maxSpans {
		return
	}
	now := time.Now()
	t.spans[i] = Span{Name: name, Shard: shard, Start: since.Sub(t.start), Dur: now.Sub(since)}
}

// Spans returns the recorded spans. Not safe concurrently with Record;
// call after the request completes.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.next.Load())
	if n > maxSpans {
		n = maxSpans
	}
	return t.spans[:n]
}

// TraceRecord is a completed trace snapshot held by the slow ring.
// Value-copied on insert so the ring owns no pointers into pooled
// Trace objects.
type TraceRecord struct {
	id     [maxTraceID]byte
	idLen  int
	At     time.Time
	Wall   time.Duration
	NSpans int
	Spans  [maxSpans]Span
}

// ID returns the recorded trace's ID.
func (r *TraceRecord) ID() string { return string(r.id[:r.idLen]) }

// slowRing keeps the K slowest completed traces. An atomic threshold
// makes the common case (trace faster than the current K-th slowest)
// a single load + compare; only genuinely slow traces take the mutex.
type slowRing struct {
	floor atomic.Int64 // min wall (ns) required to enter, once full
	mu    sync.Mutex
	recs  []TraceRecord // preallocated, len == cap == K
	n     int           // occupied prefix of recs
}

func newSlowRing(k int) *slowRing {
	return &slowRing{recs: make([]TraceRecord, k)}
}

// offer inserts the trace if it ranks among the K slowest. The floor
// stays 0 until the ring fills, so the lock-free reject path only ever
// fires once eviction is actually possible.
func (s *slowRing) offer(t *Trace, wall time.Duration, at time.Time) {
	if int64(wall) <= s.floor.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := -1
	if s.n < len(s.recs) {
		slot = s.n
		s.n++
	} else {
		// Evict the fastest resident.
		fastest := 0
		for i := 1; i < s.n; i++ {
			if s.recs[i].Wall < s.recs[fastest].Wall {
				fastest = i
			}
		}
		if s.recs[fastest].Wall >= wall {
			return
		}
		slot = fastest
	}
	r := &s.recs[slot]
	r.id = t.id
	r.idLen = t.idLen
	r.At = at
	r.Wall = wall
	n := int(t.next.Load())
	if n > maxSpans {
		n = maxSpans
	}
	r.NSpans = n
	r.Spans = t.spans
	if s.n == len(s.recs) {
		floor := s.recs[0].Wall
		for i := 1; i < s.n; i++ {
			if s.recs[i].Wall < floor {
				floor = s.recs[i].Wall
			}
		}
		s.floor.Store(int64(floor))
	}
}

// snapshot returns the resident traces, slowest first.
func (s *slowRing) snapshot() []TraceRecord {
	s.mu.Lock()
	out := make([]TraceRecord, s.n)
	copy(out, s.recs[:s.n])
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Wall > out[j].Wall })
	return out
}

// Tracer samples requests, pools Trace objects, and retains the
// slowest completed traces.
type Tracer struct {
	sampleEvery uint64
	// sampleMask is sampleEvery-1 when sampleEvery is a power of two,
	// letting the untraced fast path mask a random draw instead of
	// dividing by it; 0 selects the modulo fallback.
	sampleMask uint64
	sampled    Counter
	kept       Counter
	pool       sync.Pool
	slow       *slowRing
}

// TracerOptions configure NewTracer.
type TracerOptions struct {
	// SampleEvery traces requests that carry no client trace ID with
	// probability 1/N (<= 0: 64; 1: every request). Client-supplied
	// X-Trace-Id values are always traced.
	SampleEvery int
	// SlowN is how many slowest traces /v1/debug/slow retains
	// (<= 0: 32).
	SlowN int
}

// NewTracer returns a ready tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 64
	}
	if opts.SlowN <= 0 {
		opts.SlowN = 32
	}
	tr := &Tracer{sampleEvery: uint64(opts.SampleEvery), slow: newSlowRing(opts.SlowN)}
	if n := tr.sampleEvery; n&(n-1) == 0 {
		tr.sampleMask = n - 1
	}
	tr.pool.New = func() any { return new(Trace) }
	return tr
}

// StartRequest begins a trace for a request carrying headerID (may be
// empty). A non-empty headerID is always traced; otherwise requests
// are sampled with probability 1/SampleEvery. The draw comes from the
// runtime's per-thread generator, so the untraced fast path touches no
// shared state — unlike an every-Nth atomic tick, whose cacheline
// every request on every core would contend on. Returns nil for
// untraced requests — every downstream Trace method is nil-safe, so
// callers thread the result through unconditionally.
func (t *Tracer) StartRequest(headerID string) *Trace {
	if t == nil {
		return nil
	}
	if headerID == "" && t.sampleEvery > 1 {
		if mask := t.sampleMask; mask != 0 {
			if rand.Uint64()&mask != 0 {
				return nil
			}
		} else if rand.Uint64()%t.sampleEvery != 0 {
			return nil
		}
	}
	t.sampled.Inc()
	tr := t.pool.Get().(*Trace)
	tr.next.Store(0)
	tr.start = time.Now()
	if headerID != "" {
		tr.idLen = copy(tr.id[:], headerID)
	} else {
		tr.idLen = traceIDLen
		const hex = "0123456789abcdef"
		v := rand.Uint64()
		for i := 0; i < traceIDLen; i++ {
			tr.id[i] = hex[v&0xf]
			v >>= 4
		}
	}
	return tr
}

// Finish completes the trace: offers it to the slow ring and returns
// it to the pool. The trace must not be used after Finish. No-op when
// either receiver or trace is nil.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	now := time.Now()
	wall := now.Sub(tr.start)
	t.slow.offer(tr, wall, now)
	t.kept.Inc()
	t.pool.Put(tr)
}

// Slowest returns the retained slowest traces, slowest first.
func (t *Tracer) Slowest() []TraceRecord {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Stats reports tracer counters: traces started and traces completed.
func (t *Tracer) Stats() (sampled, finished int64) {
	if t == nil {
		return 0, 0
	}
	return t.sampled.Load(), t.kept.Load()
}

// RegisterMetrics exposes the tracer's own counters on reg.
func (t *Tracer) RegisterMetrics(reg *Registry, labels Labels) {
	reg.RegisterCounter("bellamy_traces_sampled_total",
		"Requests selected for tracing (client-supplied ID or 1-in-N sample).", labels, &t.sampled)
	reg.RegisterCounter("bellamy_traces_finished_total",
		"Traces completed and offered to the slow ring.", labels, &t.kept)
}
