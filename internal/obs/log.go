package obs

import (
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. level is one of
// "debug", "info", "warn", "error" (default info); format is "json" or
// "text" (default text). Unknown values fall back to the defaults
// rather than erroring — logging must never stop a server from
// starting.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// NopLogger returns a logger that discards everything — the default
// for components whose caller did not wire one.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
