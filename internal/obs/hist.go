package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout: values below 2^subBits nanoseconds are
// exact; above that, each power of two is split into 2^subBits linear
// sub-buckets, bounding the relative quantization error at 1/2^subBits.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Hist is a fixed-size log-linear histogram of durations (HDR-style:
// bounded memory, ~3% relative error at any magnitude). The zero value
// is NOT ready; use NewHist. Safe for concurrent Observe.
type Hist struct {
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]atomic.Int64, numBuckets)}
}

func bucketIdx(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < subBuckets {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	shift := msb - subBits
	return (msb-subBits+1)*subBuckets + int((v>>shift)&(subBuckets-1))
}

// bucketValue is the lower bound of bucket idx, the value Quantile
// reports for ranks landing in it.
func bucketValue(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	b := idx/subBuckets - 1 + subBits
	off := int64(idx % subBuckets)
	return int64(1)<<b + off<<(b-subBits)
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIdx(int64(d))].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.total.Load() }

// Sum reports the exact total of all observed durations in nanoseconds
// (unquantized — summed before bucketing).
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Mean is the exact arithmetic mean of observations, 0 when empty.
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0,1]) as a duration, 0 when
// the histogram is empty. The result is the lower bound of the bucket
// holding the rank, so it never over-reports.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(bucketValue(numBuckets - 1))
}

// Max returns the lower bound of the highest occupied bucket.
func (h *Hist) Max() time.Duration {
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return time.Duration(bucketValue(i))
		}
	}
	return 0
}

// Merge adds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
			h.total.Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
}
