package serve

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

// ModelFileName maps a key to its on-disk name: "<job>_<env>.model", or
// "<job>.model" when the key has no environment.
func ModelFileName(key ModelKey) string {
	if key.Env == "" {
		return key.Job + ".model"
	}
	return key.Job + "_" + key.Env + ".model"
}

// keyPartOK reports whether a job or env name is safe to embed in a
// filename: letters, digits, '.' and '-' only. Underscores are
// excluded because '_' separates job from env in ModelFileName, and
// path characters because keys may originate from untrusted HTTP input.
func keyPartOK(part string) bool {
	for _, r := range part {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
		case r == '.':
			// allowed, but ".." is how traversal starts
			if strings.Contains(part, "..") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// DirLoader returns a Loader that reads models saved by
// core.Model.SaveFile from dir, named per ModelFileName. Keys are
// restricted to [A-Za-z0-9.-] so distinct keys always map to distinct
// files and cannot escape dir.
func DirLoader(dir string) Loader {
	return func(key ModelKey) (*core.Model, error) {
		if key.Job == "" {
			return nil, fmt.Errorf("serve: model key missing job")
		}
		if !keyPartOK(key.Job) || !keyPartOK(key.Env) {
			return nil, fmt.Errorf("serve: invalid model key %q", key)
		}
		return core.LoadFile(filepath.Join(dir, ModelFileName(key)))
	}
}
