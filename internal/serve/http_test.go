package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode
}

func wireRequest(scaleOut, sizeMB int) api.PredictRequest {
	return api.PredictRequest{
		Job:      "sort",
		Env:      "c3o",
		ScaleOut: scaleOut,
		Essential: []api.Property{
			{Name: "dataset_size_mb", Value: fmt.Sprint(sizeMB)},
			{Name: "dataset_characteristics", Value: "uniform"},
			{Name: "job_parameters", Value: "--iterations 100"},
			{Name: "node_type", Value: "m4.xlarge"},
		},
		Optional: []api.Property{
			{Name: "memory_mb", Value: "16384"},
			{Name: "cpu_cores", Value: "4"},
		},
	}
}

func TestHTTPPredict(t *testing.T) {
	srv, _ := newTestServer(t)

	var out api.PredictResponse
	code := postJSON(t, srv.URL+"/v1/predict", wireRequest(4, 10000), &out)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if out.Error != nil || out.RuntimeSec <= 0 {
		t.Fatalf("response = %+v, want positive runtime and no error", out)
	}
	// Second identical call is served from the result cache.
	var cached api.PredictResponse
	postJSON(t, srv.URL+"/v1/predict", wireRequest(4, 10000), &cached)
	if !cached.Cached || cached.RuntimeSec != out.RuntimeSec {
		t.Fatalf("second response = %+v, want cached copy of first", cached)
	}
}

func TestHTTPPredictBatch(t *testing.T) {
	srv, _ := newTestServer(t)

	bad := wireRequest(4, 10000)
	bad.Job = "" // malformed: rejected before it reaches the service
	in := api.BatchRequest{Requests: []api.PredictRequest{
		wireRequest(2, 10000), wireRequest(4, 10000), bad, wireRequest(-3, 10000),
	}}
	var out api.BatchResponse
	if code := postJSON(t, srv.URL+"/v1/predict/batch", in, &out); code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if len(out.Responses) != 4 {
		t.Fatalf("%d responses, want 4", len(out.Responses))
	}
	for _, i := range []int{0, 1} {
		if out.Responses[i].Error != nil || out.Responses[i].RuntimeSec <= 0 {
			t.Fatalf("response %d = %+v, want success", i, out.Responses[i])
		}
	}
	for _, i := range []int{2, 3} {
		if out.Responses[i].Error == nil {
			t.Fatalf("response %d succeeded, want error", i)
		}
	}
}

func TestHTTPBatchTooLarge(t *testing.T) {
	srv, _ := newTestServer(t)
	in := api.BatchRequest{Requests: make([]api.PredictRequest, MaxBatchRequests+1)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/predict/batch", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestHTTPBadJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// recordingObserver accepts observations and exposes fixed lifecycle
// stats, standing in for the lifecycle controller in HTTP tests. A
// positive capacity rejects observations past it with the capacity
// sentinel, like the controller's distinct-key bound.
type recordingObserver struct {
	mu       sync.Mutex
	seen     []float64
	capacity int
}

func (o *recordingObserver) Observe(_ context.Context, key ModelKey, q core.Query, runtimeSec float64) error {
	if runtimeSec <= 0 {
		return fmt.Errorf("observed runtime %v must be positive", runtimeSec)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.capacity > 0 && len(o.seen) >= o.capacity {
		return fmt.Errorf("observer full: %w", ErrObserveCapacity)
	}
	o.seen = append(o.seen, runtimeSec)
	return nil
}

func (o *recordingObserver) LifecycleStats() LifecycleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return LifecycleStats{Observations: int64(len(o.seen))}
}

func wireObservation(scaleOut, sizeMB int, runtime float64) api.ObserveRequest {
	return api.ObserveRequest{PredictRequest: wireRequest(scaleOut, sizeMB), RuntimeSec: runtime}
}

func TestHTTPObserveDisabledWithoutObserver(t *testing.T) {
	srv, _ := newTestServer(t)
	var out api.ObserveResponse
	code := postJSON(t, srv.URL+"/v1/observe", wireObservation(4, 10000, 55), &out)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	if out.Accepted || out.Error == nil {
		t.Fatalf("response = %+v, want rejection with error", out)
	}
}

func TestHTTPObserve(t *testing.T) {
	srv, svc := newTestServer(t)
	obs := &recordingObserver{}
	svc.AttachObserver(obs)

	var out api.ObserveResponse
	code := postJSON(t, srv.URL+"/v1/observe", wireObservation(4, 10000, 55.5), &out)
	if code != http.StatusAccepted || !out.Accepted {
		t.Fatalf("status %d, accepted %v, want 202 accepted", code, out.Accepted)
	}
	if len(obs.seen) != 1 || obs.seen[0] != 55.5 {
		t.Fatalf("observer saw %v, want [55.5]", obs.seen)
	}

	// Invalid observation: rejected by the observer -> 400.
	var rej api.ObserveResponse
	code = postJSON(t, srv.URL+"/v1/observe", wireObservation(4, 10000, -1), &rej)
	if code != http.StatusBadRequest || rej.Accepted {
		t.Fatalf("status %d, accepted %v, want 400 rejection", code, rej.Accepted)
	}
	// Malformed request (missing job): rejected before the observer.
	bad := wireObservation(4, 10000, 10)
	bad.Job = ""
	code = postJSON(t, srv.URL+"/v1/observe", bad, &out)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if len(obs.seen) != 1 {
		t.Fatalf("observer saw %d observations, want 1 (invalid ones filtered)", len(obs.seen))
	}

	// Lifecycle counters surface in /v1/stats once an observer with
	// stats is attached.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var st api.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Lifecycle == nil || st.Lifecycle.Observations != 1 {
		t.Fatalf("stats lifecycle = %+v, want 1 observation", st.Lifecycle)
	}
}

// TestHTTPObserveCapacityIs429: a server-side capacity rejection is a
// retriable 429, not a 400 telling the client its request is bad.
func TestHTTPObserveCapacityIs429(t *testing.T) {
	srv, svc := newTestServer(t)
	svc.AttachObserver(&recordingObserver{capacity: 1})

	var out api.ObserveResponse
	if code := postJSON(t, srv.URL+"/v1/observe", wireObservation(4, 10000, 12), &out); code != http.StatusAccepted {
		t.Fatalf("status %d, want 202", code)
	}
	var rej api.ObserveResponse
	code := postJSON(t, srv.URL+"/v1/observe", wireObservation(6, 10000, 13), &rej)
	if code != http.StatusTooManyRequests || rej.Accepted {
		t.Fatalf("status %d, accepted %v, want 429 rejection", code, rej.Accepted)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	srv, svc := newTestServer(t)

	svc.Predict(context.Background(), ModelKey{Job: "sort", Env: "c3o"}, testQuery(4, 10000))
	svc.Predict(context.Background(), ModelKey{Job: "sort", Env: "c3o"}, testQuery(4, 10000))

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var st api.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Requests != 2 || st.ResultHits != 1 || st.ResultMisses != 1 || st.ModelLoads != 1 {
		t.Fatalf("stats = %+v, want 2 requests, 1 hit, 1 miss, 1 load", st)
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", health.StatusCode)
	}
}
