// Package serve is the prediction-serving layer on top of the Bellamy
// model stack: a model registry that lazily loads serialized models per
// execution context, a bounded result cache that memoizes repeated
// queries, and a Service exposing Predict/PredictBatch plus an HTTP
// JSON endpoint. It turns the library into the concurrent,
// heavy-traffic system the roadmap targets.
package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ModelKey identifies a served model by the (job, environment) context
// it was trained for.
type ModelKey struct {
	Job string
	Env string
}

// String renders the key in the job@env form used for filenames and
// cache keys.
func (k ModelKey) String() string { return k.Job + "@" + k.Env }

// Loader materializes the model for a key, typically by reading a file
// written by core.Model.SaveFile. It is called at most once per key for
// any number of concurrent Get calls (single-flight), and again only
// after a failed load or an eviction.
type Loader func(key ModelKey) (*core.Model, error)

// Model wraps a core.Model with the mutex that makes it safe to serve:
// forward passes cache per-layer state and share the model-owned
// compute workspace, so concurrent inference on the same underlying
// model must be serialized. The workspace is what makes warm inference
// allocation-free: each resident model keeps its own arena of scratch
// matrices, so the batch workers fanning across models never contend
// for buffers and never allocate in steady state.
type Model struct {
	mu sync.Mutex
	m  *core.Model
}

// Predict runs a single query against the underlying model.
func (sm *Model) Predict(q core.Query) (float64, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m.Predict(q.ScaleOut, q.Essential, q.Optional)
}

// PredictBatch runs one forward pass over all queries.
func (sm *Model) PredictBatch(qs []core.Query) ([]float64, error) {
	out := make([]float64, len(qs))
	if err := sm.PredictBatchInto(out, qs); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto runs one forward pass over all queries, writing the
// predictions into dst. Under the model lock the pass reuses the model
// workspace, so a warm call allocates nothing.
func (sm *Model) PredictBatchInto(dst []float64, qs []core.Query) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m.PredictBatchInto(dst, qs)
}

// Validate checks a query against the model configuration without
// touching forward-pass state; it needs no lock.
func (sm *Model) Validate(q core.Query) error { return sm.m.ValidateQuery(q) }

// entry is one registry slot. ready is closed when the load finishes
// (successfully or not), letting concurrent getters wait without
// holding the registry lock.
type entry struct {
	key   ModelKey
	ready chan struct{}
	sm    *Model
	err   error
	elem  *list.Element
}

// RegistryStats is a snapshot of the registry counters.
type RegistryStats struct {
	// Hits counts Get calls that found an entry (including waits on an
	// in-flight load started by another goroutine).
	Hits int64
	// Misses counts Get calls that had to start a load.
	Misses int64
	// Loads counts successful loader invocations.
	Loads int64
	// LoadErrors counts failed loader invocations.
	LoadErrors int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
}

// Registry lazily loads and caches serving models keyed by execution
// context. Loads are deduplicated single-flight style, and the resident
// set is bounded by an LRU policy.
type Registry struct {
	loader Loader
	cap    int

	mu      sync.Mutex
	entries map[ModelKey]*entry
	lru     *list.List // front = most recently used

	hits, misses, loads, loadErrors, evictions atomic.Int64
}

// DefaultModelCap bounds the resident models when no capacity is given.
const DefaultModelCap = 8

// NewRegistry builds a registry over loader holding at most capacity
// models (<= 0 selects DefaultModelCap).
func NewRegistry(loader Loader, capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultModelCap
	}
	return &Registry{
		loader:  loader,
		cap:     capacity,
		entries: map[ModelKey]*entry{},
		lru:     list.New(),
	}
}

// Get returns the serving model for key, loading it on first use. All
// concurrent callers for the same key share one loader invocation. A
// failed load is not cached: the next Get retries.
func (r *Registry) Get(key ModelKey) (*Model, error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.hits.Add(1)
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e.sm, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	for r.lru.Len() > r.cap {
		oldest := r.lru.Back()
		victim := oldest.Value.(*entry)
		r.lru.Remove(oldest)
		delete(r.entries, victim.key)
		r.evictions.Add(1)
	}
	r.mu.Unlock()

	r.misses.Add(1)
	m, err := r.loader(key)
	if err != nil {
		e.err = fmt.Errorf("serve: loading model %s: %w", key, err)
		r.loadErrors.Add(1)
		close(e.ready)
		// Drop the failed entry so a later Get can retry the load.
		r.mu.Lock()
		if cur, ok := r.entries[key]; ok && cur == e {
			r.lru.Remove(e.elem)
			delete(r.entries, key)
		}
		r.mu.Unlock()
		return nil, e.err
	}
	e.sm = &Model{m: m}
	r.loads.Add(1)
	close(e.ready)
	return e.sm, nil
}

// Len reports the number of resident (or loading) models.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Stats snapshots the counters.
func (r *Registry) Stats() RegistryStats {
	return RegistryStats{
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Loads:      r.loads.Load(),
		LoadErrors: r.loadErrors.Load(),
		Evictions:  r.evictions.Load(),
	}
}
