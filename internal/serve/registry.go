// Package serve is the prediction-serving layer on top of the Bellamy
// model stack: a model registry that lazily loads serialized models per
// execution context, a bounded result cache that memoizes repeated
// queries, and a Service exposing Predict/PredictBatch plus an HTTP
// JSON endpoint. It turns the library into the concurrent,
// heavy-traffic system the roadmap targets.
package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ModelKey identifies a served model by the (job, environment) context
// it was trained for.
type ModelKey struct {
	Job string
	Env string
}

// String renders the key in the job@env form used for filenames and
// cache keys.
func (k ModelKey) String() string { return k.Job + "@" + k.Env }

// Loader materializes the model for a key, typically by reading a file
// written by core.Model.SaveFile. It is called at most once per key for
// any number of concurrent Get calls (single-flight), and again only
// after a failed load or an eviction.
type Loader func(key ModelKey) (*core.Model, error)

// VersionedLoader materializes a model together with the version number
// it is published as. A plain Loader always publishes version 1; a
// recovery-aware loader (see CheckpointLoader) returns the version the
// model held when it was checkpointed, so a restarted node's registry
// reports the same generation it crashed with. A returned version of 0
// is normalized to 1.
type VersionedLoader func(key ModelKey) (*core.Model, uint64, error)

// Model wraps a core.Model with the mutex that makes it safe to serve:
// forward passes cache per-layer state and share the model-owned
// compute workspace, so concurrent inference on the same underlying
// model must be serialized. The workspace is what makes warm inference
// allocation-free: each resident model keeps its own arena of scratch
// matrices, so the batch workers fanning across models never contend
// for buffers and never allocate in steady state.
type Model struct {
	mu sync.Mutex
	m  *core.Model
	// im is the quantized float32 serving form of m, built once at
	// publish time (load or swap). When set, all prediction traffic
	// runs through it — the float64 model stays resident only as the
	// clone source for online fine-tuning. Nil when quantization is
	// disabled (Float64Serving) or the model has no f32 mapping.
	im *core.InferModel
}

// newModel wraps a published model version for serving, quantizing the
// weights into the float32 inference form unless disabled. A model that
// cannot be quantized (a layer type with no f32 mapping) falls back to
// float64 serving rather than failing the publish.
func newModel(m *core.Model, quantize bool) *Model {
	sm := &Model{m: m}
	if quantize {
		if im, err := m.Quantize(); err == nil {
			sm.im = im
		}
	}
	return sm
}

// Predict runs a single query against the underlying model.
func (sm *Model) Predict(q core.Query) (float64, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.im != nil {
		return sm.im.Predict(q.ScaleOut, q.Essential, q.Optional)
	}
	return sm.m.Predict(q.ScaleOut, q.Essential, q.Optional)
}

// PredictBatch runs one forward pass over all queries.
func (sm *Model) PredictBatch(qs []core.Query) ([]float64, error) {
	out := make([]float64, len(qs))
	if err := sm.PredictBatchInto(out, qs); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto runs one forward pass over all queries, writing the
// predictions into dst. Under the model lock the pass reuses the model
// workspace, so a warm call allocates nothing.
func (sm *Model) PredictBatchInto(dst []float64, qs []core.Query) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.im != nil {
		return sm.im.PredictBatchInto(dst, qs)
	}
	return sm.m.PredictBatchInto(dst, qs)
}

// Validate checks a query against the model configuration without
// touching forward-pass state; it needs no lock.
func (sm *Model) Validate(q core.Query) error { return sm.m.ValidateQuery(q) }

// Quantized reports whether this model version serves predictions
// through the float32 inference path.
func (sm *Model) Quantized() bool { return sm.im != nil }

// Pretrained implements allocate.SupportReporter.
func (sm *Model) Pretrained() bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m.Pretrained()
}

// FinetuneSamples implements allocate.SupportReporter: the fine-tune
// support of the resident model version. A version installed by the
// online lifecycle carries the sample count of the fine-tune that
// produced it; a version loaded from disk carries whatever support was
// serialized with it (0 for a purely pre-trained model).
func (sm *Model) FinetuneSamples() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m.FinetuneSamples()
}

// CloneCore deep-copies the underlying model under the serving lock, so
// online fine-tuning can adapt a private copy while this model keeps
// serving. The clone gets its own (empty) workspace; only weights and
// scalers are copied.
func (sm *Model) CloneCore() (*core.Model, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.m.Clone()
}

// versioned is one published model version. Get reads it through an
// atomic pointer, so a hot-swap never blocks serving: in-flight
// predictions keep the *Model they already hold and finish on the old
// version while new Gets pick up the replacement.
type versioned struct {
	version uint64
	sm      *Model
}

// entry is one registry slot. ready is closed when the load finishes
// (successfully or not), letting concurrent getters wait without
// holding the registry lock. gen identifies this residency: an entry
// created by a later reload (after eviction or a failed load) carries a
// different generation, which is what lets Swap refuse to resurrect
// weights derived from an evicted version.
type entry struct {
	key   ModelKey
	gen   uint64
	ready chan struct{}
	slot  atomic.Pointer[versioned]
	err   error
	elem  *list.Element
}

// RegistryStats is a snapshot of the registry counters.
type RegistryStats struct {
	// Hits counts Get calls that found an entry (including waits on an
	// in-flight load started by another goroutine).
	Hits int64
	// Misses counts Get calls that had to start a load.
	Misses int64
	// Loads counts successful loader invocations.
	Loads int64
	// LoadErrors counts failed loader invocations.
	LoadErrors int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Swaps counts successful hot-swaps of a new model version.
	Swaps int64
	// SwapsSkipped counts Swap calls refused because the target
	// generation was no longer resident (evicted or reloaded).
	SwapsSkipped int64
}

// Registry lazily loads and caches serving models keyed by execution
// context. Loads are deduplicated single-flight style, and the resident
// set is bounded by an LRU policy.
type Registry struct {
	loader  Loader
	vloader VersionedLoader // when set, replaces loader on the load path
	cap     int
	// quantize controls whether published versions get a float32
	// serving form (the default); see SetFloat64Serving.
	quantize bool

	mu      sync.Mutex
	entries map[ModelKey]*entry
	lru     *list.List // front = most recently used

	genCounter atomic.Uint64

	hits, misses, loads, loadErrors, evictions atomic.Int64
	swaps, swapsSkipped                        atomic.Int64
}

// DefaultModelCap bounds the resident models when no capacity is given.
const DefaultModelCap = 8

// NewRegistry builds a registry over loader holding at most capacity
// models (<= 0 selects DefaultModelCap).
func NewRegistry(loader Loader, capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultModelCap
	}
	return &Registry{
		loader:   loader,
		cap:      capacity,
		quantize: true,
		entries:  map[ModelKey]*entry{},
		lru:      list.New(),
	}
}

// SetFloat64Serving disables (or re-enables) float32 quantization of
// published model versions, keeping inference in full float64. Set it
// before serving traffic; it affects models published afterwards, not
// already-resident versions.
func (r *Registry) SetFloat64Serving(f64 bool) { r.quantize = !f64 }

// SetVersionedLoader replaces the registry's load path with a loader
// that also dictates the published version of each loaded model. Set it
// before serving traffic (it is not synchronized against in-flight
// loads); the serve startup path uses it to restore checkpointed model
// versions after a restart.
func (r *Registry) SetVersionedLoader(vl VersionedLoader) { r.vloader = vl }

// Get returns the serving model for key, loading it on first use. All
// concurrent callers for the same key share one loader invocation. A
// failed load is not cached: the next Get retries. A caller whose ctx
// ends while waiting on another goroutine's in-flight load abandons
// the wait (the load itself continues for the surviving callers).
func (r *Registry) Get(ctx context.Context, key ModelKey) (*Model, error) {
	ref, err := r.GetRef(ctx, key)
	if err != nil {
		return nil, err
	}
	return ref.Model, nil
}

// Ref is a stable reference to one resident model version: the model
// itself, the version it was published as, and the generation of its
// registry slot. Gen is the swap token — a fine-tune started from this
// reference passes it to Swap, which refuses the install if the slot
// has since been evicted or reloaded.
type Ref struct {
	Model   *Model
	Version uint64
	Gen     uint64
}

// GetRef is Get plus the version/generation coordinates of the returned
// model, for callers (the lifecycle controller) that later want to
// Swap a derived model back in.
func (r *Registry) GetRef(ctx context.Context, key ModelKey) (Ref, error) {
	// A request that has already blown its deadline must not start (or
	// wait for) a model load.
	if err := ctx.Err(); err != nil {
		return Ref{}, err
	}
	e, loaded := r.acquire(key)
	if loaded {
		select {
		case <-e.ready:
		case <-ctx.Done():
			// The single-flight load honors cancellation for waiters:
			// this caller abandons the wait; the owning goroutine keeps
			// loading so other callers (and the next request) still get
			// the model.
			return Ref{}, ctx.Err()
		}
		if e.err != nil {
			return Ref{}, e.err
		}
		v := e.slot.Load()
		return Ref{Model: v.sm, Version: v.version, Gen: e.gen}, nil
	}

	var m *core.Model
	var version uint64 = 1
	var err error
	if r.vloader != nil {
		m, version, err = r.vloader(key)
		if version == 0 {
			version = 1
		}
	} else {
		m, err = r.loader(key)
	}
	if err != nil {
		e.err = fmt.Errorf("serve: loading model %s: %w", key, err)
		r.loadErrors.Add(1)
		close(e.ready)
		// Drop the failed entry so a later Get can retry the load.
		r.mu.Lock()
		if cur, ok := r.entries[key]; ok && cur == e {
			r.lru.Remove(e.elem)
			delete(r.entries, key)
		}
		r.mu.Unlock()
		return Ref{}, e.err
	}
	v := &versioned{version: version, sm: newModel(m, r.quantize)}
	e.slot.Store(v)
	r.loads.Add(1)
	close(e.ready)
	return Ref{Model: v.sm, Version: v.version, Gen: e.gen}, nil
}

// acquire returns the entry for key, creating (and LRU-bounding) it
// when absent. The boolean reports whether the entry already existed;
// a false return means the caller owns the load.
func (r *Registry) acquire(key ModelKey) (*entry, bool) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.hits.Add(1)
		return e, true
	}
	e := &entry{key: key, gen: r.genCounter.Add(1), ready: make(chan struct{})}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	for r.lru.Len() > r.cap {
		oldest := r.lru.Back()
		victim := oldest.Value.(*entry)
		r.lru.Remove(oldest)
		delete(r.entries, victim.key)
		r.evictions.Add(1)
	}
	r.mu.Unlock()
	r.misses.Add(1)
	return e, false
}

// Swap atomically publishes m as the next version of key's slot,
// provided the slot still holds the generation the caller derived m
// from. It returns the new version number and whether the install
// happened. A false return means the original residency is gone —
// evicted, or reloaded after eviction — and the derived model must be
// dropped: installing it would resurrect weights whose base version
// the registry already discarded. In-flight predictions holding the
// previous *Model finish on it undisturbed.
func (r *Registry) Swap(key ModelKey, gen uint64, m *core.Model) (uint64, bool) {
	sm := newModel(m, r.quantize)
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok || e.gen != gen {
		r.mu.Unlock()
		r.swapsSkipped.Add(1)
		return 0, false
	}
	cur := e.slot.Load()
	if cur == nil {
		// Load still in flight: gen tokens come from completed GetRef
		// calls, so this entry is a different (reloading) residency.
		r.mu.Unlock()
		r.swapsSkipped.Add(1)
		return 0, false
	}
	next := &versioned{version: cur.version + 1, sm: sm}
	e.slot.Store(next)
	r.lru.MoveToFront(e.elem)
	r.mu.Unlock()
	r.swaps.Add(1)
	return next.version, true
}

// Publish installs m as key's model at an explicit version, creating
// the slot when absent. It is the replication install path: versions
// arrive from a peer's registry, and the install is refused (false)
// unless the incoming version is strictly newer than the resident one
// — applying the rule that makes swap propagation convergent: a
// replica never applies a version older than (or equal to) the one it
// holds, so replays, reorderings, and duplicate deliveries are all
// no-ops. A slot with a load still in flight is left alone; the
// version comparison happens against whatever that load publishes, on
// the next delivery.
func (r *Registry) Publish(key ModelKey, version uint64, m *core.Model) bool {
	sm := newModel(m, r.quantize)
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		cur := e.slot.Load()
		if cur == nil || cur.version >= version {
			r.mu.Unlock()
			r.swapsSkipped.Add(1)
			return false
		}
		e.slot.Store(&versioned{version: version, sm: sm})
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		r.swaps.Add(1)
		return true
	}
	e := &entry{key: key, gen: r.genCounter.Add(1), ready: make(chan struct{})}
	e.slot.Store(&versioned{version: version, sm: sm})
	close(e.ready) // born resident: getters never wait on this slot
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	for r.lru.Len() > r.cap {
		oldest := r.lru.Back()
		victim := oldest.Value.(*entry)
		r.lru.Remove(oldest)
		delete(r.entries, victim.key)
		r.evictions.Add(1)
	}
	r.mu.Unlock()
	r.swaps.Add(1)
	return true
}

// ResidentVersions snapshots the (key, version) pairs of every fully
// published resident model, the state a replicator pushes to a newly
// connected peer. Slots with loads still in flight are skipped.
func (r *Registry) ResidentVersions() map[ModelKey]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ModelKey]uint64, len(r.entries))
	for key, e := range r.entries {
		if v := e.slot.Load(); v != nil {
			out[key] = v.version
		}
	}
	return out
}

// Resident reports whether key's model is resident (or at least has a
// load in flight), i.e. whether a Get would be a cheap cache hit or an
// expensive cold load. The admission layer uses it to classify single
// predictions without perturbing the LRU order.
func (r *Registry) Resident(key ModelKey) bool {
	r.mu.Lock()
	_, ok := r.entries[key]
	r.mu.Unlock()
	return ok
}

// Version reports the currently published version of key, or false
// when the key is not resident (or still loading).
func (r *Registry) Version(key ModelKey) (uint64, bool) {
	r.mu.Lock()
	e, ok := r.entries[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	v := e.slot.Load()
	if v == nil {
		return 0, false
	}
	return v.version, true
}

// Len reports the number of resident (or loading) models.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Stats snapshots the counters.
func (r *Registry) Stats() RegistryStats {
	return RegistryStats{
		Hits:         r.hits.Load(),
		Misses:       r.misses.Load(),
		Loads:        r.loads.Load(),
		LoadErrors:   r.loadErrors.Load(),
		Evictions:    r.evictions.Load(),
		Swaps:        r.swaps.Load(),
		SwapsSkipped: r.swapsSkipped.Load(),
	}
}
