package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/loadgen"
)

// newServerWith builds an HTTP test server over a custom loader with
// load control attached.
func newServerWith(t testing.TB, loader Loader, opts Options, lc LoadControl) (*httptest.Server, *Service) {
	t.Helper()
	svc := NewService(loader, opts)
	svc.AttachLoadControl(lc)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

// postRaw sends bytes and returns the response (body fully read).
func postRaw(t testing.TB, url string, body []byte, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

var postRoutes = []string{"/v1/predict", "/v1/predict/batch", "/v1/allocate", "/v1/observe"}

// TestHTTPOversizedBodyIs413: a body past maxBodyBytes answers 413 on
// every POST route, instead of a misleading 400 or an unbounded read.
func TestHTTPOversizedBodyIs413(t *testing.T) {
	srv, _ := newTestServer(t)
	// Valid JSON prefix so the decoder keeps reading the giant string
	// value until MaxBytesReader cuts it off.
	body := append([]byte(`{"job":"`), bytes.Repeat([]byte("a"), MaxBodyBytes+16)...)
	body = append(body, '"', '}')
	for _, route := range postRoutes {
		resp, raw := postRaw(t, srv.URL+route, body, nil)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", route, resp.StatusCode)
		}
		if e := decodeEnvelope(t, raw); e.Code != api.CodePayloadTooLarge {
			t.Fatalf("%s: body %q, want envelope code %q", route, raw, api.CodePayloadTooLarge)
		}
	}
}

// TestHTTPMalformedJSONDoesNotEchoBody: a malformed body answers 400
// with a generic decode error — request contents (which may hold
// credentials or internal names) never reflect back to the client.
func TestHTTPMalformedJSONDoesNotEchoBody(t *testing.T) {
	srv, _ := newTestServer(t)
	body := []byte(`{"job": SECRET_TOKEN_XYZ}`)
	for _, route := range postRoutes {
		resp, raw := postRaw(t, srv.URL+route, body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", route, resp.StatusCode)
		}
		if strings.Contains(string(raw), "SECRET_TOKEN_XYZ") {
			t.Fatalf("%s: response %q echoes the request body", route, raw)
		}
		if e := decodeEnvelope(t, raw); e.Code != api.CodeBadRequest {
			t.Fatalf("%s: body %q, want envelope code %q", route, raw, api.CodeBadRequest)
		}
	}
}

// TestHealthzDrainingNotReady: /healthz flips to 503 once the service
// drains, so load balancers stop routing to a shutting-down node.
func TestHealthzDrainingNotReady(t *testing.T) {
	srv, svc := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d, want 200", resp.StatusCode)
	}
	svc.SetDraining(true)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
	svc.SetDraining(false)
}

// TestHTTPRateLimited429: past the per-client burst the server answers
// 429 with a Retry-After hint, and a different client identity is not
// affected.
func TestHTTPRateLimited429(t *testing.T) {
	srv, svc := newTestServer(t)
	svc.AttachLoadControl(LoadControl{
		Limiter: loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 0.001, Burst: 2}),
	})
	body, _ := json.Marshal(wireRequest(4, 10000))
	for i := 0; i < 2; i++ {
		resp, raw := postRaw(t, srv.URL+"/v1/predict", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s), want 200", i, resp.StatusCode, raw)
		}
	}
	resp, raw := postRaw(t, srv.URL+"/v1/predict", body, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 past the burst", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeRateLimited || e.RetryAfterMs <= 0 {
		t.Fatalf("429 body %q, want envelope code %q with a retry hint", raw, api.CodeRateLimited)
	}
	// Another client (distinct API key) has its own bucket.
	resp, _ = postRaw(t, srv.URL+"/v1/predict", body, map[string]string{ClientKeyHeader: "other-client"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client status %d, want 200", resp.StatusCode)
	}
	st := svc.Stats()
	if st.LoadCtl == nil || st.LoadCtl.RateLimited != 1 || st.LoadCtl.Clients != 2 {
		t.Fatalf("loadctl stats = %+v, want 1 limited across 2 clients", st.LoadCtl)
	}
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPGateSheds503: with the only slot held and the queue full,
// the next arrival is answered 503 + Retry-After immediately — the
// rejection costs microseconds, not a queue timeout.
func TestHTTPGateSheds503(t *testing.T) {
	cl := &countingLoader{t: t}
	block := make(chan struct{})
	loader := func(key ModelKey) (*core.Model, error) {
		<-block
		return cl.load(key)
	}
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 5 * time.Second})
	srv, svc := newServerWith(t, loader, Options{}, LoadControl{Gate: gate})

	body, _ := json.Marshal(wireRequest(2, 10000))
	codes := make(chan int, 2)
	post := func() {
		resp, _ := postRaw(t, srv.URL+"/v1/predict", body, nil)
		codes <- resp.StatusCode
	}
	go post() // holds the slot, blocked in the model load
	waitUntil(t, "slot held", func() bool { return gate.Stats().InFlight == 1 })
	go post() // cold predict: heavy, queue bound is max(1/2,1)=1 -> queues
	waitUntil(t, "one waiter queued", func() bool { return gate.Stats().Waiting == 1 })

	start := time.Now()
	resp, raw := postRaw(t, srv.URL+"/v1/predict", body, nil)
	shedLatency := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 with slot and queue full", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if shedLatency > time.Second {
		t.Fatalf("shed took %v, want an immediate rejection", shedLatency)
	}

	close(block) // let the held and queued requests finish
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d, want 200", i, code)
		}
	}
	if st := svc.Stats(); st.LoadCtl.ShedQueueFull != 1 || st.LoadCtl.Queued != 1 {
		t.Fatalf("loadctl stats = %+v, want 1 shed + 1 queued", st.LoadCtl)
	}
}

// TestHTTPDeadline504: a request whose X-Deadline-Ms budget runs out
// while it waits on another caller's in-flight model load abandons the
// wait and answers 504; the load itself survives for the owner.
func TestHTTPDeadline504(t *testing.T) {
	cl := &countingLoader{t: t}
	block := make(chan struct{})
	var loading atomic.Bool
	loader := func(key ModelKey) (*core.Model, error) {
		loading.Store(true)
		<-block
		return cl.load(key)
	}
	svc := NewService(loader, Options{})
	svc.AttachLoadControl(LoadControl{}) // deadline handling only
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(wireRequest(2, 10000))
	ownerCode := make(chan int, 1)
	go func() {
		resp, _ := postRaw(t, srv.URL+"/v1/predict", body, nil)
		ownerCode <- resp.StatusCode
	}()
	waitUntil(t, "owner inside the loader", loading.Load)

	start := time.Now()
	resp, raw := postRaw(t, srv.URL+"/v1/predict", body, map[string]string{DeadlineHeader: "60"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504 after the 60ms budget", resp.StatusCode, raw)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("504 took %v, want roughly the 60ms budget", d)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeDeadlineExceeded {
		t.Fatalf("504 body %q, want envelope code %q", raw, api.CodeDeadlineExceeded)
	}

	close(block)
	if code := <-ownerCode; code != http.StatusOK {
		t.Fatalf("owner finished with %d, want 200 (load must survive the waiter's deadline)", code)
	}
	if st := svc.Stats(); st.LoadCtl.DeadlineRejects != 1 {
		t.Fatalf("loadctl stats = %+v, want 1 deadline reject", st.LoadCtl)
	}
}

// TestHTTPCachedPredictBypassesSaturatedGate: with every gate slot
// taken by expensive work, memoized predictions still flow — the
// graceful-degradation property the bypass exists for.
func TestHTTPCachedPredictBypassesSaturatedGate(t *testing.T) {
	cl := &countingLoader{t: t}
	block := make(chan struct{})
	loader := func(key ModelKey) (*core.Model, error) {
		if key.Job == "grep" {
			<-block
		}
		return cl.load(key)
	}
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 5 * time.Second})
	srv, svc := newServerWith(t, loader, Options{}, LoadControl{Gate: gate})

	// Warm one query into the result cache while the gate is idle.
	warm, _ := json.Marshal(wireRequest(2, 10000))
	if resp, raw := postRaw(t, srv.URL+"/v1/predict", warm, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming predict: %d (%s)", resp.StatusCode, raw)
	}

	// Saturate the gate with an expensive cold load.
	heavy := wireRequest(2, 10000)
	heavy.Job = "grep"
	heavyBody, _ := json.Marshal(heavy)
	heavyCode := make(chan int, 1)
	go func() {
		resp, _ := postRaw(t, srv.URL+"/v1/predict", heavyBody, nil)
		heavyCode <- resp.StatusCode
	}()
	waitUntil(t, "gate saturated", func() bool { return gate.Stats().InFlight == 1 })

	start := time.Now()
	resp, raw := postRaw(t, srv.URL+"/v1/predict", warm, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached predict under saturation: %d (%s), want 200", resp.StatusCode, raw)
	}
	var out api.PredictResponse
	if err := json.Unmarshal(raw, &out); err != nil || !out.Cached {
		t.Fatalf("response %q, want a cache hit", raw)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cached predict took %v under saturation, want fast bypass", d)
	}
	close(block)
	if code := <-heavyCode; code != http.StatusOK {
		t.Fatalf("heavy request finished with %d, want 200", code)
	}
	if st := svc.Stats(); st.LoadCtl.GateBypassed == 0 {
		t.Fatalf("loadctl stats = %+v, want bypassed > 0", st.LoadCtl)
	}
}

// TestHTTPStatsIncludesLoadCtl: the loadctl counters surface in
// /v1/stats once load control is attached.
func TestHTTPStatsIncludesLoadCtl(t *testing.T) {
	cl := &countingLoader{t: t}
	srv, _ := newServerWith(t, cl.load, Options{}, LoadControl{
		Limiter: loadctl.NewLimiter(loadctl.LimiterConfig{}),
		Gate:    loadctl.NewGate(loadctl.GateConfig{}),
	})
	body, _ := json.Marshal(wireRequest(4, 10000))
	if resp, raw := postRaw(t, srv.URL+"/v1/predict", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d (%s)", resp.StatusCode, raw)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st api.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.LoadCtl == nil {
		t.Fatal("stats missing loadctl block with load control attached")
	}
	if st.LoadCtl.Admitted != 1 || st.LoadCtl.Draining {
		t.Fatalf("loadctl stats = %+v, want 1 admitted and not draining", st.LoadCtl)
	}
}

// TestWarmPredictZeroAllocWithLoadControl pins the ISSUE's hot-path
// bound: the warm cache-hit predict stays allocation-free with the
// rate limiter and admission-gate fast paths in front of it — the
// exact per-request sequence the HTTP handler runs before JSON
// encoding.
func TestWarmPredictZeroAllocWithLoadControl(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, so the pooled fingerprint path allocates there by design")
	}
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	lim := loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1e9, Burst: 1e9})
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 4})
	svc.AttachLoadControl(LoadControl{Limiter: lim, Gate: gate})
	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 4096)
	ctx := context.Background()
	if r := svc.Predict(ctx, key, q); r.Err != nil {
		t.Fatalf("cold Predict: %v", r.Err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := lim.Allow("10.0.0.1", time.Now()); !ok {
			t.Fatal("limiter denied")
		}
		if !svc.PeekCached(key, q) {
			t.Fatal("expected a cached result")
		}
		r := svc.Predict(ctx, key, q)
		if r.Err != nil || !r.Cached {
			t.Fatalf("warm Predict = %+v", r)
		}
	}); allocs != 0 {
		t.Fatalf("warm predict with load control allocs/op = %v, want 0", allocs)
	}
}

// TestOverloadGracefulDegradation is the acceptance check of the
// overload tier: offered load at ~10x measured capacity must keep
// goodput at >= 50% of that capacity with bounded tail latency, shed
// the excess quickly via 503, and keep cache-hit predictions flowing
// through the bypass the whole time.
//
// The unit of work is a cold predict against a deliberately slow model
// loader, with more distinct model keys than the model cache holds —
// cheap for the client to issue and for the server to reject, but
// expensive (a ~20ms load) to serve. That keeps the open-loop
// generator comfortably ahead of the server even under the race
// detector, so the measured latencies are the server's, not the
// harness's.
func TestOverloadGracefulDegradation(t *testing.T) {
	const loadDelay = 40 * time.Millisecond
	cl := &countingLoader{t: t}
	loader := func(key ModelKey) (*core.Model, error) {
		time.Sleep(loadDelay)
		return cl.load(key)
	}
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 2, MaxQueue: 8, MaxWait: 50 * time.Millisecond})
	srv, _ := newServerWith(t, loader, Options{ModelCap: 4}, LoadControl{Gate: gate})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512}}
	t.Cleanup(client.CloseIdleConnections)
	// post is goroutine-safe: no t.Fatal, so late probes after the test
	// body finishes cannot panic.
	post := func(path string, body []byte) (int, []byte) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Pre-marshal distinct request bodies: 64 model keys (16x the model
	// cache, so nearly every request is a cold load) x distinct query
	// parameters (so no request after the first is a result-cache hit).
	bodies := make([][]byte, 8192)
	for i := range bodies {
		r := wireRequest(2+i%6, 10000)
		r.Job = fmt.Sprintf("load%02d", i%64)
		r.Essential[2].Value = fmt.Sprintf("--iterations %d", i)
		bodies[i], _ = json.Marshal(r)
	}
	postSeq := func(i int) int {
		code, _ := post("/v1/predict", bodies[i%len(bodies)])
		return code
	}

	// Warm one cached probe query on a stable key.
	probeBody, _ := json.Marshal(wireRequest(2, 777))
	if code, raw := post("/v1/predict", probeBody); code != http.StatusOK {
		t.Fatalf("warming probe: %d (%s)", code, raw)
	}

	// Phase 1: closed-loop capacity with as many workers as gate slots —
	// the sustainable single-shard rate for this workload.
	const measure = 500 * time.Millisecond
	var done atomic.Int64
	var next atomic.Int64
	stop := make(chan struct{})
	var capWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		capWG.Add(1)
		go func() {
			defer capWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if postSeq(int(next.Add(1))) == http.StatusOK {
					done.Add(1)
				}
			}
		}()
	}
	time.Sleep(measure)
	close(stop)
	capWG.Wait()
	capacity := float64(done.Load()) / measure.Seconds()
	if capacity <= 0 {
		t.Fatal("no requests completed during capacity measurement")
	}

	// Phase 2: open loop at 10x capacity, with cached probes riding
	// along to verify the bypass.
	probeStop := make(chan struct{})
	probeDone := make(chan struct{})
	var probeFail, probeOK atomic.Int64
	go func() {
		defer close(probeDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-probeStop:
				return
			case <-tick.C:
				code, raw := post("/v1/predict", probeBody)
				var out api.PredictResponse
				if code != http.StatusOK || json.Unmarshal(raw, &out) != nil || !out.Cached {
					probeFail.Add(1)
				} else {
					probeOK.Add(1)
				}
			}
		}
	}()
	base := int(next.Load()) + 1
	res := loadgen.Run(loadgen.Config{
		Rate:           10 * capacity,
		Duration:       1500 * time.Millisecond,
		MaxOutstanding: 256,
	}, func(seq int) loadgen.Outcome {
		switch postSeq(base + seq) {
		case http.StatusOK:
			return loadgen.OutcomeOK
		case http.StatusServiceUnavailable:
			return loadgen.OutcomeShed
		case http.StatusGatewayTimeout:
			return loadgen.OutcomeDeadline
		default:
			return loadgen.OutcomeError
		}
	})
	close(probeStop)
	<-probeDone

	t.Logf("capacity %.0f/s; offered %.0f/s: goodput %.0f/s, ok %d, shed %d, dropped %d, err %d, ok p99 %v, shed p99 %v, probes %d ok / %d failed",
		capacity, res.Offered, res.Goodput(), res.OK, res.Shed, res.Dropped, res.Errors,
		res.OKLatency.Quantile(0.99), res.RejectLatency.Quantile(0.99),
		probeOK.Load(), probeFail.Load())

	if res.Shed == 0 {
		t.Fatal("10x overload shed nothing: the gate is not protecting the server")
	}
	if res.Errors > 0 {
		t.Fatalf("%d requests failed outright under overload, want clean 200/503/504 split", res.Errors)
	}
	if g := res.Goodput(); g < 0.5*capacity {
		t.Fatalf("goodput %.1f/s under 10x overload, want >= 50%% of the %.1f/s capacity", g, capacity)
	}
	// Bounded tails: accepted work waits at most MaxWait in the queue
	// plus service time; rejections are immediate. Bounds are loose for
	// noisy CI machines — the precise numbers live in BENCH_http.json.
	if p99 := res.OKLatency.Quantile(0.99); p99 > 2*time.Second {
		t.Fatalf("ok p99 = %v under overload, want bounded by queue cap + service time", p99)
	}
	if p99 := res.RejectLatency.Quantile(0.99); p99 > 250*time.Millisecond {
		t.Fatalf("shed p99 = %v, want near-immediate rejections", p99)
	}
	if probeFail.Load() > 0 {
		t.Fatalf("%d cached probes failed during overload (of %d), want all served via the bypass",
			probeFail.Load(), probeFail.Load()+probeOK.Load())
	}
	if probeOK.Load() == 0 {
		t.Fatal("no cached probes completed during overload")
	}
}

// BenchmarkHTTPPredictWarm measures the full HTTP round trip of a
// cache-hit predict with limiter + gate attached — the hot serving
// path under load control.
func BenchmarkHTTPPredictWarm(b *testing.B) {
	cl := &countingLoader{t: b}
	srv, _ := newServerWith(b, cl.load, Options{}, LoadControl{
		Limiter: loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1e9, Burst: 1e9}),
		Gate:    loadctl.NewGate(loadctl.GateConfig{}),
	})
	body, _ := json.Marshal(wireRequest(4, 10000))
	client := srv.Client()
	post := func() int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusOK {
		b.Fatalf("warming predict: %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := post(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkHTTPRateLimited measures the cost of answering 429: the
// price of rejecting one over-limit request, which bounds how cheap
// overload protection is.
func BenchmarkHTTPRateLimited(b *testing.B) {
	cl := &countingLoader{t: b}
	srv, _ := newServerWith(b, cl.load, Options{}, LoadControl{
		Limiter: loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1e-9, Burst: 1}),
	})
	body, _ := json.Marshal(wireRequest(4, 10000))
	client := srv.Client()
	post := func() int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	post() // consume the single burst token
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := post(); code != http.StatusTooManyRequests {
			b.Fatalf("status %d, want 429", code)
		}
	}
}

// BenchmarkHTTPShed measures the cost of answering 503 with the gate
// saturated — the shed path that must stay microseconds under
// overload.
func BenchmarkHTTPShed(b *testing.B) {
	cl := &countingLoader{t: b}
	block := make(chan struct{})
	loader := func(key ModelKey) (*core.Model, error) {
		<-block
		return cl.load(key)
	}
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 10 * time.Minute})
	srv, _ := newServerWith(b, loader, Options{}, LoadControl{Gate: gate})
	body, _ := json.Marshal(wireRequest(2, 10000))
	client := srv.Client()
	post := func() int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	// Occupy the slot and the queue so every measured request sheds.
	finished := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() { post(); finished <- struct{}{} }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for gate.Stats().InFlight != 1 || gate.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			b.Fatal("gate never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := post(); code != http.StatusServiceUnavailable {
			b.Fatalf("status %d, want 503", code)
		}
	}
	b.StopTimer()
	close(block)
	<-finished
	<-finished
}
