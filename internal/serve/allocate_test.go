package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/allocate"
	"repro/internal/api"
	"repro/internal/baselines"
)

func wireAllocateRequest(deadline float64) api.AllocateRequest {
	pr := wireRequest(4, 10000)
	return api.AllocateRequest{
		Job:             pr.Job,
		Env:             pr.Env,
		Essential:       pr.Essential,
		Optional:        pr.Optional,
		MinScaleOut:     2,
		MaxScaleOut:     16,
		DeadlineSec:     deadline,
		CostPerNodeHour: 0.5,
	}
}

// TestHTTPAllocate is the end-to-end acceptance check of the allocation
// subsystem: a /v1/allocate request against a trained model returns the
// cheapest SLO-satisfying scale-out of the smoothed curve.
func TestHTTPAllocate(t *testing.T) {
	srv, svc := newTestServer(t)

	var out api.AllocateResponse
	code := postJSON(t, srv.URL+"/v1/allocate", wireAllocateRequest(200), &out)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if out.Error != nil || !out.Feasible {
		t.Fatalf("response = %+v, want a feasible allocation", out)
	}
	if out.ScaleOut < 2 || out.ScaleOut > 16 {
		t.Fatalf("chosen scale-out %d outside candidate range [2, 16]", out.ScaleOut)
	}
	if len(out.Curve) != 15 {
		t.Fatalf("curve has %d points, want 15", len(out.Curve))
	}
	if out.Source != string(allocate.SourceModel) {
		t.Fatalf("source = %q, want model", out.Source)
	}
	// Verify the choice against the returned curve: cheapest point that
	// meets the SLO.
	best, bestCost := -1, 0.0
	for _, cp := range out.Curve {
		if !cp.MeetsSLO {
			continue
		}
		if best < 0 || cp.Cost < bestCost {
			best, bestCost = cp.ScaleOut, cp.Cost
		}
	}
	if out.ScaleOut != best {
		t.Fatalf("chose scale-out %d, curve says cheapest feasible is %d", out.ScaleOut, best)
	}
	for i := 1; i < len(out.Curve); i++ {
		if out.Curve[i].SmoothedSec > out.Curve[i-1].SmoothedSec+1e-9 {
			t.Fatalf("smoothed curve increases at index %d", i)
		}
	}
	if out.MarginSec <= 0 {
		t.Fatalf("margin %v, want positive for a feasible allocation", out.MarginSec)
	}

	st := svc.Stats()
	if st.Alloc.Requests != 1 || st.Alloc.Violations != 0 || st.Alloc.Errors != 0 {
		t.Fatalf("alloc stats = %+v, want one clean request", st.Alloc)
	}
}

// TestHTTPAllocateImpossibleDeadline pins the violation path: an
// unreachable deadline reports infeasibility plus the best-effort
// configuration instead of failing.
func TestHTTPAllocateImpossibleDeadline(t *testing.T) {
	srv, svc := newTestServer(t)

	var out api.AllocateResponse
	code := postJSON(t, srv.URL+"/v1/allocate", wireAllocateRequest(0.01), &out)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (violation is a result, not an error)", code)
	}
	if out.Error != nil || out.Feasible {
		t.Fatalf("response = %+v, want an infeasible best-effort result", out)
	}
	if out.ScaleOut == 0 {
		t.Fatal("violation response carries no best-effort configuration")
	}
	if out.MarginSec >= 0 {
		t.Fatalf("margin %v, want negative under a violated SLO", out.MarginSec)
	}
	// Best effort must be the fastest point of the smoothed curve.
	for _, cp := range out.Curve {
		if cp.SmoothedSec < out.PredictedSec-1e-9 {
			t.Fatalf("best-effort %v slower than candidate %d at %v",
				out.PredictedSec, cp.ScaleOut, cp.SmoothedSec)
		}
	}
	if st := svc.Stats(); st.Alloc.Violations != 1 {
		t.Fatalf("alloc violations = %d, want 1", st.Alloc.Violations)
	}
}

// TestHTTPAllocateBadRequest pins the error paths: malformed requests
// are 400s and counted, never 200s with garbage.
func TestHTTPAllocateBadRequest(t *testing.T) {
	srv, svc := newTestServer(t)

	missing := wireAllocateRequest(100)
	missing.Job = ""
	var out api.AllocateResponse
	if code := postJSON(t, srv.URL+"/v1/allocate", missing, &out); code != http.StatusBadRequest {
		t.Fatalf("missing job: status %d, want 400", code)
	}

	bad := wireAllocateRequest(100)
	bad.DeadlineSec = -5
	if code := postJSON(t, srv.URL+"/v1/allocate", bad, &out); code != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", code)
	}
	if out.Error == nil {
		t.Fatal("bad request carried no error message")
	}

	badRange := wireAllocateRequest(100)
	badRange.MinScaleOut, badRange.MaxScaleOut = 10, 2
	if code := postJSON(t, srv.URL+"/v1/allocate", badRange, &out); code != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d, want 400", code)
	}
	if st := svc.Stats(); st.Alloc.Errors != 2 {
		t.Fatalf("alloc errors = %d, want 2 (decode-level failures don't reach the engine)", st.Alloc.Errors)
	}
}

// TestHTTPAllocateModelUnavailable pins the load-failure status: a model
// that cannot be materialized is a 404, not a 400 — the request itself
// is fine and may succeed once the model file appears.
func TestHTTPAllocateModelUnavailable(t *testing.T) {
	cl := &countingLoader{t: t}
	key := ModelKey{Job: "sort", Env: "c3o"}
	cl.failNext(key, 1000)
	svc := NewService(cl.load, Options{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	var out api.AllocateResponse
	if code := postJSON(t, srv.URL+"/v1/allocate", wireAllocateRequest(100), &out); code != http.StatusNotFound {
		t.Fatalf("unloadable model: status %d, want 404", code)
	}
	if out.Error == nil {
		t.Fatal("unloadable model carried no error message")
	}
	if st := svc.Stats(); st.Alloc.Errors != 1 {
		t.Fatalf("alloc errors = %d, want 1", st.Alloc.Errors)
	}
}

// TestServiceAllocateFallback exercises the low-support fallback through
// the service: a freshly loaded model reports zero fine-tune samples, so
// a request demanding support falls back to interpolating observations.
func TestServiceAllocateFallback(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 10000)

	req := allocate.Request{
		Essential:       q.Essential,
		Optional:        q.Optional,
		MinScaleOut:     2,
		MaxScaleOut:     12,
		DeadlineSec:     500,
		CostPerNodeHour: 1,
		MinModelSamples: 3,
	}
	for _, x := range []int{2, 6, 12} {
		rt, err := func() (float64, error) {
			sm, err := svc.Registry().Get(context.Background(), key)
			if err != nil {
				return 0, err
			}
			return sm.Predict(testQuery(x, 10000))
		}()
		if err != nil {
			t.Fatalf("reference predict: %v", err)
		}
		req.Observations = append(req.Observations, baselines.Point{ScaleOut: x, Runtime: rt})
	}
	res, err := svc.Allocate(context.Background(), key, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Fallback || res.Source != allocate.SourceInterp {
		t.Fatalf("result = %+v, want interpolation fallback for an unsupported model", res)
	}
	if st := svc.Stats(); st.Alloc.Fallbacks != 1 {
		t.Fatalf("alloc fallbacks = %d, want 1", st.Alloc.Fallbacks)
	}

	// Without the support demand the model answers directly.
	req.MinModelSamples = 0
	res, err = svc.Allocate(context.Background(), key, req)
	if err != nil {
		t.Fatalf("Allocate without support demand: %v", err)
	}
	if res.Fallback {
		t.Fatal("supported request fell back anyway")
	}
}
