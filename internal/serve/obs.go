package serve

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/store"
)

// Observability bundles the telemetry substrate threaded through the
// serving tier: the metrics registry behind GET /metrics, the request
// tracer behind X-Trace-Id and GET /v1/debug/slow, and the structured
// logger. Any field may be nil to disable that facility.
type Observability struct {
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Log     *slog.Logger
}

// Logger returns the configured logger or a no-op one, so callers
// never nil-check before logging.
func (o *Observability) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return obs.NopLogger()
	}
	return o.Log
}

// AttachObs wires the observability layer into the service and, when a
// metrics registry is present, registers every service metric under
// labels (e.g. {"shard": "0"} in a sharded deployment; nil for a
// single-shard node). Attach once, before serving traffic: metric
// registration is not idempotent by design — a double registration is
// a wiring bug and panics.
func (s *Service) AttachObs(o *Observability, labels obs.Labels) {
	s.obsRef.Store(o)
	if o == nil || o.Metrics == nil {
		return
	}
	s.registerMetrics(o.Metrics, labels)
}

// Obs returns the attached observability layer, or nil.
func (s *Service) Obs() *Observability { return s.obsRef.Load() }

// registerMetrics exposes the service's counter cells plus scrape-time
// snapshots of the registry, lifecycle, store, and load-control tiers.
// The counter cells are the very atomics the hot path increments — no
// parallel bookkeeping; the func-backed series read the existing
// Stats() snapshots of components that stay obs-free (loadctl) or are
// attached after startup (lifecycle, store), nil-safe at every scrape.
func (s *Service) registerMetrics(reg *obs.Registry, labels obs.Labels) {
	reg.RegisterCounter("bellamy_predict_requests_total",
		"Individual predictions asked for (batch items included).", labels, &s.requests)
	reg.RegisterCounter("bellamy_predict_calls_total",
		"Predict/PredictBatch invocations.", labels, &s.calls)
	reg.RegisterCounter("bellamy_result_cache_hits_total",
		"Predictions answered from the result cache.", labels, &s.resultHits)
	reg.RegisterCounter("bellamy_result_cache_misses_total",
		"Predictions that missed the result cache.", labels, &s.resultMisses)
	reg.RegisterGaugeFunc("bellamy_result_cache_entries",
		"Memoized prediction results currently resident.", labels,
		func() float64 { return float64(s.results.len()) })
	reg.RegisterHist("bellamy_predict_latency_seconds",
		"Wall-clock latency of Predict/PredictBatch calls.", labels, s.latency)
	reg.RegisterCounter("bellamy_gate_bypassed_total",
		"Cache-hit predictions that skipped the admission gate.", labels, &s.gateBypassed)
	reg.RegisterCounter("bellamy_deadline_rejects_total",
		"Requests answered 504 because their budget ran out server-side.", labels, &s.deadlineRejects)
	reg.RegisterGaugeFunc("bellamy_draining",
		"1 while shutdown drain is in progress, else 0.", labels,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	reg.RegisterCounter("bellamy_alloc_requests_total",
		"Allocate calls that reached the engine.", labels, &s.allocCalls)
	reg.RegisterCounter("bellamy_alloc_errors_total",
		"Allocate calls that failed.", labels, &s.allocErrors)
	reg.RegisterCounter("bellamy_alloc_violations_total",
		"Allocations where no candidate met the SLO.", labels, &s.allocViolations)
	reg.RegisterCounter("bellamy_alloc_fallbacks_total",
		"Allocations answered by the interpolation fallback.", labels, &s.allocFallbacks)
	reg.RegisterHist("bellamy_alloc_latency_seconds",
		"Wall-clock latency of Allocate calls.", labels, s.allocLatency)

	for _, m := range []struct {
		name, help string
		read       func(RegistryStats) int64
	}{
		{"bellamy_model_hits_total", "Model registry hits.", func(r RegistryStats) int64 { return r.Hits }},
		{"bellamy_model_misses_total", "Model registry misses.", func(r RegistryStats) int64 { return r.Misses }},
		{"bellamy_model_loads_total", "Models loaded from disk.", func(r RegistryStats) int64 { return r.Loads }},
		{"bellamy_model_load_errors_total", "Model load failures.", func(r RegistryStats) int64 { return r.LoadErrors }},
		{"bellamy_model_evictions_total", "Models evicted by the LRU cap.", func(r RegistryStats) int64 { return r.Evictions }},
		{"bellamy_model_swaps_total", "Hot-swapped model versions installed.", func(r RegistryStats) int64 { return r.Swaps }},
	} {
		read := m.read
		reg.RegisterCounterFunc(m.name, m.help, labels, func() int64 { return read(s.reg.Stats()) })
	}

	for _, m := range []struct {
		name, help string
		read       func(LifecycleStats) int64
	}{
		{"bellamy_lifecycle_observations_total", "Accepted runtime observations.", func(l LifecycleStats) int64 { return l.Observations }},
		{"bellamy_lifecycle_rejected_total", "Observations dropped in validation.", func(l LifecycleStats) int64 { return l.Rejected }},
		{"bellamy_lifecycle_finetunes_total", "Fine-tune runs.", func(l LifecycleStats) int64 { return l.Finetunes }},
		{"bellamy_lifecycle_finetune_errors_total", "Failed fine-tune attempts.", func(l LifecycleStats) int64 { return l.FinetuneErrors }},
		{"bellamy_lifecycle_swaps_total", "Fine-tuned versions installed.", func(l LifecycleStats) int64 { return l.Swaps }},
	} {
		read := m.read
		reg.RegisterCounterFunc(m.name, m.help, labels, func() int64 {
			ls, ok := s.lifecycleStats()
			if !ok {
				return 0
			}
			return read(ls)
		})
	}
	reg.RegisterGaugeFunc("bellamy_lifecycle_pending_samples",
		"Buffered observations not yet digested by a fine-tune.", labels,
		func() float64 {
			ls, _ := s.lifecycleStats()
			return float64(ls.PendingSamples)
		})

	for _, m := range []struct {
		name, help string
		read       func(store.Stats) int64
	}{
		{"bellamy_wal_appends_total", "Records appended to the WAL.", func(d store.Stats) int64 { return d.WALAppends }},
		{"bellamy_wal_appended_bytes_total", "Bytes appended to the WAL.", func(d store.Stats) int64 { return d.WALAppendedBytes }},
		{"bellamy_wal_fsyncs_total", "WAL fsync calls.", func(d store.Stats) int64 { return d.Fsyncs }},
		{"bellamy_store_compactions_total", "WAL compaction runs.", func(d store.Stats) int64 { return d.Compactions }},
		{"bellamy_store_checkpoints_total", "Model checkpoints written.", func(d store.Stats) int64 { return d.Checkpoints }},
	} {
		read := m.read
		reg.RegisterCounterFunc(m.name, m.help, labels, func() int64 {
			ds, ok := s.storeStats()
			if !ok {
				return 0
			}
			return read(ds)
		})
	}
	reg.RegisterGaugeFunc("bellamy_wal_segments",
		"WAL segment files on disk.", labels,
		func() float64 {
			ds, _ := s.storeStats()
			return float64(ds.WALSegments)
		})

	reg.RegisterCounterFunc("bellamy_rate_limited_total",
		"Requests answered 429 by the per-client rate limiter.", labels,
		func() int64 {
			if lc := s.loadctl.Load(); lc != nil && lc.Limiter != nil {
				return lc.Limiter.Stats().Limited
			}
			return 0
		})
	reg.RegisterCounterFunc("bellamy_gate_admitted_total",
		"Requests admitted by the gate.", labels,
		func() int64 {
			if lc := s.loadctl.Load(); lc != nil && lc.Gate != nil {
				return lc.Gate.Stats().Admitted
			}
			return 0
		})
	reg.RegisterCounterFunc("bellamy_gate_shed_total",
		"Requests shed by the gate (queue full, timeout, canceled).", labels,
		func() int64 {
			if lc := s.loadctl.Load(); lc != nil && lc.Gate != nil {
				gs := lc.Gate.Stats()
				return gs.ShedQueueFull + gs.ShedTimeout + gs.ShedCanceled
			}
			return 0
		})
	reg.RegisterGaugeFunc("bellamy_gate_inflight",
		"Requests currently holding gate slots.", labels,
		func() float64 {
			if lc := s.loadctl.Load(); lc != nil && lc.Gate != nil {
				return float64(lc.Gate.Stats().InFlight)
			}
			return 0
		})
	reg.RegisterGaugeFunc("bellamy_gate_waiting",
		"Requests currently queued at the gate.", labels,
		func() float64 {
			if lc := s.loadctl.Load(); lc != nil && lc.Gate != nil {
				return float64(lc.Gate.Stats().Waiting)
			}
			return 0
		})
}

// obsStatsPayload builds the schema-v3 "obs" stats block, nil when no
// observability layer is attached.
func (s *Service) obsStatsPayload() *api.ObsStats {
	o := s.obsRef.Load()
	if o == nil {
		return nil
	}
	out := &api.ObsStats{
		LatencyP50Usec:  float64(s.latency.Quantile(0.5).Nanoseconds()) / 1e3,
		LatencyP99Usec:  float64(s.latency.Quantile(0.99).Nanoseconds()) / 1e3,
		LatencyP999Usec: float64(s.latency.Quantile(0.999).Nanoseconds()) / 1e3,
	}
	if o.Metrics != nil {
		out.MetricSeries = o.Metrics.NumSeries()
	}
	out.TracesSampled, out.TracesFinished = o.Tracer.Stats()
	return out
}

// startTrace begins a request trace when a tracer is attached: a
// client-supplied X-Trace-Id is always traced, other requests are
// sampled. The trace ID is echoed on the response header immediately
// (headers must precede the body). Returns nil for untraced requests.
func (s *Service) startTrace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	o := s.obsRef.Load()
	if o == nil || o.Tracer == nil {
		return nil
	}
	tr := o.Tracer.StartRequest(r.Header.Get(api.TraceIDHeader))
	if tr != nil {
		w.Header().Set(api.TraceIDHeader, tr.ID())
	}
	return tr
}

// finishTrace completes tr (nil-safe), offering it to the slow ring.
func (s *Service) finishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	if o := s.obsRef.Load(); o != nil {
		o.Tracer.Finish(tr)
	}
}

// SpanSummaries converts recorded spans to their wire form.
func SpanSummaries(spans []obs.Span) []api.SpanSummary {
	if len(spans) == 0 {
		return nil
	}
	out := make([]api.SpanSummary, len(spans))
	for i, sp := range spans {
		out[i] = api.SpanSummary{
			Name:      sp.Name,
			Shard:     sp.Shard,
			StartUsec: float64(sp.Start.Nanoseconds()) / 1e3,
			DurUsec:   float64(sp.Dur.Nanoseconds()) / 1e3,
		}
	}
	return out
}

// SlowTracesPayload renders the tracer's retained slowest traces as
// the body of GET /v1/debug/slow. Shared by the single-shard handler
// and the shard router.
func SlowTracesPayload(t *obs.Tracer) api.SlowTracesResponse {
	recs := t.Slowest()
	out := api.SlowTracesResponse{
		SchemaVersion: api.StatsSchemaVersion,
		Traces:        make([]api.TraceSummary, len(recs)),
	}
	now := time.Now()
	for i := range recs {
		r := &recs[i]
		out.Traces[i] = api.TraceSummary{
			TraceID:  r.ID(),
			AgeMs:    now.Sub(r.At).Milliseconds(),
			WallUsec: float64(r.Wall.Nanoseconds()) / 1e3,
			Spans:    SpanSummaries(r.Spans[:r.NSpans]),
		}
	}
	return out
}

// handleMetrics and handleSlowTraces serve GET /metrics and
// GET /v1/debug/slow; both answer 404 until an observability layer
// with the relevant facility is attached.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	o := s.obsRef.Load()
	if o == nil || o.Metrics == nil {
		http.NotFound(w, r)
		return
	}
	o.Metrics.Handler().ServeHTTP(w, r)
}

func (s *Service) handleSlowTraces(w http.ResponseWriter, r *http.Request) {
	o := s.obsRef.Load()
	if o == nil || o.Tracer == nil {
		http.NotFound(w, r)
		return
	}
	api.WriteJSON(w, SlowTracesPayload(o.Tracer))
}
