package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/allocate"
	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options tunes a Service.
type Options struct {
	// ModelCap bounds the resident models (<= 0: DefaultModelCap).
	ModelCap int
	// ResultCap bounds the memoized prediction results
	// (<= 0: DefaultResultCap).
	ResultCap int
	// Workers bounds the per-batch fan-out across model groups
	// (<= 0: GOMAXPROCS).
	Workers int
	// Float64Serving disables the float32 quantized inference path and
	// serves every model in full float64 precision.
	Float64Serving bool
}

// Request is one prediction request: which model to use and what to ask.
type Request struct {
	Key   ModelKey
	Query core.Query
}

// Response carries the per-request outcome of a batch.
type Response struct {
	// RuntimeSec is the predicted runtime in seconds (valid when Err is nil).
	RuntimeSec float64
	// Cached reports whether the result came from the result cache.
	Cached bool
	// Err is the per-request failure, if any.
	Err error
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts individual predictions asked for (batch items
	// included).
	Requests int64
	// Calls counts Predict/PredictBatch invocations.
	Calls int64
	// ResultHits / ResultMisses count result-cache outcomes.
	ResultHits   int64
	ResultMisses int64
	// ResultCacheLen is the current number of memoized results.
	ResultCacheLen int
	// MeanLatency is the average wall-clock time per call.
	MeanLatency time.Duration
	// Registry carries the model-registry counters.
	Registry RegistryStats
	// Alloc carries the resource-allocation counters.
	Alloc AllocStats
	// LoadCtl carries the overload-protection counters; nil when no
	// load control is attached.
	LoadCtl *LoadCtlStats
}

// LoadCtlStats is a snapshot of the overload-protection counters.
type LoadCtlStats struct {
	// RateLimited counts requests answered 429; Clients / ClientsEvicted
	// mirror the limiter's tracked-bucket state.
	RateLimited    int64
	Clients        int
	ClientsEvicted int64
	// Admitted / Queued / Shed* mirror the admission gate.
	Admitted, Queued                         int64
	ShedQueueFull, ShedTimeout, ShedCanceled int64
	// GateBypassed counts cache-hit predictions that skipped the gate.
	GateBypassed int64
	// DeadlineRejects counts requests answered 504 because their budget
	// ran out server-side.
	DeadlineRejects int64
	// MeanQueueWait is the average slot wait of queued-then-admitted
	// requests.
	MeanQueueWait time.Duration
	// Draining reports whether shutdown drain has started.
	Draining bool
}

// AllocStats is a snapshot of the allocation counters.
type AllocStats struct {
	// Requests counts Allocate calls that reached the engine.
	Requests int64
	// Errors counts Allocate calls that failed (bad request or model).
	Errors int64
	// Violations counts allocations where no candidate satisfied the
	// SLO and a best-effort configuration was returned.
	Violations int64
	// Fallbacks counts allocations answered by the interpolation
	// fallback instead of the model.
	Fallbacks int64
	// MeanLatency is the average wall-clock time per allocation.
	MeanLatency time.Duration
}

// Observer ingests live runtime observations for online model
// improvement. The lifecycle controller implements it; the service
// only forwards, so serving stays decoupled from how (or whether)
// observations feed back into models. Implementations should honor
// ctx: an observation whose request deadline already passed must not
// pay for a durable-log append the caller will never see acknowledged.
type Observer interface {
	Observe(ctx context.Context, key ModelKey, q core.Query, runtimeSec float64) error
}

// SwapNotifier is implemented by observers that hot-swap model
// versions. AttachObserver uses it to subscribe the service's result
// cache invalidation, so memoized predictions of a replaced version
// can never outlive it.
type SwapNotifier interface {
	OnSwap(fn func(key ModelKey, version uint64))
}

// LifecycleStats is a snapshot of online-learning counters, surfaced
// in /v1/stats when the attached Observer implements LifecycleStatser.
type LifecycleStats struct {
	// Observations counts accepted Observe calls; Rejected counts
	// observations dropped for failing validation.
	Observations, Rejected int64
	// PendingSamples is the current total of buffered observations not
	// yet digested by a fine-tune.
	PendingSamples int
	// Finetunes counts fine-tune runs (successful or failed).
	// FinetuneErrors counts failed attempts of any kind — including
	// model-load/clone failures that aborted before a run started, so
	// under persistent load failures it can exceed Finetunes.
	Finetunes, FinetuneErrors int64
	// Swaps counts installed model versions; SwapsSkipped counts
	// fine-tunes discarded because their base version was evicted.
	Swaps, SwapsSkipped int64
	// MeanFinetune is the average wall-clock time of a fine-tune run
	// (failed runs included).
	MeanFinetune time.Duration
	// Restored counts observations and digest markers re-admitted from
	// the durable log during boot replay.
	Restored int64
	// LogErrors counts durable-log append and checkpoint write failures
	// (observations rejected as not-durable, versions left
	// uncheckpointed).
	LogErrors int64
}

// LifecycleStatser exposes online-learning counters.
type LifecycleStatser interface {
	LifecycleStats() LifecycleStats
}

// ErrObserveDisabled is returned by Observe when no observer is
// attached (the server runs without online fine-tuning).
var ErrObserveDisabled = errors.New("serve: observation ingestion disabled")

// ErrObserveCapacity marks observation rejections caused by server-side
// capacity limits (e.g. the lifecycle controller's distinct-key bound)
// rather than a malformed request. Observers wrap it so the HTTP layer
// can answer 429 instead of 400.
var ErrObserveCapacity = errors.New("serve: observation capacity exhausted")

// ErrModelUnavailable marks failures to materialize the requested model
// (missing or corrupt model file, loader fault) as opposed to a
// malformed request, so the HTTP layer can answer 404 instead of 400.
var ErrModelUnavailable = errors.New("serve: model unavailable")

// Service answers runtime predictions against a registry of models,
// memoizing repeated queries and fanning batches across models. It is
// safe for concurrent use.
type Service struct {
	reg     *Registry
	results *resultCache
	workers int

	observer atomic.Pointer[Observer]
	storeRef atomic.Pointer[storeStatser]
	loadctl  atomic.Pointer[LoadControl]
	obsRef   atomic.Pointer[Observability]

	// draining flips once shutdown starts: /healthz answers 503 so load
	// balancers stop routing here while in-flight requests finish.
	draining atomic.Bool

	// engines pools allocation engines: each holds reusable sweep and
	// smoothing buffers, so warm allocations don't churn memory even
	// under concurrent traffic.
	engines sync.Pool

	// Counters are obs types (one atomic add per increment) so the same
	// cells back Stats(), /v1/stats, and — once AttachObs registers them
	// — the /metrics exposition. No label lookups on any hot path.
	requests, calls          obs.Counter
	resultHits, resultMisses obs.Counter
	latency                  *obs.Hist

	allocCalls, allocErrors         obs.Counter
	allocViolations, allocFallbacks obs.Counter
	allocLatency                    *obs.Hist

	gateBypassed    obs.Counter
	deadlineRejects obs.Counter
}

// LoadControl is the overload-protection configuration threaded in
// front of the POST endpoints: a per-client rate limiter (429), an
// admission gate (503), and a cap on client-requested deadlines.
// Either component may be nil to disable it.
type LoadControl struct {
	// Limiter rate-limits per client key (X-API-Key header, falling
	// back to the remote address) before the request body is read.
	Limiter *loadctl.Limiter
	// Gate bounds concurrently served requests. Cache-hit predictions
	// bypass it entirely — serving a memoized float must never queue
	// behind expensive work.
	Gate *loadctl.Gate
	// MaxDeadline caps the client-supplied X-Deadline-Ms budget
	// (0: DefaultMaxDeadline).
	MaxDeadline time.Duration
}

// DefaultMaxDeadline caps client-requested deadlines when
// LoadControl.MaxDeadline is zero.
const DefaultMaxDeadline = 30 * time.Second

// AttachLoadControl arms overload protection on the HTTP endpoints.
// Attach before serving traffic. Requests are processed in this order:
// rate limiter (headers only, so a limited client is answered before
// its body is read), body decode, result-cache bypass check, admission
// gate, deadline-derived context, service call.
func (s *Service) AttachLoadControl(lc LoadControl) {
	if lc.MaxDeadline <= 0 {
		lc.MaxDeadline = DefaultMaxDeadline
	}
	s.loadctl.Store(&lc)
}

// SetDraining marks the service as draining (or not): /healthz answers
// 503 so load balancers and orchestrators stop sending new traffic
// while in-flight requests complete. The serve command flips it as the
// first step of graceful shutdown.
func (s *Service) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether shutdown drain has started.
func (s *Service) Draining() bool { return s.draining.Load() }

// NewService builds a service loading models through loader.
func NewService(loader Loader, opts Options) *Service {
	s := &Service{
		reg:          NewRegistry(loader, opts.ModelCap),
		results:      newResultCache(opts.ResultCap),
		workers:      opts.Workers,
		latency:      obs.NewHist(),
		allocLatency: obs.NewHist(),
	}
	s.reg.SetFloat64Serving(opts.Float64Serving)
	s.engines.New = func() any { return allocate.NewEngine() }
	return s
}

// Allocate answers a resource-allocation query against key's model: one
// batched sweep over the candidate scale-outs, isotonic smoothing, and
// the cheapest-SLO-satisfying selection (see internal/allocate). The
// model is resolved through GetRef, so an allocation always runs on the
// latest hot-swapped version, and its reported fine-tune support drives
// the engine's interpolation fallback.
func (s *Service) Allocate(ctx context.Context, key ModelKey, req allocate.Request) (*allocate.Result, error) {
	start := time.Now()
	defer func() {
		s.allocLatency.Observe(time.Since(start))
		s.allocCalls.Inc()
	}()
	ref, err := s.reg.GetRef(ctx, key)
	if err != nil {
		s.allocErrors.Add(1)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("%w: %w", ErrModelUnavailable, err)
	}
	// The sweep is one bounded forward pass; re-checking the deadline
	// here (after a possible cold load) is the last cheap abandon point
	// before the GEMM path.
	if err := ctx.Err(); err != nil {
		s.allocErrors.Add(1)
		return nil, err
	}
	e := s.engines.Get().(*allocate.Engine)
	res, err := e.Allocate(ref.Model, req)
	s.engines.Put(e)
	if err != nil {
		s.allocErrors.Add(1)
		return nil, err
	}
	if !res.Feasible {
		s.allocViolations.Add(1)
	}
	if res.Fallback {
		s.allocFallbacks.Add(1)
	}
	return res, nil
}

// Registry exposes the underlying model registry (e.g. for warm-up).
func (s *Service) Registry() *Registry { return s.reg }

// AttachObserver wires an observation sink into the service: Observe
// calls (and POST /v1/observe) forward to it. When the observer also
// notifies about hot-swaps, the service subscribes its result-cache
// invalidation so stale memoized predictions are dropped the moment a
// new model version is installed. Attach before serving traffic.
func (s *Service) AttachObserver(o Observer) {
	if sn, ok := o.(SwapNotifier); ok {
		sn.OnSwap(func(key ModelKey, version uint64) {
			s.InvalidateResults(key)
		})
	}
	s.observer.Store(&o)
}

// Observe forwards a live runtime observation to the attached
// observer, or reports ErrObserveDisabled when there is none.
func (s *Service) Observe(ctx context.Context, key ModelKey, q core.Query, runtimeSec float64) error {
	o := s.observer.Load()
	if o == nil {
		return ErrObserveDisabled
	}
	return (*o).Observe(ctx, key, q, runtimeSec)
}

// lifecycleStats snapshots the attached observer's counters, if it
// exposes any.
func (s *Service) lifecycleStats() (LifecycleStats, bool) {
	o := s.observer.Load()
	if o == nil {
		return LifecycleStats{}, false
	}
	ls, ok := (*o).(LifecycleStatser)
	if !ok {
		return LifecycleStats{}, false
	}
	return ls.LifecycleStats(), true
}

// InvalidateResults drops every memoized result of key's model and
// reports how many were dropped. Hot-swaps call it through the
// observer subscription; it is also safe to call directly (e.g. after
// replacing a model file on disk and evicting the key).
func (s *Service) InvalidateResults(key ModelKey) int {
	bufp := fpPool.Get().(*[]byte)
	prefix := appendKeyPrefix((*bufp)[:0], key)
	n := s.results.invalidatePrefix(string(prefix))
	*bufp = prefix
	fpPool.Put(bufp)
	return n
}

// PeekCached reports whether (key, q) can be answered from the result
// cache right now, without touching the registry or model. The
// admission layer uses it to let cache-hit predictions bypass the gate
// — they cost microseconds and keeping them flowing under overload is
// the point of graceful degradation. Allocation-free.
func (s *Service) PeekCached(key ModelKey, q core.Query) bool {
	bufp := fpPool.Get().(*[]byte)
	fp := appendFingerprint((*bufp)[:0], key, q)
	_, ok := s.results.get(fp)
	*bufp = fp
	fpPool.Put(bufp)
	return ok
}

// Predict answers a single request. A cache hit ignores ctx (the value
// is already in hand); a miss respects its deadline before touching
// the model.
func (s *Service) Predict(ctx context.Context, key ModelKey, q core.Query) Response {
	return s.PredictTraced(ctx, key, q, nil)
}

// PredictTraced is Predict with an optional request trace: on a cache
// miss it records the registry_load and predict pipeline stages. A nil
// trace costs only the nil checks, keeping the warm path 0 allocs/op.
func (s *Service) PredictTraced(ctx context.Context, key ModelKey, q core.Query, tr *obs.Trace) Response {
	start := time.Now()
	defer s.observe(start, 1)
	return s.predictOne(ctx, key, q, tr)
}

func (s *Service) predictOne(ctx context.Context, key ModelKey, q core.Query, tr *obs.Trace) Response {
	bufp := fpPool.Get().(*[]byte)
	fp := appendFingerprint((*bufp)[:0], key, q)
	v, ok := s.results.get(fp)
	if ok {
		*bufp = fp
		fpPool.Put(bufp)
		s.resultHits.Add(1)
		return Response{RuntimeSec: v, Cached: true}
	}
	fps := string(fp)
	*bufp = fp
	fpPool.Put(bufp)
	s.resultMisses.Add(1)
	// A blown deadline abandons the request before the model load and
	// forward pass — the caller is gone; computing would only steal
	// capacity from live requests.
	if err := ctx.Err(); err != nil {
		return Response{Err: err}
	}
	// Snapshot the invalidation epoch before touching the model: if a
	// hot-swap invalidates this key while the prediction is in flight,
	// the epoch moves and the stale value is not memoized.
	epoch := s.results.snapshot()
	t0 := tr.Clock()
	sm, err := s.reg.Get(ctx, key)
	tr.Record(obs.StageRegistryLoad, -1, t0)
	if err != nil {
		return Response{Err: err}
	}
	t0 = tr.Clock()
	v, err = sm.Predict(q)
	tr.Record(obs.StagePredict, -1, t0)
	if err != nil {
		return Response{Err: err}
	}
	s.results.put(fps, v, epoch)
	return Response{RuntimeSec: v}
}

// missGroup gathers the batch positions that share one distinct
// (model, query) fingerprint, so a query repeated within a batch costs
// one model row. The first position is held inline: in the common case
// of a batch with no repeated queries, recording it allocates nothing.
type missGroup struct {
	fp    string
	query core.Query
	first int
	rest  []int
}

// forEachIdx calls fn for every batch position in the group.
func (g *missGroup) forEachIdx(fn func(i int)) {
	fn(g.first)
	for _, i := range g.rest {
		fn(i)
	}
}

// batchScratch holds the per-PredictBatch grouping state, pooled so a
// steady stream of batches reuses maps, the missGroup arena, and the
// query/prediction staging slices instead of reallocating them.
type batchScratch struct {
	byFP   map[string]*missGroup
	groups map[ModelKey][]*missGroup
	keys   []ModelKey
	offs   []int
	arena  []missGroup
	qs     []core.Query
	preds  []float64
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		byFP:   map[string]*missGroup{},
		groups: map[ModelKey][]*missGroup{},
	}
}}

// release clears the scratch and returns it to the pool. The arena and
// query staging are zeroed so pooled memory never pins caller property
// slices (or their fingerprint strings) across batches.
func (sc *batchScratch) release() {
	clear(sc.byFP)
	clear(sc.groups)
	sc.keys = sc.keys[:0]
	sc.offs = sc.offs[:0]
	clear(sc.arena)
	sc.arena = sc.arena[:0]
	clear(sc.qs)
	sc.qs = sc.qs[:0]
	sc.preds = sc.preds[:0]
	batchScratchPool.Put(sc)
}

// PredictBatch answers many requests at once: result-cache hits are
// served immediately, the remaining distinct queries are grouped by
// model and run as one forward pass per model, with model groups fanned
// across CPU cores. Responses align with the input order. Cache hits
// are served regardless of ctx; the per-model forward passes check the
// deadline before loading a model and before entering the GEMM path,
// so a request that has already blown its budget is abandoned with
// ctx's error instead of burning compute.
func (s *Service) PredictBatch(ctx context.Context, reqs []Request) []Response {
	start := time.Now()
	defer s.observe(start, len(reqs))

	out := make([]Response, len(reqs))
	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()
	if cap(sc.arena) < len(reqs) {
		sc.arena = make([]missGroup, 0, len(reqs))
	}
	byFP, groups := sc.byFP, sc.groups
	bufp := fpPool.Get().(*[]byte)
	buf := *bufp
	for i, req := range reqs {
		buf = appendFingerprint(buf[:0], req.Key, req.Query)
		if v, ok := s.results.get(buf); ok {
			s.resultHits.Add(1)
			out[i] = Response{RuntimeSec: v, Cached: true}
			continue
		}
		s.resultMisses.Add(1)
		if g, ok := byFP[string(buf)]; ok { // allocation-free map index
			g.rest = append(g.rest, i)
			continue
		}
		fp := string(buf)
		// The arena never reallocates mid-batch (cap >= len(reqs)), so
		// the *missGroup pointers handed to the maps stay valid.
		sc.arena = append(sc.arena, missGroup{fp: fp, query: req.Query, first: i})
		g := &sc.arena[len(sc.arena)-1]
		byFP[fp] = g
		if _, ok := groups[req.Key]; !ok {
			sc.keys = append(sc.keys, req.Key)
		}
		groups[req.Key] = append(groups[req.Key], g)
	}
	*bufp = buf
	fpPool.Put(bufp)
	keys := sc.keys

	// Carve per-key staging regions out of shared slices up front, so
	// the parallel workers below write disjoint ranges with no
	// allocation per model group.
	misses := len(sc.arena)
	if cap(sc.qs) < misses {
		sc.qs = make([]core.Query, misses)
		sc.preds = make([]float64, misses)
	}
	sc.qs = sc.qs[:misses]
	sc.preds = sc.preds[:misses]
	if cap(sc.offs) < len(keys) {
		sc.offs = make([]int, len(keys))
	}
	sc.offs = sc.offs[:len(keys)]
	off := 0
	for k, key := range keys {
		sc.offs[k] = off
		off += len(groups[key])
	}

	// One epoch snapshot covers the whole fan-out: every model read
	// happens after it, so a concurrent swap+invalidation moves the
	// epoch and blocks memoization of any possibly-stale group result.
	epoch := s.results.snapshot()
	parallel.ForEach(len(keys), s.workers, func(k int) {
		key := keys[k]
		miss := groups[key]
		region := sc.offs[k]
		if err := ctx.Err(); err != nil {
			for _, g := range miss {
				g.forEachIdx(func(i int) { out[i] = Response{Err: err} })
			}
			return
		}
		sm, err := s.reg.Get(ctx, key)
		if err != nil {
			for _, g := range miss {
				g.forEachIdx(func(i int) { out[i] = Response{Err: err} })
			}
			return
		}
		// Validate per request so one malformed query fails alone
		// instead of poisoning the whole forward pass.
		valid := miss[:0]
		for _, g := range miss {
			if err := sm.Validate(g.query); err != nil {
				g.forEachIdx(func(i int) { out[i] = Response{Err: err} })
				continue
			}
			valid = append(valid, g)
		}
		if len(valid) == 0 {
			return
		}
		// Last abandon point before the forward pass: the model is in
		// hand, but a dead request must not enter the GEMM path.
		if err := ctx.Err(); err != nil {
			for _, g := range valid {
				g.forEachIdx(func(i int) { out[i] = Response{Err: err} })
			}
			return
		}
		qs := sc.qs[region : region+len(valid)]
		for j, g := range valid {
			qs[j] = g.query
		}
		preds := sc.preds[region : region+len(valid)]
		if err := sm.PredictBatchInto(preds, qs); err != nil {
			for _, g := range valid {
				g.forEachIdx(func(i int) { out[i] = Response{Err: err} })
			}
			return
		}
		for j, g := range valid {
			s.results.put(g.fp, preds[j], epoch)
			v := preds[j]
			g.forEachIdx(func(i int) { out[i] = Response{RuntimeSec: v} })
		}
	})
	return out
}

func (s *Service) observe(start time.Time, n int) {
	s.latency.Observe(time.Since(start))
	s.calls.Inc()
	s.requests.Add(int64(n))
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	calls := s.calls.Load()
	mean := s.latency.Mean()
	allocCalls := s.allocCalls.Load()
	allocMean := s.allocLatency.Mean()
	st := Stats{
		Requests:       s.requests.Load(),
		Calls:          calls,
		ResultHits:     s.resultHits.Load(),
		ResultMisses:   s.resultMisses.Load(),
		ResultCacheLen: s.results.len(),
		MeanLatency:    mean,
		Registry:       s.reg.Stats(),
		Alloc: AllocStats{
			Requests:    allocCalls,
			Errors:      s.allocErrors.Load(),
			Violations:  s.allocViolations.Load(),
			Fallbacks:   s.allocFallbacks.Load(),
			MeanLatency: allocMean,
		},
	}
	if lc := s.loadctl.Load(); lc != nil {
		lcs := &LoadCtlStats{
			GateBypassed:    s.gateBypassed.Load(),
			DeadlineRejects: s.deadlineRejects.Load(),
			Draining:        s.draining.Load(),
		}
		if lc.Limiter != nil {
			ls := lc.Limiter.Stats()
			lcs.RateLimited = ls.Limited
			lcs.Clients = ls.Clients
			lcs.ClientsEvicted = ls.Evicted
		}
		if lc.Gate != nil {
			gs := lc.Gate.Stats()
			lcs.Admitted = gs.Admitted
			lcs.Queued = gs.Queued
			lcs.ShedQueueFull = gs.ShedQueueFull
			lcs.ShedTimeout = gs.ShedTimeout
			lcs.ShedCanceled = gs.ShedCanceled
			lcs.MeanQueueWait = gs.MeanQueueWait
		}
		st.LoadCtl = lcs
	}
	return st
}
