package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Options tunes a Service.
type Options struct {
	// ModelCap bounds the resident models (<= 0: DefaultModelCap).
	ModelCap int
	// ResultCap bounds the memoized prediction results
	// (<= 0: DefaultResultCap).
	ResultCap int
	// Workers bounds the per-batch fan-out across model groups
	// (<= 0: GOMAXPROCS).
	Workers int
}

// Request is one prediction request: which model to use and what to ask.
type Request struct {
	Key   ModelKey
	Query core.Query
}

// Response carries the per-request outcome of a batch.
type Response struct {
	// RuntimeSec is the predicted runtime in seconds (valid when Err is nil).
	RuntimeSec float64
	// Cached reports whether the result came from the result cache.
	Cached bool
	// Err is the per-request failure, if any.
	Err error
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts individual predictions asked for (batch items
	// included).
	Requests int64
	// Calls counts Predict/PredictBatch invocations.
	Calls int64
	// ResultHits / ResultMisses count result-cache outcomes.
	ResultHits   int64
	ResultMisses int64
	// ResultCacheLen is the current number of memoized results.
	ResultCacheLen int
	// MeanLatency is the average wall-clock time per call.
	MeanLatency time.Duration
	// Registry carries the model-registry counters.
	Registry RegistryStats
}

// Service answers runtime predictions against a registry of models,
// memoizing repeated queries and fanning batches across models. It is
// safe for concurrent use.
type Service struct {
	reg     *Registry
	results *resultCache
	workers int

	requests, calls          atomic.Int64
	resultHits, resultMisses atomic.Int64
	latencyNS                atomic.Int64
}

// NewService builds a service loading models through loader.
func NewService(loader Loader, opts Options) *Service {
	return &Service{
		reg:     NewRegistry(loader, opts.ModelCap),
		results: newResultCache(opts.ResultCap),
		workers: opts.Workers,
	}
}

// Registry exposes the underlying model registry (e.g. for warm-up).
func (s *Service) Registry() *Registry { return s.reg }

// Predict answers a single request.
func (s *Service) Predict(key ModelKey, q core.Query) Response {
	start := time.Now()
	defer s.observe(start, 1)
	return s.predictOne(key, q)
}

func (s *Service) predictOne(key ModelKey, q core.Query) Response {
	bufp := fpPool.Get().(*[]byte)
	fp := appendFingerprint((*bufp)[:0], key, q)
	v, ok := s.results.get(fp)
	if ok {
		*bufp = fp
		fpPool.Put(bufp)
		s.resultHits.Add(1)
		return Response{RuntimeSec: v, Cached: true}
	}
	fps := string(fp)
	*bufp = fp
	fpPool.Put(bufp)
	s.resultMisses.Add(1)
	sm, err := s.reg.Get(key)
	if err != nil {
		return Response{Err: err}
	}
	v, err = sm.Predict(q)
	if err != nil {
		return Response{Err: err}
	}
	s.results.put(fps, v)
	return Response{RuntimeSec: v}
}

// missGroup gathers the batch positions that share one distinct
// (model, query) fingerprint, so a query repeated within a batch costs
// one model row.
type missGroup struct {
	fp    string
	query core.Query
	idxs  []int
}

// PredictBatch answers many requests at once: result-cache hits are
// served immediately, the remaining distinct queries are grouped by
// model and run as one forward pass per model, with model groups fanned
// across CPU cores. Responses align with the input order.
func (s *Service) PredictBatch(reqs []Request) []Response {
	start := time.Now()
	defer s.observe(start, len(reqs))

	out := make([]Response, len(reqs))
	byFP := map[string]*missGroup{}
	groups := map[ModelKey][]*missGroup{}
	var keys []ModelKey
	bufp := fpPool.Get().(*[]byte)
	buf := *bufp
	for i, req := range reqs {
		buf = appendFingerprint(buf[:0], req.Key, req.Query)
		if v, ok := s.results.get(buf); ok {
			s.resultHits.Add(1)
			out[i] = Response{RuntimeSec: v, Cached: true}
			continue
		}
		s.resultMisses.Add(1)
		if g, ok := byFP[string(buf)]; ok { // allocation-free map index
			g.idxs = append(g.idxs, i)
			continue
		}
		fp := string(buf)
		g := &missGroup{fp: fp, query: req.Query, idxs: []int{i}}
		byFP[fp] = g
		if _, ok := groups[req.Key]; !ok {
			keys = append(keys, req.Key)
		}
		groups[req.Key] = append(groups[req.Key], g)
	}
	*bufp = buf
	fpPool.Put(bufp)

	parallel.ForEach(len(keys), s.workers, func(k int) {
		key := keys[k]
		miss := groups[key]
		sm, err := s.reg.Get(key)
		if err != nil {
			for _, g := range miss {
				for _, i := range g.idxs {
					out[i] = Response{Err: err}
				}
			}
			return
		}
		// Validate per request so one malformed query fails alone
		// instead of poisoning the whole forward pass.
		valid := miss[:0]
		for _, g := range miss {
			if err := sm.Validate(g.query); err != nil {
				for _, i := range g.idxs {
					out[i] = Response{Err: err}
				}
				continue
			}
			valid = append(valid, g)
		}
		if len(valid) == 0 {
			return
		}
		qs := make([]core.Query, len(valid))
		for j, g := range valid {
			qs[j] = g.query
		}
		preds := make([]float64, len(valid))
		if err := sm.PredictBatchInto(preds, qs); err != nil {
			for _, g := range valid {
				for _, i := range g.idxs {
					out[i] = Response{Err: err}
				}
			}
			return
		}
		for j, g := range valid {
			s.results.put(g.fp, preds[j])
			for _, i := range g.idxs {
				out[i] = Response{RuntimeSec: preds[j]}
			}
		}
	})
	return out
}

func (s *Service) observe(start time.Time, n int) {
	s.latencyNS.Add(int64(time.Since(start)))
	s.calls.Add(1)
	s.requests.Add(int64(n))
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	calls := s.calls.Load()
	var mean time.Duration
	if calls > 0 {
		mean = time.Duration(s.latencyNS.Load() / calls)
	}
	return Stats{
		Requests:       s.requests.Load(),
		Calls:          calls,
		ResultHits:     s.resultHits.Load(),
		ResultMisses:   s.resultMisses.Load(),
		ResultCacheLen: s.results.len(),
		MeanLatency:    mean,
		Registry:       s.reg.Stats(),
	}
}
