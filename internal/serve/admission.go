package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadctl"
)

// Request headers understood by the admission layer.
const (
	// ClientKeyHeader identifies the client for per-client rate
	// limiting; requests without it are keyed by remote address.
	ClientKeyHeader = "X-API-Key"
	// DeadlineHeader carries the client's remaining latency budget in
	// milliseconds. The server derives a context deadline from it
	// (capped at LoadControl.MaxDeadline), so work whose budget has
	// run out is abandoned instead of computed for nobody.
	DeadlineHeader = "X-Deadline-Ms"
)

var (
	errRateLimited = errors.New("serve: client rate limit exceeded")
	errOverloaded  = errors.New("serve: server overloaded, retry later")
)

// clientKey identifies the requester for rate limiting: the API key
// header when present, else the host part of the remote address (so
// all connections from one host share a bucket regardless of port).
// Substring-only — no allocation on the admit path.
func clientKey(r *http.Request) string {
	if k := r.Header.Get(ClientKeyHeader); k != "" {
		return k
	}
	addr := r.RemoteAddr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// rateLimit runs the per-client token bucket against the request
// headers (the body is untouched, so a limited client is answered
// before its upload is read). A false return means the 429 response
// has been written.
func (s *Service) rateLimit(w http.ResponseWriter, r *http.Request) bool {
	lc := s.loadctl.Load()
	if lc == nil || lc.Limiter == nil {
		return true
	}
	ok, retryAfter := lc.Limiter.Allow(clientKey(r), time.Now())
	if ok {
		return true
	}
	// Ceil to whole seconds: Retry-After of 0 would mean "now".
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	httpError(w, http.StatusTooManyRequests, errRateLimited)
	return false
}

// admit passes the request through the admission gate at the given
// cost. On admission it returns a release func (never nil) to defer;
// a false return means the rejection response has been written. The
// gate is waited on under ctx, so a client that disconnects or blows
// its deadline while queued frees its queue slot immediately.
func (s *Service) admit(ctx context.Context, w http.ResponseWriter, cost loadctl.Cost) (func(), bool) {
	lc := s.loadctl.Load()
	if lc == nil || lc.Gate == nil {
		return func() {}, true
	}
	if err := lc.Gate.Acquire(ctx, cost); err != nil {
		if errors.Is(err, loadctl.ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, errOverloaded)
		} else {
			// Context ended while queued: the client is gone or out of
			// budget; 504 documents the abandoned wait.
			s.deadlineRejects.Add(1)
			httpError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: request abandoned while queued: %w", err))
		}
		return nil, false
	}
	return lc.Gate.Release, true
}

// requestContext derives the handler context from the client's
// deadline budget header. Absent (or unparseable) headers fall back to
// the request's own context; a present budget is capped at the
// configured MaxDeadline so a client cannot pin server resources with
// an hour-long deadline.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	lc := s.loadctl.Load()
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return r.Context(), func() {}
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return r.Context(), func() {}
	}
	budget := time.Duration(ms) * time.Millisecond
	maxD := DefaultMaxDeadline
	if lc != nil && lc.MaxDeadline > 0 {
		maxD = lc.MaxDeadline
	}
	if budget > maxD {
		budget = maxD
	}
	return context.WithTimeout(r.Context(), budget)
}

// isDeadline reports whether err is a context expiry (server-side
// deadline or client disconnect), which the HTTP layer answers 504.
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// writeDeadlineError answers a request whose budget ran out and counts
// it.
func (s *Service) writeDeadlineError(w http.ResponseWriter, err error) {
	s.deadlineRejects.Add(1)
	httpError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: deadline exceeded: %w", err))
}
