package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/loadctl"
	"repro/internal/obs"
)

// Request headers understood by the admission layer.
const (
	// ClientKeyHeader identifies the client for per-client rate
	// limiting; requests without it are keyed by remote address.
	ClientKeyHeader = "X-API-Key"
	// DeadlineHeader carries the client's remaining latency budget in
	// milliseconds. The server derives a context deadline from it
	// (capped at LoadControl.MaxDeadline), so work whose budget has
	// run out is abandoned instead of computed for nobody.
	DeadlineHeader = "X-Deadline-Ms"
)

var (
	errRateLimited = errors.New("serve: client rate limit exceeded")
	errOverloaded  = errors.New("serve: server overloaded, retry later")
)

// ClientKey identifies the requester for rate limiting: the API key
// header when present, else the host part of the remote address (so
// all connections from one host share a bucket regardless of port).
// Substring-only — no allocation on the admit path. The shard router
// shares it so a client is one bucket regardless of topology.
func ClientKey(r *http.Request) string {
	if k := r.Header.Get(ClientKeyHeader); k != "" {
		return k
	}
	addr := r.RemoteAddr
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// rateLimit runs the per-client token bucket against the request
// headers (the body is untouched, so a limited client is answered
// before its upload is read). A false return means the 429 response
// has been written.
func (s *Service) rateLimit(w http.ResponseWriter, r *http.Request) bool {
	lc := s.loadctl.Load()
	if lc == nil || lc.Limiter == nil {
		return true
	}
	ok, retryAfter := lc.Limiter.Allow(ClientKey(r), time.Now())
	if ok {
		return true
	}
	api.WriteError(w, http.StatusTooManyRequests,
		api.Errorf(api.CodeRateLimited, "%v", errRateLimited).WithRetryAfter(retryAfter))
	return false
}

// admit passes the request through the admission gate at the given
// cost, recording the gate_wait span on tr (nil for untraced
// requests). On admission it returns a release func (never nil) to
// defer; a false return means the rejection response has been written.
// The gate is waited on under ctx, so a client that disconnects or
// blows its deadline while queued frees its queue slot immediately.
func (s *Service) admit(ctx context.Context, w http.ResponseWriter, cost loadctl.Cost, tr *obs.Trace) (func(), bool) {
	lc := s.loadctl.Load()
	if lc == nil || lc.Gate == nil {
		return func() {}, true
	}
	t0 := tr.Clock()
	if err := lc.Gate.Acquire(ctx, cost); err != nil {
		if errors.Is(err, loadctl.ErrOverloaded) {
			api.WriteError(w, http.StatusServiceUnavailable,
				api.Errorf(api.CodeOverloaded, "%v", errOverloaded).WithRetryAfter(time.Second))
		} else {
			// Context ended while queued: the client is gone or out of
			// budget; 504 documents the abandoned wait. The gate_wait
			// span is recorded first so the envelope shows where the
			// budget went.
			tr.Record(obs.StageGateWait, -1, t0)
			s.deadlineRejects.Add(1)
			e := api.Errorf(api.CodeDeadlineExceeded, "serve: request abandoned while queued: %v", err)
			api.WriteError(w, http.StatusGatewayTimeout, attachTrace(e, tr))
		}
		return nil, false
	}
	tr.Record(obs.StageGateWait, -1, t0)
	return lc.Gate.Release, true
}

// attachTrace annotates a deadline-expiry envelope with the trace ID
// and the spans recorded before the budget ran out.
func attachTrace(e *api.Error, tr *obs.Trace) *api.Error {
	if tr != nil {
		e.TraceID = tr.ID()
		e.Spans = SpanSummaries(tr.Spans())
	}
	return e
}

// RequestContext derives a handler context from the client's deadline
// budget header. Absent (or unparseable) headers fall back to the
// request's own context; a present budget is capped at maxDeadline
// (<= 0 selects DefaultMaxDeadline) so a client cannot pin server
// resources with an hour-long deadline.
func RequestContext(r *http.Request, maxDeadline time.Duration) (context.Context, context.CancelFunc) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return r.Context(), func() {}
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return r.Context(), func() {}
	}
	budget := time.Duration(ms) * time.Millisecond
	if maxDeadline <= 0 {
		maxDeadline = DefaultMaxDeadline
	}
	if budget > maxDeadline {
		budget = maxDeadline
	}
	return context.WithTimeout(r.Context(), budget)
}

// requestContext is RequestContext with the service's configured cap.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	var maxD time.Duration
	if lc := s.loadctl.Load(); lc != nil {
		maxD = lc.MaxDeadline
	}
	return RequestContext(r, maxD)
}

// IsDeadline reports whether err is a context expiry (server-side
// deadline or client disconnect), which the HTTP layer answers 504.
func IsDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func isDeadline(err error) bool { return IsDeadline(err) }

// writeDeadlineError answers a request whose budget ran out and counts
// it; a live trace annotates the envelope with the spans recorded up
// to expiry.
func (s *Service) writeDeadlineError(w http.ResponseWriter, err error, tr *obs.Trace) {
	s.deadlineRejects.Add(1)
	e := api.Errorf(api.CodeDeadlineExceeded, "serve: deadline exceeded: %v", err)
	api.WriteError(w, http.StatusGatewayTimeout, attachTrace(e, tr))
}
