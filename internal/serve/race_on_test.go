//go:build race

package serve

// raceEnabled reports whether the race detector is active. Allocation
// pins are skipped under it: sync.Pool intentionally drops items in
// race mode, so pooled fast paths allocate there by design.
const raceEnabled = true
