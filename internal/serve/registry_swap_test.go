package serve

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
)

// quantClose compares a served (float32-quantized) prediction against a
// float64 reference within the documented quantization bound.
func quantClose(got, want float64) bool {
	return math.Abs(got-want) <= 1e-3*(1+math.Abs(want))
}

// loadTrained decodes a fresh trained model for a seed.
func loadTrained(t testing.TB, seed int64) *core.Model {
	t.Helper()
	m, err := core.Load(bytes.NewReader(trainedModelBytes(t, seed)))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return m
}

func TestRegistrySwapInstallsNewVersion(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 4)
	key := ModelKey{Job: "sort", Env: "c3o"}

	ref, err := reg.GetRef(context.Background(), key)
	if err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	if ref.Version != 1 {
		t.Fatalf("initial version = %d, want 1", ref.Version)
	}
	q := testQuery(4, 10000)
	oldPred, err := ref.Model.Predict(q)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}

	replacement := loadTrained(t, 99)
	wantNew, err := replacement.Predict(q.ScaleOut, q.Essential, q.Optional)
	if err != nil {
		t.Fatalf("replacement Predict: %v", err)
	}
	if wantNew == oldPred {
		t.Fatal("test models predict identically; swap would be unobservable")
	}
	version, ok := reg.Swap(key, ref.Gen, replacement)
	if !ok || version != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, true)", version, ok)
	}
	if v, ok := reg.Version(key); !ok || v != 2 {
		t.Fatalf("Version = (%d, %v), want (2, true)", v, ok)
	}

	// New Gets see the new version; the old reference keeps serving the
	// old weights (in-flight predictions finish undisturbed).
	sm, err := reg.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get after swap: %v", err)
	}
	got, err := sm.Predict(q)
	if err != nil {
		t.Fatalf("Predict after swap: %v", err)
	}
	if !quantClose(got, wantNew) {
		t.Fatalf("swapped model predicts %v, want %v", got, wantNew)
	}
	still, err := ref.Model.Predict(q)
	if err != nil {
		t.Fatalf("old ref Predict: %v", err)
	}
	if still != oldPred {
		t.Fatalf("old reference changed prediction after swap: %v != %v", still, oldPred)
	}
	// No reload happened: the swap installed an in-memory model.
	if n := cl.count(key).Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	if st := reg.Stats(); st.Swaps != 1 || st.SwapsSkipped != 0 {
		t.Fatalf("stats swaps=%d skipped=%d, want 1/0", st.Swaps, st.SwapsSkipped)
	}
}

// TestRegistrySwapRefusesEvictedGeneration is the eviction-race
// coverage: a model version evicted while a fine-tune derives from it
// must not be resurrected by the late Swap, and the next Get must load
// fresh weights from the loader instead of serving the derived clone.
func TestRegistrySwapRefusesEvictedGeneration(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 2)
	a := ModelKey{Job: "sort"}

	ref, err := reg.GetRef(context.Background(), a)
	if err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	// Derive a "fine-tuned" clone and poison its weights so serving it
	// would be detectable.
	clone, err := ref.Model.CloneCore()
	if err != nil {
		t.Fatalf("CloneCore: %v", err)
	}
	for _, p := range clone.Params() {
		p.Value.Fill(1e9)
	}

	// Evict a by filling the 2-slot registry with other keys.
	for _, k := range []ModelKey{{Job: "grep"}, {Job: "sgd"}} {
		if _, err := reg.Get(context.Background(), k); err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	if _, ok := reg.Version(a); ok {
		t.Fatal("key a still resident after eviction pressure")
	}

	if v, ok := reg.Swap(a, ref.Gen, clone); ok {
		t.Fatalf("Swap installed v%d onto an evicted generation", v)
	}
	if st := reg.Stats(); st.SwapsSkipped != 1 || st.Swaps != 0 {
		t.Fatalf("stats swaps=%d skipped=%d, want 0/1", st.Swaps, st.SwapsSkipped)
	}

	// The next Get reloads from the loader — fresh weights, version 1,
	// not the poisoned clone.
	sm, err := reg.Get(context.Background(), a)
	if err != nil {
		t.Fatalf("Get after refused swap: %v", err)
	}
	if n := cl.count(a).Load(); n != 2 {
		t.Fatalf("loader ran %d times, want 2 (initial + reload)", n)
	}
	if v, ok := reg.Version(a); !ok || v != 1 {
		t.Fatalf("reloaded version = (%d, %v), want (1, true)", v, ok)
	}
	q := testQuery(4, 10000)
	got, err := sm.Predict(q)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	want, err := loadTrained(t, int64(len(a.Job))).Predict(q.ScaleOut, q.Essential, q.Optional)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	if !quantClose(got, want) {
		t.Fatalf("reloaded model predicts %v, want fresh-weights prediction %v", got, want)
	}
}

// TestRegistrySwapRefusesReloadedGeneration: evict + reload gives the
// key a new generation; a swap holding the old generation token must
// still be refused even though the key is resident again.
func TestRegistrySwapRefusesReloadedGeneration(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 1)
	a := ModelKey{Job: "sort"}

	ref, err := reg.GetRef(context.Background(), a)
	if err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	if _, err := reg.Get(context.Background(), ModelKey{Job: "grep"}); err != nil { // evicts a
		t.Fatalf("Get: %v", err)
	}
	if _, err := reg.Get(context.Background(), a); err != nil { // reloads a under a new generation
		t.Fatalf("Get: %v", err)
	}
	clone, err := ref.Model.CloneCore()
	if err != nil {
		t.Fatalf("CloneCore: %v", err)
	}
	if _, ok := reg.Swap(a, ref.Gen, clone); ok {
		t.Fatal("Swap accepted a generation from before the reload")
	}
	if v, _ := reg.Version(a); v != 1 {
		t.Fatalf("version = %d, want 1 (untouched reload)", v)
	}
}

// TestRegistrySwapConcurrentWithGets hammers Get/GetRef/Swap/eviction
// from many goroutines; run under -race this pins the lock discipline
// of the versioned slots.
func TestRegistrySwapConcurrentWithGets(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 2)
	key := ModelKey{Job: "sort", Env: "c3o"}
	evictors := []ModelKey{{Job: "grep"}, {Job: "sgd"}, {Job: "kmeans"}}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := testQuery(2+2*(g%6), 10000)
			for it := 0; it < 20; it++ {
				switch it % 3 {
				case 0:
					ref, err := reg.GetRef(context.Background(), key)
					if err != nil {
						t.Errorf("GetRef: %v", err)
						return
					}
					clone, err := ref.Model.CloneCore()
					if err != nil {
						t.Errorf("CloneCore: %v", err)
						return
					}
					reg.Swap(key, ref.Gen, clone) // may be refused; both outcomes legal
				case 1:
					sm, err := reg.Get(context.Background(), key)
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if _, err := sm.Predict(q); err != nil {
						t.Errorf("Predict: %v", err)
						return
					}
				case 2:
					if _, err := reg.Get(context.Background(), evictors[(g+it)%len(evictors)]); err != nil {
						t.Errorf("Get evictor: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := reg.Stats()
	if st.Swaps == 0 && st.SwapsSkipped == 0 {
		t.Fatal("hammer performed no swap attempts")
	}
}

func TestServiceInvalidateResultsDropsOnlyThatModel(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	k1 := ModelKey{Job: "sort", Env: "c3o"}
	k2 := ModelKey{Job: "grep", Env: "c3o"}
	q := testQuery(4, 10000)

	svc.Predict(context.Background(), k1, q)
	svc.Predict(context.Background(), k2, q)
	if n := svc.InvalidateResults(k1); n != 1 {
		t.Fatalf("invalidated %d results, want 1", n)
	}
	if r := svc.Predict(context.Background(), k2, q); !r.Cached {
		t.Fatal("other model's memoized result was dropped")
	}
	if r := svc.Predict(context.Background(), k1, q); r.Cached {
		t.Fatal("invalidated result still served from cache")
	}
}

// TestWarmPredictZeroAllocAfterSwap pins the acceptance criterion that
// hot-swapping preserves allocation-free warm serving: after a swap
// and one priming call, repeated predictions on the new version
// allocate nothing.
func TestWarmPredictZeroAllocAfterSwap(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 4096)
	if r := svc.Predict(context.Background(), key, q); r.Err != nil {
		t.Fatalf("cold Predict: %v", r.Err)
	}

	ref, err := svc.Registry().GetRef(context.Background(), key)
	if err != nil {
		t.Fatalf("GetRef: %v", err)
	}
	if _, ok := svc.Registry().Swap(key, ref.Gen, loadTrained(t, 99)); !ok {
		t.Fatal("Swap refused")
	}
	svc.InvalidateResults(key)

	// Prime: one miss against the new version warms the result cache
	// and the new model's workspace.
	if r := svc.Predict(context.Background(), key, q); r.Err != nil || r.Cached {
		t.Fatalf("priming Predict = %+v, want uncached success", r)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r := svc.Predict(context.Background(), key, q)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.Cached {
			t.Fatal("expected a cache hit")
		}
	}); allocs != 0 {
		t.Fatalf("warm Predict after swap allocs/op = %v, want 0", allocs)
	}

	// The model-level warm path stays allocation-free on the swapped
	// version too: repeated batched inference through the registry
	// model reuses its workspace.
	sm, err := svc.Registry().Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	qs := []core.Query{q, testQuery(8, 4096)}
	dst := make([]float64, len(qs))
	if err := sm.PredictBatchInto(dst, qs); err != nil {
		t.Fatalf("PredictBatchInto: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := sm.PredictBatchInto(dst, qs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm PredictBatchInto after swap allocs/op = %v, want 0", allocs)
	}
}
