package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/loadctl"
)

// decodeEnvelope asserts raw is the unified error envelope
// {"error":{"code","message",...}} and returns the typed error.
func decodeEnvelope(t testing.TB, raw []byte) *api.Error {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		t.Fatalf("body %q is not the error envelope", raw)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope %q missing code or message", raw)
	}
	return env.Error
}

// TestErrorEnvelopeOnEveryRoute sweeps every route and rejection class
// of the /v1 surface and asserts each non-2xx answer carries the
// unified envelope with the documented code — the acceptance criterion
// that no error path still speaks an ad-hoc shape.
func TestErrorEnvelopeOnEveryRoute(t *testing.T) {
	srv, svc := newTestServer(t)

	// 400 malformed JSON and 413 oversized body on every POST route.
	huge := append([]byte(`{"job":"`), bytes.Repeat([]byte("x"), MaxBodyBytes+16)...)
	huge = append(huge, '"', '}')
	for _, route := range postRoutes {
		resp, raw := postRaw(t, srv.URL+route, []byte("{nope"), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s malformed: status %d, want 400", route, resp.StatusCode)
		}
		if e := decodeEnvelope(t, raw); e.Code != api.CodeBadRequest {
			t.Fatalf("%s malformed: code %q, want %q", route, e.Code, api.CodeBadRequest)
		}
		resp, raw = postRaw(t, srv.URL+route, huge, nil)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized: status %d, want 413", route, resp.StatusCode)
		}
		if e := decodeEnvelope(t, raw); e.Code != api.CodePayloadTooLarge {
			t.Fatalf("%s oversized: code %q, want %q", route, e.Code, api.CodePayloadTooLarge)
		}
	}

	// 400 semantic validation (missing job) on the typed routes.
	for _, tc := range []struct {
		route string
		body  string
	}{
		{"/v1/predict", `{"env":"c3o","scale_out":2,"essential":[]}`},
		{"/v1/allocate", `{"env":"c3o","min_scale_out":2,"max_scale_out":4,"deadline_sec":10,"cost_per_node_hour":1}`},
		{"/v1/observe", `{"env":"c3o","runtime_sec":5,"essential":[]}`},
	} {
		resp, raw := postRaw(t, srv.URL+tc.route, []byte(tc.body), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s missing job: status %d, want 400", tc.route, resp.StatusCode)
		}
		if e := decodeEnvelope(t, raw); e.Code != api.CodeBadRequest {
			t.Fatalf("%s missing job: code %q, want %q", tc.route, e.Code, api.CodeBadRequest)
		}
	}

	// 503 observe without a lifecycle attached.
	obsBody, _ := json.Marshal(wireObservation(4, 10000, 55))
	resp, raw := postRaw(t, srv.URL+"/v1/observe", obsBody, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe disabled: status %d, want 503", resp.StatusCode)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeObserveDisabled {
		t.Fatalf("observe disabled: code %q, want %q", e.Code, api.CodeObserveDisabled)
	}

	// 429 observe capacity (retriable, carries a retry hint).
	svc.AttachObserver(&recordingObserver{capacity: 1})
	if resp, _ := postRaw(t, srv.URL+"/v1/observe", obsBody, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first observe: status %d, want 202", resp.StatusCode)
	}
	resp, raw = postRaw(t, srv.URL+"/v1/observe", obsBody, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("observe capacity: status %d, want 429", resp.StatusCode)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeObserveCapacity || e.RetryAfterMs <= 0 {
		t.Fatalf("observe capacity: envelope %+v, want code %q with retry hint", e, api.CodeObserveCapacity)
	}

	// 503 healthz while draining.
	svc.SetDraining(true)
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	svc.SetDraining(false)
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", hresp.StatusCode)
	}
	if e := decodeEnvelope(t, hraw); e.Code != api.CodeDraining {
		t.Fatalf("draining healthz: code %q, want %q", e.Code, api.CodeDraining)
	}
}

// TestErrorEnvelope404ModelNotFound pins the allocate route's 404.
func TestErrorEnvelope404ModelNotFound(t *testing.T) {
	cl := &countingLoader{t: t}
	cl.failNext(ModelKey{Job: "sort", Env: "c3o"}, 1000)
	svc := NewService(cl.load, Options{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(wireAllocateRequest(100))
	resp, raw := postRaw(t, srv.URL+"/v1/allocate", body, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeModelNotFound {
		t.Fatalf("code %q, want %q", e.Code, api.CodeModelNotFound)
	}
}

// TestErrorEnvelope503Overloaded pins the gate-shed rejection shape.
func TestErrorEnvelope503Overloaded(t *testing.T) {
	cl := &countingLoader{t: t}
	block := make(chan struct{})
	loader := func(key ModelKey) (*core.Model, error) {
		<-block
		return cl.load(key)
	}
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 5 * time.Second})
	srv, _ := newServerWith(t, loader, Options{}, LoadControl{Gate: gate})

	body, _ := json.Marshal(wireRequest(2, 10000))
	finished := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			postRaw(t, srv.URL+"/v1/predict", body, nil)
			finished <- struct{}{}
		}()
	}
	waitUntil(t, "gate saturated", func() bool {
		st := gate.Stats()
		return st.InFlight == 1 && st.Waiting == 1
	})
	resp, raw := postRaw(t, srv.URL+"/v1/predict", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if e := decodeEnvelope(t, raw); e.Code != api.CodeOverloaded || e.RetryAfterMs <= 0 {
		t.Fatalf("envelope %+v, want code %q with retry hint", e, api.CodeOverloaded)
	}
	close(block)
	<-finished
	<-finished
}
