package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelFileName(t *testing.T) {
	if got := ModelFileName(ModelKey{Job: "sort", Env: "c3o"}); got != "sort_c3o.model" {
		t.Fatalf("ModelFileName = %q, want sort_c3o.model", got)
	}
	if got := ModelFileName(ModelKey{Job: "sort"}); got != "sort.model" {
		t.Fatalf("ModelFileName without env = %q, want sort.model", got)
	}
}

func TestDirLoaderMissingDir(t *testing.T) {
	loader := DirLoader(filepath.Join(t.TempDir(), "does-not-exist"))
	_, err := loader(ModelKey{Job: "sort", Env: "c3o"})
	if err == nil {
		t.Fatal("loader succeeded against a missing directory")
	}
	if !strings.Contains(err.Error(), "reading model file") {
		t.Fatalf("error %q does not identify the file read failure", err)
	}
}

func TestDirLoaderMissingFile(t *testing.T) {
	loader := DirLoader(t.TempDir()) // exists, but holds no models
	if _, err := loader(ModelKey{Job: "sort", Env: "c3o"}); err == nil {
		t.Fatal("loader succeeded for a model file that does not exist")
	}
}

func TestDirLoaderCorruptModelFile(t *testing.T) {
	dir := t.TempDir()
	key := ModelKey{Job: "sort", Env: "c3o"}
	path := filepath.Join(dir, ModelFileName(key))
	if err := os.WriteFile(path, []byte("this is not a gob-encoded model"), 0o644); err != nil {
		t.Fatalf("writing corrupt file: %v", err)
	}
	loader := DirLoader(dir)
	_, err := loader(key)
	if err == nil {
		t.Fatal("loader decoded a corrupt model file")
	}
	if !strings.Contains(err.Error(), "decoding model") {
		t.Fatalf("error %q does not identify the decode failure", err)
	}
}

func TestDirLoaderTruncatedModelFile(t *testing.T) {
	dir := t.TempDir()
	key := ModelKey{Job: "sort", Env: "c3o"}
	// A valid prefix of a real model: decoding must fail cleanly, not
	// produce a half-restored model.
	cl := &countingLoader{t: t}
	m, err := cl.load(key)
	if err != nil {
		t.Fatalf("building reference model: %v", err)
	}
	full := filepath.Join(dir, ModelFileName(key))
	if err := m.SaveFile(full); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(full, b[:len(b)/3], 0o644); err != nil {
		t.Fatalf("truncating: %v", err)
	}
	if _, err := DirLoader(dir)(key); err == nil {
		t.Fatal("loader decoded a truncated model file")
	}
}

// TestServiceSurfacesLoaderErrors pins the loader error path through the
// full service: a missing model answers the request with an error (and
// counts a load failure) instead of wedging the registry entry.
func TestServiceSurfacesLoaderErrors(t *testing.T) {
	svc := NewService(DirLoader(t.TempDir()), Options{})
	r := svc.Predict(context.Background(), ModelKey{Job: "sort", Env: "c3o"}, testQuery(4, 10000))
	if r.Err == nil {
		t.Fatal("prediction against an empty model dir succeeded")
	}
	if st := svc.Stats(); st.Registry.LoadErrors != 1 {
		t.Fatalf("LoadErrors = %d, want 1", st.Registry.LoadErrors)
	}
}
