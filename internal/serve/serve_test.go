package serve

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
)

// testConfig shrinks the architecture and training budget so the suite
// stays fast while exercising the full serving paths.
func testConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.PropertySize = 16
	cfg.EncodingDim = 3
	cfg.EncoderHidden = 6
	cfg.ScaleOutHidden = 8
	cfg.ScaleOutDim = 4
	cfg.PredictorHidden = 6
	cfg.PretrainEpochs = 25
	cfg.Seed = seed
	return cfg
}

// trainedModelBytes pre-trains a tiny model on an Ernest-style synthetic
// curve and returns its serialized form, memoized per seed so tests and
// benchmarks share the (relatively) expensive training step.
var trainedModelBytes = func() func(t testing.TB, seed int64) []byte {
	var mu sync.Mutex
	cache := map[int64][]byte{}
	return func(t testing.TB, seed int64) []byte {
		mu.Lock()
		defer mu.Unlock()
		if b, ok := cache[seed]; ok {
			return b
		}
		m, err := core.New(testConfig(seed))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := m.Pretrain(trainSamples(seed)); err != nil {
			t.Fatalf("Pretrain: %v", err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		cache[seed] = buf.Bytes()
		return cache[seed]
	}
}()

func trainSamples(seed int64) []core.Sample {
	var out []core.Sample
	for c := 0; c < 3; c++ {
		factor := 1 + 0.4*float64(c+int(seed%3))
		for _, x := range []int{2, 4, 6, 8, 10, 12} {
			fx := float64(x)
			runtime := factor * (30 + 400/fx + 10*math.Log(fx) + 1.2*fx)
			out = append(out, core.Sample{
				ScaleOut:   x,
				Essential:  essentialProps(10000 + c*4000),
				Optional:   optionalProps(),
				RuntimeSec: runtime,
			})
		}
	}
	return out
}

func essentialProps(sizeMB int) []encoding.Property {
	return []encoding.Property{
		{Name: "dataset_size_mb", Value: strconv.Itoa(sizeMB)},
		{Name: "dataset_characteristics", Value: "uniform"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "node_type", Value: "m4.xlarge"},
	}
}

func optionalProps() []encoding.Property {
	return []encoding.Property{
		{Name: "memory_mb", Value: "16384", Optional: true},
		{Name: "cpu_cores", Value: "4", Optional: true},
	}
}

// countingLoader decodes a fixed trained model per key and counts loads.
type countingLoader struct {
	t     testing.TB
	loads sync.Map // ModelKey -> *atomic.Int64
	fail  sync.Map // ModelKey -> *atomic.Int64 (remaining failures)
}

func (cl *countingLoader) count(key ModelKey) *atomic.Int64 {
	c, _ := cl.loads.LoadOrStore(key, new(atomic.Int64))
	return c.(*atomic.Int64)
}

func (cl *countingLoader) failNext(key ModelKey, n int64) {
	c := new(atomic.Int64)
	c.Store(n)
	cl.fail.Store(key, c)
}

func (cl *countingLoader) load(key ModelKey) (*core.Model, error) {
	cl.count(key).Add(1)
	if c, ok := cl.fail.Load(key); ok && c.(*atomic.Int64).Add(-1) >= 0 {
		return nil, fmt.Errorf("injected failure for %s", key)
	}
	seed := int64(len(key.Job) + len(key.Env))
	return core.Load(bytes.NewReader(trainedModelBytes(cl.t, seed)))
}

func testQuery(scaleOut, sizeMB int) core.Query {
	return core.Query{
		ScaleOut:  scaleOut,
		Essential: essentialProps(sizeMB),
		Optional:  optionalProps(),
	}
}

func TestRegistrySingleFlight(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 4)
	key := ModelKey{Job: "sort", Env: "c3o"}

	const goroutines = 32
	models := make([]*Model, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sm, err := reg.Get(context.Background(), key)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			models[g] = sm
		}(g)
	}
	wg.Wait()
	if n := cl.count(key).Load(); n != 1 {
		t.Fatalf("loader ran %d times for one key, want exactly 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if models[g] != models[0] {
			t.Fatalf("goroutine %d got a different model instance", g)
		}
	}
}

func TestRegistryDistinctKeysConcurrent(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 16)
	keys := []ModelKey{
		{Job: "sort", Env: "c3o"}, {Job: "grep", Env: "c3o"},
		{Job: "sgd", Env: "bell"}, {Job: "kmeans", Env: "c3o"},
	}
	const perKey = 16
	var wg sync.WaitGroup
	for _, key := range keys {
		for g := 0; g < perKey; g++ {
			wg.Add(1)
			go func(key ModelKey) {
				defer wg.Done()
				if _, err := reg.Get(context.Background(), key); err != nil {
					t.Errorf("Get(%s): %v", key, err)
				}
			}(key)
		}
	}
	wg.Wait()
	for _, key := range keys {
		if n := cl.count(key).Load(); n != 1 {
			t.Fatalf("loader ran %d times for %s, want exactly 1", n, key)
		}
	}
	st := reg.Stats()
	if st.Loads != int64(len(keys)) {
		t.Fatalf("Stats.Loads = %d, want %d", st.Loads, len(keys))
	}
	if st.Hits+st.Misses != int64(len(keys)*perKey) {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, len(keys)*perKey)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	cl := &countingLoader{t: t}
	reg := NewRegistry(cl.load, 2)
	a := ModelKey{Job: "sort"}
	b := ModelKey{Job: "grep"}
	c := ModelKey{Job: "sgd"}

	for _, k := range []ModelKey{a, b, c} {
		if _, err := reg.Get(context.Background(), k); err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	if n := reg.Len(); n != 2 {
		t.Fatalf("registry holds %d models, want 2", n)
	}
	if ev := reg.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// a was least recently used and must reload; c stays resident.
	if _, err := reg.Get(context.Background(), a); err != nil {
		t.Fatalf("Get(a) after eviction: %v", err)
	}
	if n := cl.count(a).Load(); n != 2 {
		t.Fatalf("loader ran %d times for evicted key, want 2", n)
	}
	if n := cl.count(c).Load(); n != 1 {
		t.Fatalf("loader ran %d times for resident key, want 1", n)
	}
}

func TestRegistryLoadErrorRetries(t *testing.T) {
	cl := &countingLoader{t: t}
	key := ModelKey{Job: "sort"}
	cl.failNext(key, 1)
	reg := NewRegistry(cl.load, 4)

	if _, err := reg.Get(context.Background(), key); err == nil {
		t.Fatal("Get succeeded despite injected load failure")
	}
	if st := reg.Stats(); st.LoadErrors != 1 {
		t.Fatalf("LoadErrors = %d, want 1", st.LoadErrors)
	}
	// The failure must not be cached.
	if _, err := reg.Get(context.Background(), key); err != nil {
		t.Fatalf("Get after failed load: %v", err)
	}
	if n := cl.count(key).Load(); n != 2 {
		t.Fatalf("loader ran %d times, want 2 (fail then retry)", n)
	}
}

func TestServicePredictMatchesModelAndCaches(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 10000)

	direct, err := core.Load(bytes.NewReader(trainedModelBytes(t, int64(len(key.Job)+len(key.Env)))))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want, err := direct.Predict(q.ScaleOut, q.Essential, q.Optional)
	if err != nil {
		t.Fatalf("direct Predict: %v", err)
	}

	r1 := svc.Predict(context.Background(), key, q)
	if r1.Err != nil {
		t.Fatalf("Predict: %v", r1.Err)
	}
	if r1.Cached {
		t.Fatal("first prediction reported as cached")
	}
	// The service serves through the quantized float32 path; predictions
	// track the float64 model within the quantization bound (see
	// core.TestQuantizedPredictionAccuracy), not bit-exactly.
	if math.Abs(r1.RuntimeSec-want) > 1e-3*(1+math.Abs(want)) {
		t.Fatalf("served prediction %v != direct prediction %v", r1.RuntimeSec, want)
	}
	r2 := svc.Predict(context.Background(), key, q)
	if !r2.Cached || r2.RuntimeSec != r1.RuntimeSec {
		t.Fatalf("second prediction cached=%v value=%v, want cached copy of %v", r2.Cached, r2.RuntimeSec, r1.RuntimeSec)
	}
	st := svc.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 1 {
		t.Fatalf("result hits/misses = %d/%d, want 1/1", st.ResultHits, st.ResultMisses)
	}
}

func TestPredictBatchMatchesSequential(t *testing.T) {
	cl := &countingLoader{t: t}
	svcSeq := NewService(cl.load, Options{})
	svcBatch := NewService(cl.load, Options{})
	keys := []ModelKey{{Job: "sort", Env: "c3o"}, {Job: "sgd", Env: "bell"}}

	var reqs []Request
	for _, key := range keys {
		for x := 2; x <= 12; x += 2 {
			reqs = append(reqs, Request{Key: key, Query: testQuery(x, 12000)})
		}
	}
	var want []float64
	for _, req := range reqs {
		r := svcSeq.Predict(context.Background(), req.Key, req.Query)
		if r.Err != nil {
			t.Fatalf("sequential Predict: %v", r.Err)
		}
		want = append(want, r.RuntimeSec)
	}
	got := svcBatch.PredictBatch(context.Background(), reqs)
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("batch response %d: %v", i, r.Err)
		}
		// Batch rows and single-query rows may take different kernel
		// block paths (asm 4-row blocks vs scalar tail), so agreement is
		// to float32 kernel rounding, not bit-exact.
		if math.Abs(r.RuntimeSec-want[i]) > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("batch response %d = %v, sequential = %v", i, r.RuntimeSec, want[i])
		}
	}
}

func TestPredictBatchDedupsRepeatedQueries(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	key := ModelKey{Job: "sort"}
	q := testQuery(6, 10000)
	reqs := []Request{{key, q}, {key, q}, {key, q}}

	out := svc.PredictBatch(context.Background(), reqs)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("response %d: %v", i, r.Err)
		}
		if r.RuntimeSec != out[0].RuntimeSec {
			t.Fatalf("repeated query diverged: %v vs %v", r.RuntimeSec, out[0].RuntimeSec)
		}
	}
	// All three shared one model row: one miss, zero hits (dedup happens
	// before the cache is filled), and a single memoized result.
	st := svc.Stats()
	if st.ResultMisses != 3 || st.ResultCacheLen != 1 {
		t.Fatalf("misses=%d cacheLen=%d, want 3 misses collapsing to 1 entry", st.ResultMisses, st.ResultCacheLen)
	}
}

func TestPredictBatchPartialErrors(t *testing.T) {
	cl := &countingLoader{t: t}
	badKey := ModelKey{Job: "missing"}
	cl.failNext(badKey, 1000)
	svc := NewService(cl.load, Options{})
	good := ModelKey{Job: "sort"}

	reqs := []Request{
		{good, testQuery(4, 10000)},
		{badKey, testQuery(4, 10000)},   // model load fails
		{good, testQuery(-1, 10000)},    // invalid scale-out
		{good, core.Query{ScaleOut: 4}}, // missing essential properties
		{good, testQuery(8, 10000)},
	}
	out := svc.PredictBatch(context.Background(), reqs)
	if out[0].Err != nil || out[4].Err != nil {
		t.Fatalf("valid requests failed: %v, %v", out[0].Err, out[4].Err)
	}
	for _, i := range []int{1, 2, 3} {
		if out[i].Err == nil {
			t.Fatalf("request %d succeeded, want error", i)
		}
	}
}

func TestServiceConcurrentHammer(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{ModelCap: 4, ResultCap: 256})
	keys := []ModelKey{
		{Job: "sort", Env: "c3o"}, {Job: "grep", Env: "c3o"},
		{Job: "sgd", Env: "bell"},
	}

	// Reference answers computed up front, single-threaded, through the
	// same quantized serving path the hammer exercises (so the race
	// check below can demand exact equality).
	ref := map[string]float64{}
	refSvc := NewService((&countingLoader{t: t}).load, Options{ModelCap: 4})
	for _, key := range keys {
		for x := 2; x <= 12; x += 2 {
			q := testQuery(x, 10000)
			r := refSvc.Predict(context.Background(), key, q)
			if r.Err != nil {
				t.Fatalf("Predict: %v", r.Err)
			}
			ref[fingerprint(key, q)] = r.RuntimeSec
		}
	}

	const goroutines = 16
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				key := keys[(g+it)%len(keys)]
				x := 2 + 2*((g*iters+it)%6)
				q := testQuery(x, 10000)
				var r Response
				if it%2 == 0 {
					r = svc.Predict(context.Background(), key, q)
				} else {
					r = svc.PredictBatch(context.Background(), []Request{{key, q}})[0]
				}
				if r.Err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, it, r.Err)
					return
				}
				if want := ref[fingerprint(key, q)]; r.RuntimeSec != want {
					t.Errorf("goroutine %d iter %d: got %v, want %v", g, it, r.RuntimeSec, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, key := range keys {
		if n := cl.count(key).Load(); n != 1 {
			t.Fatalf("loader ran %d times for %s under concurrency, want exactly 1", n, key)
		}
	}
}

func TestResultCacheBounded(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.put(strconv.Itoa(i), float64(i), c.snapshot())
	}
	if n := c.len(); n != 8 {
		t.Fatalf("cache len = %d, want 8", n)
	}
	// Most recent entries survive.
	if v, ok := c.get([]byte("99")); !ok || v != 99 {
		t.Fatalf("get(99) = %v, %v", v, ok)
	}
	if _, ok := c.get([]byte("0")); ok {
		t.Fatal("oldest entry survived past capacity")
	}
}

// TestResultCachePutRespectsEpoch pins the stale-memoization guard: a
// result whose computation started before an invalidation (i.e. that
// may derive from a hot-swapped-away model version) must not be stored.
func TestResultCachePutRespectsEpoch(t *testing.T) {
	c := newResultCache(8)
	epoch := c.snapshot()
	c.invalidatePrefix("anything") // concurrent swap invalidation
	c.put("stale", 1, epoch)
	if _, ok := c.get([]byte("stale")); ok {
		t.Fatal("result computed before an invalidation was memoized after it")
	}
	// A fresh snapshot taken after the invalidation stores normally.
	c.put("fresh", 2, c.snapshot())
	if v, ok := c.get([]byte("fresh")); !ok || v != 2 {
		t.Fatalf("get(fresh) = %v, %v", v, ok)
	}
}

func TestFingerprintDistinguishesRequests(t *testing.T) {
	key := ModelKey{Job: "sort", Env: "c3o"}
	base := testQuery(4, 10000)
	variants := []core.Query{
		testQuery(6, 10000),
		testQuery(4, 20000),
		{ScaleOut: 4, Essential: base.Essential}, // no optionals
	}
	fp := fingerprint(key, base)
	for i, v := range variants {
		if fingerprint(key, v) == fp {
			t.Fatalf("variant %d collides with base fingerprint", i)
		}
	}
	if fingerprint(ModelKey{Job: "grep", Env: "c3o"}, base) == fp {
		t.Fatal("different model key collides with base fingerprint")
	}
}

func TestFingerprintResistsDelimiterInjection(t *testing.T) {
	// Two optional properties vs one whose value embeds what used to be
	// the delimiter syntax of the second.
	key := ModelKey{Job: "sort", Env: "c3o"}
	ess := essentialProps(10000)
	split := core.Query{ScaleOut: 4, Essential: ess, Optional: []encoding.Property{
		{Name: "a", Value: "x"}, {Name: "b", Value: "y"},
	}}
	joined := core.Query{ScaleOut: 4, Essential: ess, Optional: []encoding.Property{
		{Name: "a", Value: "x|o:b=y"},
	}}
	if fingerprint(key, split) == fingerprint(key, joined) {
		t.Fatal("delimiter injection collides two distinct queries")
	}
	// Job containing the key separator vs split job/env.
	if fingerprint(ModelKey{Job: "a@b"}, split) == fingerprint(ModelKey{Job: "a", Env: "b"}, split) {
		t.Fatal("job \"a@b\" collides with (job a, env b)")
	}
}

func TestDirLoaderRejectsAmbiguousKeys(t *testing.T) {
	loader := DirLoader(t.TempDir())
	bad := []ModelKey{
		{Job: ""},
		{Job: "../etc/passwd"},
		{Job: "sort/evil"},
		{Job: `sort\evil`},
		{Job: "sort_c3o"},          // '_' is the job/env separator
		{Job: "sort", Env: "c_3o"}, // likewise in env
	}
	for _, key := range bad {
		if _, err := loader(key); err == nil {
			t.Fatalf("loader accepted ambiguous key %q", key)
		}
	}
	// A clean key fails only because the file does not exist.
	_, err := loader(ModelKey{Job: "sort", Env: "c3o"})
	if err == nil || strings.Contains(err.Error(), "invalid model key") {
		t.Fatalf("clean key rejected as invalid: %v", err)
	}
}
