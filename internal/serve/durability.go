package serve

import (
	"repro/internal/core"
	"repro/internal/store"
)

// StoreStatser exposes the durable store's counters (implemented by
// *store.Store), surfaced in /v1/stats when a store is attached.
type StoreStatser interface {
	StoreStats() store.Stats
}

// CheckpointRecoverer recovers checkpointed model versions
// (implemented by *store.Store).
type CheckpointRecoverer interface {
	LoadCheckpoint(job, env string) (store.Checkpoint, bool, error)
}

// CheckpointLoader wraps a base Loader with checkpoint recovery: when
// the store holds a checkpoint for the key, the checkpointed model is
// published at the version it was installed as before the restart;
// otherwise (no checkpoint, or a corrupt one — already counted in the
// store stats) the base loader's model is published at version 1.
func CheckpointLoader(base Loader, cr CheckpointRecoverer) VersionedLoader {
	return func(key ModelKey) (*core.Model, uint64, error) {
		ck, ok, err := cr.LoadCheckpoint(key.Job, key.Env)
		if err == nil && ok {
			return ck.Model, ck.Version, nil
		}
		m, baseErr := base(key)
		return m, 1, baseErr
	}
}

// storeStatser is the service's attached store, behind an atomic
// pointer like the observer so /v1/stats reads race-free.
type storeStatser struct {
	st StoreStatser
}

// AttachStore surfaces a durable store's counters in the service stats
// (/v1/stats gains a "store" block). Attach before serving traffic.
func (s *Service) AttachStore(st StoreStatser) {
	s.storeRef.Store(&storeStatser{st: st})
}

// storeStats snapshots the attached store's counters, if any.
func (s *Service) storeStats() (store.Stats, bool) {
	ref := s.storeRef.Load()
	if ref == nil {
		return store.Stats{}, false
	}
	return ref.st.StoreStats(), true
}
