package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/loadctl"
	"repro/internal/obs"
)

// attachServeObs wires a fresh registry and an always-sampling tracer
// into svc, returning the layer for direct inspection.
func attachServeObs(svc *Service) *Observability {
	o := &Observability{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(obs.TracerOptions{SampleEvery: 1}),
	}
	obs.RegisterRuntimeMetrics(o.Metrics)
	o.Tracer.RegisterMetrics(o.Metrics, nil)
	svc.AttachObs(o, nil)
	return o
}

// TestTracedRequestEndToEnd is the acceptance check of the tracing
// tier on the single-shard surface: a request carrying X-Trace-Id is
// echoed the same ID, shows up in GET /v1/debug/slow, and its spans
// tile the request — every pipeline stage is named and the stage
// durations sum to roughly the measured wall latency.
func TestTracedRequestEndToEnd(t *testing.T) {
	const loadDelay = 20 * time.Millisecond
	cl := &countingLoader{t: t}
	loader := func(key ModelKey) (*core.Model, error) {
		time.Sleep(loadDelay) // make registry_load dominate the trace
		return cl.load(key)
	}
	lim := loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1e9, Burst: 1e9})
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 4})
	srv, svc := newServerWith(t, loader, Options{}, LoadControl{Limiter: lim, Gate: gate})
	attachServeObs(svc)

	const traceID = "e2e-trace-0042"
	body, _ := json.Marshal(wireRequest(4, 10000))
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/predict", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(api.TraceIDHeader); got != traceID {
		t.Fatalf("echoed %s = %q, want %q", api.TraceIDHeader, got, traceID)
	}

	slowResp, err := http.Get(srv.URL + "/v1/debug/slow")
	if err != nil {
		t.Fatalf("GET /v1/debug/slow: %v", err)
	}
	defer slowResp.Body.Close()
	var slow api.SlowTracesResponse
	if err := json.NewDecoder(slowResp.Body).Decode(&slow); err != nil {
		t.Fatalf("decoding slow traces: %v", err)
	}
	if slow.SchemaVersion != api.StatsSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", slow.SchemaVersion, api.StatsSchemaVersion)
	}
	var trace *api.TraceSummary
	for i := range slow.Traces {
		if slow.Traces[i].TraceID == traceID {
			trace = &slow.Traces[i]
			break
		}
	}
	if trace == nil {
		t.Fatalf("trace %q not retained in /v1/debug/slow (%d traces)", traceID, len(slow.Traces))
	}

	// The cold predict path tiles into seven sequential stages; every
	// one must be present exactly once, with no strays.
	want := []string{
		obs.StageRateLimit, obs.StageDecode, obs.StageClassify,
		obs.StageGateWait, obs.StageRegistryLoad, obs.StagePredict, obs.StageEncode,
	}
	seen := map[string]int{}
	var sumUsec float64
	for _, sp := range trace.Spans {
		seen[sp.Name]++
		sumUsec += sp.DurUsec
	}
	for _, name := range want {
		if seen[name] != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (spans: %+v)", name, seen[name], trace.Spans)
		}
	}
	if len(trace.Spans) != len(want) {
		t.Fatalf("%d spans, want %d: %+v", len(trace.Spans), len(want), trace.Spans)
	}
	// Stages are sequential and non-overlapping, so their durations sum
	// to at most the wall time — and with a 20ms load dominating, to
	// nearly all of it.
	if trace.WallUsec < float64(loadDelay.Microseconds()) {
		t.Fatalf("wall %.0fus shorter than the %v model load", trace.WallUsec, loadDelay)
	}
	if sumUsec > 1.05*trace.WallUsec || sumUsec < 0.8*trace.WallUsec {
		t.Fatalf("span durations sum to %.0fus vs wall %.0fus, want within [0.8, 1.05]x", sumUsec, trace.WallUsec)
	}

	// The scrape surface sees the same request: predict counters moved
	// and the tracer accounted for the trace.
	metResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer metResp.Body.Close()
	raw, _ := io.ReadAll(metResp.Body)
	for _, series := range []string{
		"bellamy_predict_requests_total 1",
		"bellamy_traces_sampled_total 1",
		"bellamy_traces_finished_total 1",
	} {
		if !strings.Contains(string(raw), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, raw)
		}
	}
}

// TestUntracedRequestHasNoHeader pins the sampling contract: without a
// client trace ID and with sampling effectively off, the response
// carries no X-Trace-Id and the hot path never starts a trace.
func TestUntracedRequestHasNoHeader(t *testing.T) {
	srv, svc := newTestServer(t)
	o := &Observability{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(obs.TracerOptions{SampleEvery: 1 << 30}),
	}
	svc.AttachObs(o, nil)

	var out api.PredictResponse
	b, _ := json.Marshal(wireRequest(4, 10000))
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := resp.Header.Get(api.TraceIDHeader); got != "" {
		t.Fatalf("unsampled request echoed trace ID %q, want none", got)
	}
	if sampled, _ := o.Tracer.Stats(); sampled != 0 {
		t.Fatalf("tracer sampled %d traces, want 0", sampled)
	}
}

// TestStatsCarriesObsBlock checks the schema-v3 stats surface: once an
// observability layer is attached, GET /v1/stats reports the obs block
// with live series and latency quantiles.
func TestStatsCarriesObsBlock(t *testing.T) {
	srv, svc := newTestServer(t)
	attachServeObs(svc)

	var warm api.PredictResponse
	postJSON(t, srv.URL+"/v1/predict", wireRequest(4, 10000), &warm)

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st api.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.SchemaVersion != api.StatsSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", st.SchemaVersion, api.StatsSchemaVersion)
	}
	if st.Obs == nil {
		t.Fatal("stats missing obs block with observability attached")
	}
	if st.Obs.MetricSeries == 0 {
		t.Fatal("obs block reports zero metric series")
	}
	if st.Obs.TracesSampled < 1 || st.Obs.LatencyP99Usec <= 0 {
		t.Fatalf("obs block = %+v, want sampled traces and positive p99", st.Obs)
	}
}

// TestWarmPredictZeroAllocWithObs pins the ISSUE's hot-path bound with
// the full observability layer attached and EVERY request traced: the
// warm cache-hit predict — limiter, cache peek, traced predict, trace
// finish — stays allocation-free. Metrics ride the counters the path
// already increments and traces live in pooled fixed-size objects, so
// instrumentation adds no per-request garbage.
func TestWarmPredictZeroAllocWithObs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, so the pooled fingerprint and trace paths allocate there by design")
	}
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	lim := loadctl.NewLimiter(loadctl.LimiterConfig{Rate: 1e9, Burst: 1e9})
	gate := loadctl.NewGate(loadctl.GateConfig{MaxInFlight: 4})
	svc.AttachLoadControl(LoadControl{Limiter: lim, Gate: gate})
	o := attachServeObs(svc)

	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 4096)
	ctx := context.Background()
	if r := svc.Predict(ctx, key, q); r.Err != nil {
		t.Fatalf("cold Predict: %v", r.Err)
	}
	// Saturate the slow ring with warm-up traces so the timed runs hit
	// its steady state (floor set, insert-or-reject via one atomic load).
	for i := 0; i < 64; i++ {
		tr := o.Tracer.StartRequest("")
		svc.PredictTraced(ctx, key, q, tr)
		o.Tracer.Finish(tr)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if ok, _ := lim.Allow("10.0.0.1", time.Now()); !ok {
			t.Fatal("limiter denied")
		}
		if !svc.PeekCached(key, q) {
			t.Fatal("expected a cached result")
		}
		tr := o.Tracer.StartRequest("")
		if tr == nil {
			t.Fatal("SampleEvery=1 tracer skipped a request")
		}
		r := svc.PredictTraced(ctx, key, q, tr)
		o.Tracer.Finish(tr)
		if r.Err != nil || !r.Cached {
			t.Fatalf("warm Predict = %+v", r)
		}
	}); allocs != 0 {
		t.Fatalf("warm traced predict allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkPredictObsOverhead measures what the observability layer
// costs the warm predict path:
//
//   - uninstrumented: no obs attached, the nil-trace fast path.
//   - instrumented: metrics registered and the tracer at its production
//     default sampling (1 in 64) — the steady-state per-request cost of
//     running with obs on. CI gates this against uninstrumented with a
//     relative benchgate -speedup floor of 0.95x (at most ~5% overhead
//     on any hardware, since both sides run on the same machine).
//   - traced: every request traced (SampleEvery=1), the worst case a
//     request paying full span recording sees. Informational, not
//     gated: per-span clock reads put its cost at the mercy of the
//     runner's timer hardware.
func BenchmarkPredictObsOverhead(b *testing.B) {
	run := func(b *testing.B, sampleEvery int) {
		cl := &countingLoader{t: b}
		svc := NewService(cl.load, Options{})
		var tracer *obs.Tracer
		if sampleEvery > 0 {
			o := &Observability{
				Metrics: obs.NewRegistry(),
				Tracer:  obs.NewTracer(obs.TracerOptions{SampleEvery: sampleEvery}),
			}
			obs.RegisterRuntimeMetrics(o.Metrics)
			o.Tracer.RegisterMetrics(o.Metrics, nil)
			svc.AttachObs(o, nil)
			tracer = o.Tracer
		}
		key := ModelKey{Job: "sort", Env: "c3o"}
		q := testQuery(4, 4096)
		ctx := context.Background()
		if r := svc.Predict(ctx, key, q); r.Err != nil {
			b.Fatalf("cold Predict: %v", r.Err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := tracer.StartRequest("") // nil tracer -> nil trace
			r := svc.PredictTraced(ctx, key, q, tr)
			tracer.Finish(tr)
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, 0) })
	b.Run("instrumented", func(b *testing.B) { run(b, 64) })
	b.Run("traced", func(b *testing.B) { run(b, 1) })
}
