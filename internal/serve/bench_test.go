package serve

import (
	"context"
	"strconv"
	"testing"
	"time"
)

// benchRequests builds n distinct requests spread over the C3O scale-out
// grid and a range of dataset sizes.
func benchRequests(n int) []Request {
	keys := []ModelKey{
		{Job: "sort", Env: "c3o"}, {Job: "grep", Env: "c3o"},
		{Job: "sgd", Env: "bell"}, {Job: "kmeans", Env: "c3o"},
	}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Key:   keys[i%len(keys)],
			Query: testQuery(2+2*(i%6), 4000+137*i),
		}
	}
	return reqs
}

// TestWarmPredictZeroAlloc pins the warm hit path of the serve cache:
// once a (model, query) result is memoized, answering it again builds
// its fingerprint in a pooled buffer and resolves it with an
// allocation-free map index — zero allocations per hit.
func TestWarmPredictZeroAlloc(t *testing.T) {
	cl := &countingLoader{t: t}
	svc := NewService(cl.load, Options{})
	key := ModelKey{Job: "sort", Env: "c3o"}
	q := testQuery(4, 4096)
	if r := svc.Predict(context.Background(), key, q); r.Err != nil {
		t.Fatalf("cold Predict: %v", r.Err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r := svc.Predict(context.Background(), key, q)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.Cached {
			t.Fatal("expected a cache hit")
		}
	}); allocs != 0 {
		t.Fatalf("warm Predict allocs/op = %v, want 0", allocs)
	}
}

// TestWarmBatchSpeedup is the acceptance check of the serving layer: a
// warm-cache PredictBatch over a 1k-request batch must be at least 5x
// faster than serving the same requests cold, one Predict at a time.
func TestWarmBatchSpeedup(t *testing.T) {
	cl := &countingLoader{t: t}
	reqs := benchRequests(1000)

	// Cold path: fresh service, per-request prediction, empty caches.
	cold := NewService(cl.load, Options{ResultCap: 1}) // effectively uncached
	startCold := time.Now()
	for _, req := range reqs {
		if r := cold.Predict(context.Background(), req.Key, req.Query); r.Err != nil {
			t.Fatalf("cold Predict: %v", r.Err)
		}
	}
	coldDur := time.Since(startCold)

	// Warm path: batch served twice; the second pass hits the result
	// cache for every request.
	warm := NewService(cl.load, Options{ResultCap: 2048})
	for i, r := range warm.PredictBatch(context.Background(), reqs) {
		if r.Err != nil {
			t.Fatalf("warm-up batch response %d: %v", i, r.Err)
		}
	}
	startWarm := time.Now()
	out := warm.PredictBatch(context.Background(), reqs)
	warmDur := time.Since(startWarm)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("warm batch response %d: %v", i, r.Err)
		}
		if !r.Cached {
			t.Fatalf("warm batch response %d missed the result cache", i)
		}
	}

	if coldDur < 5*warmDur {
		t.Fatalf("warm batch %v is only %.1fx faster than cold per-request %v, want >= 5x",
			warmDur, float64(coldDur)/float64(warmDur), coldDur)
	}
	t.Logf("cold per-request: %v, warm batch: %v (%.0fx)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
}

// BenchmarkPredictBatchCold measures the uncached batch path: every
// iteration carries fresh fingerprints, so each request takes a real
// forward pass (models stay resident after the first iteration).
func BenchmarkPredictBatchCold(b *testing.B) {
	cl := &countingLoader{t: b}
	svc := NewService(cl.load, Options{})
	reqs := benchRequests(1000)
	svc.PredictBatch(context.Background(), reqs[:1]) // load models outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := strconv.Itoa(i)
		for j := range reqs {
			reqs[j].Query.Essential[2].Value = "--iterations " + tag
		}
		svc.PredictBatch(context.Background(), reqs)
	}
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "pred/s")
}

// BenchmarkPredictBatchColdF64 is BenchmarkPredictBatchCold with
// quantization disabled: the full-precision serving path, kept as the
// comparison point for the float32 speedup.
func BenchmarkPredictBatchColdF64(b *testing.B) {
	cl := &countingLoader{t: b}
	svc := NewService(cl.load, Options{Float64Serving: true})
	reqs := benchRequests(1000)
	svc.PredictBatch(context.Background(), reqs[:1]) // load models outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := strconv.Itoa(i)
		for j := range reqs {
			reqs[j].Query.Essential[2].Value = "--iterations " + tag
		}
		svc.PredictBatch(context.Background(), reqs)
	}
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "pred/s")
}

// BenchmarkPredictBatchWarm measures the memoized batch path: the same
// requests every iteration, all served from the result cache.
func BenchmarkPredictBatchWarm(b *testing.B) {
	cl := &countingLoader{t: b}
	svc := NewService(cl.load, Options{ResultCap: 2048})
	reqs := benchRequests(1000)
	svc.PredictBatch(context.Background(), reqs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.PredictBatch(context.Background(), reqs)
	}
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "pred/s")
}

// BenchmarkPredictSingleCold measures the per-request path the batch API
// replaces: one Predict call per request, no memoization.
func BenchmarkPredictSingleCold(b *testing.B) {
	cl := &countingLoader{t: b}
	svc := NewService(cl.load, Options{ResultCap: 1})
	reqs := benchRequests(1000)
	svc.PredictBatch(context.Background(), reqs[:1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			svc.Predict(context.Background(), req.Key, req.Query)
		}
	}
	b.ReportMetric(float64(b.N*len(reqs))/b.Elapsed().Seconds(), "pred/s")
}
