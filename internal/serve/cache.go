package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// resultCache memoizes prediction results under a bounded LRU policy.
// Keys are canonical fingerprints of (model key, scale-out, properties);
// values are predicted runtimes in seconds.
type resultCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheItem struct {
	key string
	val float64
}

// DefaultResultCap bounds the memoized results when no capacity is given.
const DefaultResultCap = 4096

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = DefaultResultCap
	}
	return &resultCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// get returns the cached value for key and whether it was present.
func (c *resultCache) get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) put(key string, val float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheItem{key: key, val: val})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// len reports the number of memoized results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// fingerprint renders the canonical cache key of a request. Every
// field is length-prefixed so untrusted property names and values
// containing delimiter characters cannot collide with a different
// request. Property order is significant — essential properties are
// positional in the model input, and callers are expected to send
// optional properties in a stable order.
func fingerprint(key ModelKey, q core.Query) string {
	var b strings.Builder
	writeField := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	writeField(key.Job)
	writeField(key.Env)
	b.WriteString(strconv.Itoa(q.ScaleOut))
	for _, p := range q.Essential {
		b.WriteByte('e')
		writeField(p.Name)
		writeField(p.Value)
	}
	for _, p := range q.Optional {
		b.WriteByte('o')
		writeField(p.Name)
		writeField(p.Value)
	}
	return b.String()
}
