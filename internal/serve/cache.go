package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// resultCache memoizes prediction results under a bounded LRU policy.
// Keys are canonical fingerprints of (model key, scale-out, properties);
// values are predicted runtimes in seconds.
type resultCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	// epoch counts invalidations. Writers snapshot it before computing
	// a prediction and pass it to put, which discards the result if an
	// invalidation ran in between — otherwise a prediction computed on
	// a model version hot-swapped away mid-flight could be memoized
	// after the swap's invalidation and serve stale values forever.
	epoch uint64
}

type cacheItem struct {
	key string
	val float64
}

// DefaultResultCap bounds the memoized results when no capacity is given.
const DefaultResultCap = 4096

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = DefaultResultCap
	}
	return &resultCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// get returns the cached value for the fingerprint and whether it was
// present. The key is passed as bytes so the warm hit path never
// materializes a string: the map index on string(key) compiles to an
// allocation-free lookup.
func (c *resultCache) get(key []byte) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[string(key)]
	if !ok {
		return 0, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// snapshot returns the current invalidation epoch. Take it before
// reading the model a result will be computed on.
func (c *resultCache) snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// put stores val under key, evicting the least recently used entry when
// the cache is full. epoch must be a snapshot taken before the value
// was computed: if any invalidation ran since, the value may derive
// from a replaced model version and is dropped instead of stored (a
// lost memoization at worst — the next miss recomputes on the current
// version).
func (c *resultCache) put(key string, val float64, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		// At capacity every insert evicts the LRU entry; recycling its
		// element and item in place makes the steady-state miss path
		// allocation-free apart from the key string.
		oldest := c.lru.Back()
		it := oldest.Value.(*cacheItem)
		delete(c.entries, it.key)
		it.key, it.val = key, val
		c.lru.MoveToFront(oldest)
		c.entries[key] = oldest
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheItem{key: key, val: val})
}

// invalidatePrefix removes every memoized result whose fingerprint
// starts with prefix and reports how many were dropped. The scan is
// O(cache size), which is fine for its one caller — model hot-swaps,
// which are rare next to predictions. Because fingerprint fields are
// length-prefixed, a model-key prefix can never partially match a
// longer key, so exactly the swapped model's results are dropped.
func (c *resultCache) invalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*cacheItem)
		if strings.HasPrefix(it.key, prefix) {
			c.lru.Remove(el)
			delete(c.entries, it.key)
			n++
		}
		el = next
	}
	return n
}

// len reports the number of memoized results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// fpPool recycles fingerprint build buffers so the serve hot path
// never allocates for key construction. Buffers are pooled by pointer
// to avoid the interface-boxing allocation of putting slices in a
// sync.Pool directly.
var fpPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// appendFingerprint appends the canonical cache key of a request to
// dst and returns the extended slice. Every field is length-prefixed
// so untrusted property names and values containing delimiter
// characters cannot collide with a different request. Property order
// is significant — essential properties are positional in the model
// input, and callers are expected to send optional properties in a
// stable order.
//
// The append form replaced a strings.Builder: built into a pooled
// buffer, a warm cache hit performs zero allocations (pinned by
// TestWarmPredictZeroAlloc); only a miss pays for one string
// conversion when the key is stored.
func appendFingerprint(dst []byte, key ModelKey, q core.Query) []byte {
	dst = appendKeyPrefix(dst, key)
	dst = strconv.AppendInt(dst, int64(q.ScaleOut), 10)
	for _, p := range q.Essential {
		dst = append(dst, 'e')
		dst = appendField(dst, p.Name)
		dst = appendField(dst, p.Value)
	}
	for _, p := range q.Optional {
		dst = append(dst, 'o')
		dst = appendField(dst, p.Name)
		dst = appendField(dst, p.Value)
	}
	return dst
}

// appendKeyPrefix appends the model-key fields of a fingerprint — the
// prefix shared by every memoized result of that model, which is what
// a hot-swap invalidates.
func appendKeyPrefix(dst []byte, key ModelKey) []byte {
	dst = appendField(dst, key.Job)
	return appendField(dst, key.Env)
}

// fingerprint is the allocating convenience form of appendFingerprint,
// for callers off the hot path (tests, debugging).
func fingerprint(key ModelKey, q core.Query) string {
	return string(appendFingerprint(nil, key, q))
}

func appendField(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}
