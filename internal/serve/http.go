package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/allocate"
	"repro/internal/api"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/loadctl"
	"repro/internal/obs"
)

// The wire DTOs of the /v1 surface live in internal/api — this file
// only converts between them and the serving layer's native types and
// wires the routes. The shard router reuses the exported converters,
// so both the single-process and sharded handlers speak byte-identical
// JSON.

// ToRequest converts the wire form of a prediction request into the
// service's native form, validating required fields.
func ToRequest(in api.PredictRequest) (Request, error) {
	if in.Job == "" {
		return Request{}, fmt.Errorf("serve: request missing job")
	}
	q := core.Query{ScaleOut: in.ScaleOut}
	for _, p := range in.Essential {
		q.Essential = append(q.Essential, encoding.Property{Name: p.Name, Value: p.Value})
	}
	for _, p := range in.Optional {
		q.Optional = append(q.Optional, encoding.Property{Name: p.Name, Value: p.Value, Optional: true})
	}
	return Request{Key: ModelKey{Job: in.Job, Env: in.Env}, Query: q}, nil
}

// ToAPIResponse converts a service response to its wire form, mapping
// any error to the typed envelope payload.
func ToAPIResponse(r Response) api.PredictResponse {
	if r.Err != nil {
		return api.PredictResponse{Error: ToAPIError(r.Err)}
	}
	return api.PredictResponse{RuntimeSec: r.RuntimeSec, Cached: r.Cached}
}

// ToAPIError maps a serving-layer error to the unified typed error. An
// error that already is an *api.Error (a shard router forwarding a
// peer's typed answer) passes through unchanged.
func ToAPIError(err error) *api.Error {
	var typed *api.Error
	switch {
	case errors.As(err, &typed):
		return typed
	case isDeadline(err):
		return api.Errorf(api.CodeDeadlineExceeded, "serve: deadline exceeded: %v", err)
	case errors.Is(err, ErrModelUnavailable):
		return api.Errorf(api.CodeModelNotFound, "%v", err)
	case errors.Is(err, ErrObserveDisabled):
		return api.Errorf(api.CodeObserveDisabled, "%v", err)
	case errors.Is(err, ErrObserveCapacity):
		return api.Errorf(api.CodeObserveCapacity, "%v", err)
	default:
		return api.Errorf(api.CodeBadRequest, "%v", err)
	}
}

// ToAllocateRequest converts the wire form of an allocation request.
func ToAllocateRequest(in api.AllocateRequest) (ModelKey, allocate.Request, error) {
	if in.Job == "" {
		return ModelKey{}, allocate.Request{}, fmt.Errorf("serve: request missing job")
	}
	req := allocate.Request{
		MinScaleOut:     in.MinScaleOut,
		MaxScaleOut:     in.MaxScaleOut,
		Step:            in.Step,
		Candidates:      in.Candidates,
		DeadlineSec:     in.DeadlineSec,
		CostPerNodeHour: in.CostPerNodeHour,
		SafetyMargin:    in.SafetyMargin,
		MinModelSamples: in.MinModelSamples,
	}
	for _, p := range in.Essential {
		req.Essential = append(req.Essential, encoding.Property{Name: p.Name, Value: p.Value})
	}
	for _, p := range in.Optional {
		req.Optional = append(req.Optional, encoding.Property{Name: p.Name, Value: p.Value, Optional: true})
	}
	for _, o := range in.Observations {
		req.Observations = append(req.Observations, baselines.Point{ScaleOut: o.ScaleOut, Runtime: o.RuntimeSec})
	}
	return ModelKey{Job: in.Job, Env: in.Env}, req, nil
}

// ToAllocateResponse converts an allocation decision to its wire form.
func ToAllocateResponse(res *allocate.Result) api.AllocateResponse {
	out := api.AllocateResponse{
		ScaleOut:     res.Chosen.ScaleOut,
		PredictedSec: res.Chosen.SmoothedSec,
		Cost:         res.Chosen.Cost,
		Feasible:     res.Feasible,
		Fallback:     res.Fallback,
		LowSupport:   res.LowSupport,
		Source:       string(res.Source),
		MarginSec:    res.MarginSec,
		MarginFrac:   res.MarginFrac,
		Curve:        make([]api.CurvePoint, len(res.Curve)),
	}
	for i, cp := range res.Curve {
		out.Curve[i] = api.CurvePoint{
			ScaleOut:     cp.ScaleOut,
			PredictedSec: cp.PredictedSec,
			SmoothedSec:  cp.SmoothedSec,
			Cost:         cp.Cost,
			MeetsSLO:     cp.MeetsSLO,
		}
	}
	return out
}

// MaxBodyBytes bounds request bodies so one oversized POST cannot
// exhaust server memory; MaxBatchRequests bounds the per-batch fan-out.
const (
	MaxBodyBytes     = 8 << 20 // 8 MiB
	MaxBatchRequests = 10000
)

// DecodeBody decodes a bounded JSON request body into v. On failure it
// writes the enveloped response — 413 when the body exceeded
// MaxBodyBytes, 400 otherwise — and returns false. Decode errors are
// reported by kind only; raw body contents never echo back to the
// client.
func DecodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		api.WriteError(w, http.StatusRequestEntityTooLarge,
			api.Errorf(api.CodePayloadTooLarge, "serve: request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	api.WriteError(w, http.StatusBadRequest,
		api.Errorf(api.CodeBadRequest, "serve: decoding request: malformed JSON body"))
	return false
}

// StatsPayload snapshots the service counters in wire form, the body
// of GET /v1/stats. The shard router embeds one per shard.
func (s *Service) StatsPayload() api.Stats {
	st := s.Stats()
	out := api.Stats{
		SchemaVersion:   api.StatsSchemaVersion,
		Requests:        st.Requests,
		Calls:           st.Calls,
		ResultHits:      st.ResultHits,
		ResultMisses:    st.ResultMisses,
		ResultCacheLen:  st.ResultCacheLen,
		MeanLatencyUsec: float64(st.MeanLatency.Nanoseconds()) / 1e3,
		ModelHits:       st.Registry.Hits,
		ModelMisses:     st.Registry.Misses,
		ModelLoads:      st.Registry.Loads,
		ModelLoadErrors: st.Registry.LoadErrors,
		ModelEvictions:  st.Registry.Evictions,
		ModelSwaps:      st.Registry.Swaps,
		Alloc: api.AllocStats{
			Requests:        st.Alloc.Requests,
			Errors:          st.Alloc.Errors,
			Violations:      st.Alloc.Violations,
			Fallbacks:       st.Alloc.Fallbacks,
			MeanLatencyUsec: float64(st.Alloc.MeanLatency.Nanoseconds()) / 1e3,
		},
	}
	if ls, ok := s.lifecycleStats(); ok {
		out.Lifecycle = &api.LifecycleStats{
			Observations:     ls.Observations,
			Rejected:         ls.Rejected,
			PendingSamples:   ls.PendingSamples,
			Finetunes:        ls.Finetunes,
			FinetuneErrors:   ls.FinetuneErrors,
			Swaps:            ls.Swaps,
			SwapsSkipped:     ls.SwapsSkipped,
			MeanFinetuneUsec: float64(ls.MeanFinetune.Nanoseconds()) / 1e3,
			Restored:         ls.Restored,
			LogErrors:        ls.LogErrors,
		}
	}
	if ds, ok := s.storeStats(); ok {
		out.Store = &api.StoreStats{
			WALAppends:           ds.WALAppends,
			WALAppendedBytes:     ds.WALAppendedBytes,
			WALSegments:          ds.WALSegments,
			WALActiveSeq:         ds.WALActiveSeq,
			Fsyncs:               ds.Fsyncs,
			RepairedBytes:        ds.RepairedBytes,
			ReplayedObservations: ds.ReplayedObservations,
			ReplayedDigests:      ds.ReplayedDigests,
			CorruptSegments:      ds.CorruptSegments,
			Compactions:          ds.Compactions,
			CompactedRecords:     ds.CompactedRecords,
			CompactSegments:      ds.CompactSegments,
			Checkpoints:          ds.Checkpoints,
			CheckpointErrors:     ds.CheckpointErrors,
			CheckpointLoads:      ds.CheckpointLoads,
		}
	}
	if lc := st.LoadCtl; lc != nil {
		out.LoadCtl = &api.LoadCtlStats{
			RateLimited:       lc.RateLimited,
			Clients:           lc.Clients,
			ClientsEvicted:    lc.ClientsEvicted,
			Admitted:          lc.Admitted,
			Queued:            lc.Queued,
			ShedQueueFull:     lc.ShedQueueFull,
			ShedTimeout:       lc.ShedTimeout,
			ShedCanceled:      lc.ShedCanceled,
			GateBypassed:      lc.GateBypassed,
			DeadlineRejects:   lc.DeadlineRejects,
			MeanQueueWaitUsec: float64(lc.MeanQueueWait.Nanoseconds()) / 1e3,
			Draining:          lc.Draining,
		}
	}
	out.Obs = s.obsStatsPayload()
	return out
}

// Handler returns the HTTP API of the service:
//
//	POST /v1/predict        api.PredictRequest -> api.PredictResponse
//	POST /v1/predict/batch  api.BatchRequest -> api.BatchResponse
//	POST /v1/allocate       api.AllocateRequest -> api.AllocateResponse
//	POST /v1/observe        api.ObserveRequest -> api.ObserveResponse
//	GET  /v1/stats          api.Stats
//	GET  /healthz           200 ok, 503 while draining
//
// Every non-2xx response carries the unified error envelope
// {"error":{"code","message","retry_after_ms"}} (api.ErrorEnvelope).
//
// When load control is attached (AttachLoadControl), every POST route
// runs the per-client rate limiter against the headers before reading
// the body, then passes the admission gate at a route-dependent cost;
// cache-hit predicts bypass the gate entirely.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		tr := s.startTrace(w, r)
		defer s.finishTrace(tr)
		t0 := tr.Clock()
		if !s.rateLimit(w, r) {
			return
		}
		tr.Record(obs.StageRateLimit, -1, t0)
		var in api.PredictRequest
		t0 = tr.Clock()
		if !DecodeBody(w, r, &in) {
			return
		}
		tr.Record(obs.StageDecode, -1, t0)
		t0 = tr.Clock()
		req, err := ToRequest(in)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		// A result-cache hit answers from memory in microseconds: let it
		// bypass the gate so cached traffic keeps flowing at full rate
		// even when the gate is saturated with expensive work.
		if s.PeekCached(req.Key, req.Query) {
			tr.Record(obs.StageClassify, -1, t0)
			s.gateBypassed.Add(1)
			t0 = tr.Clock()
			resp := s.Predict(r.Context(), req.Key, req.Query)
			tr.Record(obs.StagePredict, -1, t0)
			t0 = tr.Clock()
			api.WriteJSON(w, ToAPIResponse(resp))
			tr.Record(obs.StageEncode, -1, t0)
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Predicting on a resident model is cheap; a cold model load is
		// not, and sheds first under pressure.
		cost := loadctl.CostHeavy
		if s.reg.Resident(req.Key) {
			cost = loadctl.CostCheap
		}
		tr.Record(obs.StageClassify, -1, t0)
		release, ok := s.admit(ctx, w, cost, tr)
		if !ok {
			return
		}
		defer release()
		resp := s.PredictTraced(ctx, req.Key, req.Query, tr)
		if resp.Err != nil && isDeadline(resp.Err) {
			s.writeDeadlineError(w, resp.Err, tr)
			return
		}
		t0 = tr.Clock()
		api.WriteJSON(w, ToAPIResponse(resp))
		tr.Record(obs.StageEncode, -1, t0)
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		tr := s.startTrace(w, r)
		defer s.finishTrace(tr)
		t0 := tr.Clock()
		if !s.rateLimit(w, r) {
			return
		}
		tr.Record(obs.StageRateLimit, -1, t0)
		var in api.BatchRequest
		t0 = tr.Clock()
		if !DecodeBody(w, r, &in) {
			return
		}
		tr.Record(obs.StageDecode, -1, t0)
		if len(in.Requests) > MaxBatchRequests {
			api.WriteError(w, http.StatusRequestEntityTooLarge,
				api.Errorf(api.CodePayloadTooLarge, "batch of %d requests exceeds limit %d", len(in.Requests), MaxBatchRequests))
			return
		}
		t0 = tr.Clock()
		reqs := make([]Request, len(in.Requests))
		resp := api.BatchResponse{Responses: make([]api.PredictResponse, len(in.Requests))}
		bad := make([]bool, len(in.Requests))
		for i, rj := range in.Requests {
			req, err := ToRequest(rj)
			if err != nil {
				resp.Responses[i] = api.PredictResponse{Error: api.Errorf(api.CodeBadRequest, "%v", err)}
				bad[i] = true
				continue
			}
			reqs[i] = req
		}
		tr.Record(obs.StageClassify, -1, t0)
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Batches fan out across models and queries: always heavy.
		release, ok := s.admit(ctx, w, loadctl.CostHeavy, tr)
		if !ok {
			return
		}
		defer release()
		// Serve the well-formed subset in one batch.
		var live []Request
		var liveIdx []int
		for i, req := range reqs {
			if !bad[i] {
				live = append(live, req)
				liveIdx = append(liveIdx, i)
			}
		}
		t0 = tr.Clock()
		for j, out := range s.PredictBatch(ctx, live) {
			resp.Responses[liveIdx[j]] = ToAPIResponse(out)
		}
		tr.Record(obs.StagePredict, -1, t0)
		if err := ctx.Err(); err != nil {
			s.writeDeadlineError(w, err, tr)
			return
		}
		for i := range resp.Responses {
			if resp.Responses[i].Error != nil {
				resp.Failed++
			}
		}
		t0 = tr.Clock()
		api.WriteJSON(w, resp)
		tr.Record(obs.StageEncode, -1, t0)
	})
	mux.HandleFunc("POST /v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in api.AllocateRequest
		if !DecodeBody(w, r, &in) {
			return
		}
		key, req, err := ToAllocateRequest(in)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Allocation sweeps a scale-out range through the model: heavy.
		release, ok := s.admit(ctx, w, loadctl.CostHeavy, nil)
		if !ok {
			return
		}
		defer release()
		res, err := s.Allocate(ctx, key, req)
		if err != nil {
			if isDeadline(err) {
				s.writeDeadlineError(w, err, nil)
				return
			}
			// An unloadable model is the server's (or deployment's)
			// problem, not a malformed request: answer 404 so clients
			// don't treat it as permanently invalid input.
			code := http.StatusBadRequest
			if errors.Is(err, ErrModelUnavailable) {
				code = http.StatusNotFound
			}
			api.WriteError(w, code, ToAPIError(err))
			return
		}
		api.WriteJSON(w, ToAllocateResponse(res))
	})
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in api.ObserveRequest
		if !DecodeBody(w, r, &in) {
			return
		}
		req, err := ToRequest(in.PredictRequest)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// An observation is one validation pass plus a WAL append: cheap.
		release, ok := s.admit(ctx, w, loadctl.CostCheap, nil)
		if !ok {
			return
		}
		defer release()
		if err := s.Observe(ctx, req.Key, req.Query, in.RuntimeSec); err != nil {
			if isDeadline(err) {
				s.writeDeadlineError(w, err, nil)
				return
			}
			code := http.StatusBadRequest
			typed := ToAPIError(err)
			switch {
			case errors.Is(err, ErrObserveDisabled):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrObserveCapacity):
				// Valid request, server-side limit: retriable, not 4xx
				// client fault.
				code = http.StatusTooManyRequests
				typed = typed.WithRetryAfter(time.Second)
			}
			api.WriteError(w, code, typed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(api.ObserveResponse{Accepted: true})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, s.StatsPayload())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/slow", s.handleSlowTraces)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining server answers not-ready so load balancers stop
		// routing new work to it while in-flight requests finish.
		if s.Draining() {
			api.WriteError(w, http.StatusServiceUnavailable,
				api.Errorf(api.CodeDraining, "serve: draining").WithRetryAfter(time.Second))
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}
