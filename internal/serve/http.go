package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/allocate"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/loadctl"
)

// propertyJSON is the wire form of one descriptive property.
type propertyJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// predictRequestJSON is the wire form of one prediction request.
type predictRequestJSON struct {
	Job       string         `json:"job"`
	Env       string         `json:"env"`
	ScaleOut  int            `json:"scale_out"`
	Essential []propertyJSON `json:"essential"`
	Optional  []propertyJSON `json:"optional,omitempty"`
}

// predictResponseJSON is the wire form of one prediction result.
type predictResponseJSON struct {
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// observeRequestJSON is the wire form of one runtime observation: a
// prediction request plus the runtime actually measured for it.
type observeRequestJSON struct {
	predictRequestJSON
	RuntimeSec float64 `json:"runtime_sec"`
}

// observeResponseJSON is the wire form of POST /v1/observe.
type observeResponseJSON struct {
	Accepted bool   `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// observationPointJSON is the wire form of one measured
// (scale-out, runtime) point feeding the allocation fallback.
type observationPointJSON struct {
	ScaleOut   int     `json:"scale_out"`
	RuntimeSec float64 `json:"runtime_sec"`
}

// allocateRequestJSON is the wire form of POST /v1/allocate.
type allocateRequestJSON struct {
	Job       string         `json:"job"`
	Env       string         `json:"env"`
	Essential []propertyJSON `json:"essential"`
	Optional  []propertyJSON `json:"optional,omitempty"`

	MinScaleOut int   `json:"min_scale_out"`
	MaxScaleOut int   `json:"max_scale_out"`
	Step        int   `json:"step,omitempty"`
	Candidates  []int `json:"candidates,omitempty"`

	DeadlineSec     float64 `json:"deadline_sec"`
	CostPerNodeHour float64 `json:"cost_per_node_hour"`
	SafetyMargin    float64 `json:"safety_margin,omitempty"`

	MinModelSamples int                    `json:"min_model_samples,omitempty"`
	Observations    []observationPointJSON `json:"observations,omitempty"`
}

// curvePointJSON is the wire form of one annotated sweep candidate.
type curvePointJSON struct {
	ScaleOut     int     `json:"scale_out"`
	PredictedSec float64 `json:"predicted_sec"`
	SmoothedSec  float64 `json:"smoothed_sec"`
	Cost         float64 `json:"cost"`
	MeetsSLO     bool    `json:"meets_slo"`
}

// allocateResponseJSON is the wire form of one allocation decision.
type allocateResponseJSON struct {
	ScaleOut     int              `json:"scale_out,omitempty"`
	PredictedSec float64          `json:"predicted_sec,omitempty"`
	Cost         float64          `json:"cost,omitempty"`
	Feasible     bool             `json:"feasible"`
	Fallback     bool             `json:"fallback,omitempty"`
	LowSupport   bool             `json:"low_support,omitempty"`
	Source       string           `json:"source,omitempty"`
	MarginSec    float64          `json:"margin_sec,omitempty"`
	MarginFrac   float64          `json:"margin_frac,omitempty"`
	Curve        []curvePointJSON `json:"curve,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// batchRequestJSON wraps the requests of POST /v1/predict/batch.
type batchRequestJSON struct {
	Requests []predictRequestJSON `json:"requests"`
}

// batchResponseJSON wraps the results of POST /v1/predict/batch.
type batchResponseJSON struct {
	Responses []predictResponseJSON `json:"responses"`
}

// statsJSON is the wire form of GET /v1/stats.
type statsJSON struct {
	Requests        int64          `json:"requests"`
	Calls           int64          `json:"calls"`
	ResultHits      int64          `json:"result_hits"`
	ResultMisses    int64          `json:"result_misses"`
	ResultCacheLen  int            `json:"result_cache_len"`
	MeanLatencyUsec float64        `json:"mean_latency_usec"`
	ModelHits       int64          `json:"model_hits"`
	ModelMisses     int64          `json:"model_misses"`
	ModelLoads      int64          `json:"model_loads"`
	ModelLoadErrors int64          `json:"model_load_errors"`
	ModelEvictions  int64          `json:"model_evictions"`
	ModelSwaps      int64          `json:"model_swaps,omitempty"`
	Alloc           allocStatsJSON `json:"alloc"`
	Lifecycle       *lifecycleJSON `json:"lifecycle,omitempty"`
	Store           *storeJSON     `json:"store,omitempty"`
	LoadCtl         *loadctlJSON   `json:"loadctl,omitempty"`
}

// loadctlJSON is the wire form of the overload-protection counters.
type loadctlJSON struct {
	RateLimited       int64   `json:"rate_limited"`
	Clients           int     `json:"clients"`
	ClientsEvicted    int64   `json:"clients_evicted,omitempty"`
	Admitted          int64   `json:"admitted"`
	Queued            int64   `json:"queued"`
	ShedQueueFull     int64   `json:"shed_queue_full"`
	ShedTimeout       int64   `json:"shed_timeout"`
	ShedCanceled      int64   `json:"shed_canceled"`
	GateBypassed      int64   `json:"gate_bypassed"`
	DeadlineRejects   int64   `json:"deadline_rejects"`
	MeanQueueWaitUsec float64 `json:"mean_queue_wait_usec"`
	Draining          bool    `json:"draining,omitempty"`
}

// allocStatsJSON is the wire form of the allocation counters.
type allocStatsJSON struct {
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	Violations      int64   `json:"violations"`
	Fallbacks       int64   `json:"fallbacks"`
	MeanLatencyUsec float64 `json:"mean_latency_usec"`
}

// lifecycleJSON is the wire form of the online-learning counters.
type lifecycleJSON struct {
	Observations     int64   `json:"observations"`
	Rejected         int64   `json:"rejected"`
	PendingSamples   int     `json:"pending_samples"`
	Finetunes        int64   `json:"finetunes"`
	FinetuneErrors   int64   `json:"finetune_errors"`
	Swaps            int64   `json:"swaps"`
	SwapsSkipped     int64   `json:"swaps_skipped"`
	MeanFinetuneUsec float64 `json:"mean_finetune_usec"`
	Restored         int64   `json:"restored,omitempty"`
	LogErrors        int64   `json:"log_errors,omitempty"`
}

// storeJSON is the wire form of the durable-store counters.
type storeJSON struct {
	WALAppends           int64  `json:"wal_appends"`
	WALAppendedBytes     int64  `json:"wal_appended_bytes"`
	WALSegments          int    `json:"wal_segments"`
	WALActiveSeq         uint64 `json:"wal_active_seq"`
	Fsyncs               int64  `json:"fsyncs"`
	RepairedBytes        int64  `json:"repaired_bytes,omitempty"`
	ReplayedObservations int64  `json:"replayed_observations"`
	ReplayedDigests      int64  `json:"replayed_digests"`
	CorruptSegments      int64  `json:"corrupt_segments,omitempty"`
	Compactions          int64  `json:"compactions"`
	CompactedRecords     int64  `json:"compacted_records"`
	CompactSegments      int    `json:"compact_segments"`
	Checkpoints          int64  `json:"checkpoints"`
	CheckpointErrors     int64  `json:"checkpoint_errors,omitempty"`
	CheckpointLoads      int64  `json:"checkpoint_loads"`
}

func toRequest(in predictRequestJSON) (Request, error) {
	if in.Job == "" {
		return Request{}, fmt.Errorf("serve: request missing job")
	}
	q := core.Query{ScaleOut: in.ScaleOut}
	for _, p := range in.Essential {
		q.Essential = append(q.Essential, encoding.Property{Name: p.Name, Value: p.Value})
	}
	for _, p := range in.Optional {
		q.Optional = append(q.Optional, encoding.Property{Name: p.Name, Value: p.Value, Optional: true})
	}
	return Request{Key: ModelKey{Job: in.Job, Env: in.Env}, Query: q}, nil
}

func toResponseJSON(r Response) predictResponseJSON {
	if r.Err != nil {
		return predictResponseJSON{Error: r.Err.Error()}
	}
	return predictResponseJSON{RuntimeSec: r.RuntimeSec, Cached: r.Cached}
}

func toAllocateRequest(in allocateRequestJSON) (ModelKey, allocate.Request, error) {
	if in.Job == "" {
		return ModelKey{}, allocate.Request{}, fmt.Errorf("serve: request missing job")
	}
	req := allocate.Request{
		MinScaleOut:     in.MinScaleOut,
		MaxScaleOut:     in.MaxScaleOut,
		Step:            in.Step,
		Candidates:      in.Candidates,
		DeadlineSec:     in.DeadlineSec,
		CostPerNodeHour: in.CostPerNodeHour,
		SafetyMargin:    in.SafetyMargin,
		MinModelSamples: in.MinModelSamples,
	}
	for _, p := range in.Essential {
		req.Essential = append(req.Essential, encoding.Property{Name: p.Name, Value: p.Value})
	}
	for _, p := range in.Optional {
		req.Optional = append(req.Optional, encoding.Property{Name: p.Name, Value: p.Value, Optional: true})
	}
	for _, o := range in.Observations {
		req.Observations = append(req.Observations, baselines.Point{ScaleOut: o.ScaleOut, Runtime: o.RuntimeSec})
	}
	return ModelKey{Job: in.Job, Env: in.Env}, req, nil
}

func toAllocateResponseJSON(res *allocate.Result) allocateResponseJSON {
	out := allocateResponseJSON{
		ScaleOut:     res.Chosen.ScaleOut,
		PredictedSec: res.Chosen.SmoothedSec,
		Cost:         res.Chosen.Cost,
		Feasible:     res.Feasible,
		Fallback:     res.Fallback,
		LowSupport:   res.LowSupport,
		Source:       string(res.Source),
		MarginSec:    res.MarginSec,
		MarginFrac:   res.MarginFrac,
		Curve:        make([]curvePointJSON, len(res.Curve)),
	}
	for i, cp := range res.Curve {
		out.Curve[i] = curvePointJSON{
			ScaleOut:     cp.ScaleOut,
			PredictedSec: cp.PredictedSec,
			SmoothedSec:  cp.SmoothedSec,
			Cost:         cp.Cost,
			MeetsSLO:     cp.MeetsSLO,
		}
	}
	return out
}

// maxBodyBytes bounds request bodies so one oversized POST cannot
// exhaust server memory; maxBatchRequests bounds the per-batch fan-out.
const (
	maxBodyBytes     = 8 << 20 // 8 MiB
	maxBatchRequests = 10000
)

// decodeBody decodes a bounded JSON request body into v. On failure it
// writes the response — 413 when the body exceeded maxBodyBytes, 400
// otherwise — and returns false. Decode errors are reported by kind
// only; raw body contents never echo back to the client.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	httpError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: malformed JSON body"))
	return false
}

// Handler returns the HTTP API of the service:
//
//	POST /v1/predict        one predictRequestJSON -> predictResponseJSON
//	POST /v1/predict/batch  batchRequestJSON -> batchResponseJSON
//	POST /v1/allocate       allocateRequestJSON -> allocateResponseJSON
//	POST /v1/observe        observeRequestJSON -> observeResponseJSON
//	GET  /v1/stats          statsJSON
//	GET  /healthz           200 ok, 503 while draining
//
// When load control is attached (AttachLoadControl), every POST route
// runs the per-client rate limiter against the headers before reading
// the body, then passes the admission gate at a route-dependent cost;
// cache-hit predicts bypass the gate entirely.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in predictRequestJSON
		if !decodeBody(w, r, &in) {
			return
		}
		req, err := toRequest(in)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// A result-cache hit answers from memory in microseconds: let it
		// bypass the gate so cached traffic keeps flowing at full rate
		// even when the gate is saturated with expensive work.
		if s.PeekCached(req.Key, req.Query) {
			s.gateBypassed.Add(1)
			writeJSON(w, toResponseJSON(s.Predict(r.Context(), req.Key, req.Query)))
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Predicting on a resident model is cheap; a cold model load is
		// not, and sheds first under pressure.
		cost := loadctl.CostHeavy
		if s.reg.Resident(req.Key) {
			cost = loadctl.CostCheap
		}
		release, ok := s.admit(ctx, w, cost)
		if !ok {
			return
		}
		defer release()
		resp := s.Predict(ctx, req.Key, req.Query)
		if resp.Err != nil && isDeadline(resp.Err) {
			s.writeDeadlineError(w, resp.Err)
			return
		}
		writeJSON(w, toResponseJSON(resp))
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in batchRequestJSON
		if !decodeBody(w, r, &in) {
			return
		}
		if len(in.Requests) > maxBatchRequests {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d requests exceeds limit %d", len(in.Requests), maxBatchRequests))
			return
		}
		reqs := make([]Request, len(in.Requests))
		resp := batchResponseJSON{Responses: make([]predictResponseJSON, len(in.Requests))}
		bad := make([]bool, len(in.Requests))
		for i, rj := range in.Requests {
			req, err := toRequest(rj)
			if err != nil {
				resp.Responses[i] = predictResponseJSON{Error: err.Error()}
				bad[i] = true
				continue
			}
			reqs[i] = req
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Batches fan out across models and queries: always heavy.
		release, ok := s.admit(ctx, w, loadctl.CostHeavy)
		if !ok {
			return
		}
		defer release()
		// Serve the well-formed subset in one batch.
		var live []Request
		var liveIdx []int
		for i, req := range reqs {
			if !bad[i] {
				live = append(live, req)
				liveIdx = append(liveIdx, i)
			}
		}
		for j, out := range s.PredictBatch(ctx, live) {
			resp.Responses[liveIdx[j]] = toResponseJSON(out)
		}
		if err := ctx.Err(); err != nil {
			s.writeDeadlineError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in allocateRequestJSON
		if !decodeBody(w, r, &in) {
			return
		}
		key, req, err := toAllocateRequest(in)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// Allocation sweeps a scale-out range through the model: heavy.
		release, ok := s.admit(ctx, w, loadctl.CostHeavy)
		if !ok {
			return
		}
		defer release()
		res, err := s.Allocate(ctx, key, req)
		if err != nil {
			if isDeadline(err) {
				s.writeDeadlineError(w, err)
				return
			}
			// An unloadable model is the server's (or deployment's)
			// problem, not a malformed request: answer 404 so clients
			// don't treat it as permanently invalid input.
			code := http.StatusBadRequest
			if errors.Is(err, ErrModelUnavailable) {
				code = http.StatusNotFound
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(allocateResponseJSON{Error: err.Error()})
			return
		}
		writeJSON(w, toAllocateResponseJSON(res))
	})
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		if !s.rateLimit(w, r) {
			return
		}
		var in observeRequestJSON
		if !decodeBody(w, r, &in) {
			return
		}
		req, err := toRequest(in.predictRequestJSON)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		// An observation is one validation pass plus a WAL append: cheap.
		release, ok := s.admit(ctx, w, loadctl.CostCheap)
		if !ok {
			return
		}
		defer release()
		if err := s.Observe(ctx, req.Key, req.Query, in.RuntimeSec); err != nil {
			if isDeadline(err) {
				s.writeDeadlineError(w, err)
				return
			}
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrObserveDisabled):
				code = http.StatusServiceUnavailable
			case errors.Is(err, ErrObserveCapacity):
				// Valid request, server-side limit: retriable, not 4xx
				// client fault.
				code = http.StatusTooManyRequests
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			_ = json.NewEncoder(w).Encode(observeResponseJSON{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(observeResponseJSON{Accepted: true})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		out := statsJSON{
			Requests:        st.Requests,
			Calls:           st.Calls,
			ResultHits:      st.ResultHits,
			ResultMisses:    st.ResultMisses,
			ResultCacheLen:  st.ResultCacheLen,
			MeanLatencyUsec: float64(st.MeanLatency.Nanoseconds()) / 1e3,
			ModelHits:       st.Registry.Hits,
			ModelMisses:     st.Registry.Misses,
			ModelLoads:      st.Registry.Loads,
			ModelLoadErrors: st.Registry.LoadErrors,
			ModelEvictions:  st.Registry.Evictions,
			ModelSwaps:      st.Registry.Swaps,
			Alloc: allocStatsJSON{
				Requests:        st.Alloc.Requests,
				Errors:          st.Alloc.Errors,
				Violations:      st.Alloc.Violations,
				Fallbacks:       st.Alloc.Fallbacks,
				MeanLatencyUsec: float64(st.Alloc.MeanLatency.Nanoseconds()) / 1e3,
			},
		}
		if ls, ok := s.lifecycleStats(); ok {
			out.Lifecycle = &lifecycleJSON{
				Observations:     ls.Observations,
				Rejected:         ls.Rejected,
				PendingSamples:   ls.PendingSamples,
				Finetunes:        ls.Finetunes,
				FinetuneErrors:   ls.FinetuneErrors,
				Swaps:            ls.Swaps,
				SwapsSkipped:     ls.SwapsSkipped,
				MeanFinetuneUsec: float64(ls.MeanFinetune.Nanoseconds()) / 1e3,
				Restored:         ls.Restored,
				LogErrors:        ls.LogErrors,
			}
		}
		if ds, ok := s.storeStats(); ok {
			out.Store = &storeJSON{
				WALAppends:           ds.WALAppends,
				WALAppendedBytes:     ds.WALAppendedBytes,
				WALSegments:          ds.WALSegments,
				WALActiveSeq:         ds.WALActiveSeq,
				Fsyncs:               ds.Fsyncs,
				RepairedBytes:        ds.RepairedBytes,
				ReplayedObservations: ds.ReplayedObservations,
				ReplayedDigests:      ds.ReplayedDigests,
				CorruptSegments:      ds.CorruptSegments,
				Compactions:          ds.Compactions,
				CompactedRecords:     ds.CompactedRecords,
				CompactSegments:      ds.CompactSegments,
				Checkpoints:          ds.Checkpoints,
				CheckpointErrors:     ds.CheckpointErrors,
				CheckpointLoads:      ds.CheckpointLoads,
			}
		}
		if lc := st.LoadCtl; lc != nil {
			out.LoadCtl = &loadctlJSON{
				RateLimited:       lc.RateLimited,
				Clients:           lc.Clients,
				ClientsEvicted:    lc.ClientsEvicted,
				Admitted:          lc.Admitted,
				Queued:            lc.Queued,
				ShedQueueFull:     lc.ShedQueueFull,
				ShedTimeout:       lc.ShedTimeout,
				ShedCanceled:      lc.ShedCanceled,
				GateBypassed:      lc.GateBypassed,
				DeadlineRejects:   lc.DeadlineRejects,
				MeanQueueWaitUsec: float64(lc.MeanQueueWait.Nanoseconds()) / 1e3,
				Draining:          lc.Draining,
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining server answers not-ready so load balancers stop
		// routing new work to it while in-flight requests finish.
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(predictResponseJSON{Error: err.Error()})
}
