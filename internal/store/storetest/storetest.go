// Package storetest is the crash-injection harness for the durable
// store: it manufactures the on-disk images a kill -9 (or torn write,
// or bit rot) can leave behind, so recovery tests can assert that
// replay yields a prefix-consistent state from every possible crash
// point rather than from a handful of hand-picked ones.
//
// A crash during an append leaves some byte-prefix of the active WAL
// segment durable; a crash during a seal leaves a full old segment and
// a partial new one; a crash during a checkpoint leaves a .tmp file
// next to (or instead of) the published checkpoint. The helpers here
// produce exactly those images from a healthy data directory, without
// any hooks in the production write path.
package storetest

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// CloneDir deep-copies a data directory into a fresh temp dir, so a
// crash image can be mutilated without disturbing the original.
func CloneDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("storetest: cloning %s: %v", src, err)
	}
	return dst
}

// WALSegments lists the WAL segment files of a data directory, oldest
// first.
func WALSegments(t testing.TB, dataDir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dataDir, "wal", "*.wal"))
	if err != nil {
		t.Fatalf("storetest: globbing WAL segments: %v", err)
	}
	sort.Strings(paths)
	return paths
}

// NewestWAL returns the active (highest-sequence) WAL segment path.
func NewestWAL(t testing.TB, dataDir string) string {
	t.Helper()
	paths := WALSegments(t, dataDir)
	if len(paths) == 0 {
		t.Fatal("storetest: no WAL segments")
	}
	return paths[len(paths)-1]
}

// FileSize reports a file's size.
func FileSize(t testing.TB, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("storetest: stat %s: %v", path, err)
	}
	return fi.Size()
}

// Truncate cuts a file to size bytes: the image of a crash that made
// only a prefix of its writes durable.
func Truncate(t testing.TB, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("storetest: truncating %s: %v", path, err)
	}
}

// FlipBit inverts one bit of a file in place: the image of at-rest
// corruption (or a misdirected write) that framing CRCs must catch.
func FlipBit(t testing.TB, path string, bit int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("storetest: reading %s: %v", path, err)
	}
	if bit < 0 || bit >= int64(len(b))*8 {
		t.Fatalf("storetest: bit %d out of range for %d-byte file", bit, len(b))
	}
	b[bit/8] ^= 1 << (bit % 8)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("storetest: writing %s: %v", path, err)
	}
}

// CrashImageAtPrefix clones the data directory and truncates its
// newest WAL segment to keep bytes: the exact durable state after a
// crash mid-append (or mid-seal, when keep is inside the header of a
// freshly rolled segment).
func CrashImageAtPrefix(t testing.TB, dataDir string, keep int64) string {
	t.Helper()
	img := CloneDir(t, dataDir)
	Truncate(t, NewestWAL(t, img), keep)
	return img
}

// WriteCheckpointTmp plants a temp checkpoint file (the image of a
// crash before the publishing rename) with the given contents.
func WriteCheckpointTmp(t testing.TB, dataDir, name string, contents []byte) {
	t.Helper()
	path := filepath.Join(dataDir, "ckpt", name+".ckpt.tmp")
	if err := os.WriteFile(path, contents, 0o644); err != nil {
		t.Fatalf("storetest: writing %s: %v", path, err)
	}
}
