package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store/storetest"
)

// frameEnds parses a healthy WAL segment and returns the byte offset
// just past each frame, so tests can map an arbitrary crash prefix to
// the number of records that prefix preserves.
func frameEnds(t *testing.T, path string) []int64 {
	t.Helper()
	b := readFileT(t, path)
	var ends []int64
	off := int64(walHeaderLen)
	for off+frameHeaderLen <= int64(len(b)) {
		length := int64(binary.LittleEndian.Uint32(b[off:]))
		end := off + frameHeaderLen + length
		if end > int64(len(b)) {
			break
		}
		ends = append(ends, end)
		off = end
	}
	return ends
}

// TestCrashAtEveryAppendPrefix kills the write path at every byte of
// the active WAL segment: for each prefix length, recovery must admit
// exactly the records whose frames lie entirely inside the prefix,
// repair the tail, and accept new appends on top.
func TestCrashAtEveryAppendPrefix(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 8
	at := time.Now()
	for i := 0; i < n; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), at); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	walPath := storetest.NewestWAL(t, base)
	ends := frameEnds(t, walPath)
	if len(ends) != n {
		t.Fatalf("parsed %d frames, want %d", len(ends), n)
	}
	size := storetest.FileSize(t, walPath)

	for keep := int64(0); keep <= size; keep++ {
		img := storetest.CrashImageAtPrefix(t, base, keep)
		s2, err := Open(img, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("keep=%d: Open: %v", keep, err)
		}
		want := 0
		for _, end := range ends {
			if end <= keep {
				want++
			}
		}
		r := replayAll(t, s2)
		if len(r.obs) != want {
			t.Fatalf("keep=%d: replayed %d records, want %d", keep, len(r.obs), want)
		}
		for i, p := range r.obs {
			if !sampleEq(p.Sample, obs(i)) {
				t.Fatalf("keep=%d: record %d is not the prefix record", keep, i)
			}
		}
		// The repaired log must accept and persist new appends.
		if err := s2.AppendObservation("sort", "c3o", obs(900), at); err != nil {
			t.Fatalf("keep=%d: append after repair: %v", keep, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("keep=%d: Close: %v", keep, err)
		}
		s3, err := Open(img, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("keep=%d: second reopen: %v", keep, err)
		}
		r2 := replayAll(t, s3)
		if len(r2.obs) != want+1 || !sampleEq(r2.obs[want].Sample, obs(900)) {
			t.Fatalf("keep=%d: append after repair not replayed (%d records)", keep, len(r2.obs))
		}
		s3.Close()
	}
}

// TestCrashDuringSeal crashes between closing a full segment and
// writing the next segment's header: recovery must keep every sealed
// record and rebuild the active segment.
func TestCrashDuringSeal(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), time.Now()); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(storetest.WALSegments(t, base)) < 3 {
		t.Fatal("test needs several sealed segments")
	}
	tailRecords := len(frameEnds(t, storetest.NewestWAL(t, base)))

	// keep = 0: the rolled segment's file exists but is empty (crash
	// after create, before the header write reached disk). keep = 3:
	// the header itself is torn.
	for _, keep := range []int64{0, 3} {
		img := storetest.CrashImageAtPrefix(t, base, keep)
		s2, err := Open(img, Options{Fsync: FsyncNever, SegmentBytes: 256})
		if err != nil {
			t.Fatalf("keep=%d: Open: %v", keep, err)
		}
		r := replayAll(t, s2)
		if want := n - tailRecords; len(r.obs) != want {
			t.Fatalf("keep=%d: replayed %d, want %d (sealed records only)", keep, len(r.obs), want)
		}
		for i, p := range r.obs {
			if !sampleEq(p.Sample, obs(i)) {
				t.Fatalf("keep=%d: record %d mismatch", keep, i)
			}
		}
		if err := s2.AppendObservation("sort", "c3o", obs(901), time.Now()); err != nil {
			t.Fatalf("keep=%d: append after seal crash: %v", keep, err)
		}
		s2.Close()
	}
}

// TestSealedSegmentBitFlip flips single bits in a sealed WAL segment:
// replay must stop at the longest clean prefix with ErrCorrupt — never
// panic, never admit a mangled record — and the store must stay
// appendable.
func TestSealedSegmentBitFlip(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), time.Now()); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := storetest.WALSegments(t, base)
	if len(segs) < 3 {
		t.Fatal("test needs several sealed segments")
	}
	sealed := segs[0]
	sealedBits := storetest.FileSize(t, sealed) * 8
	// Hit the header, the first frame's length, CRC, and payload, and a
	// spread of positions across the file.
	bits := []int64{1, walHeaderLen * 8, (walHeaderLen + 4) * 8, (walHeaderLen + frameHeaderLen + 2) * 8}
	for frac := int64(1); frac < 8; frac++ {
		bits = append(bits, sealedBits*frac/8)
	}
	for _, bit := range bits {
		if bit >= sealedBits {
			continue
		}
		img := storetest.CloneDir(t, base)
		storetest.FlipBit(t, filepath.Join(img, "wal", filepath.Base(sealed)), bit)
		s2, err := Open(img, Options{Fsync: FsyncNever, SegmentBytes: 256})
		if err != nil {
			t.Fatalf("bit=%d: Open: %v", bit, err)
		}
		var got []int
		replayErr := s2.Replay(ReplayHandler{
			Observation: func(job, env string, smp core.Sample, at time.Time) {
				got = append(got, smp.ScaleOut)
			},
		})
		if replayErr == nil {
			t.Fatalf("bit=%d: replay of a flipped sealed segment succeeded", bit)
		}
		if !errors.Is(replayErr, ErrCorrupt) {
			t.Fatalf("bit=%d: replay error %v does not wrap ErrCorrupt", bit, replayErr)
		}
		// Prefix consistency: whatever was delivered must match the
		// original stream record-for-record.
		for i, sc := range got {
			if want := obs(i).ScaleOut; sc != want {
				t.Fatalf("bit=%d: replayed record %d has scale-out %d, want %d", bit, i, sc, want)
			}
		}
		if len(got) >= n {
			t.Fatalf("bit=%d: replay delivered %d records despite corruption", bit, len(got))
		}
		if err := s2.AppendObservation("sort", "c3o", obs(902), time.Now()); err != nil {
			t.Fatalf("bit=%d: store not appendable after corrupt replay: %v", bit, err)
		}
		s2.Close()
	}
}

// TestCheckpointCrashImages covers crashes around the write-temp +
// rename publish: a torn temp file, a complete-but-unrenamed temp
// file, and bit rot in a published checkpoint.
func TestCheckpointCrashImages(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	blob := saveModel(t, tinyModel(t))
	if err := s.CheckpointModel("sort", "c3o", 3, blob); err != nil {
		t.Fatalf("CheckpointModel: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	published := readFileT(t, filepath.Join(base, "ckpt", "sort_c3o.ckpt"))

	// A torn temp file (garbage) and a complete v4 temp file that never
	// got renamed: both must be discarded, both must leave v3 live.
	completeV4 := func() []byte {
		other := t.TempDir()
		s2, err := Open(other, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if err := s2.CheckpointModel("sort", "c3o", 4, blob); err != nil {
			t.Fatal(err)
		}
		return readFileT(t, filepath.Join(other, "ckpt", "sort_c3o.ckpt"))
	}()
	for name, tmp := range map[string][]byte{
		"torn":     append([]byte("BCKP"), 0xde, 0xad),
		"complete": completeV4,
	} {
		img := storetest.CloneDir(t, base)
		storetest.WriteCheckpointTmp(t, img, "sort_c3o", tmp)
		s2, err := Open(img, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("%s tmp: Open: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(img, "ckpt", "sort_c3o.ckpt.tmp")); !os.IsNotExist(err) {
			t.Fatalf("%s tmp: temp checkpoint survived Open", name)
		}
		ck, ok, err := s2.LoadCheckpoint("sort", "c3o")
		if err != nil || !ok || ck.Version != 3 {
			t.Fatalf("%s tmp: LoadCheckpoint = (v%d, %v, %v), want v3", name, ck.Version, ok, err)
		}
		s2.Close()
	}

	// Bit rot in the published file: load must fail loudly, not panic
	// or return a wrong model.
	for _, bit := range []int64{8, int64(len(published)) * 4, int64(len(published))*8 - 3} {
		img := storetest.CloneDir(t, base)
		storetest.FlipBit(t, filepath.Join(img, "ckpt", "sort_c3o.ckpt"), bit)
		s2, err := Open(img, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("bit=%d: Open: %v", bit, err)
		}
		if _, ok, err := s2.LoadCheckpoint("sort", "c3o"); ok || err == nil {
			t.Fatalf("bit=%d: LoadCheckpoint accepted a flipped checkpoint (ok=%v err=%v)", bit, ok, err)
		}
		if s2.StoreStats().CheckpointErrors == 0 {
			t.Fatalf("bit=%d: corrupt checkpoint not counted", bit)
		}
		s2.Close()
	}
}

// TestKill9Durability is the acceptance test for the fsync=always
// contract: a child process appends under sustained load, printing ACK
// lines only after AppendObservation returns; the parent SIGKILLs it
// mid-stream, reopens the same directory, and verifies that every
// acknowledged record survived with no gaps and the newest
// acknowledged checkpoint version is recoverable.
func TestKill9Durability(t *testing.T) {
	if os.Getenv("STORE_CRASH_CHILD") == "1" {
		kill9Child(t)
		return
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestKill9Durability$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_CRASH_CHILD=1", "STORE_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	maxAck, maxCkpt := 0, uint64(0)
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		var v int
		if _, err := fmt.Sscanf(line, "ACK %d", &v); err == nil {
			maxAck = v
		} else if _, err := fmt.Sscanf(line, "CKPT %d", &v); err == nil {
			maxCkpt = uint64(v)
		}
		if maxAck >= 120 && maxCkpt >= 1 {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading child output: %v", err)
	}
	if maxAck < 120 {
		t.Fatalf("child exited after only %d acks", maxAck)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatalf("killing child: %v", err)
	}
	go func() {
		// Drain so the child never blocks on a full pipe before the
		// kill lands.
		for sc.Scan() {
		}
	}()
	_ = cmd.Wait()

	s, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer s.Close()
	seen := map[int]bool{}
	highest := 0
	err = s.Replay(ReplayHandler{
		Observation: func(job, env string, smp core.Sample, at time.Time) {
			var i int
			// RuntimeSec encodes the sequence number (obs(i)).
			i = int((smp.RuntimeSec - 100) / 0.25)
			if seen[i] {
				t.Errorf("record %d replayed twice", i)
			}
			seen[i] = true
			if i > highest {
				highest = i
			}
		},
	})
	if err != nil {
		t.Fatalf("replay after kill: %v", err)
	}
	// Zero lost acknowledged observations...
	if highest < maxAck {
		t.Fatalf("highest recovered record %d < last acknowledged %d", highest, maxAck)
	}
	// ...and prefix consistency: no holes anywhere below the highest
	// surviving record (acknowledged or in-flight).
	for i := 1; i <= highest; i++ {
		if !seen[i] {
			t.Fatalf("record %d missing from recovery (highest %d)", i, highest)
		}
	}
	ck, ok, err := s.LoadCheckpoint("sort", "c3o")
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint after kill = (%v, %v)", ok, err)
	}
	if ck.Version < maxCkpt {
		t.Fatalf("recovered checkpoint v%d < last acknowledged v%d", ck.Version, maxCkpt)
	}
}

// kill9Child runs inside the re-exec'd test binary: append forever
// under FsyncAlways, acknowledging each durable write on stdout, until
// the parent kills the process.
func kill9Child(t *testing.T) {
	dir := os.Getenv("STORE_CRASH_DIR")
	s, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 4096})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	blob := saveModel(t, tinyModel(t))
	for i := 1; ; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), time.Now()); err != nil {
			fmt.Printf("ERR %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i)
		if i%50 == 0 {
			v := uint64(i / 50)
			if err := s.CheckpointModel("sort", "c3o", v, blob); err != nil {
				fmt.Printf("ERR %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("CKPT %d\n", v)
		}
	}
}
