package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy picks the durability/latency trade-off of WAL appends.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged
	// observation survives kill -9 and power loss. This is the
	// default; it bounds ingest throughput by device sync latency.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per FsyncEvery, piggybacked on
	// the append path (plus on every segment seal and on Close). A
	// crash can lose up to one interval of acknowledged observations.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache. A crash of the
	// process alone loses nothing (the kernel still holds the writes);
	// a machine crash can lose or even reorder unflushed segments.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// castagnoli is the CRC32C table shared by WAL frames, segment blocks,
// and checkpoints.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walMagic is the 8-byte header of every WAL segment file: magic plus
// format version.
var walMagic = []byte{'B', 'W', 'A', 'L', 1, 0, 0, 0}

const (
	walHeaderLen = 8
	// frameHeaderLen prefixes every record: payload length (u32 LE)
	// then CRC32C of the payload (u32 LE).
	frameHeaderLen = 8
)

// walName renders a segment sequence number as its file name.
func walName(seq uint64) string { return fmt.Sprintf("%016x.wal", seq) }

// parseWALName inverts walName.
func parseWALName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// wal is the segmented append-only log. One file at a time is active;
// appends that would push it past segBytes seal it (sync + close) and
// roll to the next sequence number. Sealed segments are immutable and
// become compaction input.
type wal struct {
	dir      string
	policy   FsyncPolicy
	every    time.Duration
	segBytes int64
	maxRec   int
	log      *slog.Logger

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	size     int64
	lastSync time.Time
	frame    []byte // scratch frame buffer, reused across appends

	appends  atomic.Int64
	appendedBytes atomic.Int64
	fsyncs   atomic.Int64
	seals    atomic.Int64
}

// openActive opens (or creates) the active segment for appending.
// When resume is true the caller verified the file's tail; the write
// offset continues at size.
func (w *wal) openActive(seq uint64, size int64) error {
	path := filepath.Join(w.dir, walName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening WAL segment: %w", err)
	}
	if size == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("store: resetting WAL segment: %w", err)
		}
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: writing WAL header: %w", err)
		}
		size = walHeaderLen
		if err := w.syncNew(f); err != nil {
			f.Close()
			return err
		}
	} else if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking WAL segment: %w", err)
	}
	w.f, w.seq, w.size = f, seq, size
	return nil
}

// syncNew makes a freshly created segment durable: the file itself and
// its directory entry. Skipped under FsyncNever.
func (w *wal) syncNew(f *os.File) error {
	if w.policy == FsyncNever {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: syncing new WAL segment: %w", err)
	}
	w.fsyncs.Add(1)
	return syncDir(w.dir)
}

// append frames payload (length + CRC32C) and writes it to the active
// segment in a single Write call, rolling segments and syncing per the
// policy. On return under FsyncAlways the record is durable.
func (w *wal) append(payload []byte) error {
	if len(payload) > w.maxRec {
		return fmt.Errorf("store: record of %d bytes exceeds limit %d", len(payload), w.maxRec)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.size >= w.segBytes {
		if err := w.sealLocked(); err != nil {
			return err
		}
	}
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(payload)))
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.Checksum(payload, castagnoli))
	w.frame = append(w.frame, payload...)
	if _, err := w.f.Write(w.frame); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	w.size += int64(len(w.frame))
	w.appends.Add(1)
	w.appendedBytes.Add(int64(len(w.frame)))
	switch w.policy {
	case FsyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		w.fsyncs.Add(1)
	case FsyncInterval:
		if now := time.Now(); now.Sub(w.lastSync) >= w.every {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("store: syncing WAL: %w", err)
			}
			w.fsyncs.Add(1)
			w.lastSync = now
		}
	}
	return nil
}

// sealLocked syncs and closes the active segment and opens the next
// one. The old segment is always synced — regardless of policy — so a
// sealed segment on disk is complete: compaction may delete it only
// because its bytes are durable.
func (w *wal) sealLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL segment before seal: %w", err)
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing sealed WAL segment: %w", err)
	}
	w.seals.Add(1)
	w.log.Info("store: sealed WAL segment",
		"segment", walName(w.seq), "bytes", w.size)
	return w.openActive(w.seq+1, 0)
}

// activeSeq reports the sequence number of the segment currently
// accepting appends.
func (w *wal) activeSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// close syncs and closes the active segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return fmt.Errorf("store: syncing WAL on close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("store: closing WAL: %w", closeErr)
	}
	w.fsyncs.Add(1)
	return nil
}

// listWALSegments returns the segment sequence numbers present in dir,
// ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing WAL dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseWALName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanResult reports how a segment scan ended.
type scanResult struct {
	// validSize is the byte offset after the last intact frame (the
	// truncation point that repairs a torn tail).
	validSize int64
	// fileSize is the segment's size on disk.
	fileSize int64
	// records is the number of intact frames.
	records int64
	// tornErr describes why the scan stopped early (nil when the whole
	// file parsed cleanly). A stop is either a torn tail (crash during
	// append) or corruption (bit rot, lost writes); the two are
	// indistinguishable from the bytes alone, so the caller decides by
	// position: tails of the newest segment are repaired, anything
	// else is surfaced.
	tornErr error
}

func (r scanResult) clean() bool { return r.tornErr == nil }

// scanWALFile walks every frame of one segment, calling fn with each
// intact payload, and reports where (and how) the walk ended. fn may
// be nil to only validate. An fn error aborts the scan and is returned
// verbatim.
func scanWALFile(path string, maxRec int, fn func(payload []byte) error) (scanResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("store: reading WAL segment: %w", err)
	}
	res := scanResult{fileSize: int64(len(b))}
	if len(b) < walHeaderLen {
		res.tornErr = fmt.Errorf("store: WAL segment %s shorter than its header", filepath.Base(path))
		return res, nil
	}
	if string(b[:walHeaderLen]) != string(walMagic) {
		res.tornErr = fmt.Errorf("store: WAL segment %s has a bad header", filepath.Base(path))
		return res, nil
	}
	off := int64(walHeaderLen)
	for off < int64(len(b)) {
		if int64(len(b))-off < frameHeaderLen {
			res.tornErr = fmt.Errorf("store: torn frame header at offset %d of %s", off, filepath.Base(path))
			break
		}
		length := int64(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if length > int64(maxRec) {
			res.tornErr = fmt.Errorf("store: frame length %d at offset %d of %s exceeds limit %d", length, off, filepath.Base(path), maxRec)
			break
		}
		if off+frameHeaderLen+length > int64(len(b)) {
			res.tornErr = fmt.Errorf("store: torn record at offset %d of %s", off, filepath.Base(path))
			break
		}
		payload := b[off+frameHeaderLen : off+frameHeaderLen+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			res.tornErr = fmt.Errorf("store: CRC mismatch at offset %d of %s", off, filepath.Base(path))
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return res, err
			}
		}
		off += frameHeaderLen + length
		res.records++
	}
	res.validSize = off
	return res, nil
}

// syncDir fsyncs a directory so renames and newly created files in it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", dir, err)
	}
	return nil
}
