package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Defaults for Options fields left zero.
const (
	DefaultSegmentBytes    = 4 << 20
	DefaultMaxRecordBytes  = 1 << 20
	DefaultFsyncEvery      = 100 * time.Millisecond
	DefaultCompactInterval = time.Minute
)

// Options tunes a Store.
type Options struct {
	// Fsync picks the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery bounds sync frequency under FsyncInterval
	// (<= 0: DefaultFsyncEvery).
	FsyncEvery time.Duration
	// SegmentBytes rolls the active WAL segment past this size
	// (<= 0: DefaultSegmentBytes).
	SegmentBytes int64
	// MaxRecordBytes bounds one framed record; replay treats larger
	// claimed lengths as corruption (<= 0: DefaultMaxRecordBytes).
	MaxRecordBytes int
	// CompactInterval is the background compaction period started by
	// Start (<= 0: DefaultCompactInterval).
	CompactInterval time.Duration
	// Logger receives structured store events — WAL tail repair,
	// segment seals, corruption, compaction — with the segment and byte
	// counts as fields. Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = DefaultCompactInterval
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// ErrCorrupt marks replay stopping early because a sealed WAL segment
// or a compacted segment failed validation. The store stays usable
// (new appends go to the intact active segment); the replayed state is
// the longest clean prefix.
var ErrCorrupt = errors.New("store: corrupt segment")

// ErrClosed rejects appends after Close has sealed the WAL. During a
// graceful drain the HTTP server stops before the store closes, so in
// practice only a misordered shutdown sequence sees it — and it turns
// that bug into a clean rejection instead of a write to a closed file.
var ErrClosed = errors.New("store: closed")

// Stats is a snapshot of the store counters.
type Stats struct {
	// WALAppends / WALAppendedBytes count framed records written.
	WALAppends, WALAppendedBytes int64
	// WALSegments is the current on-disk WAL segment count (active
	// included); WALActiveSeq the active segment's sequence number.
	WALSegments  int
	WALActiveSeq uint64
	// Fsyncs counts explicit sync calls (appends, seals, closes).
	Fsyncs int64
	// RepairedBytes counts torn tail bytes truncated at Open.
	RepairedBytes int64
	// ReplayedObservations / ReplayedDigests count records delivered
	// by Replay.
	ReplayedObservations, ReplayedDigests int64
	// CorruptSegments counts sealed WAL or compacted segments that
	// failed validation at Open or Replay.
	CorruptSegments int64
	// Compactions counts compaction runs that produced a segment;
	// CompactedRecords the WAL records they absorbed; CompactSegments
	// the current compacted segment count.
	Compactions, CompactedRecords int64
	CompactSegments               int
	// Checkpoints / CheckpointErrors / CheckpointLoads count model
	// checkpoint writes, failed writes or corrupt reads, and
	// successful recoveries.
	Checkpoints, CheckpointErrors, CheckpointLoads int64
}

// Store is the durable observation + model store rooted at one data
// directory:
//
//	<dir>/wal/   append-only observation log segments
//	<dir>/seg/   immutable compacted segments
//	<dir>/ckpt/  atomic model-version checkpoints
//
// Open repairs the WAL tail; Replay streams the persisted history (in
// per-key order) into the caller's sinks; Start launches background
// compaction. All methods are safe for concurrent use once Replay has
// returned.
type Store struct {
	dir     string
	walDir  string
	segDir  string
	ckptDir string
	opts    Options
	w       *wal

	mu   sync.Mutex // guards segs and compaction
	segs []*Segment // open compacted segments, sorted by walLast

	repairedBytes    atomic.Int64
	replayedObs      atomic.Int64
	replayedDigests  atomic.Int64
	corruptSegments  atomic.Int64
	compactions      atomic.Int64
	compactedRecords atomic.Int64
	checkpoints      atomic.Int64
	checkpointErrors atomic.Int64
	checkpointLoads  atomic.Int64

	startOnce, stopOnce sync.Once
	stop, done          chan struct{}
}

// Open prepares the data directory: creates the layout, removes
// leftover temp files, deletes WAL segments already covered by a
// compacted segment (a crash between segment publish and WAL deletion
// leaves both), repairs the newest WAL segment's torn tail, and opens
// the active segment for appending. It does not read the history —
// call Replay for that, before serving traffic.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:     dir,
		walDir:  filepath.Join(dir, "wal"),
		segDir:  filepath.Join(dir, "seg"),
		ckptDir: filepath.Join(dir, "ckpt"),
		opts:    opts.withDefaults(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, d := range []string{s.walDir, s.segDir, s.ckptDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
		if err := removeTempFiles(d); err != nil {
			return nil, err
		}
	}
	// Open compacted segments; their coverage determines which WAL
	// segments are stale leftovers.
	segEntries, err := os.ReadDir(s.segDir)
	if err != nil {
		return nil, fmt.Errorf("store: listing segment dir: %w", err)
	}
	var maxCovered uint64
	for _, e := range segEntries {
		if _, ok := parseSegName(e.Name()); !ok {
			continue
		}
		g, err := openSegment(filepath.Join(s.segDir, e.Name()))
		if err != nil {
			// A published segment that fails validation is bit rot;
			// counted and skipped so the store stays available. Its
			// records are unrecoverable (the WAL that fed it is gone).
			s.corruptSegments.Add(1)
			s.opts.Logger.Error("store: skipping corrupt compacted segment",
				"segment", e.Name(), "error", err)
			continue
		}
		s.segs = append(s.segs, g)
		if g.walLast > maxCovered {
			maxCovered = g.walLast
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].walLast < s.segs[j].walLast })

	seqs, err := listWALSegments(s.walDir)
	if err != nil {
		return nil, err
	}
	live := seqs[:0]
	for _, seq := range seqs {
		if seq <= maxCovered {
			// Compaction finished but crashed before deleting this
			// input; its records live in a compacted segment already.
			if err := os.Remove(filepath.Join(s.walDir, walName(seq))); err != nil {
				return nil, fmt.Errorf("store: removing compacted WAL segment: %w", err)
			}
			continue
		}
		live = append(live, seq)
	}
	seqs = live

	s.w = &wal{
		dir:      s.walDir,
		policy:   s.opts.Fsync,
		every:    s.opts.FsyncEvery,
		segBytes: s.opts.SegmentBytes,
		maxRec:   s.opts.MaxRecordBytes,
		log:      s.opts.Logger,
	}
	activeSeq := maxCovered + 1
	var activeSize int64
	if n := len(seqs); n > 0 {
		// Repair the newest segment: truncate everything after the
		// last intact frame. Crashes tear only the tail of the newest
		// segment; older segments with bad frames are corruption and
		// are surfaced at Replay, not silently truncated.
		last := seqs[n-1]
		path := filepath.Join(s.walDir, walName(last))
		res, err := scanWALFile(path, s.opts.MaxRecordBytes, nil)
		if err != nil {
			return nil, err
		}
		valid := res.validSize
		if valid < walHeaderLen {
			valid = 0 // header itself torn; rewrite from scratch
		}
		if valid < res.fileSize {
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("store: repairing WAL tail: %w", err)
			}
			s.repairedBytes.Add(res.fileSize - valid)
			s.opts.Logger.Warn("store: repaired torn WAL tail",
				"segment", walName(last), "repaired_bytes", res.fileSize-valid)
		}
		activeSeq, activeSize = last, valid
		if activeSize >= s.opts.SegmentBytes {
			// The crashed process filled this segment; treat it as
			// sealed and roll.
			activeSeq, activeSize = last+1, 0
		}
	}
	if err := s.w.openActive(activeSeq, activeSize); err != nil {
		return nil, err
	}
	return s, nil
}

func removeTempFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: listing %s: %w", dir, err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("store: removing temp file: %w", err)
			}
		}
	}
	return nil
}

// ReplayHandler receives the persisted history during Replay. Either
// callback may be nil. Observations of one key arrive in ingestion
// order, interleaved with that key's digest markers exactly where they
// occurred; ordering across keys is not preserved once records have
// been compacted.
type ReplayHandler struct {
	Observation func(job, env string, s core.Sample, at time.Time)
	Digest      func(job, env string, fresh int, at time.Time)
}

// Replay streams every persisted record — compacted segments first,
// then the remaining WAL segments in sequence order — into h. Call it
// once, after Open and before appending traffic. If a sealed segment
// fails validation, replay stops at the last clean prefix and the
// returned error wraps ErrCorrupt; the store remains usable.
func (s *Store) Replay(h ReplayHandler) error {
	s.mu.Lock()
	segs := append([]*Segment(nil), s.segs...)
	s.mu.Unlock()
	for _, g := range segs {
		for _, e := range g.index {
			err := g.decodeSeriesBlock(e,
				func(p ObsPoint) {
					s.replayedObs.Add(1)
					if h.Observation != nil {
						h.Observation(e.job, e.env, p.Sample, p.At)
					}
				},
				func(at int64, fresh int) {
					s.replayedDigests.Add(1)
					if h.Digest != nil {
						h.Digest(e.job, e.env, fresh, time.Unix(0, at))
					}
				})
			if err != nil {
				s.corruptSegments.Add(1)
				s.opts.Logger.Error("store: replay stopped at corrupt compacted segment",
					"job", e.job, "env", e.env, "error", err)
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	seqs, err := listWALSegments(s.walDir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		res, err := scanWALFile(filepath.Join(s.walDir, walName(seq)), s.opts.MaxRecordBytes, func(payload []byte) error {
			r, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			switch r.typ {
			case recObservation:
				s.replayedObs.Add(1)
				if h.Observation != nil {
					h.Observation(r.job, r.env, r.sample, time.Unix(0, r.at))
				}
			case recDigest:
				s.replayedDigests.Add(1)
				if h.Digest != nil {
					h.Digest(r.job, r.env, r.fresh, time.Unix(0, r.at))
				}
			}
			return nil
		})
		if err != nil {
			// A framed record with a valid CRC that fails decode is
			// corruption the frame checksum cannot see.
			s.corruptSegments.Add(1)
			s.opts.Logger.Error("store: replay stopped at corrupt WAL record",
				"segment", walName(seq), "error", err)
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if !res.clean() {
			// Open repaired the newest segment, so a torn frame here
			// is a sealed segment damaged at rest: stop at the clean
			// prefix.
			s.corruptSegments.Add(1)
			s.opts.Logger.Error("store: replay stopped at damaged sealed segment",
				"segment", walName(seq), "error", res.tornErr)
			return fmt.Errorf("%w: %v", ErrCorrupt, res.tornErr)
		}
	}
	return nil
}

// AppendObservation durably logs one observation before the caller
// admits it anywhere else. Under FsyncAlways, return means the record
// survives kill -9.
func (s *Store) AppendObservation(job, env string, sample core.Sample, at time.Time) error {
	payload := appendObservation(nil, job, env, sample, at.UnixNano())
	return s.w.append(payload)
}

// AppendDigest logs that fresh observations of a key were digested by
// an installed (and checkpointed) model version, so replay restores
// the ring's freshness state instead of re-triggering the fine-tune.
func (s *Store) AppendDigest(job, env string, fresh int, at time.Time) error {
	payload := appendDigest(nil, job, env, fresh, at.UnixNano())
	return s.w.append(payload)
}

// CompactNow seals nothing but compacts every already-sealed WAL
// segment into one immutable indexed segment, then deletes the inputs.
// It reports how many records were compacted (0 when no sealed
// segments exist). Safe to call concurrently with appends; not with
// Replay.
func (s *Store) CompactNow() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := s.w.activeSeq()
	seqs, err := listWALSegments(s.walDir)
	if err != nil {
		return 0, err
	}
	var sealed []uint64
	for _, seq := range seqs {
		if seq < active {
			sealed = append(sealed, seq)
		}
	}
	if len(sealed) == 0 {
		return 0, nil
	}
	series := map[seriesKey]*seriesData{}
	var order []seriesKey
	records := 0
	for _, seq := range sealed {
		res, err := scanWALFile(filepath.Join(s.walDir, walName(seq)), s.opts.MaxRecordBytes, func(payload []byte) error {
			r, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			k := seriesKey{job: r.job, env: r.env}
			sd, ok := series[k]
			if !ok {
				sd = &seriesData{}
				series[k] = sd
				order = append(order, k)
			}
			switch r.typ {
			case recObservation:
				sd.add(r)
			case recDigest:
				sd.digests = append(sd.digests, digestMark{pos: len(sd.at), at: r.at, fresh: r.fresh})
			}
			records++
			return nil
		})
		if err != nil || !res.clean() {
			// Never compact past damage: the WAL stays as-is so Replay
			// can surface the fault.
			s.corruptSegments.Add(1)
			if err == nil {
				err = res.tornErr
			}
			return 0, fmt.Errorf("store: compaction aborted: %w", err)
		}
	}
	path, err := writeSegment(s.segDir, order, series, sealed[0], sealed[len(sealed)-1])
	if err != nil {
		return 0, err
	}
	g, err := openSegment(path)
	if err != nil {
		return 0, err
	}
	// The segment is durable: the WAL inputs are redundant now.
	for _, seq := range sealed {
		if err := os.Remove(filepath.Join(s.walDir, walName(seq))); err != nil {
			return 0, fmt.Errorf("store: removing compacted WAL segment: %w", err)
		}
	}
	if err := syncDir(s.walDir); err != nil {
		return 0, err
	}
	s.segs = append(s.segs, g)
	s.compactions.Add(1)
	s.compactedRecords.Add(int64(records))
	s.opts.Logger.Info("store: compacted WAL segments",
		"records", records, "segments", len(sealed), "output", filepath.Base(path))
	return records, nil
}

// Series returns every persisted observation of one (job, env) key in
// ingestion order: compacted segments via their footer indexes, then
// the live WAL. Not safe concurrently with compaction.
func (s *Store) Series(job, env string) ([]ObsPoint, error) {
	s.mu.Lock()
	segs := append([]*Segment(nil), s.segs...)
	s.mu.Unlock()
	var out []ObsPoint
	for _, g := range segs {
		pts, ok, err := g.Series(job, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, pts...)
		}
	}
	seqs, err := listWALSegments(s.walDir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		_, err := scanWALFile(filepath.Join(s.walDir, walName(seq)), s.opts.MaxRecordBytes, func(payload []byte) error {
			r, err := decodeRecord(payload)
			if err != nil || r.typ != recObservation || r.job != job || r.env != env {
				return err
			}
			out = append(out, ObsPoint{At: time.Unix(0, r.at), Sample: r.sample})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Start launches the background compaction loop. Stop it with Close.
func (s *Store) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.opts.CompactInterval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					// Best effort: a failed compaction leaves the WAL
					// in place and is retried next tick.
					_, _ = s.CompactNow()
				}
			}
		}()
	})
}

// Close stops compaction and syncs + closes the active WAL segment.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
	return s.w.close()
}

// StoreStats snapshots the counters (named to satisfy the serve
// layer's StoreStatser without a wrapper).
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	segCount := len(s.segs)
	s.mu.Unlock()
	seqs, _ := listWALSegments(s.walDir)
	return Stats{
		WALAppends:           s.w.appends.Load(),
		WALAppendedBytes:     s.w.appendedBytes.Load(),
		WALSegments:          len(seqs),
		WALActiveSeq:         s.w.activeSeq(),
		Fsyncs:               s.w.fsyncs.Load(),
		RepairedBytes:        s.repairedBytes.Load(),
		ReplayedObservations: s.replayedObs.Load(),
		ReplayedDigests:      s.replayedDigests.Load(),
		CorruptSegments:      s.corruptSegments.Load(),
		Compactions:          s.compactions.Load(),
		CompactedRecords:     s.compactedRecords.Load(),
		CompactSegments:      segCount,
		Checkpoints:          s.checkpoints.Load(),
		CheckpointErrors:     s.checkpointErrors.Load(),
		CheckpointLoads:      s.checkpointLoads.Load(),
	}
}
