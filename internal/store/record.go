// Package store is the durability layer under the serving stack: an
// append-only write-ahead log for runtime observations, periodic
// compaction of sealed WAL segments into immutable indexed segments,
// and atomic checkpointing of hot-swapped model versions. Together
// they let a restarted node reconstruct exactly the lifecycle and
// registry state it crashed with: every acknowledged observation is
// framed and CRC-protected in the WAL before ring admission, and every
// installed model version is persisted write-temp + rename before its
// samples are marked digested.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/encoding"
)

// WAL record types. A record's payload starts with its type byte; the
// framing layer (length + CRC32C) is type-agnostic.
const (
	// recObservation is one ingested runtime observation.
	recObservation = 1
	// recDigest marks the point at which a key's fresh observations
	// were digested by a successful fine-tune + swap + checkpoint, so
	// replay reconstructs each ring's freshness state instead of
	// re-triggering fine-tunes for already-installed versions.
	recDigest = 2
)

// Decode limits. Records are produced by this process, so hitting a
// limit during decode means corruption (or fuzzed input), not real
// data: decoding must error out instead of allocating attacker-chosen
// amounts of memory or over-reading.
const (
	maxStrLen  = 4096
	maxProps   = 256
	maxScale   = 1 << 30
	maxDigestN = 1 << 30
)

// walRecord is one decoded WAL payload.
type walRecord struct {
	typ      byte
	job, env string
	at       int64 // unix nanoseconds
	sample   core.Sample
	fresh    int // recDigest: fresh samples the digest consumed
}

// cursor is a bounds-checked reader over one record payload. Every
// read reports an error instead of panicking or reading past the end,
// which is what the fuzz targets pin.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("store: record truncated at byte %d", c.off)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: bad uvarint at byte %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: bad varint at byte %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("store: record truncated at byte %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("store: string length %d exceeds limit %d", n, maxStrLen)
	}
	if uint64(c.remaining()) < n {
		return "", fmt.Errorf("store: string of %d bytes overruns record at byte %d", n, c.off)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendProps(dst []byte, props []encoding.Property) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(props)))
	for _, p := range props {
		dst = appendString(dst, p.Name)
		dst = appendString(dst, p.Value)
	}
	return dst
}

func (c *cursor) props(optional bool) ([]encoding.Property, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxProps {
		return nil, fmt.Errorf("store: %d properties exceed limit %d", n, maxProps)
	}
	out := make([]encoding.Property, n)
	for i := range out {
		if out[i].Name, err = c.str(); err != nil {
			return nil, err
		}
		if out[i].Value, err = c.str(); err != nil {
			return nil, err
		}
		out[i].Optional = optional
	}
	return out, nil
}

// appendObservation encodes one observation payload onto dst.
func appendObservation(dst []byte, job, env string, s core.Sample, at int64) []byte {
	dst = append(dst, recObservation)
	dst = binary.AppendVarint(dst, at)
	dst = appendString(dst, job)
	dst = appendString(dst, env)
	dst = binary.AppendUvarint(dst, uint64(s.ScaleOut))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.RuntimeSec))
	dst = appendProps(dst, s.Essential)
	dst = appendProps(dst, s.Optional)
	return dst
}

// appendDigest encodes one digest-marker payload onto dst.
func appendDigest(dst []byte, job, env string, fresh int, at int64) []byte {
	dst = append(dst, recDigest)
	dst = binary.AppendVarint(dst, at)
	dst = appendString(dst, job)
	dst = appendString(dst, env)
	return binary.AppendUvarint(dst, uint64(fresh))
}

// decodeRecord parses one WAL payload. It is strict: unknown types,
// out-of-range values, and trailing bytes are all errors, so a frame
// whose CRC survived corruption by chance still cannot smuggle a
// malformed record into the rings.
func decodeRecord(p []byte) (walRecord, error) {
	c := cursor{b: p}
	var r walRecord
	var err error
	if r.typ, err = c.byte(); err != nil {
		return r, err
	}
	switch r.typ {
	case recObservation:
		if r.at, err = c.varint(); err != nil {
			return r, err
		}
		if r.job, err = c.str(); err != nil {
			return r, err
		}
		if r.env, err = c.str(); err != nil {
			return r, err
		}
		scale, err := c.uvarint()
		if err != nil {
			return r, err
		}
		if scale == 0 || scale > maxScale {
			return r, fmt.Errorf("store: scale-out %d out of range", scale)
		}
		r.sample.ScaleOut = int(scale)
		bits, err := c.u64()
		if err != nil {
			return r, err
		}
		r.sample.RuntimeSec = math.Float64frombits(bits)
		if r.sample.Essential, err = c.props(false); err != nil {
			return r, err
		}
		if r.sample.Optional, err = c.props(true); err != nil {
			return r, err
		}
	case recDigest:
		if r.at, err = c.varint(); err != nil {
			return r, err
		}
		if r.job, err = c.str(); err != nil {
			return r, err
		}
		if r.env, err = c.str(); err != nil {
			return r, err
		}
		fresh, err := c.uvarint()
		if err != nil {
			return r, err
		}
		if fresh > maxDigestN {
			return r, fmt.Errorf("store: digest count %d out of range", fresh)
		}
		r.fresh = int(fresh)
	default:
		return r, fmt.Errorf("store: unknown record type %d", r.typ)
	}
	if c.remaining() != 0 {
		return r, fmt.Errorf("store: %d trailing bytes after record", c.remaining())
	}
	return r, nil
}
