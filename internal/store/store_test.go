package store

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
)

// obs builds a deterministic observation for test key (job, env) with
// sequence number n folded into every field, so replays can be checked
// value-by-value.
func obs(n int) core.Sample {
	return core.Sample{
		ScaleOut:   1 + n%7,
		RuntimeSec: 100 + float64(n)*0.25,
		Essential: []encoding.Property{
			{Name: "dataset-size", Value: "4GB"},
			{Name: "node-type", Value: "c5.xlarge"},
		},
		Optional: []encoding.Property{
			{Name: "memory", Value: "8GB", Optional: true},
		},
	}
}

func sampleEq(a, b core.Sample) bool {
	if a.ScaleOut != b.ScaleOut || a.RuntimeSec != b.RuntimeSec ||
		len(a.Essential) != len(b.Essential) || len(a.Optional) != len(b.Optional) {
		return false
	}
	for i := range a.Essential {
		if a.Essential[i] != b.Essential[i] {
			return false
		}
	}
	for i := range a.Optional {
		if a.Optional[i] != b.Optional[i] {
			return false
		}
	}
	return true
}

// replayed collects one Replay pass.
type replayed struct {
	obs     []ObsPoint
	keys    []string
	digests []int
}

func replayAll(t *testing.T, s *Store) *replayed {
	t.Helper()
	r := &replayed{}
	err := s.Replay(ReplayHandler{
		Observation: func(job, env string, smp core.Sample, at time.Time) {
			r.obs = append(r.obs, ObsPoint{At: at, Sample: smp})
			r.keys = append(r.keys, job+"@"+env)
		},
		Digest: func(job, env string, fresh int, at time.Time) {
			r.digests = append(r.digests, fresh)
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return r
}

func TestRecordRoundTrip(t *testing.T) {
	at := time.Now().UnixNano()
	s := obs(3)
	p := appendObservation(nil, "sort", "c3o", s, at)
	r, err := decodeRecord(p)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if r.typ != recObservation || r.job != "sort" || r.env != "c3o" || r.at != at || !sampleEq(r.sample, s) {
		t.Fatalf("round trip mismatch: %+v", r)
	}
	d := appendDigest(nil, "grep", "", 12, at)
	rd, err := decodeRecord(d)
	if err != nil {
		t.Fatalf("decodeRecord digest: %v", err)
	}
	if rd.typ != recDigest || rd.job != "grep" || rd.env != "" || rd.fresh != 12 {
		t.Fatalf("digest round trip mismatch: %+v", rd)
	}
	// Strictness: truncations of a valid record must all error.
	for i := 0; i < len(p); i++ {
		if _, err := decodeRecord(p[:i]); err == nil {
			t.Fatalf("decodeRecord accepted a %d-byte truncation", i)
		}
	}
	if _, err := decodeRecord(append(p, 0)); err == nil {
		t.Fatal("decodeRecord accepted a trailing byte")
	}
}

func TestWALAppendReplayRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 100
	base := time.Now()
	for i := 0; i < n; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("AppendObservation %d: %v", i, err)
		}
	}
	if err := s.AppendDigest("sort", "c3o", 42, base.Add(n*time.Second)); err != nil {
		t.Fatalf("AppendDigest: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	r := replayAll(t, s2)
	if len(r.obs) != n {
		t.Fatalf("replayed %d observations, want %d", len(r.obs), n)
	}
	for i, p := range r.obs {
		if !sampleEq(p.Sample, obs(i)) {
			t.Fatalf("observation %d mismatch: %+v", i, p.Sample)
		}
		if r.keys[i] != "sort@c3o" {
			t.Fatalf("observation %d key = %s", i, r.keys[i])
		}
		if got, want := p.At.UnixNano(), base.Add(time.Duration(i)*time.Second).UnixNano(); got != want {
			t.Fatalf("observation %d timestamp = %d, want %d", i, got, want)
		}
	}
	if len(r.digests) != 1 || r.digests[0] != 42 {
		t.Fatalf("replayed digests = %v, want [42]", r.digests)
	}
	st := s2.StoreStats()
	if st.ReplayedObservations != n || st.ReplayedDigests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALSegmentRollAndCompact(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rolls every few records.
	s, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 200
	base := time.Now()
	for i := 0; i < n; i++ {
		job := "sort"
		if i%3 == 0 {
			job = "grep"
		}
		if err := s.AppendObservation(job, "c3o", obs(i), base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i == 120 {
			if err := s.AppendDigest("sort", "c3o", 80, base); err != nil {
				t.Fatalf("digest: %v", err)
			}
		}
	}
	if s.w.activeSeq() < 3 {
		t.Fatalf("expected several rolled segments, active seq = %d", s.w.activeSeq())
	}
	records, err := s.CompactNow()
	if err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if records == 0 {
		t.Fatal("CompactNow compacted nothing despite sealed segments")
	}
	st := s.StoreStats()
	if st.Compactions != 1 || st.CompactSegments != 1 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	// Point lookup through the footer index plus the residual WAL.
	pts, err := s.Series("grep", "c3o")
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	wantGrep := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			wantGrep++
		}
	}
	if len(pts) != wantGrep {
		t.Fatalf("Series(grep) = %d points, want %d", len(pts), wantGrep)
	}
	gi := 0
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			continue
		}
		if !sampleEq(pts[gi].Sample, obs(i)) {
			t.Fatalf("grep point %d mismatch", gi)
		}
		gi++
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: compacted segments and the residual WAL replay as one
	// stream, per-key order intact, nothing lost or doubled.
	s2, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	r := replayAll(t, s2)
	if len(r.obs) != n {
		t.Fatalf("replayed %d observations, want %d", len(r.obs), n)
	}
	if len(r.digests) != 1 || r.digests[0] != 80 {
		t.Fatalf("digests = %v, want [80]", r.digests)
	}
	// Per-key ordering: each key's samples must appear in ingestion
	// order even though compaction grouped them by series.
	next := map[string]int{"sort@c3o": 1, "grep@c3o": 0}
	step := map[string]int{"sort@c3o": 0, "grep@c3o": 0}
	for i, p := range r.obs {
		k := r.keys[i]
		want := next[k] + 3*step[k]
		if k == "sort@c3o" {
			// sort gets indexes not divisible by 3: 1,2,4,5,7,8...
			for want%3 == 0 {
				want++
			}
			if !sampleEq(p.Sample, obs(want)) {
				t.Fatalf("sort sample at replay %d mismatch (want obs(%d))", i, want)
			}
			next[k] = want + 1
			continue
		}
		if !sampleEq(p.Sample, obs(3*step[k])) {
			t.Fatalf("grep sample at replay %d mismatch (want obs(%d))", i, 3*step[k])
		}
		step[k]++
	}
}

func TestCompactionIdempotentAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := s.AppendObservation("sort", "c3o", obs(i), time.Now()); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Snapshot the sealed WAL files, compact, then restore the inputs:
	// this is exactly the on-disk state after a crash between segment
	// publish and WAL deletion.
	seqs, err := listWALSegments(s.walDir)
	if err != nil {
		t.Fatal(err)
	}
	active := s.w.activeSeq()
	saved := map[uint64][]byte{}
	for _, seq := range seqs {
		if seq < active {
			saved[seq] = readFileT(t, filepath.Join(s.walDir, walName(seq)))
		}
	}
	if len(saved) == 0 {
		t.Fatal("no sealed segments to compact")
	}
	if _, err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for seq, b := range saved {
		writeFileT(t, filepath.Join(dir, "wal", walName(seq)), b)
	}

	s2, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	r := replayAll(t, s2)
	if len(r.obs) != n {
		t.Fatalf("replayed %d observations after simulated crash, want %d (no double-count)", len(r.obs), n)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	m := tinyModel(t)
	blob := saveModel(t, m)
	if err := s.CheckpointModel("sort", "c3o", 7, blob); err != nil {
		t.Fatalf("CheckpointModel: %v", err)
	}
	// Overwrite with a newer version: rename replaces atomically.
	if err := s.CheckpointModel("sort", "c3o", 8, blob); err != nil {
		t.Fatalf("CheckpointModel v8: %v", err)
	}
	ck, ok, err := s.LoadCheckpoint("sort", "c3o")
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint = (%v, %v)", ok, err)
	}
	if ck.Version != 8 {
		t.Fatalf("checkpoint version = %d, want 8", ck.Version)
	}
	if ck.Model == nil || ck.Model.Cfg.NumEssential != m.Cfg.NumEssential {
		t.Fatalf("checkpoint model config mismatch")
	}
	if _, ok, err := s.LoadCheckpoint("absent", ""); ok || err != nil {
		t.Fatalf("LoadCheckpoint(absent) = (%v, %v), want (false, nil)", ok, err)
	}
	if err := s.CheckpointModel("../evil", "", 1, blob); err == nil {
		t.Fatal("CheckpointModel accepted a path-traversal key")
	}
	if math.IsNaN(float64(ck.At)) || ck.At == 0 {
		t.Fatal("checkpoint missing timestamp metadata")
	}
}
