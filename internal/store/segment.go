package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Compacted segment layout. A segment is the immutable, indexed form
// of a run of sealed WAL segments: observations grouped per (job, env)
// series with columnar compression, digests kept as positions inside
// their series stream, and a footer index for point lookups without
// scanning the file.
//
//	header   8 bytes  "BSEG" version
//	blocks   one per series (see encodeSeriesBlock), each CRC32C-tailed
//	index    series directory: key -> block offset/length/count
//	footer   36 bytes fixed:
//	         indexOff u64 | indexLen u32 | indexCRC u32 |
//	         walFirst u64 | walLast u64 | magic "BSG1"
//
// walFirst..walLast is the range of WAL segment sequence numbers the
// segment replaces; Open uses it to delete WAL files a crash left
// behind after compaction finished, so replay never double-counts.
var (
	segMagic    = []byte{'B', 'S', 'E', 'G', 1, 0, 0, 0}
	segFooterMagic = []byte{'B', 'S', 'G', '1'}
)

const (
	segHeaderLen = 8
	segFooterLen = 36
	// maxSeriesPerSegment and maxSamplesPerSeries bound decode-time
	// allocations against corrupt or fuzzed counts.
	maxSeriesPerSegment = 1 << 20
	maxSamplesPerSeries = 1 << 26
)

// segName renders a compacted segment's file name from the last WAL
// sequence it covers (unique and monotone across compactions).
func segName(walLast uint64) string { return fmt.Sprintf("%016x.seg", walLast) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".seg")
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// seriesKey identifies one observation series.
type seriesKey struct{ job, env string }

// digestMark records a digest inside a series stream: it occurred
// after pos samples of the series had been ingested.
type digestMark struct {
	pos   int
	at    int64
	fresh int
}

// seriesData accumulates one series during compaction.
type seriesData struct {
	at      []int64
	scale   []int
	runtime []float64
	propIdx []int
	dict    []propSet
	dictKey map[string]int
	digests []digestMark
}

// propSet is one distinct (essential, optional) property combination.
// Observation streams repeat a handful of property sets per series, so
// samples store a dictionary index instead of the full strings.
type propSet struct {
	enc []byte // appendProps(essential) ++ appendProps(optional)
}

func (sd *seriesData) add(r walRecord) {
	sd.at = append(sd.at, r.at)
	sd.scale = append(sd.scale, r.sample.ScaleOut)
	sd.runtime = append(sd.runtime, r.sample.RuntimeSec)
	enc := appendProps(nil, r.sample.Essential)
	enc = appendProps(enc, r.sample.Optional)
	if sd.dictKey == nil {
		sd.dictKey = map[string]int{}
	}
	idx, ok := sd.dictKey[string(enc)]
	if !ok {
		idx = len(sd.dict)
		sd.dict = append(sd.dict, propSet{enc: enc})
		sd.dictKey[string(enc)] = idx
	}
	sd.propIdx = append(sd.propIdx, idx)
}

// encodeSeriesBlock renders one series:
//
//	count            uvarint
//	timestamps       varint t0, varint delta, then delta-of-delta varints
//	scale-outs       RLE pairs (uvarint value, uvarint run)
//	runtimes         uvarint(bits XOR prevBits) per sample
//	property dict    uvarint n, then each encoded propSet
//	property indexes RLE pairs (uvarint dictIdx, uvarint run)
//	digests          uvarint n, then (uvarint pos, varint at, uvarint fresh)
//	crc              u32 LE CRC32C of everything above
func encodeSeriesBlock(dst []byte, sd *seriesData) []byte {
	start := len(dst)
	n := len(sd.at)
	dst = binary.AppendUvarint(dst, uint64(n))
	// Timestamps, delta-of-delta: observation arrivals are near-
	// periodic under steady load, so second differences hover near 0
	// and encode in one byte.
	var prev, prevDelta int64
	for i, t := range sd.at {
		switch i {
		case 0:
			dst = binary.AppendVarint(dst, t)
		case 1:
			prevDelta = t - prev
			dst = binary.AppendVarint(dst, prevDelta)
		default:
			d := t - prev
			dst = binary.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prev = t
	}
	// Scale-outs, run-length encoded: a job is usually observed at one
	// scale-out for long stretches.
	for i := 0; i < n; {
		j := i
		for j < n && sd.scale[j] == sd.scale[i] {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(sd.scale[i]))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	// Runtimes: XOR against the previous sample's bits, uvarint of the
	// result. Similar runtimes share sign/exponent/high-mantissa bits,
	// so the XOR clears the low bytes varint elides... the high bytes.
	// XOR keeps it lossless either way; equal values encode as 1 byte.
	var prevBits uint64
	for _, v := range sd.runtime {
		bits := math.Float64bits(v)
		dst = binary.AppendUvarint(dst, bits^prevBits)
		prevBits = bits
	}
	// Property dictionary + per-sample indexes (RLE).
	dst = binary.AppendUvarint(dst, uint64(len(sd.dict)))
	for _, ps := range sd.dict {
		dst = append(dst, ps.enc...)
	}
	for i := 0; i < n; {
		j := i
		for j < n && sd.propIdx[j] == sd.propIdx[i] {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(sd.propIdx[i]))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	// Digest positions.
	dst = binary.AppendUvarint(dst, uint64(len(sd.digests)))
	for _, d := range sd.digests {
		dst = binary.AppendUvarint(dst, uint64(d.pos))
		dst = binary.AppendVarint(dst, d.at)
		dst = binary.AppendUvarint(dst, uint64(d.fresh))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
}

// seriesEntry is one index row of a segment.
type seriesEntry struct {
	job, env string
	off      int64
	blen     int64
	count    int64
}

// Segment is one open compacted segment: the raw bytes plus the parsed
// footer index. Point lookups decode only the addressed series block.
type Segment struct {
	b                  []byte
	index              []seriesEntry
	walFirst, walLast  uint64
}

// writeSegment renders and atomically publishes a compacted segment
// covering WAL sequences walFirst..walLast: write-temp, fsync, rename,
// fsync dir. A crash at any point leaves either no segment (the WAL
// still feeds replay) or the complete segment (the covered WAL files
// are deleted on next open).
func writeSegment(dir string, order []seriesKey, series map[seriesKey]*seriesData, walFirst, walLast uint64) (string, error) {
	buf := buildSegmentImage(order, series, walFirst, walLast)
	path := filepath.Join(dir, segName(walLast))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", fmt.Errorf("store: writing segment temp file: %w", err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		return "", fmt.Errorf("store: reopening segment temp file: %w", err)
	}
	syncErr := f.Sync()
	f.Close()
	if syncErr != nil {
		return "", fmt.Errorf("store: syncing segment: %w", syncErr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("store: publishing segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// buildSegmentImage renders the complete segment byte image (header,
// series blocks, index, footer) without touching the filesystem.
func buildSegmentImage(order []seriesKey, series map[seriesKey]*seriesData, walFirst, walLast uint64) []byte {
	// Index rows are sorted by key so Series can binary-search.
	sort.Slice(order, func(i, j int) bool {
		if order[i].job != order[j].job {
			return order[i].job < order[j].job
		}
		return order[i].env < order[j].env
	})
	buf := append([]byte(nil), segMagic...)
	index := make([]seriesEntry, 0, len(order))
	for _, k := range order {
		sd := series[k]
		off := int64(len(buf))
		buf = encodeSeriesBlock(buf, sd)
		index = append(index, seriesEntry{
			job: k.job, env: k.env,
			off: off, blen: int64(len(buf)) - off, count: int64(len(sd.at)),
		})
	}
	indexOff := int64(len(buf))
	buf = binary.AppendUvarint(buf, uint64(len(index)))
	for _, e := range index {
		buf = appendString(buf, e.job)
		buf = appendString(buf, e.env)
		buf = binary.AppendUvarint(buf, uint64(e.off))
		buf = binary.AppendUvarint(buf, uint64(e.blen))
		buf = binary.AppendUvarint(buf, uint64(e.count))
	}
	indexLen := int64(len(buf)) - indexOff
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(indexLen))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[indexOff:indexOff+indexLen], castagnoli))
	buf = binary.LittleEndian.AppendUint64(buf, walFirst)
	buf = binary.LittleEndian.AppendUint64(buf, walLast)
	return append(buf, segFooterMagic...)
}

// openSegment reads and validates one compacted segment file.
func openSegment(path string) (*Segment, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading segment: %w", err)
	}
	g, err := parseSegment(b)
	if err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", filepath.Base(path), err)
	}
	return g, nil
}

// parseSegment validates the header, footer, and index of a segment
// image. Series blocks are validated lazily (their CRCs are checked on
// first decode). It must reject any malformed input with an error —
// never panic or read out of bounds — which FuzzSegmentFooter pins.
func parseSegment(b []byte) (*Segment, error) {
	if len(b) < segHeaderLen+segFooterLen {
		return nil, fmt.Errorf("shorter than header+footer")
	}
	if string(b[:segHeaderLen]) != string(segMagic) {
		return nil, fmt.Errorf("bad header magic")
	}
	foot := b[len(b)-segFooterLen:]
	if string(foot[32:]) != string(segFooterMagic) {
		return nil, fmt.Errorf("bad footer magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexLen := int64(binary.LittleEndian.Uint32(foot[8:]))
	indexCRC := binary.LittleEndian.Uint32(foot[12:])
	g := &Segment{
		b:        b,
		walFirst: binary.LittleEndian.Uint64(foot[16:]),
		walLast:  binary.LittleEndian.Uint64(foot[24:]),
	}
	bodyEnd := int64(len(b) - segFooterLen)
	if indexOff < segHeaderLen || indexLen < 0 || indexOff+indexLen != bodyEnd {
		return nil, fmt.Errorf("index [%d,%d) out of bounds", indexOff, indexOff+indexLen)
	}
	idx := b[indexOff : indexOff+indexLen]
	if crc32.Checksum(idx, castagnoli) != indexCRC {
		return nil, fmt.Errorf("index CRC mismatch")
	}
	c := cursor{b: idx}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSeriesPerSegment {
		return nil, fmt.Errorf("%d series exceed limit", n)
	}
	g.index = make([]seriesEntry, 0, n)
	prevEnd := int64(segHeaderLen)
	for i := uint64(0); i < n; i++ {
		var e seriesEntry
		if e.job, err = c.str(); err != nil {
			return nil, err
		}
		if e.env, err = c.str(); err != nil {
			return nil, err
		}
		off, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		blen, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		count, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		e.off, e.blen, e.count = int64(off), int64(blen), int64(count)
		// Blocks tile the region between header and index exactly.
		if e.off != prevEnd || e.blen < 5 || e.off+e.blen > indexOff {
			return nil, fmt.Errorf("series %d block [%d,%d) out of bounds", i, e.off, e.off+e.blen)
		}
		if e.count > maxSamplesPerSeries {
			return nil, fmt.Errorf("series %d count %d exceeds limit", i, e.count)
		}
		prevEnd = e.off + e.blen
		g.index = append(g.index, e)
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing index bytes", c.remaining())
	}
	if prevEnd != indexOff {
		return nil, fmt.Errorf("blocks end at %d, index starts at %d", prevEnd, indexOff)
	}
	return g, nil
}

// ObsPoint is one decoded observation of a series.
type ObsPoint struct {
	At     time.Time
	Sample core.Sample
}

// decodeSeriesBlock walks one series block, invoking obs per sample
// (in ingestion order) and digest at each digest marker. Either
// callback may be nil.
func (g *Segment) decodeSeriesBlock(e seriesEntry, obs func(ObsPoint), digest func(at int64, fresh int)) error {
	block := g.b[e.off : e.off+e.blen]
	body, tail := block[:len(block)-4], block[len(block)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("store: series %s@%s block CRC mismatch", e.job, e.env)
	}
	c := cursor{b: body}
	nu, err := c.uvarint()
	if err != nil {
		return err
	}
	if nu != uint64(e.count) {
		return fmt.Errorf("store: series %s@%s block count %d != index count %d", e.job, e.env, nu, e.count)
	}
	if nu > uint64(len(body)) {
		// Every sample needs at least one timestamp byte; a larger
		// count is a corrupt allocation bomb.
		return fmt.Errorf("store: series count %d exceeds block size %d", nu, len(body))
	}
	n := int(nu)
	at := make([]int64, n)
	var prev, prevDelta int64
	for i := range at {
		v, err := c.varint()
		if err != nil {
			return err
		}
		switch i {
		case 0:
			prev = v
		case 1:
			prevDelta = v
			prev += v
		default:
			prevDelta += v
			prev += prevDelta
		}
		at[i] = prev
	}
	scale := make([]int, n)
	if err := decodeRLE(&c, n, func(i int, v uint64) error {
		if v == 0 || v > maxScale {
			return fmt.Errorf("store: scale-out %d out of range", v)
		}
		scale[i] = int(v)
		return nil
	}); err != nil {
		return err
	}
	rt := make([]float64, n)
	var prevBits uint64
	for i := range rt {
		x, err := c.uvarint()
		if err != nil {
			return err
		}
		prevBits ^= x
		rt[i] = math.Float64frombits(prevBits)
	}
	nd, err := c.uvarint()
	if err != nil {
		return err
	}
	if nd > uint64(c.remaining())+1 {
		return fmt.Errorf("store: dict size %d exceeds block remainder", nd)
	}
	props := make([]core.Sample, nd) // decoded property sets (only the prop fields are used)
	for i := range props {
		ess, err := c.props(false)
		if err != nil {
			return err
		}
		opt, err := c.props(true)
		if err != nil {
			return err
		}
		props[i] = core.Sample{Essential: ess, Optional: opt}
	}
	propIdx := make([]int, n)
	if err := decodeRLE(&c, n, func(i int, v uint64) error {
		if v >= nd {
			return fmt.Errorf("store: property dict index %d out of range", v)
		}
		propIdx[i] = int(v)
		return nil
	}); err != nil {
		return err
	}
	ndig, err := c.uvarint()
	if err != nil {
		return err
	}
	if ndig > uint64(c.remaining())+1 {
		return fmt.Errorf("store: digest count %d exceeds block remainder", ndig)
	}
	digests := make([]digestMark, ndig)
	prevPos := -1
	for i := range digests {
		pos, err := c.uvarint()
		if err != nil {
			return err
		}
		dat, err := c.varint()
		if err != nil {
			return err
		}
		fresh, err := c.uvarint()
		if err != nil {
			return err
		}
		if pos > uint64(n) || int(pos) < prevPos || fresh > maxDigestN {
			return fmt.Errorf("store: digest %d position %d out of order", i, pos)
		}
		prevPos = int(pos)
		digests[i] = digestMark{pos: int(pos), at: dat, fresh: int(fresh)}
	}
	if c.remaining() != 0 {
		return fmt.Errorf("store: %d trailing bytes in series block", c.remaining())
	}
	// Emit samples interleaved with digests at their recorded
	// positions, reconstructing the original per-series order.
	di := 0
	for i := 0; i < n; i++ {
		for di < len(digests) && digests[di].pos == i {
			if digest != nil {
				digest(digests[di].at, digests[di].fresh)
			}
			di++
		}
		if obs != nil {
			obs(ObsPoint{
				At: time.Unix(0, at[i]),
				Sample: core.Sample{
					ScaleOut:   scale[i],
					RuntimeSec: rt[i],
					Essential:  props[propIdx[i]].Essential,
					Optional:   props[propIdx[i]].Optional,
				},
			})
		}
	}
	for di < len(digests) {
		if digest != nil {
			digest(digests[di].at, digests[di].fresh)
		}
		di++
	}
	return nil
}

// decodeRLE reads (value, run) pairs until exactly n items are
// produced, calling set per item.
func decodeRLE(c *cursor, n int, set func(i int, v uint64) error) error {
	i := 0
	for i < n {
		v, err := c.uvarint()
		if err != nil {
			return err
		}
		run, err := c.uvarint()
		if err != nil {
			return err
		}
		if run == 0 || run > uint64(n-i) {
			return fmt.Errorf("store: RLE run %d overflows %d remaining items", run, n-i)
		}
		for j := uint64(0); j < run; j++ {
			if err := set(i, v); err != nil {
				return err
			}
			i++
		}
	}
	return nil
}

// Series decodes the samples of one (job, env) series via the footer
// index, reading only that series' block. The boolean reports whether
// the series exists in this segment.
func (g *Segment) Series(job, env string) ([]ObsPoint, bool, error) {
	i := sort.Search(len(g.index), func(i int) bool {
		e := g.index[i]
		if e.job != job {
			return e.job >= job
		}
		return e.env >= env
	})
	if i >= len(g.index) || g.index[i].job != job || g.index[i].env != env {
		return nil, false, nil
	}
	var out []ObsPoint
	err := g.decodeSeriesBlock(g.index[i], func(p ObsPoint) { out = append(out, p) }, nil)
	if err != nil {
		return nil, true, err
	}
	return out, true, nil
}
