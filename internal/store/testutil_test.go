package store

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
)

func readFileT(t testing.TB, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return b
}

func writeFileT(t testing.TB, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// tinyModel builds (once) a minimal untrained model, just big enough
// to exercise checkpoint serialization.
var tinyModel = func() func(t testing.TB) *core.Model {
	var once sync.Once
	var m *core.Model
	return func(t testing.TB) *core.Model {
		once.Do(func() {
			cfg := core.DefaultConfig()
			cfg.PropertySize = 8
			cfg.EncodingDim = 2
			cfg.EncoderHidden = 4
			cfg.ScaleOutHidden = 4
			cfg.ScaleOutDim = 2
			cfg.PredictorHidden = 4
			cfg.Seed = 7
			var err error
			if m, err = core.New(cfg); err != nil {
				t.Fatalf("core.New: %v", err)
			}
		})
		return m
	}
}()

func saveModel(t testing.TB, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}
