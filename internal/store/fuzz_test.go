package store

import (
	"bytes"
	"testing"
	"time"
)

// recordEq compares two decoded WAL records semantically (NaN runtime
// bit patterns compare via re-encoding, which is lossless).
func recordEq(a, b walRecord) bool {
	if a.typ != b.typ || a.job != b.job || a.env != b.env || a.at != b.at || a.fresh != b.fresh {
		return false
	}
	return sampleEq(a.sample, b.sample)
}

// FuzzWALRecord pins the WAL record decoder: arbitrary input must
// either be rejected with an error or decode to a record that
// re-encodes and re-decodes to the same value. It must never panic,
// over-read, or over-allocate.
func FuzzWALRecord(f *testing.F) {
	f.Add(appendObservation(nil, "sort", "c3o", obs(1), 1_700_000_000_000_000_000))
	f.Add(appendObservation(nil, "a", "", obs(0), -5))
	f.Add(appendDigest(nil, "grep", "cluster-9", 12, 42))
	f.Add([]byte{})
	f.Add([]byte{recObservation})
	f.Add([]byte{recDigest, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRecord(data)
		if err != nil {
			return
		}
		var re []byte
		switch r.typ {
		case recObservation:
			re = appendObservation(nil, r.job, r.env, r.sample, r.at)
		case recDigest:
			re = appendDigest(nil, r.job, r.env, r.fresh, r.at)
		default:
			t.Fatalf("decodeRecord returned unknown type %d without error", r.typ)
		}
		r2, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if !recordEq(r, r2) {
			t.Fatalf("record not stable under re-encode: %+v vs %+v", r, r2)
		}
	})
}

// fuzzSegmentImage builds a small, valid two-series segment for the
// seed corpus.
func fuzzSegmentImage() []byte {
	series := map[seriesKey]*seriesData{}
	var order []seriesKey
	base := int64(1_700_000_000_000_000_000)
	for i := 0; i < 12; i++ {
		job := "sort"
		if i%3 == 0 {
			job = "grep"
		}
		k := seriesKey{job: job, env: "c3o"}
		sd, ok := series[k]
		if !ok {
			sd = &seriesData{}
			series[k] = sd
			order = append(order, k)
		}
		sd.add(walRecord{
			typ: recObservation, job: k.job, env: k.env,
			at: base + int64(i)*int64(time.Second), sample: obs(i),
		})
	}
	sd := series[seriesKey{job: "sort", env: "c3o"}]
	sd.digests = append(sd.digests, digestMark{pos: 3, at: base, fresh: 3})
	return buildSegmentImage(order, series, 1, 4)
}

// FuzzSegmentFooter pins the compacted-segment parser: arbitrary bytes
// must either fail parseSegment, fail block decode, or decode cleanly —
// never panic, read out of bounds, or allocate proportionally to a
// corrupt count instead of the input size.
func FuzzSegmentFooter(f *testing.F) {
	img := fuzzSegmentImage()
	f.Add(img)
	// Truncations and a bit flip seed the interesting failure paths.
	f.Add(img[:len(img)-1])
	f.Add(img[:segHeaderLen+segFooterLen])
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := parseSegment(data)
		if err != nil {
			return
		}
		total := int64(0)
		for _, e := range g.index {
			decodeErr := g.decodeSeriesBlock(e,
				func(p ObsPoint) { total++ },
				func(at int64, fresh int) {})
			if decodeErr != nil {
				continue
			}
			// A block that decodes must agree with its index count.
			pts, ok, lookupErr := g.Series(e.job, e.env)
			if lookupErr != nil || !ok || int64(len(pts)) != e.count {
				t.Fatalf("Series(%s,%s) = (%d points, %v, %v), index count %d",
					e.job, e.env, len(pts), ok, lookupErr, e.count)
			}
		}
	})
}

// TestFuzzSeedsRoundTrip keeps the seed corpus honest: the canonical
// seeds must decode successfully, not just avoid panics.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	p := appendObservation(nil, "sort", "c3o", obs(1), 99)
	if _, err := decodeRecord(p); err != nil {
		t.Fatalf("observation seed does not decode: %v", err)
	}
	img := fuzzSegmentImage()
	g, err := parseSegment(img)
	if err != nil {
		t.Fatalf("segment seed does not parse: %v", err)
	}
	n := 0
	for _, e := range g.index {
		if err := g.decodeSeriesBlock(e, func(ObsPoint) { n++ }, nil); err != nil {
			t.Fatalf("segment seed block decode: %v", err)
		}
	}
	if n != 12 {
		t.Fatalf("segment seed decoded %d samples, want 12", n)
	}
	if !bytes.Equal(img, fuzzSegmentImage()) {
		t.Fatal("segment image build is not deterministic")
	}
}
