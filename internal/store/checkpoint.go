package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// Checkpoint file layout:
//
//	header   8 bytes  "BCKP" version
//	version  u64 LE   registry version the blob was installed as
//	walSeq   u64 LE   active WAL sequence when the checkpoint was cut
//	at       i64 LE   unix nanoseconds of the checkpoint
//	blobLen  u32 LE
//	blobCRC  u32 LE   CRC32C of the blob
//	blob     gob bytes written by core.Model.Save
//
// A checkpoint is published write-temp + rename: a crash mid-write
// leaves a .tmp file (deleted on the next Open) and the previous
// checkpoint — never a torn published file.
var ckptMagic = []byte{'B', 'C', 'K', 'P', 1, 0, 0, 0}

const ckptHeaderLen = 8 + 8 + 8 + 8 + 4 + 4

// ckptName maps a model key to its checkpoint file name, mirroring
// serve.ModelFileName.
func ckptName(job, env string) string {
	if env == "" {
		return job + ".ckpt"
	}
	return job + "_" + env + ".ckpt"
}

// ckptKeyOK mirrors the serve layer's key restriction ([A-Za-z0-9.-],
// no ".."): checkpoint names embed the key in a file name, and keys
// originate from HTTP input, so the store re-validates rather than
// trusting its callers.
func ckptKeyOK(part string) bool {
	for _, r := range part {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
		case r == '.':
			if strings.Contains(part, "..") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CheckpointModel atomically persists one installed model version:
// blob is the serialized model (core.Model.Save bytes), version the
// registry version it was published as. The previous checkpoint of
// the key, if any, is replaced only by the completed rename.
func (s *Store) CheckpointModel(job, env string, version uint64, blob []byte) error {
	if job == "" || !ckptKeyOK(job) || !ckptKeyOK(env) {
		s.checkpointErrors.Add(1)
		return fmt.Errorf("store: invalid checkpoint key %q/%q", job, env)
	}
	buf := make([]byte, 0, ckptHeaderLen+len(blob))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, s.w.activeSeq())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(time.Now().UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(blob, castagnoli))
	buf = append(buf, blob...)

	path := filepath.Join(s.ckptDir, ckptName(job, env))
	tmp := path + ".tmp"
	if err := s.writeCheckpointFile(tmp, path, buf); err != nil {
		s.checkpointErrors.Add(1)
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

func (s *Store) writeCheckpointFile(tmp, path string, buf []byte) error {
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: writing checkpoint temp file: %w", err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		return fmt.Errorf("store: reopening checkpoint temp file: %w", err)
	}
	syncErr := f.Sync()
	f.Close()
	if syncErr != nil {
		return fmt.Errorf("store: syncing checkpoint: %w", syncErr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: publishing checkpoint: %w", err)
	}
	return syncDir(s.ckptDir)
}

// Checkpoint carries one recovered model version and its generation
// metadata.
type Checkpoint struct {
	Model   *core.Model
	Version uint64
	WALSeq  uint64
	At      int64
}

// LoadCheckpoint recovers the persisted model version of a key. The
// boolean reports whether a checkpoint exists; a corrupt checkpoint
// reports (false, error) so callers can fall back to the base model
// while surfacing the fault in the counters.
func (s *Store) LoadCheckpoint(job, env string) (Checkpoint, bool, error) {
	if job == "" || !ckptKeyOK(job) || !ckptKeyOK(env) {
		return Checkpoint{}, false, fmt.Errorf("store: invalid checkpoint key %q/%q", job, env)
	}
	b, err := os.ReadFile(filepath.Join(s.ckptDir, ckptName(job, env)))
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		s.checkpointErrors.Add(1)
		return Checkpoint{}, false, fmt.Errorf("store: reading checkpoint: %w", err)
	}
	ck, err := decodeCheckpoint(b)
	if err != nil {
		s.checkpointErrors.Add(1)
		return Checkpoint{}, false, fmt.Errorf("store: checkpoint %s: %w", ckptName(job, env), err)
	}
	s.checkpointLoads.Add(1)
	return ck, true, nil
}

// decodeCheckpoint validates and deserializes one checkpoint image.
func decodeCheckpoint(b []byte) (Checkpoint, error) {
	if len(b) < ckptHeaderLen {
		return Checkpoint{}, fmt.Errorf("shorter than its header")
	}
	if string(b[:8]) != string(ckptMagic) {
		return Checkpoint{}, fmt.Errorf("bad magic")
	}
	ck := Checkpoint{
		Version: binary.LittleEndian.Uint64(b[8:]),
		WALSeq:  binary.LittleEndian.Uint64(b[16:]),
		At:      int64(binary.LittleEndian.Uint64(b[24:])),
	}
	blobLen := int64(binary.LittleEndian.Uint32(b[32:]))
	blobCRC := binary.LittleEndian.Uint32(b[36:])
	if int64(len(b))-ckptHeaderLen != blobLen {
		return Checkpoint{}, fmt.Errorf("blob length %d != %d remaining bytes", blobLen, len(b)-ckptHeaderLen)
	}
	blob := b[ckptHeaderLen:]
	if crc32.Checksum(blob, castagnoli) != blobCRC {
		return Checkpoint{}, fmt.Errorf("blob CRC mismatch")
	}
	m, err := core.Load(bytes.NewReader(blob))
	if err != nil {
		return Checkpoint{}, err
	}
	ck.Model = m
	return ck, nil
}
