package store

import (
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkWALAppend measures the framed append path without fsync
// (FsyncNever), i.e. the CPU cost of encoding + CRC + buffered write
// per observation. The fsync policies add pure device latency on top;
// gating the CPU path keeps the benchmark meaningful on shared runners.
func BenchmarkWALAppend(b *testing.B) {
	st, err := Open(b.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	at := time.Unix(1700000000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AppendObservation("sort", "c3o", obs(i), at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures boot recovery: decode + dispatch of a 10k
// observation WAL into replay handlers. This is the restart-latency
// budget per 10k acknowledged observations.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	at := time.Unix(1700000000, 0)
	for i := 0; i < records; i++ {
		if err := st.AppendObservation("sort", "c3o", obs(i), at); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n := 0
		err = st.Replay(ReplayHandler{
			Observation: func(job, env string, s core.Sample, at time.Time) { n++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}
