package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateC3OShape(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// 155 contexts x 6 scale-outs x 5 repeats = 4650 rows;
	// 930 unique (context, scale-out) experiments as in the paper.
	if got := ds.Len(); got != 4650 {
		t.Fatalf("C3O rows = %d, want 4650", got)
	}
	wantContexts := map[string]int{"sort": 21, "grep": 27, "sgd": 30, "kmeans": 30, "pagerank": 47}
	for job, want := range wantContexts {
		if got := len(ds.Contexts(job)); got != want {
			t.Errorf("%s contexts = %d, want %d", job, got, want)
		}
	}
	unique := map[[2]string]bool{}
	for _, e := range ds.Executions {
		unique[[2]string{e.Context.ID, string(rune(e.ScaleOut))}] = true
	}
	if got := len(unique); got != 930 {
		t.Errorf("unique experiments = %d, want 930", got)
	}
}

func TestGenerateC3OScaleOuts(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	for _, job := range C3OJobs {
		xs := ScaleOuts(ds.ForJob(job))
		want := []int{2, 4, 6, 8, 10, 12}
		if len(xs) != len(want) {
			t.Fatalf("%s scale-outs = %v, want %v", job, xs, want)
		}
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("%s scale-outs = %v, want %v", job, xs, want)
			}
		}
	}
}

func TestGenerateBellShape(t *testing.T) {
	ds := GenerateBell(SimConfig{Seed: 1})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 jobs x 1 context x 15 scale-outs x 7 repeats = 315 rows.
	if got := ds.Len(); got != 315 {
		t.Fatalf("Bell rows = %d, want 315", got)
	}
	for _, job := range BellJobs {
		ctxs := ds.Contexts(job)
		if len(ctxs) != 1 {
			t.Fatalf("%s contexts = %d, want 1", job, len(ctxs))
		}
		xs := ScaleOuts(ds.ForJob(job))
		if len(xs) != 15 || xs[0] != 4 || xs[14] != 60 {
			t.Fatalf("%s scale-outs = %v", job, xs)
		}
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	a := GenerateC3O(SimConfig{Seed: 42})
	b := GenerateC3O(SimConfig{Seed: 42})
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Executions {
		if a.Executions[i].RuntimeSec != b.Executions[i].RuntimeSec {
			t.Fatalf("row %d differs: %v vs %v", i,
				a.Executions[i].RuntimeSec, b.Executions[i].RuntimeSec)
		}
	}
}

func TestSimulatorSeedsDiffer(t *testing.T) {
	a := GenerateC3O(SimConfig{Seed: 1})
	b := GenerateC3O(SimConfig{Seed: 2})
	same := true
	for i := range a.Executions {
		if a.Executions[i].RuntimeSec != b.Executions[i].RuntimeSec {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRepeatsShareGroundTruth(t *testing.T) {
	// Repeated runs of the same (context, scale-out) differ only by
	// small multiplicative noise.
	ds := GenerateC3O(SimConfig{Seed: 3})
	ctx := ds.Contexts("sort")[0]
	byScale := GroupByScaleOut(ds.ForContext(ctx.ID))
	for x, execs := range byScale {
		if len(execs) != 5 {
			t.Fatalf("scale-out %d repeats = %d, want 5", x, len(execs))
		}
		mean := 0.0
		for _, e := range execs {
			mean += e.RuntimeSec
		}
		mean /= float64(len(execs))
		for _, e := range execs {
			if math.Abs(e.RuntimeSec-mean)/mean > 0.5 {
				t.Fatalf("noise too large at scale-out %d: %v vs mean %v", x, e.RuntimeSec, mean)
			}
		}
	}
}

func TestNonTrivialJobsHaveInteriorMinimum(t *testing.T) {
	// SGD and K-Means should not be monotone decreasing over 2..12 in at
	// least some contexts — the defining feature of non-trivial
	// scale-out behaviour in the paper.
	ds := GenerateC3O(SimConfig{Seed: 4, NoiseSigma: 0.001})
	for _, job := range []string{"sgd", "kmeans"} {
		found := false
		for _, ctx := range ds.Contexts(job) {
			means := MeanRuntimeByScaleOut(ds.ForContext(ctx.ID))
			xs := ScaleOuts(ds.ForContext(ctx.ID))
			argmin := xs[0]
			best := math.Inf(1)
			for _, x := range xs {
				if means[x] < best {
					best = means[x]
					argmin = x
				}
			}
			if argmin > xs[0] && argmin < xs[len(xs)-1] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s has no context with interior runtime minimum", job)
		}
	}
}

func TestTrivialJobsMostlyMonotone(t *testing.T) {
	// Grep should be monotone decreasing in nearly all contexts.
	ds := GenerateC3O(SimConfig{Seed: 5, NoiseSigma: 0.001})
	mono := 0
	ctxs := ds.Contexts("grep")
	for _, ctx := range ctxs {
		means := MeanRuntimeByScaleOut(ds.ForContext(ctx.ID))
		xs := ScaleOuts(ds.ForContext(ctx.ID))
		ok := true
		for i := 1; i < len(xs); i++ {
			if means[xs[i]] > means[xs[i-1]]*1.02 {
				ok = false
				break
			}
		}
		if ok {
			mono++
		}
	}
	if mono < len(ctxs)*3/4 {
		t.Errorf("grep monotone contexts = %d of %d, want >= 3/4", mono, len(ctxs))
	}
}

func TestIsNonTrivial(t *testing.T) {
	if !IsNonTrivial("sgd") || !IsNonTrivial("kmeans") {
		t.Fatal("sgd/kmeans should be non-trivial")
	}
	if IsNonTrivial("grep") || IsNonTrivial("nosuchjob") {
		t.Fatal("grep/unknown should not be non-trivial")
	}
}

func TestEssentialAndOptionalProps(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	ctx := ds.Contexts("sgd")[0]
	ess := ctx.EssentialProps()
	if len(ess) != 4 {
		t.Fatalf("essential props = %d, want 4", len(ess))
	}
	names := []string{"dataset_size_mb", "dataset_characteristics", "job_parameters", "node_type"}
	for i, n := range names {
		if ess[i].Name != n {
			t.Fatalf("essential[%d] = %s, want %s", i, ess[i].Name, n)
		}
		if ess[i].Optional {
			t.Fatalf("essential[%d] marked optional", i)
		}
	}
	opt := ctx.OptionalProps()
	if len(opt) != 3 {
		t.Fatalf("optional props = %d, want 3", len(opt))
	}
	for i, p := range opt {
		if !p.Optional {
			t.Fatalf("optional[%d] not marked optional", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := GenerateBell(SimConfig{Seed: 9})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip rows = %d, want %d", got.Len(), ds.Len())
	}
	for i := range ds.Executions {
		a, b := ds.Executions[i], got.Executions[i]
		if a.ScaleOut != b.ScaleOut || a.RuntimeSec != b.RuntimeSec {
			t.Fatalf("row %d differs", i)
		}
		if a.Context.ID != b.Context.ID || a.Context.NodeType != b.Context.NodeType {
			t.Fatalf("row %d context differs", i)
		}
	}
	// Contexts with the same ID must be shared after parsing.
	if got.Executions[0].Context != got.Executions[1].Context {
		t.Fatal("parsed contexts not shared")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("expected error for bad header")
	}
}

func TestReadCSVRejectsMalformedRow(t *testing.T) {
	good := strings.Join(csvHeader, ",") + "\n"
	bad := good + "c3o,grep,ctx,node,params,notanumber,uniform,1024,4,2,100\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("expected error for malformed dataset_size_mb")
	}
	bad2 := good + "c3o,grep,ctx,node,params,1000,uniform,1024,4,2,-5\n"
	if _, err := ReadCSV(strings.NewReader(bad2)); err == nil {
		t.Fatal("expected validation error for negative runtime")
	}
}

func TestFilterSameJob(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	target := ds.Contexts("grep")[0]
	execs := FilterSameJob(ds, target)
	for _, e := range execs {
		if e.Context.Job != "grep" {
			t.Fatalf("foreign job %s in filter result", e.Context.Job)
		}
	}
	if len(execs) != 27*6*5 {
		t.Fatalf("grep executions = %d, want %d", len(execs), 27*6*5)
	}
}

func TestFilterExcludeContext(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	target := ds.Contexts("grep")[0]
	execs := FilterExcludeContext(ds, target)
	for _, e := range execs {
		if e.Context.ID == target.ID {
			t.Fatal("target context not excluded")
		}
	}
	if len(execs) != 26*6*5 {
		t.Fatalf("executions = %d, want %d", len(execs), 26*6*5)
	}
}

func TestFilterDissimilar(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	target := ds.Contexts("pagerank")[0]
	execs := FilterDissimilar(ds, target)
	if len(execs) == 0 {
		t.Fatal("dissimilar filter returned nothing; simulator contexts too uniform")
	}
	for _, e := range execs {
		c := e.Context
		if c.NodeType == target.NodeType {
			t.Fatal("node type matches target")
		}
		if c.DatasetChars == target.DatasetChars {
			t.Fatal("dataset characteristics match target")
		}
		if c.JobParams == target.JobParams {
			t.Fatal("job params match target")
		}
		if !sizeDiffers(c.DatasetSizeMB, target.DatasetSizeMB, 0.20) {
			t.Fatal("dataset size within 20% of target")
		}
	}
}

func TestNormalizedCurvesInUnitRange(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	for _, job := range C3OJobs {
		for _, c := range NormalizedCurves(ds, job) {
			for i, v := range c.Normalized {
				if v < 0 || v > 1+1e-12 {
					t.Fatalf("%s %s: normalized[%d] = %v out of [0,1]", job, c.ContextID, i, v)
				}
			}
		}
	}
}

func TestRuntimeVariance(t *testing.T) {
	ds := GenerateC3O(SimConfig{Seed: 1})
	v := RuntimeVariance(ds, "sgd")
	if len(v.ScaleOuts) != 6 {
		t.Fatalf("variance scale-outs = %v", v.ScaleOuts)
	}
	// Cross-context variance must be nonzero (Fig. 2's point).
	anyVar := false
	for _, s := range v.StdDev {
		if s > 0.001 {
			anyVar = true
		}
	}
	if !anyVar {
		t.Fatal("no cross-context variance in sgd")
	}
	for i := range v.Min {
		if v.Min[i] > v.Max[i] {
			t.Fatalf("min > max at %d", i)
		}
	}
}

func TestMeanRuntimeByScaleOut(t *testing.T) {
	ctx := &Context{ID: "x", Job: "grep"}
	execs := []Execution{
		{Context: ctx, ScaleOut: 2, RuntimeSec: 10},
		{Context: ctx, ScaleOut: 2, RuntimeSec: 14},
		{Context: ctx, ScaleOut: 4, RuntimeSec: 8},
	}
	m := MeanRuntimeByScaleOut(execs)
	if m[2] != 12 || m[4] != 8 {
		t.Fatalf("means = %v", m)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := &Dataset{Executions: []Execution{{Context: nil, ScaleOut: 2, RuntimeSec: 1}}}
	if err := ds.Validate(); err == nil {
		t.Fatal("nil context not caught")
	}
	ctx := &Context{ID: "a"}
	ds = &Dataset{Executions: []Execution{{Context: ctx, ScaleOut: 0, RuntimeSec: 1}}}
	if err := ds.Validate(); err == nil {
		t.Fatal("zero scale-out not caught")
	}
	ds = &Dataset{Executions: []Execution{{Context: ctx, ScaleOut: 2, RuntimeSec: -1}}}
	if err := ds.Validate(); err == nil {
		t.Fatal("negative runtime not caught")
	}
}

// Property: ground-truth runtimes are positive and finite for any
// reasonable context.
func TestQuickGroundTruthPositive(t *testing.T) {
	f := func(seed int64) bool {
		ds := GenerateC3O(SimConfig{Seed: seed % 1000, Repeats: 1})
		for _, e := range ds.Executions {
			if e.RuntimeSec <= 0 || math.IsNaN(e.RuntimeSec) || math.IsInf(e.RuntimeSec, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestParseIterations(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"--iterations 100", 100},
		{"--k 8 --iterations 50", 50},
		{"--pattern error", 0},
		{"", 0},
	}
	for _, tc := range tests {
		if got := parseIterations(tc.in); got != tc.want {
			t.Errorf("parseIterations(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func BenchmarkGenerateC3O(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateC3O(SimConfig{Seed: int64(i)})
	}
}
