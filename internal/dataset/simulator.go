package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// nodeSpec captures the hardware characteristics the simulator's
// ground-truth runtime model depends on. The factors are consistent
// across contexts so that cross-context learning has signal to exploit,
// mirroring the paper's observation that users in a public cloud share
// hardware types.
type nodeSpec struct {
	name     string
	speed    float64 // relative CPU speed (1.0 = m4.xlarge)
	memoryMB int     // memory available per node
	cores    int
}

// c3oNodeTypes are the instance types appearing in the simulated C3O
// environment (Amazon EMR style names).
var c3oNodeTypes = []nodeSpec{
	{"m4.xlarge", 1.00, 16384, 4},
	{"m4.2xlarge", 1.06, 32768, 8},
	{"r4.xlarge", 1.04, 31232, 4},
	{"r4.2xlarge", 1.12, 62464, 8},
	{"c4.xlarge", 1.22, 7680, 4},
	{"c4.2xlarge", 1.28, 15360, 8},
}

// bellNode is the single commodity node type of the simulated private
// cluster (Bell datasets): slower CPUs, Hadoop 2.7.1 / Spark 2.0.0-era
// software overhead folded into the environment factor.
var bellNode = nodeSpec{"commodity-node", 0.72, 16384, 8}

// datasetCharacteristics are the data-shape labels used as the
// "dataset characteristics" essential property.
var datasetCharacteristics = []string{"uniform", "skewed", "zipf", "sparse"}

// algoProfile is the hidden ground-truth scale-out model of one
// processing algorithm. Runtime follows an Ernest-family curve
//
//	t(x) = env * [ fixed + compute/(x*speed) + comm*log(x) + percMachine*x ]
//
// with coefficients scaled by dataset size, iteration counts parsed from
// the job parameters, data skew, and a memory-pressure penalty. Trivial
// algorithms have negligible comm/per-machine terms (monotone ~1/x
// curves); non-trivial ones have an interior minimum in the observed
// scale-out range, which is what makes their behaviour hard to fit from
// few points (paper Fig. 2 and §IV-C).
type algoProfile struct {
	name string
	// fixed is the scale-out independent startup overhead in seconds.
	fixed float64
	// computePerMB is the per-MB serial compute cost in seconds.
	computePerMB float64
	// commPerSqrtMB scales the log(x) communication term.
	commPerSqrtMB float64
	// perMachine is the per-added-machine coordination cost.
	perMachine float64
	// iterative algorithms multiply compute and comm by the iteration
	// count from the job parameters.
	iterative bool
	// skewSensitive algorithms pay a penalty on skewed/zipf data.
	skewSensitive bool
	// nonTrivial marks algorithms the paper calls out as having
	// non-trivial scale-out behaviour (SGD, K-Means).
	nonTrivial bool
}

var algoProfiles = map[string]algoProfile{
	"grep": {
		name: "grep", fixed: 18, computePerMB: 0.0045,
		commPerSqrtMB: 0.004, perMachine: 0.15,
	},
	"sort": {
		name: "sort", fixed: 22, computePerMB: 0.0085,
		commPerSqrtMB: 0.012, perMachine: 0.3, skewSensitive: true,
	},
	"pagerank": {
		// Minimum sits just beyond the C3O scale-out range (~13
		// machines) so PageRank looks trivial on 2..12 but turns
		// non-trivial over the Bell range 4..60, matching §IV-C2.
		name: "pagerank", fixed: 30, computePerMB: 0.0034,
		commPerSqrtMB: 0.016, perMachine: 0.15,
		iterative: true, skewSensitive: true,
	},
	"sgd": {
		// Interior runtime minimum within 2..12 for most contexts:
		// the non-trivial scale-out behaviour of Fig. 2.
		name: "sgd", fixed: 26, computePerMB: 0.006,
		commPerSqrtMB: 0.04, perMachine: 0.9,
		iterative: true, nonTrivial: true,
	},
	"kmeans": {
		name: "kmeans", fixed: 28, computePerMB: 0.007,
		commPerSqrtMB: 0.05, perMachine: 1.1,
		iterative: true, nonTrivial: true,
	},
}

// C3OJobs lists the five algorithms of the C3O datasets in the paper's
// plotting order.
var C3OJobs = []string{"grep", "pagerank", "sort", "sgd", "kmeans"}

// BellJobs lists the three algorithms present in the Bell datasets.
var BellJobs = []string{"grep", "sgd", "pagerank"}

// c3oContextCounts matches the paper: 21 contexts for Sort, 27 for Grep,
// 30 each for SGD and K-Means, 47 for PageRank. With 6 scale-outs each
// this yields the paper's 930 unique runtime experiments.
var c3oContextCounts = map[string]int{
	"sort":     21,
	"grep":     27,
	"sgd":      30,
	"kmeans":   30,
	"pagerank": 47,
}

// SimConfig controls a simulator run.
type SimConfig struct {
	// Seed makes the generated traces fully reproducible.
	Seed int64
	// NoiseSigma is the std-dev of the multiplicative log-normal
	// run-to-run noise. Zero selects the default of 0.05.
	NoiseSigma float64
	// Repeats overrides the per-scale-out repetition count (0 = paper
	// defaults: 5 for C3O, 7 for Bell).
	Repeats int
}

func (c SimConfig) noise() float64 {
	if c.NoiseSigma == 0 {
		return 0.05
	}
	return c.NoiseSigma
}

// iterationsFromParams extracts the iteration multiplier hidden in the
// ground-truth model. It must stay consistent with paramString.
func iterationsFromParams(iters int) float64 {
	if iters <= 0 {
		return 1
	}
	// Sub-linear: later iterations converge faster / caches warm up.
	return math.Pow(float64(iters), 0.82) / math.Pow(25, 0.82)
}

// groundTruth computes the noiseless runtime of a job in a context at
// scale-out x. Exported only within the package; experiments never see it.
func groundTruth(p algoProfile, ctx *Context, x int, envFactor float64) float64 {
	speed := nodeSpeed(ctx)
	size := float64(ctx.DatasetSizeMB)
	iters := 1.0
	if p.iterative {
		iters = iterationsFromParams(parseIterations(ctx.JobParams))
	}
	skew := 1.0
	if p.skewSensitive && (ctx.DatasetChars == "skewed" || ctx.DatasetChars == "zipf") {
		skew = 1.25
	}
	// Memory pressure: when the partition per node exceeds ~60% of node
	// memory, spilling slows the compute term.
	spill := 1.0
	if size/float64(x) > 0.6*float64(ctx.MemoryMB) {
		spill = 1.45
	}
	compute := p.computePerMB * size * iters * skew * spill / (float64(x) * speed)
	comm := p.commPerSqrtMB * math.Sqrt(size) * iters * math.Log(float64(x))
	machine := p.perMachine * float64(x)
	return envFactor * (p.fixed + compute + comm + machine)
}

func nodeSpeed(ctx *Context) float64 {
	for _, n := range c3oNodeTypes {
		if n.name == ctx.NodeType {
			return n.speed
		}
	}
	if ctx.NodeType == bellNode.name {
		return bellNode.speed
	}
	return 1.0
}

// parseIterations extracts the trailing "--iterations N" value from a
// parameter string; 0 when absent.
func parseIterations(params string) int {
	var n int
	var tail string
	// Params are generated as e.g. "--k 8 --iterations 100".
	if _, err := fmt.Sscanf(params, "--k %s --iterations %d", &tail, &n); err == nil {
		return n
	}
	if _, err := fmt.Sscanf(params, "--iterations %d", &n); err == nil {
		return n
	}
	return 0
}

// paramString renders the job parameter property for a context.
func paramString(job string, rng *rand.Rand) string {
	switch job {
	case "sgd":
		iters := []int{25, 50, 100, 150}[rng.Intn(4)]
		return fmt.Sprintf("--iterations %d", iters)
	case "kmeans":
		k := []int{4, 8, 16}[rng.Intn(3)]
		iters := []int{25, 50, 100}[rng.Intn(3)]
		return fmt.Sprintf("--k %d --iterations %d", k, iters)
	case "pagerank":
		iters := []int{10, 20, 30}[rng.Intn(3)]
		return fmt.Sprintf("--iterations %d", iters)
	case "grep":
		pat := []string{"error", "warn", "exception", "timeout"}[rng.Intn(4)]
		return "--pattern " + pat
	default: // sort
		return "--partitions " + fmt.Sprint([]int{64, 128, 256}[rng.Intn(3)])
	}
}

// GenerateC3O simulates the C3O datasets: five algorithms, the paper's
// per-algorithm context counts, scale-outs 2..12 step 2, five repeats per
// scale-out, in a public-cloud environment with several node types.
func GenerateC3O(cfg SimConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	repeats := cfg.Repeats
	if repeats == 0 {
		repeats = 5
	}
	scaleOuts := []int{2, 4, 6, 8, 10, 12}
	ds := &Dataset{}
	for _, job := range C3OJobs {
		n := c3oContextCounts[job]
		for ci := 0; ci < n; ci++ {
			// Cycle node types so each appears at least once per job.
			node := c3oNodeTypes[ci%len(c3oNodeTypes)]
			ctx := &Context{
				ID:            fmt.Sprintf("c3o-%s-%02d", job, ci),
				Env:           EnvC3O,
				Job:           job,
				NodeType:      node.name,
				JobParams:     paramString(job, rng),
				DatasetSizeMB: 2000 + rng.Intn(38000),
				DatasetChars:  datasetCharacteristics[rng.Intn(len(datasetCharacteristics))],
				MemoryMB:      node.memoryMB,
				Cores:         node.cores,
			}
			appendRuns(ds, ctx, scaleOuts, repeats, 1.0, cfg.noise(), rng)
		}
	}
	return ds
}

// GenerateBell simulates the Bell datasets: three algorithms, one context
// each, scale-outs 4..60 step 4, seven repeats, in a private cluster with
// older software (environment factor > 1) and a single node type.
func GenerateBell(cfg SimConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	repeats := cfg.Repeats
	if repeats == 0 {
		repeats = 7
	}
	var scaleOuts []int
	for x := 4; x <= 60; x += 4 {
		scaleOuts = append(scaleOuts, x)
	}
	const envFactor = 1.18 // Hadoop 2.7 / Spark 2.0 era software overhead
	ds := &Dataset{}
	for _, job := range BellJobs {
		ctx := &Context{
			ID:            fmt.Sprintf("bell-%s-00", job),
			Env:           EnvBell,
			Job:           job,
			NodeType:      bellNode.name,
			JobParams:     paramString(job, rng),
			DatasetSizeMB: 8000 + rng.Intn(24000),
			DatasetChars:  datasetCharacteristics[rng.Intn(len(datasetCharacteristics))],
			MemoryMB:      bellNode.memoryMB,
			Cores:         bellNode.cores,
		}
		appendRuns(ds, ctx, scaleOuts, repeats, envFactor, cfg.noise(), rng)
	}
	return ds
}

func appendRuns(ds *Dataset, ctx *Context, scaleOuts []int, repeats int, envFactor, sigma float64, rng *rand.Rand) {
	p, ok := algoProfiles[ctx.Job]
	if !ok {
		panic("dataset: unknown job " + ctx.Job)
	}
	for _, x := range scaleOuts {
		base := groundTruth(p, ctx, x, envFactor)
		for r := 0; r < repeats; r++ {
			noise := math.Exp(rng.NormFloat64() * sigma)
			ds.Executions = append(ds.Executions, Execution{
				Context:    ctx,
				ScaleOut:   x,
				RuntimeSec: base * noise,
			})
		}
	}
}

// IsNonTrivial reports whether the paper classifies the job's scale-out
// behaviour as non-trivial (SGD, K-Means).
func IsNonTrivial(job string) bool {
	p, ok := algoProfiles[job]
	return ok && p.nonTrivial
}
