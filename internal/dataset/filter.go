package dataset

import "math"

// FilterSameJob returns all executions of target.Job across every
// context, the corpus for the "full" pre-training variant.
func FilterSameJob(d *Dataset, target *Context) []Execution {
	var out []Execution
	for _, e := range d.Executions {
		if e.Context.Job == target.Job {
			out = append(out, e)
		}
	}
	return out
}

// FilterExcludeContext returns executions of target.Job excluding the
// target context itself — what "all historical executions of the same
// job in different contexts" means when the target context is part of
// the corpus.
func FilterExcludeContext(d *Dataset, target *Context) []Execution {
	var out []Execution
	for _, e := range d.Executions {
		if e.Context.Job == target.Job && e.Context.ID != target.ID {
			out = append(out, e)
		}
	}
	return out
}

// FilterDissimilar implements the paper's "filtered" pre-training
// variant: only executions of the same job whose contexts are as
// different as possible from the target — node type, dataset
// characteristics and job parameters all differ, and the dataset size
// deviates by at least 20%.
func FilterDissimilar(d *Dataset, target *Context) []Execution {
	var out []Execution
	for _, e := range d.Executions {
		c := e.Context
		if c.Job != target.Job || c.ID == target.ID {
			continue
		}
		if c.NodeType == target.NodeType {
			continue
		}
		if c.DatasetChars == target.DatasetChars {
			continue
		}
		if c.JobParams == target.JobParams {
			continue
		}
		if !sizeDiffers(c.DatasetSizeMB, target.DatasetSizeMB, 0.20) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// sizeDiffers reports whether a deviates from b by at least frac (either
// significantly larger or smaller).
func sizeDiffers(a, b int, frac float64) bool {
	if b == 0 {
		return a != 0
	}
	return math.Abs(float64(a-b))/float64(b) >= frac
}
