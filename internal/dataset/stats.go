package dataset

import (
	"math"
	"sort"
)

// NormalizedCurve is the runtime curve of one context with runtimes
// scaled into [0, 1] by the context's max mean runtime — the
// representation behind the paper's Fig. 2.
type NormalizedCurve struct {
	ContextID string
	ScaleOuts []int
	// Normalized holds mean runtime / max mean runtime per scale-out.
	Normalized []float64
}

// NormalizedCurves computes per-context normalized runtime curves for a
// job.
func NormalizedCurves(d *Dataset, job string) []NormalizedCurve {
	var out []NormalizedCurve
	for _, ctx := range d.Contexts(job) {
		execs := d.ForContext(ctx.ID)
		means := MeanRuntimeByScaleOut(execs)
		xs := ScaleOuts(execs)
		maxMean := 0.0
		for _, m := range means {
			if m > maxMean {
				maxMean = m
			}
		}
		if maxMean == 0 {
			continue
		}
		curve := NormalizedCurve{ContextID: ctx.ID, ScaleOuts: xs}
		for _, x := range xs {
			curve.Normalized = append(curve.Normalized, means[x]/maxMean)
		}
		out = append(out, curve)
	}
	return out
}

// VarianceSummary quantifies how much normalized runtime varies across
// contexts at each scale-out (Fig. 2's message: the same algorithm's
// scale-out curve looks very different depending on the context).
type VarianceSummary struct {
	Job       string
	ScaleOuts []int
	// Mean and StdDev of the normalized runtime across contexts.
	Mean, StdDev []float64
	// Min and Max envelope across contexts.
	Min, Max []float64
}

// RuntimeVariance summarizes the cross-context spread of normalized
// runtimes for a job.
func RuntimeVariance(d *Dataset, job string) VarianceSummary {
	curves := NormalizedCurves(d, job)
	byScale := map[int][]float64{}
	for _, c := range curves {
		for i, x := range c.ScaleOuts {
			byScale[x] = append(byScale[x], c.Normalized[i])
		}
	}
	var xs []int
	for x := range byScale {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	out := VarianceSummary{Job: job, ScaleOuts: xs}
	for _, x := range xs {
		vals := byScale[x]
		mean := meanOf(vals)
		out.Mean = append(out.Mean, mean)
		out.StdDev = append(out.StdDev, stdOf(vals, mean))
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		out.Min = append(out.Min, mn)
		out.Max = append(out.Max, mx)
	}
	return out
}

func meanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func stdOf(vals []float64, mean float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	var sq float64
	for _, v := range vals {
		sq += (v - mean) * (v - mean)
	}
	return math.Sqrt(sq / float64(len(vals)-1))
}
