package dataset

import "testing"

// filterFixture builds a small dataset around one target context with
// contexts that differ from it in controlled ways.
func filterFixture() (*Dataset, *Context) {
	target := &Context{
		ID: "t", Job: "sort", NodeType: "m4.xlarge",
		JobParams: "--p 1", DatasetSizeMB: 10000, DatasetChars: "uniform",
	}
	mk := func(id, job, node, params, chars string, sizeMB int) *Context {
		return &Context{
			ID: id, Job: job, NodeType: node,
			JobParams: params, DatasetSizeMB: sizeMB, DatasetChars: chars,
		}
	}
	contexts := []*Context{
		target,
		// Fully dissimilar: different node, chars, params, size +50%.
		mk("dissimilar", "sort", "r4.2xlarge", "--p 2", "skewed", 15000),
		// Same node type as the target: excluded by FilterDissimilar.
		mk("same-node", "sort", "m4.xlarge", "--p 2", "skewed", 15000),
		// Same dataset characteristics: excluded.
		mk("same-chars", "sort", "r4.2xlarge", "--p 2", "uniform", 15000),
		// Same job parameters: excluded.
		mk("same-params", "sort", "r4.2xlarge", "--p 1", "skewed", 15000),
		// Size within 20%: excluded.
		mk("close-size", "sort", "r4.2xlarge", "--p 2", "skewed", 11000),
		// Different job entirely: excluded by every same-job filter.
		mk("other-job", "grep", "r4.2xlarge", "--p 2", "skewed", 15000),
	}
	ds := &Dataset{}
	for _, c := range contexts {
		ds.Executions = append(ds.Executions, Execution{Context: c, ScaleOut: 2, RuntimeSec: 100})
		ds.Executions = append(ds.Executions, Execution{Context: c, ScaleOut: 4, RuntimeSec: 60})
	}
	return ds, target
}

func contextIDs(execs []Execution) map[string]int {
	out := map[string]int{}
	for _, e := range execs {
		out[e.Context.ID]++
	}
	return out
}

func TestFilterSameJobFixture(t *testing.T) {
	ds, target := filterFixture()
	got := contextIDs(FilterSameJob(ds, target))
	if _, ok := got["other-job"]; ok {
		t.Fatal("FilterSameJob kept an execution of a different job")
	}
	if _, ok := got["t"]; !ok {
		t.Fatal("FilterSameJob dropped the target context itself")
	}
	if len(got) != 6 {
		t.Fatalf("FilterSameJob kept %d contexts, want 6", len(got))
	}
}

func TestFilterExcludeContextFixture(t *testing.T) {
	ds, target := filterFixture()
	got := contextIDs(FilterExcludeContext(ds, target))
	if _, ok := got["t"]; ok {
		t.Fatal("FilterExcludeContext kept the target context")
	}
	if _, ok := got["other-job"]; ok {
		t.Fatal("FilterExcludeContext kept a different job")
	}
	if len(got) != 5 {
		t.Fatalf("FilterExcludeContext kept %d contexts, want 5", len(got))
	}
	// Per-context execution counts survive filtering.
	if got["dissimilar"] != 2 {
		t.Fatalf("dissimilar context kept %d executions, want 2", got["dissimilar"])
	}
}

func TestFilterDissimilarExclusionReasons(t *testing.T) {
	ds, target := filterFixture()
	got := contextIDs(FilterDissimilar(ds, target))
	if len(got) != 1 || got["dissimilar"] != 2 {
		t.Fatalf("FilterDissimilar kept %v, want only the fully dissimilar context", got)
	}
}

func TestFilterDissimilarSizeBoundary(t *testing.T) {
	ds, target := filterFixture()
	// Exactly 20% larger: sizeDiffers uses >=, so it qualifies.
	boundary := &Context{
		ID: "boundary", Job: "sort", NodeType: "r4.2xlarge",
		JobParams: "--p 2", DatasetSizeMB: 12000, DatasetChars: "skewed",
	}
	ds.Executions = append(ds.Executions, Execution{Context: boundary, ScaleOut: 2, RuntimeSec: 90})
	got := contextIDs(FilterDissimilar(ds, target))
	if _, ok := got["boundary"]; !ok {
		t.Fatal("context exactly 20% larger was excluded; the threshold is inclusive")
	}
}

func TestSizeDiffers(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{12000, 10000, true},  // exactly +20%
		{8000, 10000, true},   // exactly -20%
		{11999, 10000, false}, // just inside
		{0, 0, false},         // zero baseline, zero value
		{1, 0, true},          // zero baseline, any value differs
	}
	for _, c := range cases {
		if got := sizeDiffers(c.a, c.b, 0.20); got != c.want {
			t.Errorf("sizeDiffers(%d, %d, 0.20) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
