package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the interchange format. It carries
// every field needed to reconstruct contexts, so real C3O/Bell traces can
// be converted into it and dropped in.
var csvHeader = []string{
	"env", "job", "context_id", "node_type", "job_params",
	"dataset_size_mb", "dataset_chars", "memory_mb", "cores",
	"scale_out", "runtime_sec",
}

// WriteCSV serializes the dataset.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	for _, e := range d.Executions {
		c := e.Context
		rec := []string{
			string(c.Env), c.Job, c.ID, c.NodeType, c.JobParams,
			strconv.Itoa(c.DatasetSizeMB), c.DatasetChars,
			strconv.Itoa(c.MemoryMB), strconv.Itoa(c.Cores),
			strconv.Itoa(e.ScaleOut),
			strconv.FormatFloat(e.RuntimeSec, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. Contexts with the same
// context_id are shared between execution records.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("dataset: column %d is %q, want %q", i, header[i], h)
		}
	}
	ds := &Dataset{}
	contexts := map[string]*Context{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading line %d: %w", line+1, err)
		}
		line++
		sizeMB, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d dataset_size_mb: %w", line, err)
		}
		memMB, err := strconv.Atoi(rec[7])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d memory_mb: %w", line, err)
		}
		cores, err := strconv.Atoi(rec[8])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d cores: %w", line, err)
		}
		scaleOut, err := strconv.Atoi(rec[9])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d scale_out: %w", line, err)
		}
		runtime, err := strconv.ParseFloat(rec[10], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d runtime_sec: %w", line, err)
		}
		ctx, ok := contexts[rec[2]]
		if !ok {
			ctx = &Context{
				ID:            rec[2],
				Env:           Environment(rec[0]),
				Job:           rec[1],
				NodeType:      rec[3],
				JobParams:     rec[4],
				DatasetSizeMB: sizeMB,
				DatasetChars:  rec[6],
				MemoryMB:      memMB,
				Cores:         cores,
			}
			contexts[rec[2]] = ctx
		}
		ds.Executions = append(ds.Executions, Execution{
			Context:    ctx,
			ScaleOut:   scaleOut,
			RuntimeSec: runtime,
		})
	}
	return ds, ds.Validate()
}
