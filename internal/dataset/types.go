// Package dataset provides the execution-trace substrate for the Bellamy
// evaluation: record/context types, seeded simulators that reproduce the
// statistical structure of the public C3O and Bell datasets, CSV
// import/export, and the context filters the paper's pre-training
// variants rely on.
//
// Substitution note (DESIGN.md §2): the original datasets are real cloud
// and cluster traces fetched from GitHub. This module generates synthetic
// equivalents with the same schema, context counts, scale-out grids,
// repeat counts, and — crucially — the same qualitative structure:
// Ernest-shaped scale-out curves whose coefficients depend on the
// descriptive properties, with trivial (Sort, Grep) and non-trivial
// (SGD, K-Means) scale-out behaviour and run-to-run noise.
package dataset

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/encoding"
)

// Environment labels the origin of a trace.
type Environment string

const (
	// EnvC3O marks the public-cloud environment of the C3O datasets.
	EnvC3O Environment = "c3o"
	// EnvBell marks the private-cluster environment of the Bell datasets.
	EnvBell Environment = "bell"
)

// Context is a unique job execution context: the combination of
// descriptive properties under which scale-out experiments were run
// (paper §IV-B: node type, job parameters, dataset size and
// characteristics define a C3O context).
type Context struct {
	ID            string
	Env           Environment
	Job           string
	NodeType      string
	JobParams     string
	DatasetSizeMB int
	DatasetChars  string
	MemoryMB      int
	Cores         int
}

// EssentialProps returns the always-available descriptive properties in
// the order the paper selects them: dataset size, dataset
// characteristics, job parameters, node type.
func (c *Context) EssentialProps() []encoding.Property {
	return []encoding.Property{
		{Name: "dataset_size_mb", Value: strconv.Itoa(c.DatasetSizeMB)},
		{Name: "dataset_characteristics", Value: c.DatasetChars},
		{Name: "job_parameters", Value: c.JobParams},
		{Name: "node_type", Value: c.NodeType},
	}
}

// OptionalProps returns the sometimes-available properties: memory in MB,
// number of CPU cores, and the job name.
func (c *Context) OptionalProps() []encoding.Property {
	return []encoding.Property{
		{Name: "memory_mb", Value: strconv.Itoa(c.MemoryMB), Optional: true},
		{Name: "cpu_cores", Value: strconv.Itoa(c.Cores), Optional: true},
		{Name: "job_name", Value: c.Job, Optional: true},
	}
}

// Execution is one recorded job run: a context, a horizontal scale-out,
// and the observed runtime.
type Execution struct {
	Context    *Context
	ScaleOut   int
	RuntimeSec float64
}

// Dataset is a collection of executions with index helpers.
type Dataset struct {
	Executions []Execution
}

// Len returns the number of execution records.
func (d *Dataset) Len() int { return len(d.Executions) }

// Jobs returns the distinct job names in deterministic order.
func (d *Dataset) Jobs() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range d.Executions {
		if !seen[e.Context.Job] {
			seen[e.Context.Job] = true
			out = append(out, e.Context.Job)
		}
	}
	sort.Strings(out)
	return out
}

// Contexts returns the distinct contexts of a job in deterministic order.
func (d *Dataset) Contexts(job string) []*Context {
	seen := map[string]*Context{}
	var ids []string
	for i := range d.Executions {
		c := d.Executions[i].Context
		if c.Job != job {
			continue
		}
		if _, ok := seen[c.ID]; !ok {
			seen[c.ID] = c
			ids = append(ids, c.ID)
		}
	}
	sort.Strings(ids)
	out := make([]*Context, len(ids))
	for i, id := range ids {
		out[i] = seen[id]
	}
	return out
}

// ForJob returns all executions of a job.
func (d *Dataset) ForJob(job string) []Execution {
	var out []Execution
	for _, e := range d.Executions {
		if e.Context.Job == job {
			out = append(out, e)
		}
	}
	return out
}

// ForContext returns all executions in the context with the given ID.
func (d *Dataset) ForContext(ctxID string) []Execution {
	var out []Execution
	for _, e := range d.Executions {
		if e.Context.ID == ctxID {
			out = append(out, e)
		}
	}
	return out
}

// ScaleOuts returns the sorted distinct scale-outs of a set of executions.
func ScaleOuts(execs []Execution) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range execs {
		if !seen[e.ScaleOut] {
			seen[e.ScaleOut] = true
			out = append(out, e.ScaleOut)
		}
	}
	sort.Ints(out)
	return out
}

// GroupByScaleOut partitions executions by their scale-out.
func GroupByScaleOut(execs []Execution) map[int][]Execution {
	out := map[int][]Execution{}
	for _, e := range execs {
		out[e.ScaleOut] = append(out[e.ScaleOut], e)
	}
	return out
}

// MeanRuntimeByScaleOut averages repeated runs per scale-out.
func MeanRuntimeByScaleOut(execs []Execution) map[int]float64 {
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, e := range execs {
		sums[e.ScaleOut] += e.RuntimeSec
		counts[e.ScaleOut]++
	}
	out := make(map[int]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// Validate checks structural invariants: non-nil contexts, positive
// scale-outs and runtimes. It returns the first violation found.
func (d *Dataset) Validate() error {
	for i, e := range d.Executions {
		if e.Context == nil {
			return fmt.Errorf("dataset: execution %d has nil context", i)
		}
		if e.ScaleOut <= 0 {
			return fmt.Errorf("dataset: execution %d has scale-out %d", i, e.ScaleOut)
		}
		if e.RuntimeSec <= 0 {
			return fmt.Errorf("dataset: execution %d has runtime %v", i, e.RuntimeSec)
		}
	}
	return nil
}
