package encoding

import (
	"fmt"
	"strconv"
)

// Kind reports which encoding method was used for a property, reflected
// in the λ prefix bit of the output vector (paper Eq. 3).
type Kind int

const (
	// KindHashed marks textual properties encoded by the hasher (λ=0).
	KindHashed Kind = iota
	// KindBinary marks natural numbers encoded by the binarizer (λ=1).
	KindBinary
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindBinary {
		return "binary"
	}
	return "hashed"
}

// PropertyEncoder turns a single descriptive property into a fixed-size
// vector p ∈ R^N: a λ prefix followed by L = N-1 payload dimensions from
// either the binarizer (natural numbers) or the hasher (text).
//
// Encoded vectors are memoized per value (training and serving hit the
// same few property strings over and over), so the warm EncodeTo path is
// a map lookup plus a copy and allocates nothing. The memo is bounded;
// past the cap values are re-encoded on every call. The encoder is not
// safe for concurrent use, matching the models that own it.
type PropertyEncoder struct {
	// N is the total output size; the paper uses 40.
	N         int
	hasher    *Hasher
	binarizer *Binarizer

	memo map[string]memoVec
}

type memoVec struct {
	vec  []float64
	kind Kind
}

// memoCap bounds the per-encoder memo. Property cardinality in Bellamy
// workloads is tiny (job names, node types, dataset sizes); the cap only
// guards against unbounded adversarial serve traffic.
const memoCap = 8192

// DefaultPropertySize is the paper's property vector size N=40.
const DefaultPropertySize = 40

// NewPropertyEncoder builds an encoder producing vectors of size n.
func NewPropertyEncoder(n int) *PropertyEncoder {
	if n < 2 {
		panic(fmt.Sprintf("encoding: property size %d too small (need >= 2)", n))
	}
	return &PropertyEncoder{
		N:         n,
		hasher:    NewHasher(n - 1),
		binarizer: NewBinarizer(n - 1),
		memo:      make(map[string]memoVec),
	}
}

// Encode vectorizes the property value. Values parsing as natural numbers
// that fit in L bits use the binarizer; everything else is hashed. The
// second return reports which method was chosen.
func (e *PropertyEncoder) Encode(value string) ([]float64, Kind) {
	if v, err := strconv.ParseUint(value, 10, 64); err == nil {
		if bits, berr := e.binarizer.Encode(v); berr == nil {
			out := make([]float64, e.N)
			out[0] = 1 // λ = 1: binarizer
			copy(out[1:], bits)
			return out, KindBinary
		}
		// Too large to binarize: fall through to hashing its digits.
	}
	out := make([]float64, e.N)
	out[0] = 0 // λ = 0: hasher
	copy(out[1:], e.hasher.Encode(value))
	return out, KindHashed
}

// EncodeTo writes the vectorization of value into dst (length N),
// memoizing the result so repeated values cost a copy and no allocation.
// It is the batch-construction kernel of the allocation-free engine.
func (e *PropertyEncoder) EncodeTo(dst []float64, value string) Kind {
	if len(dst) != e.N {
		panic(fmt.Sprintf("encoding: EncodeTo dst len %d != N %d", len(dst), e.N))
	}
	if m, ok := e.memo[value]; ok {
		copy(dst, m.vec)
		return m.kind
	}
	vec, kind := e.Encode(value)
	if e.memo != nil && len(e.memo) < memoCap {
		e.memo[value] = memoVec{vec: vec, kind: kind}
	}
	copy(dst, vec)
	return kind
}

// Property is one named descriptive property of a job execution context.
type Property struct {
	Name  string
	Value string
	// Optional marks properties averaged into the shared slot rather
	// than given dedicated capacity (paper Eq. 5-6).
	Optional bool
}

// EncodeAll vectorizes a list of properties in order, returning one
// vector per property.
func (e *PropertyEncoder) EncodeAll(props []Property) [][]float64 {
	out := make([][]float64, len(props))
	for i, p := range props {
		v, _ := e.Encode(p.Value)
		out[i] = v
	}
	return out
}
