package encoding

import (
	"hash/fnv"
	"math"
)

// Hasher is a feature-hashing vectorizer over character n-grams. It
// reproduces scikit-learn's HashingVectorizer behaviour at the level the
// paper relies on: term occurrences are counted at hashed indices (with a
// sign hash to reduce collision bias) and the result is projected onto the
// euclidean unit sphere.
type Hasher struct {
	// Dim is the output dimensionality L.
	Dim int
	// Vocab cleans input strings; nil means DefaultVocab.
	Vocab *Vocabulary
	// NGramSizes defaults to {1, 2, 3}.
	NGramSizes []int
	// Signed applies an alternating sign hash like scikit-learn's
	// alternate_sign=True to spread collisions.
	Signed bool
}

// NewHasher builds a hasher with paper defaults (unigrams..trigrams,
// default vocabulary, signed hashing).
func NewHasher(dim int) *Hasher {
	return &Hasher{Dim: dim, Vocab: DefaultVocab(), NGramSizes: []int{1, 2, 3}, Signed: true}
}

// Encode vectorizes s into a dense unit-norm vector of length Dim. The
// zero vector is returned when s contains no in-vocabulary characters.
func (h *Hasher) Encode(s string) []float64 {
	if h.Dim <= 0 {
		panic("encoding: Hasher.Dim must be positive")
	}
	vocab := h.Vocab
	if vocab == nil {
		vocab = DefaultVocab()
	}
	sizes := h.NGramSizes
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3}
	}
	out := make([]float64, h.Dim)
	cleaned := vocab.Clean(s)
	for _, term := range NGrams(cleaned, sizes...) {
		idx, sign := h.hashTerm(term)
		out[idx] += sign
	}
	normalizeUnit(out)
	return out
}

// hashTerm maps a term to (index, sign) using FNV-1a.
func (h *Hasher) hashTerm(term string) (int, float64) {
	hs := fnv.New64a()
	hs.Write([]byte(term)) //nolint:errcheck // hash.Write never fails
	sum := hs.Sum64()
	idx := int(sum % uint64(h.Dim))
	sign := 1.0
	if h.Signed && (sum>>63)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// normalizeUnit projects v onto the unit sphere in place; the zero vector
// is left untouched.
func normalizeUnit(v []float64) {
	var sq float64
	for _, x := range v {
		sq += x * x
	}
	if sq == 0 {
		return
	}
	inv := 1 / math.Sqrt(sq)
	for i := range v {
		v[i] *= inv
	}
}
