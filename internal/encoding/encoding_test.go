package encoding

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestVocabularyClean(t *testing.T) {
	v := DefaultVocab()
	tests := []struct{ in, want string }{
		{"m4.2xlarge", "m4.2xlarge"},
		{"M4.2XLARGE", "m4.2xlarge"},
		{"hello, world!", "hello world"},
		{"--k=100", "--k=100"},
		{"über", "ber"},
		{"", ""},
	}
	for _, tc := range tests {
		if got := v.Clean(tc.in); got != tc.want {
			t.Errorf("Clean(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("abc", 1, 2, 3)
	want := []string{"a", "b", "c", "ab", "bc", "abc"}
	if len(got) != len(want) {
		t.Fatalf("NGrams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NGrams[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNGramsShortString(t *testing.T) {
	if got := NGrams("a", 2, 3); len(got) != 0 {
		t.Fatalf("NGrams of short string = %v, want empty", got)
	}
	if got := NGrams("", 1); len(got) != 0 {
		t.Fatalf("NGrams of empty string = %v, want empty", got)
	}
}

func TestHasherUnitNorm(t *testing.T) {
	h := NewHasher(39)
	for _, s := range []string{"m4.2xlarge", "pagerank", "--iterations 100", "x"} {
		v := h.Encode(s)
		if len(v) != 39 {
			t.Fatalf("Encode(%q) len = %d, want 39", s, len(v))
		}
		var sq float64
		for _, x := range v {
			sq += x * x
		}
		if math.Abs(sq-1) > 1e-9 {
			t.Errorf("Encode(%q) squared norm = %v, want 1", s, sq)
		}
	}
}

func TestHasherEmptyIsZero(t *testing.T) {
	h := NewHasher(16)
	v := h.Encode("!!!") // no in-vocabulary characters
	for i, x := range v {
		if x != 0 {
			t.Fatalf("Encode of out-of-vocab string has nonzero at %d: %v", i, x)
		}
	}
}

func TestHasherDeterministic(t *testing.T) {
	h := NewHasher(39)
	a := h.Encode("r4.2xlarge")
	b := h.Encode("r4.2xlarge")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hasher not deterministic")
		}
	}
}

func TestHasherCaseInsensitive(t *testing.T) {
	h := NewHasher(39)
	a := h.Encode("PageRank")
	b := h.Encode("pagerank")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hasher not case-insensitive")
		}
	}
}

func TestHasherDistinguishesInputs(t *testing.T) {
	h := NewHasher(39)
	a := h.Encode("m4.2xlarge")
	b := h.Encode("r4.2xlarge")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different node types encode identically")
	}
}

func TestBinarizerRoundTrip(t *testing.T) {
	b := NewBinarizer(39)
	for _, v := range []uint64{0, 1, 2, 7, 255, 19353, 1 << 30} {
		bits, err := b.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%d): %v", v, err)
		}
		if got := b.Decode(bits); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestBinarizerOverflow(t *testing.T) {
	b := NewBinarizer(8)
	if _, err := b.Encode(256); err == nil {
		t.Fatal("expected overflow error for 256 in 8 bits")
	}
	if _, err := b.Encode(255); err != nil {
		t.Fatalf("255 should fit in 8 bits: %v", err)
	}
}

func TestBinarizerBitsAreBinary(t *testing.T) {
	b := NewBinarizer(16)
	bits, err := b.Encode(70000)
	if err == nil {
		t.Fatal("expected overflow for 70000 in 16 bits")
	}
	bits, err = b.Encode(12345)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range bits {
		if x != 0 && x != 1 {
			t.Fatalf("bit %d = %v, want 0 or 1", i, x)
		}
	}
}

// Property: binarizer round-trips every value that fits.
func TestQuickBinarizerRoundTrip(t *testing.T) {
	b := NewBinarizer(39)
	f := func(v uint64) bool {
		v %= 1 << 39
		bits, err := b.Encode(v)
		if err != nil {
			return false
		}
		return b.Decode(bits) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashed encodings always have norm 0 or 1.
func TestQuickHasherNorm(t *testing.T) {
	h := NewHasher(39)
	f := func(s string) bool {
		v := h.Encode(s)
		var sq float64
		for _, x := range v {
			sq += x * x
		}
		return sq == 0 || math.Abs(sq-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncoderNumeric(t *testing.T) {
	e := NewPropertyEncoder(40)
	v, kind := e.Encode("19353")
	if kind != KindBinary {
		t.Fatalf("kind = %v, want binary", kind)
	}
	if len(v) != 40 {
		t.Fatalf("len = %d, want 40", len(v))
	}
	if v[0] != 1 {
		t.Fatalf("λ = %v, want 1 for binarizer", v[0])
	}
	b := NewBinarizer(39)
	if got := b.Decode(v[1:]); got != 19353 {
		t.Fatalf("payload decodes to %d, want 19353", got)
	}
}

func TestPropertyEncoderTextual(t *testing.T) {
	e := NewPropertyEncoder(40)
	v, kind := e.Encode("m4.2xlarge")
	if kind != KindHashed {
		t.Fatalf("kind = %v, want hashed", kind)
	}
	if v[0] != 0 {
		t.Fatalf("λ = %v, want 0 for hasher", v[0])
	}
	var sq float64
	for _, x := range v[1:] {
		sq += x * x
	}
	if math.Abs(sq-1) > 1e-9 {
		t.Fatalf("payload norm² = %v, want 1", sq)
	}
}

func TestPropertyEncoderNegativeNumberIsHashed(t *testing.T) {
	e := NewPropertyEncoder(40)
	_, kind := e.Encode("-25")
	if kind != KindHashed {
		t.Fatalf("negative number kind = %v, want hashed", kind)
	}
}

func TestPropertyEncoderHugeNumberFallsBack(t *testing.T) {
	e := NewPropertyEncoder(10) // only 9 payload bits
	_, kind := e.Encode("100000")
	if kind != KindHashed {
		t.Fatalf("overflow number kind = %v, want hashed fallback", kind)
	}
}

func TestEncodeAll(t *testing.T) {
	e := NewPropertyEncoder(40)
	props := []Property{
		{Name: "node_type", Value: "m4.2xlarge"},
		{Name: "dataset_mb", Value: "19353"},
		{Name: "job_name", Value: "sgd", Optional: true},
	}
	vs := e.EncodeAll(props)
	if len(vs) != 3 {
		t.Fatalf("EncodeAll len = %d, want 3", len(vs))
	}
	for i, v := range vs {
		if len(v) != 40 {
			t.Fatalf("vector %d len = %d, want 40", i, len(v))
		}
	}
	if vs[1][0] != 1 {
		t.Fatal("numeric property should use binarizer")
	}
}

// Property: numeric strings below 2^39 always choose the binarizer and
// the λ prefix matches the kind.
func TestQuickPropertyEncoderLambda(t *testing.T) {
	e := NewPropertyEncoder(40)
	f := func(v uint64) bool {
		v %= 1 << 39
		vec, kind := e.Encode(strconv.FormatUint(v, 10))
		if kind != KindBinary {
			return false
		}
		return vec[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHasherEncode(b *testing.B) {
	h := NewHasher(39)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Encode("--iterations 100 --partitions 128 pagerank")
	}
}

func BenchmarkPropertyEncode(b *testing.B) {
	e := NewPropertyEncoder(40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Encode("m4.2xlarge")
	}
}
