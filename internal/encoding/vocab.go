// Package encoding implements Bellamy's descriptive-property encoding
// (paper §III-C): natural numbers are binarized, textual properties are
// hashed from character n-grams onto the euclidean unit sphere, and every
// property is prefixed with a flag bit identifying the method used.
package encoding

import "strings"

// DefaultVocabulary is the case-insensitive character vocabulary used to
// clean textual properties before n-gram extraction: alphanumeric
// characters plus a handful of special symbols, mirroring the paper's
// setup.
const DefaultVocabulary = "abcdefghijklmnopqrstuvwxyz0123456789.-_ =/"

// Vocabulary filters characters of textual properties.
type Vocabulary struct {
	allowed map[rune]bool
}

// NewVocabulary builds a case-insensitive vocabulary from the given
// character set.
func NewVocabulary(chars string) *Vocabulary {
	v := &Vocabulary{allowed: make(map[rune]bool, len(chars))}
	for _, r := range strings.ToLower(chars) {
		v.allowed[r] = true
	}
	return v
}

// DefaultVocab returns the vocabulary built from DefaultVocabulary.
func DefaultVocab() *Vocabulary { return NewVocabulary(DefaultVocabulary) }

// Clean lower-cases s and strips every character outside the vocabulary.
func (v *Vocabulary) Clean(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		if v.allowed[r] {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Contains reports whether r (lower-cased) is in the vocabulary.
func (v *Vocabulary) Contains(r rune) bool {
	return v.allowed[r]
}

// NGrams extracts all contiguous character n-grams of the given sizes from
// s. The paper uses unigrams, bigrams and trigrams (sizes 1..3).
func NGrams(s string, sizes ...int) []string {
	runes := []rune(s)
	var out []string
	for _, n := range sizes {
		if n <= 0 {
			continue
		}
		for i := 0; i+n <= len(runes); i++ {
			out = append(out, string(runes[i:i+n]))
		}
	}
	return out
}
