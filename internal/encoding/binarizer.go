package encoding

import "fmt"

// Binarizer converts natural numbers to fixed-width binary vectors
// (paper Eq. 4, first case). A value v is representable iff v < 2^Dim.
type Binarizer struct {
	// Dim is the number of output bits L.
	Dim int
}

// NewBinarizer builds a binarizer with the given bit width.
func NewBinarizer(dim int) *Binarizer { return &Binarizer{Dim: dim} }

// Encode returns the little-endian binary representation of v as a
// 0/1-valued vector of length Dim. It errors when v does not fit, which
// is the paper's p <= 2^L constraint.
func (b *Binarizer) Encode(v uint64) ([]float64, error) {
	if b.Dim <= 0 {
		return nil, fmt.Errorf("encoding: Binarizer.Dim must be positive, got %d", b.Dim)
	}
	if b.Dim < 64 && v >= 1<<uint(b.Dim) {
		return nil, fmt.Errorf("encoding: value %d does not fit in %d bits", v, b.Dim)
	}
	out := make([]float64, b.Dim)
	for i := 0; i < b.Dim && i < 64; i++ {
		if v&(1<<uint(i)) != 0 {
			out[i] = 1
		}
	}
	return out, nil
}

// Decode inverts Encode, tolerating any vector whose entries round to
// 0 or 1 (useful for testing reconstruction quality).
func (b *Binarizer) Decode(bits []float64) uint64 {
	var v uint64
	for i, x := range bits {
		if i >= 64 {
			break
		}
		if x > 0.5 {
			v |= 1 << uint(i)
		}
	}
	return v
}
