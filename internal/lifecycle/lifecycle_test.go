package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/serve"
)

var (
	_ serve.Observer         = (*Controller)(nil)
	_ serve.SwapNotifier     = (*Controller)(nil)
	_ serve.LifecycleStatser = (*Controller)(nil)
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PropertySize = 16
	cfg.EncodingDim = 3
	cfg.EncoderHidden = 6
	cfg.ScaleOutHidden = 8
	cfg.ScaleOutDim = 4
	cfg.PredictorHidden = 6
	cfg.PretrainEpochs = 40
	cfg.Seed = 11
	return cfg
}

// trueRuntime is the scaling curve of the "live" context the serve
// models have never seen: the pre-training corpus uses factor 1.0,
// live observations arrive from factor-2.2 executions.
func trueRuntime(factor float64, scaleOut int) float64 {
	x := float64(scaleOut)
	return factor * (30 + 400/x + 10*math.Log(x) + 1.2*x)
}

func essentialProps(sizeMB int) []encoding.Property {
	return []encoding.Property{
		{Name: "dataset_size_mb", Value: strconv.Itoa(sizeMB)},
		{Name: "dataset_characteristics", Value: "uniform"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "node_type", Value: "m4.xlarge"},
	}
}

func optionalProps() []encoding.Property {
	return []encoding.Property{
		{Name: "memory_mb", Value: "16384", Optional: true},
		{Name: "cpu_cores", Value: "4", Optional: true},
	}
}

func testQuery(scaleOut, sizeMB int) core.Query {
	return core.Query{
		ScaleOut:  scaleOut,
		Essential: essentialProps(sizeMB),
		Optional:  optionalProps(),
	}
}

// pretrainedBytes serializes a model pre-trained on factor-1.0 contexts,
// memoized so every test shares one training run.
var pretrainedBytes = func() func(t testing.TB) []byte {
	var once sync.Once
	var blob []byte
	return func(t testing.TB) []byte {
		once.Do(func() {
			m, err := core.New(testConfig())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var samples []core.Sample
			for _, size := range []int{10000, 14000, 18000} {
				for x := 2; x <= 12; x += 2 {
					samples = append(samples, core.Sample{
						ScaleOut:   x,
						Essential:  essentialProps(size),
						Optional:   optionalProps(),
						RuntimeSec: trueRuntime(1.0, x),
					})
				}
			}
			if _, err := m.Pretrain(samples); err != nil {
				t.Fatalf("Pretrain: %v", err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			blob = buf.Bytes()
		})
		return blob
	}
}()

// testLoader serves the shared pre-trained model for every key and
// counts loads.
type testLoader struct {
	t     testing.TB
	loads atomic.Int64
}

func (l *testLoader) load(key serve.ModelKey) (*core.Model, error) {
	l.loads.Add(1)
	return core.Load(bytes.NewReader(pretrainedBytes(l.t)))
}

func observedSamples() (qs []core.Query, runtimes []float64) {
	for _, size := range []int{10000, 14000} {
		for x := 2; x <= 12; x += 2 {
			qs = append(qs, testQuery(x, size))
			runtimes = append(runtimes, trueRuntime(2.2, x))
		}
	}
	return qs, runtimes
}

func serviceMAE(t *testing.T, svc *serve.Service, key serve.ModelKey, qs []core.Query, truths []float64) float64 {
	t.Helper()
	var sum float64
	for i, q := range qs {
		r := svc.Predict(context.Background(), key, q)
		if r.Err != nil {
			t.Fatalf("Predict: %v", r.Err)
		}
		sum += math.Abs(r.RuntimeSec - truths[i])
	}
	return sum / float64(len(qs))
}

func fastFinetune() core.FinetuneOptions {
	return core.FinetuneOptions{Strategy: core.StrategyPartialUnfreeze, MaxEpochs: 400, Patience: 400}
}

// TestObserveFinetuneSwapImproves is the end-to-end acceptance test of
// the lifecycle: observations of an unseen context flow in through the
// service, the controller fine-tunes a clone in the background, the
// registry hot-swaps to version 2 without a restart, the prediction
// error on the observed samples drops, stale memoized results are
// invalidated, and warm serving on the new version stays
// allocation-free.
func TestObserveFinetuneSwapImproves(t *testing.T) {
	tl := &testLoader{t: t}
	svc := serve.NewService(tl.load, serve.Options{})
	ctl := New(svc.Registry(), Config{
		MinSamples: 8,
		Interval:   time.Hour, // background loop unused; RunOnce drives the test
		Workers:    1,
		Finetune:   fastFinetune(),
	})
	svc.AttachObserver(ctl)
	key := serve.ModelKey{Job: "sort", Env: "c3o"}
	qs, truths := observedSamples()

	maeBefore := serviceMAE(t, svc, key, qs, truths)
	if v, ok := svc.Registry().Version(key); !ok || v != 1 {
		t.Fatalf("initial version = (%d, %v), want (1, true)", v, ok)
	}
	// This prediction is now memoized; the swap must invalidate it.
	cachedBefore := svc.Predict(context.Background(), key, qs[0])
	if cachedBefore.Err != nil || !cachedBefore.Cached {
		t.Fatalf("expected memoized prediction, got %+v", cachedBefore)
	}

	// Nothing observed yet: no trigger.
	if n := ctl.RunOnce(); n != 0 {
		t.Fatalf("RunOnce before observations swapped %d models, want 0", n)
	}
	for i, q := range qs {
		if err := svc.Observe(context.Background(), key, q, truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if st := ctl.LifecycleStats(); st.Observations != int64(len(qs)) || st.PendingSamples != len(qs) {
		t.Fatalf("stats = %+v, want %d pending observations", st, len(qs))
	}

	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("RunOnce swapped %d models, want 1", n)
	}
	if v, ok := svc.Registry().Version(key); !ok || v != 2 {
		t.Fatalf("version after swap = (%d, %v), want (2, true)", v, ok)
	}
	if n := tl.loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1 (swap is in-memory)", n)
	}

	// The memoized pre-swap result must be gone: the same query now
	// takes a fresh forward pass on the new version.
	afterSwap := svc.Predict(context.Background(), key, qs[0])
	if afterSwap.Err != nil {
		t.Fatalf("Predict after swap: %v", afterSwap.Err)
	}
	if afterSwap.Cached {
		t.Fatal("pre-swap memoized result survived the hot-swap")
	}
	if afterSwap.RuntimeSec == cachedBefore.RuntimeSec {
		t.Fatal("post-swap prediction identical to pre-swap value; swap had no effect")
	}

	maeAfter := serviceMAE(t, svc, key, qs, truths)
	if maeAfter >= maeBefore*0.5 {
		t.Fatalf("MAE %.2fs -> %.2fs: fine-tune did not improve predictions enough", maeBefore, maeAfter)
	}
	t.Logf("MAE on observed context: %.2fs -> %.2fs", maeBefore, maeAfter)

	// Warm serving on the swapped version is allocation-free.
	q := qs[1]
	if r := svc.Predict(context.Background(), key, q); r.Err != nil {
		t.Fatalf("prime Predict: %v", r.Err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r := svc.Predict(context.Background(), key, q)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !r.Cached {
			t.Fatal("expected a cache hit")
		}
	}); allocs != 0 {
		t.Fatalf("warm Predict on swapped model allocs/op = %v, want 0", allocs)
	}

	st := ctl.LifecycleStats()
	if st.Finetunes != 1 || st.Swaps != 1 || st.FinetuneErrors != 0 || st.SwapsSkipped != 0 {
		t.Fatalf("stats = %+v, want exactly one clean finetune+swap", st)
	}
	if st.PendingSamples != 0 {
		t.Fatalf("pending = %d after digest, want 0", st.PendingSamples)
	}
	if st.MeanFinetune <= 0 {
		t.Fatalf("MeanFinetune = %v, want > 0", st.MeanFinetune)
	}
}

func TestObserveValidation(t *testing.T) {
	tl := &testLoader{t: t}
	ctl := New(serve.NewRegistry(tl.load, 4), Config{})
	key := serve.ModelKey{Job: "sort"}
	if err := ctl.Observe(context.Background(), serve.ModelKey{}, testQuery(4, 10000), 10); err == nil {
		t.Fatal("accepted observation without job")
	}
	if err := ctl.Observe(context.Background(), key, testQuery(-1, 10000), 10); err == nil {
		t.Fatal("accepted non-positive scale-out")
	}
	if err := ctl.Observe(context.Background(), key, testQuery(4, 10000), 0); err == nil {
		t.Fatal("accepted non-positive runtime")
	}
	if err := ctl.Observe(context.Background(), key, testQuery(4, 10000), 12.5); err != nil {
		t.Fatalf("rejected valid observation: %v", err)
	}
	st := ctl.LifecycleStats()
	if st.Rejected != 3 || st.Observations != 1 {
		t.Fatalf("stats = %+v, want 3 rejected / 1 accepted", st)
	}
}

// TestShapeInvalidObservationsDroppedAtFinetune: observations whose
// property counts don't match the model architecture pass ingestion
// (the model may not be resident) but are dropped at fine-tune time
// instead of failing the run.
func TestShapeInvalidObservationsDroppedAtFinetune(t *testing.T) {
	tl := &testLoader{t: t}
	reg := serve.NewRegistry(tl.load, 4)
	ctl := New(reg, Config{MinSamples: 1, Finetune: fastFinetune()})
	key := serve.ModelKey{Job: "sort"}

	// Wrong essential-property count for the architecture.
	bad := core.Query{ScaleOut: 4, Essential: essentialProps(10000)[:2]}
	if err := ctl.Observe(context.Background(), key, bad, 50); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if n := ctl.RunOnce(); n != 0 {
		t.Fatalf("swapped %d models from shape-invalid observations, want 0", n)
	}
	st := ctl.LifecycleStats()
	if st.Rejected != 1 || st.Finetunes != 0 {
		t.Fatalf("stats = %+v, want 1 rejected and no finetune", st)
	}

	// A mixed batch keeps the valid samples.
	qs, truths := observedSamples()
	if err := ctl.Observe(context.Background(), key, bad, 50); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := ctl.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("swapped %d models, want 1", n)
	}
	if st := ctl.LifecycleStats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}

	// The shape-invalid samples were purged from the ring: another
	// fine-tune round must not re-reject them.
	for i := 0; i < 8; i++ {
		j := (8 + i) % len(qs)
		if err := ctl.Observe(context.Background(), key, qs[j], truths[j]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("swapped %d models, want 1", n)
	}
	if st := ctl.LifecycleStats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d after another fine-tune, want 2 (each bad sample counted once)", st.Rejected)
	}
}

// TestTransientLoadFailureRequeuesObservations: a fine-tune attempt
// that dies on a transient model-load failure must restore the
// observation window so the next scan retries, instead of silently
// discarding the samples.
func TestTransientLoadFailureRequeuesObservations(t *testing.T) {
	tl := &testLoader{t: t}
	var failing atomic.Bool
	loader := func(key serve.ModelKey) (*core.Model, error) {
		if failing.Load() {
			return nil, errTransient
		}
		return tl.load(key)
	}
	// A short interval keeps the retry backoff (base = Interval) testable.
	ctl := New(serve.NewRegistry(loader, 4), Config{MinSamples: 8, Interval: time.Millisecond, Finetune: fastFinetune()})
	key := serve.ModelKey{Job: "sort"}
	qs, truths := observedSamples()
	for i := 0; i < 8; i++ {
		if err := ctl.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}

	failing.Store(true)
	if n := ctl.RunOnce(); n != 0 {
		t.Fatalf("swapped %d models through a failing loader", n)
	}
	st := ctl.LifecycleStats()
	if st.FinetuneErrors != 1 || st.Finetunes != 0 {
		t.Fatalf("stats = %+v, want 1 pre-finetune error and no finetune", st)
	}
	if st.PendingSamples != 8 {
		t.Fatalf("pending = %d after transient failure, want 8 (requeued)", st.PendingSamples)
	}

	failing.Store(false)
	// Once the backoff window passes, the retry digests the window.
	time.Sleep(5 * time.Millisecond)
	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("retry swapped %d models, want 1", n)
	}
}

// TestLoadFailureBacksOff: a key whose model load keeps failing must
// not grind the loader on every scan — retries are delayed
// exponentially, so junk observations for a nonexistent model decay to
// rare load attempts instead of permanent registry churn.
func TestLoadFailureBacksOff(t *testing.T) {
	var loads atomic.Int64
	loader := func(key serve.ModelKey) (*core.Model, error) {
		loads.Add(1)
		return nil, errTransient
	}
	// A long interval makes the first backoff window (1 interval)
	// effectively unreachable within the test.
	ctl := New(serve.NewRegistry(loader, 4), Config{MinSamples: 1, Interval: time.Hour, Finetune: fastFinetune()})
	key := serve.ModelKey{Job: "ghost"}
	if err := ctl.Observe(context.Background(), key, testQuery(4, 10000), 10); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	ctl.RunOnce()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	// Scans inside the backoff window must not touch the loader again,
	// even though the samples are still pending.
	for i := 0; i < 5; i++ {
		ctl.RunOnce()
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times during backoff, want 1", n)
	}
	if st := ctl.LifecycleStats(); st.PendingSamples != 1 || st.FinetuneErrors != 1 {
		t.Fatalf("stats = %+v, want the sample still pending behind backoff", st)
	}
}

// TestObserveKeyBound: the per-key buffer map is bounded; a stream of
// distinct junk keys cannot grow memory without limit.
func TestObserveKeyBound(t *testing.T) {
	tl := &testLoader{t: t}
	ctl := New(serve.NewRegistry(tl.load, 4), Config{MaxKeys: 2})
	q := testQuery(4, 10000)
	for _, job := range []string{"a", "b"} {
		if err := ctl.Observe(context.Background(), serve.ModelKey{Job: job}, q, 10); err != nil {
			t.Fatalf("Observe(%s): %v", job, err)
		}
	}
	err := ctl.Observe(context.Background(), serve.ModelKey{Job: "c"}, q, 10)
	if err == nil {
		t.Fatal("observation for a key past the bound was accepted")
	}
	if !errors.Is(err, serve.ErrObserveCapacity) {
		t.Fatalf("capacity rejection %v does not wrap serve.ErrObserveCapacity", err)
	}
	// Known keys keep working at the bound.
	if err := ctl.Observe(context.Background(), serve.ModelKey{Job: "a"}, q, 11); err != nil {
		t.Fatalf("Observe on existing key at the bound: %v", err)
	}
	st := ctl.LifecycleStats()
	if st.Rejected != 1 || st.Observations != 3 {
		t.Fatalf("stats = %+v, want 1 rejected / 3 accepted", st)
	}
}

// TestBufferLazyGrowth: a new key's ring starts small and grows toward
// BufferCap only under sustained observation traffic.
func TestBufferLazyGrowth(t *testing.T) {
	b := newBuffer(64)
	if len(b.samples) != initialRingCap {
		t.Fatalf("fresh ring holds %d slots, want %d", len(b.samples), initialRingCap)
	}
	now := time.Now()
	for i := 1; i <= 40; i++ {
		b.add(core.Sample{ScaleOut: i, RuntimeSec: float64(i)}, now)
	}
	got, fresh, ok := b.takeIfTriggered(now, 1, 0)
	if !ok || len(got) != 40 || fresh != 40 {
		t.Fatalf("take = (%d samples, %d fresh, %v), want all 40", len(got), fresh, ok)
	}
	for i, s := range got {
		if s.ScaleOut != i+1 {
			t.Fatalf("sample %d is scale-out %d, want %d (order preserved across growth)", i, s.ScaleOut, i+1)
		}
	}
	if len(b.samples) > 64 {
		t.Fatalf("ring grew to %d slots past its 64 cap", len(b.samples))
	}
}

var errTransient = fmt.Errorf("models directory briefly unreadable")

func TestMinSamplesAndStalenessTriggers(t *testing.T) {
	tl := &testLoader{t: t}
	qs, truths := observedSamples()
	key := serve.ModelKey{Job: "sort"}

	// Below the size trigger with staleness disabled: nothing runs.
	ctl := New(serve.NewRegistry(tl.load, 4), Config{MinSamples: 100, MaxStaleness: -1, Finetune: fastFinetune()})
	for i := 0; i < 3; i++ {
		if err := ctl.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 0 {
		t.Fatalf("under-threshold buffer triggered %d fine-tunes", n)
	}
	if st := ctl.LifecycleStats(); st.PendingSamples != 3 {
		t.Fatalf("pending = %d, want 3 (undigested)", st.PendingSamples)
	}

	// Same few samples with a tiny staleness bound: the trickle gets
	// digested even though MinSamples is far away.
	ctl2 := New(serve.NewRegistry(tl.load, 4), Config{MinSamples: 100, MaxStaleness: time.Nanosecond, Finetune: fastFinetune()})
	for i := 0; i < 3; i++ {
		if err := ctl2.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	time.Sleep(time.Millisecond)
	if n := ctl2.RunOnce(); n != 1 {
		t.Fatalf("stale trickle triggered %d fine-tunes, want 1", n)
	}
}

// TestMinSamplesClampedToBufferCap: fresh is capped at the ring
// occupancy, so a size trigger above the ring capacity could never
// fire; the config clamps it so a full ring always triggers even with
// the staleness trigger disabled.
func TestMinSamplesClampedToBufferCap(t *testing.T) {
	tl := &testLoader{t: t}
	ctl := New(serve.NewRegistry(tl.load, 4), Config{
		MinSamples: 100, BufferCap: 4, MaxStaleness: -1, Finetune: fastFinetune(),
	})
	key := serve.ModelKey{Job: "sort"}
	qs, truths := observedSamples()
	for i := 0; i < 4; i++ {
		if err := ctl.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("full ring swapped %d models, want 1 (MinSamples clamped to BufferCap)", n)
	}
}

func TestBufferRingOverwrite(t *testing.T) {
	b := newBuffer(4)
	now := time.Now()
	for i := 1; i <= 6; i++ {
		b.add(core.Sample{ScaleOut: i, RuntimeSec: float64(i)}, now)
	}
	got, fresh, ok := b.takeIfTriggered(now, 1, 0)
	if !ok {
		t.Fatal("full ring did not trigger")
	}
	if len(got) != 4 || fresh != 4 {
		t.Fatalf("ring kept %d samples (%d fresh), want 4 (4 fresh)", len(got), fresh)
	}
	for i, s := range got {
		if s.ScaleOut != i+3 {
			t.Fatalf("sample %d is scale-out %d, want %d (oldest first, oldest two overwritten)", i, s.ScaleOut, i+3)
		}
	}
	// While tuning, the buffer keeps absorbing but never re-triggers.
	b.add(core.Sample{ScaleOut: 7, RuntimeSec: 7}, now)
	if _, _, ok := b.takeIfTriggered(now, 1, 0); ok {
		t.Fatal("buffer re-triggered while a fine-tune was in flight")
	}
	b.tuneDone()
	got, _, ok = b.takeIfTriggered(now, 1, 0)
	if !ok {
		t.Fatal("buffer did not re-arm after tuneDone")
	}
	// The digest hands over the whole ring again (context anchor), with
	// the new sample last.
	if got[len(got)-1].ScaleOut != 7 {
		t.Fatalf("latest sample is scale-out %d, want 7", got[len(got)-1].ScaleOut)
	}
}

func TestBackgroundLoopSwaps(t *testing.T) {
	tl := &testLoader{t: t}
	svc := serve.NewService(tl.load, serve.Options{})
	ctl := New(svc.Registry(), Config{
		MinSamples: 4,
		Interval:   5 * time.Millisecond,
		Finetune:   core.FinetuneOptions{Strategy: core.StrategyPartialUnfreeze, MaxEpochs: 50, Patience: 50},
	})
	svc.AttachObserver(ctl)
	ctl.Start()
	defer ctl.Stop()

	key := serve.ModelKey{Job: "grep", Env: "c3o"}
	qs, truths := observedSamples()
	for i := 0; i < 4; i++ {
		if err := svc.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := svc.Registry().Version(key); ok && v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never swapped a new version")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStopIdempotentAndBeforeStart(t *testing.T) {
	tl := &testLoader{t: t}
	ctl := New(serve.NewRegistry(tl.load, 4), Config{})
	ctl.Stop() // never started: must not hang
	ctl.Stop() // and stays idempotent

	ctl2 := New(serve.NewRegistry(tl.load, 4), Config{Interval: time.Millisecond})
	ctl2.Start()
	ctl2.Stop()
	ctl2.Stop()
}

// TestLifecycleEvictionRaceHammer races observation-driven fine-tunes
// against LRU eviction pressure on a 1-slot registry, plus concurrent
// serving. Run under -race. The invariant: every fine-tune either
// installs onto the generation it derived from or is dropped — the
// counters must balance and serving must never fail.
func TestLifecycleEvictionRaceHammer(t *testing.T) {
	tl := &testLoader{t: t}
	svc := serve.NewService(tl.load, serve.Options{ModelCap: 1})
	ctl := New(svc.Registry(), Config{
		MinSamples: 2,
		Workers:    2,
		Finetune:   core.FinetuneOptions{Strategy: core.StrategyPartialUnfreeze, MaxEpochs: 10, Patience: 10},
	})
	svc.AttachObserver(ctl)
	key := serve.ModelKey{Job: "sort", Env: "c3o"}
	evictors := []serve.ModelKey{{Job: "grep"}, {Job: "sgd"}, {Job: "kmeans"}}
	qs, truths := observedSamples()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Eviction pressure: constantly pull other models through the
	// 1-slot registry so the tuned key keeps getting evicted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Registry().Get(context.Background(), evictors[i%len(evictors)]); err != nil {
				t.Errorf("evictor Get: %v", err)
				return
			}
		}
	}()
	// Serving traffic on the tuned key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if r := svc.Predict(context.Background(), key, qs[i%len(qs)]); r.Err != nil {
				t.Errorf("Predict: %v", r.Err)
				return
			}
		}
	}()
	// Observation + fine-tune cycles.
	for round := 0; round < 6; round++ {
		for i := 0; i < 2; i++ {
			j := (round*2 + i) % len(qs)
			if err := svc.Observe(context.Background(), key, qs[j], truths[j]); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		ctl.RunOnce()
	}
	close(stop)
	wg.Wait()

	st := ctl.LifecycleStats()
	if st.Finetunes == 0 {
		t.Fatal("hammer ran no fine-tunes")
	}
	// With a loader that never fails, every fine-tune attempt reaches
	// the Finetune call, so the outcomes partition the attempts exactly
	// (pre-finetune failures would add errors without finetunes).
	if st.Swaps+st.SwapsSkipped+st.FinetuneErrors != st.Finetunes {
		t.Fatalf("counter imbalance: %+v", st)
	}
	// Serving still works after the dust settles.
	if r := svc.Predict(context.Background(), key, qs[0]); r.Err != nil {
		t.Fatalf("final Predict: %v", r.Err)
	}
}
