// Package lifecycle closes the loop from live runtime observations back
// into better served models. A Controller ingests (key, query, actual
// runtime) observations into bounded per-key buffers, and a background
// scan fine-tunes a clone of the served model once a key accumulates
// enough fresh samples (or they grow stale), then hot-swaps the result
// into the serving registry as a new version. Serving is never blocked:
// fine-tuning runs on clones with their own workspaces, concurrency is
// bounded by the shared parallel worker helper, and the swap is an
// atomic pointer flip guarded by the registry's generation counters.
package lifecycle

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// Defaults for Config fields left zero.
const (
	DefaultMinSamples   = 8
	DefaultBufferCap    = 256
	DefaultMaxKeys      = 1024
	DefaultInterval     = 30 * time.Second
	DefaultMaxStaleness = 2 * time.Minute
	// DefaultFinetuneEpochs bounds an online fine-tune run well below
	// the offline default (2500), keeping swap latency in the tens of
	// milliseconds for paper-sized contexts.
	DefaultFinetuneEpochs = 300
	// DefaultFinetunePatience stops a stalled online run early.
	DefaultFinetunePatience = 100
)

// Config tunes a Controller.
type Config struct {
	// MinSamples triggers a fine-tune once a key holds this many fresh
	// (undigested) observations (<= 0: DefaultMinSamples).
	MinSamples int
	// MaxStaleness triggers a fine-tune when the oldest fresh
	// observation has waited this long, so trickle traffic still gets
	// digested (0: DefaultMaxStaleness; < 0 disables the staleness
	// trigger).
	MaxStaleness time.Duration
	// BufferCap bounds each key's observation ring
	// (<= 0: DefaultBufferCap).
	BufferCap int
	// MaxKeys bounds the number of distinct model keys holding
	// observation buffers; observations for further keys are rejected,
	// so a stream of junk keys cannot grow memory without limit
	// (<= 0: DefaultMaxKeys).
	MaxKeys int
	// Interval is the background scan period (<= 0: DefaultInterval).
	Interval time.Duration
	// Workers bounds concurrent fine-tunes, so tuning load cannot
	// starve serving of cores (<= 0: NumCPU/4, at least 1).
	Workers int
	// Finetune tunes the adaptation runs. A zero value selects
	// StrategyPartialUnfreeze with DefaultFinetuneEpochs/Patience.
	Finetune core.FinetuneOptions
	// Log, when set, makes observations durable: Observe appends to it
	// before ring admission and fails (rejecting the observation) if the
	// append does, so an acknowledged observation is always recoverable.
	// *store.Store satisfies it.
	Log ObservationLog
	// Checkpoint, when set, persists every installed model version
	// (serialized before the swap publishes the model, written after the
	// swap succeeds). *store.Store satisfies it.
	Checkpoint Checkpointer
}

// ObservationLog is the durable observation sink (the WAL). The
// controller defines the interface structurally so the lifecycle and
// store packages stay decoupled; *store.Store satisfies it.
type ObservationLog interface {
	AppendObservation(job, env string, sample core.Sample, at time.Time) error
	AppendDigest(job, env string, fresh int, at time.Time) error
}

// Checkpointer persists installed model versions; *store.Store
// satisfies it.
type Checkpointer interface {
	CheckpointModel(job, env string, version uint64, blob []byte) error
}

func (c Config) withDefaults() Config {
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MaxStaleness == 0 {
		c.MaxStaleness = DefaultMaxStaleness
	}
	if c.BufferCap <= 0 {
		c.BufferCap = DefaultBufferCap
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = DefaultMaxKeys
	}
	// fresh is capped at the ring occupancy, so a size trigger above
	// the ring capacity could never fire (with staleness disabled the
	// buffer would absorb observations forever without digesting them).
	if c.MinSamples > c.BufferCap {
		c.MinSamples = c.BufferCap
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Workers <= 0 {
		c.Workers = max(1, runtime.NumCPU()/4)
	}
	if c.Finetune.MaxEpochs <= 0 {
		c.Finetune.MaxEpochs = DefaultFinetuneEpochs
	}
	if c.Finetune.Patience <= 0 {
		c.Finetune.Patience = DefaultFinetunePatience
	}
	return c
}

// Controller is the online-learning subsystem: observation ingestion,
// trigger evaluation, bounded background fine-tuning, and versioned
// hot-swap into a serve.Registry. It implements serve.Observer,
// serve.SwapNotifier, and serve.LifecycleStatser, so a single
// Service.AttachObserver call wires the whole loop. Safe for
// concurrent use.
type Controller struct {
	reg *serve.Registry
	cfg Config

	mu        sync.Mutex
	buffers   map[serve.ModelKey]*buffer
	onSwap    []func(key serve.ModelKey, version uint64)
	onInstall []func(key serve.ModelKey, version uint64, blob []byte)

	observations, rejected    atomic.Int64
	finetunes, finetuneErrors atomic.Int64
	swaps, swapsSkipped       atomic.Int64
	finetuneNS                atomic.Int64
	restored, logErrors       atomic.Int64

	startOnce, stopOnce sync.Once
	stop                chan struct{}
	done                chan struct{}
}

// New builds a controller fine-tuning and swapping models of reg.
func New(reg *serve.Registry, cfg Config) *Controller {
	return &Controller{
		reg:     reg,
		cfg:     cfg.withDefaults(),
		buffers: map[serve.ModelKey]*buffer{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// OnSwap registers a callback invoked after every installed model
// version (key and new version number). Register callbacks before
// Start; serve.Service.AttachObserver registers its result-cache
// invalidation through this hook.
func (c *Controller) OnSwap(fn func(key serve.ModelKey, version uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSwap = append(c.onSwap, fn)
}

// OnInstall registers a callback invoked after every installed model
// version with the serialized model bytes — the same blob the
// checkpointer persists, handed over so a replicator can ship it to
// peer shards without re-serializing the model. Register callbacks
// before Start. When any install hook is registered, the blob is built
// even if checkpointing is disabled.
func (c *Controller) OnInstall(fn func(key serve.ModelKey, version uint64, blob []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onInstall = append(c.onInstall, fn)
}

// Observe ingests one runtime observation for key. Validation here is
// shape-free (the model may not even be resident yet): positive
// scale-out and runtime, non-empty job. Property-count validation
// against the model architecture happens at fine-tune time, where the
// model configuration is known. The query's property slices are
// referenced, not copied; callers must not mutate them afterwards
// (HTTP ingestion decodes fresh slices per request). The context is
// checked once before the durable append: an observation whose caller
// already gave up is rejected instead of paying a WAL fsync for an
// answer nobody reads.
func (c *Controller) Observe(ctx context.Context, key serve.ModelKey, q core.Query, runtimeSec float64) error {
	if err := ctx.Err(); err != nil {
		c.rejected.Add(1)
		return err
	}
	if key.Job == "" {
		c.rejected.Add(1)
		return fmt.Errorf("lifecycle: observation missing job")
	}
	if q.ScaleOut <= 0 {
		c.rejected.Add(1)
		return fmt.Errorf("lifecycle: observation scale-out %d must be positive", q.ScaleOut)
	}
	if runtimeSec <= 0 {
		c.rejected.Add(1)
		return fmt.Errorf("lifecycle: observed runtime %v must be positive", runtimeSec)
	}
	b, err := c.bufferFor(key)
	if err != nil {
		c.rejected.Add(1)
		return err
	}
	s := core.Sample{
		ScaleOut:   q.ScaleOut,
		Essential:  q.Essential,
		Optional:   q.Optional,
		RuntimeSec: runtimeSec,
	}
	now := time.Now()
	// Durability before admission: an observation enters the ring only
	// once the WAL holds it, so an acknowledged Observe (HTTP 202) is
	// never lost to a crash. A failed append rejects the observation
	// rather than admitting volatile state the caller believes durable.
	if c.cfg.Log != nil {
		if err := c.cfg.Log.AppendObservation(key.Job, key.Env, s, now); err != nil {
			c.logErrors.Add(1)
			c.rejected.Add(1)
			return fmt.Errorf("lifecycle: observation not durable: %w", err)
		}
	}
	b.add(s, now)
	c.observations.Add(1)
	return nil
}

// Restore re-admits one replayed observation into key's ring without
// re-logging it. It is the boot-replay counterpart of Observe: call it
// (with the observation's original arrival time) while replaying the
// durable log, before Start and before serving traffic.
func (c *Controller) Restore(key serve.ModelKey, s core.Sample, at time.Time) {
	b, err := c.bufferFor(key)
	if err != nil {
		c.rejected.Add(1)
		return
	}
	b.add(s, at)
	c.restored.Add(1)
}

// RestoreDigest marks key's currently buffered samples digested during
// boot replay. A digest record follows a checkpointed fine-tune in the
// log, so replaying it reconstructs the ring's freshness state — the
// samples stay resident as context for future fine-tunes but do not
// re-trigger the fine-tune whose result is already checkpointed.
func (c *Controller) RestoreDigest(key serve.ModelKey) {
	c.mu.Lock()
	b := c.buffers[key]
	c.mu.Unlock()
	if b == nil {
		return
	}
	b.markDigested()
	c.restored.Add(1)
}

func (c *Controller) bufferFor(key serve.ModelKey) (*buffer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buffers[key]
	if !ok {
		if len(c.buffers) >= c.cfg.MaxKeys {
			return nil, fmt.Errorf("lifecycle: observation buffers at the %d-key bound; observation for new key %s rejected: %w",
				c.cfg.MaxKeys, key, serve.ErrObserveCapacity)
		}
		b = newBuffer(c.cfg.BufferCap)
		c.buffers[key] = b
	}
	return b, nil
}

// Start launches the background scan loop. Stop it with Stop.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case now := <-t.C:
					c.runOnce(now)
				}
			}
		}()
	})
}

// Stop terminates the background loop and waits for it (and any
// fine-tunes it is running) to finish. Safe to call more than once,
// and before Start (the loop then never runs).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// Drain shuts the controller down for process exit: it stops the
// background loop (waiting out any fine-tunes it is running), then
// synchronously digests every buffer still holding fresh samples —
// triggers, staleness, and backoff are ignored, shutdown is the last
// chance to turn buffered observations into a checkpointed model
// version. Every installed version flows through the usual checkpoint +
// digest-record path, so a clean restart replays none of it as fresh.
// Returns the number of versions installed.
func (c *Controller) Drain() int {
	c.Stop()
	c.mu.Lock()
	jobs := make([]tuneJob, 0, len(c.buffers))
	for key, b := range c.buffers {
		if samples, fresh, ok := b.takeForDrain(); ok {
			jobs = append(jobs, tuneJob{key: key, buf: b, samples: samples, fresh: fresh})
		}
	}
	c.mu.Unlock()
	if len(jobs) == 0 {
		return 0
	}
	var swapped atomic.Int64
	parallel.ForEach(len(jobs), c.cfg.Workers, func(i int) {
		if c.tune(jobs[i]) {
			swapped.Add(1)
		}
	})
	return int(swapped.Load())
}

// RunOnce synchronously evaluates the triggers and runs every due
// fine-tune on the bounded worker pool, returning the number of model
// versions installed. The background loop calls it on each tick; tests
// call it directly for deterministic control.
func (c *Controller) RunOnce() int {
	return c.runOnce(time.Now())
}

// tuneJob is one triggered key with its snapshotted samples; fresh is
// the digested fresh-sample count, requeued if the attempt fails
// before the fine-tune runs.
type tuneJob struct {
	key     serve.ModelKey
	buf     *buffer
	samples []core.Sample
	fresh   int
}

func (c *Controller) runOnce(now time.Time) int {
	c.mu.Lock()
	jobs := make([]tuneJob, 0, len(c.buffers))
	for key, b := range c.buffers {
		if samples, fresh, ok := b.takeIfTriggered(now, c.cfg.MinSamples, c.cfg.MaxStaleness); ok {
			jobs = append(jobs, tuneJob{key: key, buf: b, samples: samples, fresh: fresh})
		}
	}
	c.mu.Unlock()
	if len(jobs) == 0 {
		return 0
	}
	var swapped atomic.Int64
	parallel.ForEach(len(jobs), c.cfg.Workers, func(i int) {
		if c.tune(jobs[i]) {
			swapped.Add(1)
		}
	})
	return int(swapped.Load())
}

// tune fine-tunes a clone of key's served model on the snapshotted
// samples and hot-swaps it in, reporting whether a new version was
// installed. The base version is pinned by its registry generation: if
// the key is evicted (or evicted and reloaded) while the fine-tune
// runs, the swap is refused and the derived model dropped, never
// resurrecting weights of a discarded residency.
func (c *Controller) tune(j tuneJob) (installed bool) {
	defer j.buf.tuneDone()
	// Failures before the fine-tune runs (model load, clone) are
	// infrastructure hiccups: requeue the digested samples so the next
	// scan retries instead of silently discarding the window. A failure
	// of the fine-tune itself does not requeue — retrying the same
	// samples would fail the same way.
	ref, err := c.reg.GetRef(context.Background(), j.key)
	if err != nil {
		c.finetuneErrors.Add(1)
		j.buf.requeue(j.fresh, time.Now(), c.cfg.Interval)
		return false
	}
	clone, err := ref.Model.CloneCore()
	if err != nil {
		c.finetuneErrors.Add(1)
		j.buf.requeue(j.fresh, time.Now(), c.cfg.Interval)
		return false
	}
	j.buf.clearBackoff()
	// Shape validation against the now-known architecture; observations
	// with the wrong property counts are dropped, not fatal. They are
	// purged from the ring too (and counted rejected exactly once
	// there), so they cannot occupy slots and be re-validated by every
	// future fine-tune of this key.
	invalid := func(s core.Sample) bool { return core.ValidateSample(clone.Cfg, s) != nil }
	if removed := j.buf.purge(invalid); removed > 0 {
		c.rejected.Add(int64(removed))
	}
	valid := j.samples[:0]
	for _, s := range j.samples {
		if !invalid(s) {
			valid = append(valid, s)
		}
	}
	if len(valid) == 0 {
		return false
	}
	start := time.Now()
	_, err = clone.Finetune(valid, c.cfg.Finetune)
	c.finetuneNS.Add(int64(time.Since(start)))
	c.finetunes.Add(1)
	if err != nil {
		c.finetuneErrors.Add(1)
		return false
	}
	// Serialize the clone before Swap publishes it: until then the
	// goroutine owns the model exclusively, so the checkpoint bytes need
	// no lock and can never capture a half-updated state. Install hooks
	// (shard replication) consume the same bytes, so the blob is built
	// whenever either consumer exists.
	c.mu.Lock()
	installHooks := c.onInstall
	c.mu.Unlock()
	var blob []byte
	if c.cfg.Checkpoint != nil || len(installHooks) > 0 {
		var buf bytes.Buffer
		if err := clone.Save(&buf); err != nil {
			c.logErrors.Add(1)
		} else {
			blob = buf.Bytes()
		}
	}
	version, ok := c.reg.Swap(j.key, ref.Gen, clone)
	if !ok {
		c.swapsSkipped.Add(1)
		return false
	}
	c.swaps.Add(1)
	// Checkpoint the installed version, then log the digest. The order
	// is the recovery invariant: a digest record promises "a checkpoint
	// of the model that absorbed these samples exists", so replay can
	// mark them digested. A crash between swap and checkpoint (or
	// between checkpoint and digest) leaves the samples fresh in the
	// replayed ring — a harmless re-fine-tune, never lost data.
	if blob != nil && c.cfg.Checkpoint != nil {
		if err := c.cfg.Checkpoint.CheckpointModel(j.key.Job, j.key.Env, version, blob); err != nil {
			c.logErrors.Add(1)
		} else if c.cfg.Log != nil {
			if err := c.cfg.Log.AppendDigest(j.key.Job, j.key.Env, j.fresh, time.Now()); err != nil {
				c.logErrors.Add(1)
			}
		}
	}
	c.mu.Lock()
	hooks := c.onSwap
	c.mu.Unlock()
	for _, fn := range hooks {
		fn(j.key, version)
	}
	if blob != nil {
		for _, fn := range installHooks {
			fn(j.key, version, blob)
		}
	}
	return true
}

// LifecycleStats snapshots the controller counters (implements
// serve.LifecycleStatser, so the counters surface in /v1/stats).
func (c *Controller) LifecycleStats() serve.LifecycleStats {
	c.mu.Lock()
	pending := 0
	for _, b := range c.buffers {
		pending += b.pending()
	}
	c.mu.Unlock()
	st := serve.LifecycleStats{
		Observations:   c.observations.Load(),
		Rejected:       c.rejected.Load(),
		PendingSamples: pending,
		Finetunes:      c.finetunes.Load(),
		FinetuneErrors: c.finetuneErrors.Load(),
		Swaps:          c.swaps.Load(),
		SwapsSkipped:   c.swapsSkipped.Load(),
		Restored:       c.restored.Load(),
		LogErrors:      c.logErrors.Load(),
	}
	if st.Finetunes > 0 {
		st.MeanFinetune = time.Duration(c.finetuneNS.Load() / st.Finetunes)
	}
	return st
}
